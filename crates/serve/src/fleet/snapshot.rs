//! Versioned fleet snapshots: capture a mid-run simulation, restore it
//! bit-identically.
//!
//! A [`FleetSnapshot`] is a plain-text record of everything the
//! simulation will ever read again: the pending [`FleetEvent`]s, the
//! scheduler queues, per-card state, the metrics accumulator, the memo
//! keys, the complete fault/overload state (including each card's RNG
//! position), and the workload source's cursor. What it deliberately
//! does **not** record is anything derivable from the [`FleetConfig`]
//! (weights, fault scripts, policies) — the config is pinned by an FNV
//! digest instead, and [`apply`](FleetSnapshot::apply) regenerates the
//! derived state deterministically.
//!
//! The canonical text form doubles as the integrity mechanism: the
//! `hash` trailer is FNV-1a over the body, [`parse`](FleetSnapshot::parse)
//! verifies it, and `apply` finishes by re-capturing the restored state
//! and comparing hashes — a restore that would diverge from the
//! original run is rejected rather than silently drifting. The same
//! hash is the *state hash* surfaced per epoch in
//! [`ServeOutcome::state_hash`](crate::ServeOutcome::state_hash):
//! equal hashes mean bit-identical fleets.
//!
//! Format: line-oriented, space-separated tokens, trailer
//! `hash <16 hex digits>`. Floats travel as `f64::to_bits` so the
//! round-trip is exact.
//!
//! ## Versions
//!
//! Four grammar versions coexist. `protea-fleet-snapshot v1` is the
//! original: 8-token requests, no churn state, no tenant ledger. A run
//! emits `protea-fleet-snapshot v2` only when the elastic machinery is
//! visible — an explicit roster, a non-default placement policy, churn,
//! tenant classes, brownout, or traffic tagged with a nonzero tenant id
//! — so classic fleets keep producing byte-identical v1 snapshots.
//! v2 appends the tenant id as a ninth request token, adds `J`/`D`
//! churn events and the `brownout` fail reason, and closes the fault
//! section with roster presence, drain flags, pending joins, churn
//! counters, and the per-tenant ledger. `protea-fleet-snapshot v3` is
//! emitted only when the SDC defense is armed: it adds `S` (scrub) and
//! `Q` (requalify) events and closes the fault section with the SDC
//! block — counters, scrub arming, per-card quarantine/dirty/pending
//! state, the re-execution seq set, and each card's corruption-stream
//! RNG position. `protea-fleet-snapshot v4` is emitted once
//! autoregressive generation is visible — mid-run session state (live
//! or retired) or a decode-tagged arrival still pending: it extends
//! requests to eleven tokens (`decode_steps`, per-token deadline), adds
//! the `G` (generation round) event, and appends the generation block —
//! session queues, the token conservation ledger, phase latency
//! accumulators, and each card's running generation batch. KV residency
//! is not serialized; restore re-derives it by re-reserving each
//! restored session's worst-case footprint. `parse` accepts all four; a
//! v1 snapshot restores with the fleet fully present and its history
//! folded into tenant 0, and a v1/v2 snapshot is rejected up front when
//! the resuming config arms machinery its grammar cannot carry (elastic
//! for v1, SDC for both).
//!
//! A wrong header, a missing or malformed `hash` trailer, or a body
//! that does not re-hash to the trailer is an *integrity* failure
//! ([`ServeError::SnapshotIntegrity`], its own exit code) — the file is
//! untrusted input, not a config mismatch.

use super::events::FleetEvent;
use super::sim::{
    kv_spec, CardGen, FaultState, GenSession, Inflight, MetricsAccum, SimModel, TenantLedger,
};
use super::FleetConfig;
use crate::error::ServeError;
use crate::faults::{FailReason, FailedRequest};
use crate::health::CardHealth;
use crate::request::{CapacityClass, Priority, ServeRequest, ServeResponse};
use crate::scheduler::Batch;
use crate::sketch::{LatencySketch, StreamMetrics};
use crate::source::{SourceState, WorkloadSource};
use protea_core::{Accelerator, CoreError, FaultKind, RuntimeConfig};
use protea_hwsim::{Cycles, EventQueue, Fnv64};
use std::collections::BTreeMap;
use std::fmt;
use std::str::FromStr;

const HEADER_V1: &str = "protea-fleet-snapshot v1";
const HEADER_V2: &str = "protea-fleet-snapshot v2";
const HEADER_V3: &str = "protea-fleet-snapshot v3";
const HEADER_V4: &str = "protea-fleet-snapshot v4";

fn snap_err(msg: impl Into<String>) -> ServeError {
    ServeError::Snapshot { msg: msg.into() }
}

fn integrity_err(msg: impl Into<String>) -> ServeError {
    ServeError::SnapshotIntegrity { msg: msg.into() }
}

/// The fleet config digest a snapshot pins. A v3 snapshot digests the
/// config's full debug form (which covers every field, including the
/// SDC knobs). A v2 snapshot digests only the fourteen fields that
/// existed before the SDC era, and a v1 snapshot only the nine
/// pre-elastic ones — each in its historical order, so snapshots taken
/// by older builds keep verifying against configs whose newer knobs
/// are all at rest.
fn config_digest(config: &FleetConfig, version: u8) -> u64 {
    match version {
        3 | 4 => Fnv64::hash(format!("{config:?}").as_bytes()),
        2 => elastic_config_digest(config),
        _ => legacy_config_digest(config),
    }
}

fn elastic_config_digest(c: &FleetConfig) -> u64 {
    // Same shadow-struct trick as `legacy_config_digest`, over the
    // fourteen fields the elastic-era config had — so pre-SDC v2
    // snapshots (and their pinned state hashes) keep verifying.
    #[derive(Debug)]
    #[allow(dead_code)]
    struct FleetConfig<A, B, C, D, E, F, G, H, I, J, K, L, M, N> {
        cards: A,
        synthesis: B,
        device: C,
        policy: D,
        functional: E,
        reload_gbps: F,
        faults: G,
        overload: H,
        timing_memo: I,
        roster: J,
        placement: K,
        churn: L,
        tenants: M,
        brownout: N,
    }
    let shadow = FleetConfig {
        cards: &c.cards,
        synthesis: &c.synthesis,
        device: &c.device,
        policy: &c.policy,
        functional: &c.functional,
        reload_gbps: &c.reload_gbps,
        faults: &c.faults,
        overload: &c.overload,
        timing_memo: &c.timing_memo,
        roster: &c.roster,
        placement: &c.placement,
        churn: &c.churn,
        tenants: &c.tenants,
        brownout: &c.brownout,
    };
    Fnv64::hash(format!("{shadow:?}").as_bytes())
}

fn legacy_config_digest(c: &FleetConfig) -> u64 {
    // `Debug` for `&T` forwards to `T`, and a derived `Debug` prints the
    // struct's own name — so this shadow reproduces the pre-elastic
    // config's debug output byte-for-byte without cloning anything.
    #[derive(Debug)]
    #[allow(dead_code)]
    struct FleetConfig<A, B, C, D, E, F, G, H, I> {
        cards: A,
        synthesis: B,
        device: C,
        policy: D,
        functional: E,
        reload_gbps: F,
        faults: G,
        overload: H,
        timing_memo: I,
    }
    let shadow = FleetConfig {
        cards: &c.cards,
        synthesis: &c.synthesis,
        device: &c.device,
        policy: &c.policy,
        functional: &c.functional,
        reload_gbps: &c.reload_gbps,
        faults: &c.faults,
        overload: &c.overload,
        timing_memo: &c.timing_memo,
    };
    Fnv64::hash(format!("{shadow:?}").as_bytes())
}

fn opt_u64(v: Option<u64>) -> String {
    v.map_or_else(|| "-".into(), |x| x.to_string())
}

fn kind_code(k: FaultKind) -> u64 {
    match k {
        FaultKind::EccSingle => 0,
        FaultKind::EccDouble => 1,
        FaultKind::AxiStall => 2,
        FaultKind::AxiTimeout => 3,
        FaultKind::CardCrash => 4,
        FaultKind::SilentCorrupt => 5,
    }
}

fn kind_from(code: u64) -> Result<FaultKind, ServeError> {
    Ok(match code {
        0 => FaultKind::EccSingle,
        1 => FaultKind::EccDouble,
        2 => FaultKind::AxiStall,
        3 => FaultKind::AxiTimeout,
        4 => FaultKind::CardCrash,
        5 => FaultKind::SilentCorrupt,
        _ => return Err(snap_err(format!("unknown fault kind code {code}"))),
    })
}

fn health_code(h: CardHealth) -> u64 {
    match h {
        CardHealth::Healthy => 0,
        CardHealth::Degraded => 1,
        CardHealth::Dead => 2,
    }
}

fn health_from(code: u64) -> Result<CardHealth, ServeError> {
    Ok(match code {
        0 => CardHealth::Healthy,
        1 => CardHealth::Degraded,
        2 => CardHealth::Dead,
        _ => return Err(snap_err(format!("unknown card health code {code}"))),
    })
}

fn req_tokens(r: &ServeRequest, version: u8) -> String {
    let mut line = format!(
        "{} {} {} {} {} {} {} {}",
        r.id,
        r.arrival_ns,
        r.d_model,
        r.heads,
        r.layers,
        r.seq_len,
        r.priority.index(),
        opt_u64(r.deadline_ns)
    );
    if version >= 2 {
        line.push_str(&format!(" {}", r.tenant));
    }
    if version >= 4 {
        line.push_str(&format!(" {} {}", r.decode_steps, opt_u64(r.token_deadline_ns)));
    }
    line
}

fn event_tokens(ev: &FleetEvent, version: u8) -> String {
    match ev {
        FleetEvent::Arrival(r) => format!("A {}", req_tokens(r, version)),
        FleetEvent::Crash { card } => format!("X {card}"),
        FleetEvent::Free { card } => format!("F {card}"),
        FleetEvent::Complete { card, epoch, start_ns } => format!("C {card} {epoch} {start_ns}"),
        FleetEvent::Fail { card, epoch, kind } => {
            format!("L {card} {epoch} {}", kind_code(*kind))
        }
        FleetEvent::Hedge { card, seq } => format!("H {card} {seq}"),
        FleetEvent::Join { card } => format!("J {card}"),
        FleetEvent::Drain { card } => format!("D {card}"),
        FleetEvent::Scrub => "S".into(),
        FleetEvent::Requalify { card, epoch } => format!("Q {card} {epoch}"),
        FleetEvent::Generate { card, epoch } => format!("G {card} {epoch}"),
        FleetEvent::Wake => "W".into(),
    }
}

fn reason_tokens(r: &FailReason) -> String {
    match r {
        FailReason::RetriesExhausted { last } => format!("retries {}", kind_code(*last)),
        FailReason::AllCardsDead => "dead".into(),
        FailReason::Shed => "shed".into(),
        FailReason::DeadlineExpired => "expired".into(),
        FailReason::RetryBudgetExhausted { last } => format!("budget {}", kind_code(*last)),
        FailReason::Brownout => "brownout".into(),
    }
}

fn sketch_line(tag: &str, s: &LatencySketch) -> String {
    let (zeros, pairs, count, max) = s.export();
    let mut line = format!("{tag} {zeros} {count} {} {}", max.to_bits(), pairs.len());
    for (bin, n) in pairs {
        line.push_str(&format!(" {bin} {n}"));
    }
    line
}

// ---------------------------------------------------------------------
// Token cursor for parsing the canonical body
// ---------------------------------------------------------------------

struct Cursor<'a> {
    lines: &'a [String],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(lines: &'a [String]) -> Self {
        Self { lines, pos: 0 }
    }

    /// The next line's tokens, which must start with `tag`; returns the
    /// remaining tokens.
    fn expect(&mut self, tag: &str) -> Result<Vec<&'a str>, ServeError> {
        let line = self
            .lines
            .get(self.pos)
            .ok_or_else(|| snap_err(format!("truncated snapshot: expected `{tag}` line")))?;
        self.pos += 1;
        let mut toks = line.split_whitespace();
        match toks.next() {
            Some(t) if t == tag => Ok(toks.collect()),
            got => Err(snap_err(format!("expected `{tag}` line, got `{}`", got.unwrap_or("")))),
        }
    }
}

fn pu64(tok: Option<&&str>, what: &str) -> Result<u64, ServeError> {
    tok.ok_or_else(|| snap_err(format!("missing {what}")))?
        .parse()
        .map_err(|_| snap_err(format!("malformed {what}")))
}

fn pusize(tok: Option<&&str>, what: &str) -> Result<usize, ServeError> {
    Ok(pu64(tok, what)? as usize)
}

fn pbool(tok: Option<&&str>, what: &str) -> Result<bool, ServeError> {
    match pu64(tok, what)? {
        0 => Ok(false),
        1 => Ok(true),
        v => Err(snap_err(format!("{what} must be 0 or 1, got {v}"))),
    }
}

fn popt(tok: Option<&&str>, what: &str) -> Result<Option<u64>, ServeError> {
    match tok {
        Some(&"-") => Ok(None),
        other => Ok(Some(pu64(other, what)?)),
    }
}

fn parse_request(toks: &[&str], version: u8) -> Result<ServeRequest, ServeError> {
    let want = match version {
        0..=1 => 8,
        2..=3 => 9,
        _ => 11,
    };
    if toks.len() != want {
        return Err(snap_err(format!("request wants {want} tokens, got {}", toks.len())));
    }
    let mut it = toks.iter();
    let (id, arrival_ns) = (pu64(it.next(), "request id")?, pu64(it.next(), "arrival")?);
    let d_model = pusize(it.next(), "d_model")?;
    let heads = pusize(it.next(), "heads")?;
    let layers = pusize(it.next(), "layers")?;
    let seq_len = pusize(it.next(), "seq_len")?;
    let prio = pusize(it.next(), "priority")?;
    let priority = *Priority::ALL
        .get(prio)
        .ok_or_else(|| snap_err(format!("unknown priority index {prio}")))?;
    let deadline_ns = popt(it.next(), "deadline")?;
    let tenant = if version >= 2 { pu64(it.next(), "tenant")? as u32 } else { 0 };
    let decode_steps = if version >= 4 { pu64(it.next(), "decode_steps")? as u32 } else { 0 };
    let token_deadline_ns = if version >= 4 { popt(it.next(), "token deadline")? } else { None };
    Ok(ServeRequest {
        id,
        arrival_ns,
        d_model,
        heads,
        layers,
        seq_len,
        priority,
        deadline_ns,
        tenant,
        decode_steps,
        token_deadline_ns,
    })
}

fn parse_event(toks: &[&str], version: u8) -> Result<FleetEvent, ServeError> {
    let (tag, rest) = toks.split_first().ok_or_else(|| snap_err("empty event"))?;
    let mut it = rest.iter();
    Ok(match *tag {
        "A" => FleetEvent::Arrival(parse_request(rest, version)?),
        "X" => FleetEvent::Crash { card: pusize(it.next(), "crash card")? },
        "F" => FleetEvent::Free { card: pusize(it.next(), "free card")? },
        "C" => FleetEvent::Complete {
            card: pusize(it.next(), "complete card")?,
            epoch: pu64(it.next(), "complete epoch")?,
            start_ns: pu64(it.next(), "complete start")?,
        },
        "L" => FleetEvent::Fail {
            card: pusize(it.next(), "fail card")?,
            epoch: pu64(it.next(), "fail epoch")?,
            kind: kind_from(pu64(it.next(), "fail kind")?)?,
        },
        "H" => FleetEvent::Hedge {
            card: pusize(it.next(), "hedge card")?,
            seq: pu64(it.next(), "hedge seq")?,
        },
        "J" => FleetEvent::Join { card: pusize(it.next(), "join card")? },
        "D" => FleetEvent::Drain { card: pusize(it.next(), "drain card")? },
        "S" => FleetEvent::Scrub,
        "Q" => FleetEvent::Requalify {
            card: pusize(it.next(), "requalify card")?,
            epoch: pu64(it.next(), "requalify epoch")?,
        },
        "G" => FleetEvent::Generate {
            card: pusize(it.next(), "generate card")?,
            epoch: pu64(it.next(), "generate epoch")?,
        },
        "W" => FleetEvent::Wake,
        other => return Err(snap_err(format!("unknown event tag `{other}`"))),
    })
}

fn parse_reason(toks: &[&str]) -> Result<FailReason, ServeError> {
    let (tag, rest) = toks.split_first().ok_or_else(|| snap_err("empty fail reason"))?;
    Ok(match *tag {
        "retries" => {
            FailReason::RetriesExhausted { last: kind_from(pu64(rest.first(), "fault kind")?)? }
        }
        "dead" => FailReason::AllCardsDead,
        "shed" => FailReason::Shed,
        "expired" => FailReason::DeadlineExpired,
        "budget" => {
            FailReason::RetryBudgetExhausted { last: kind_from(pu64(rest.first(), "fault kind")?)? }
        }
        "brownout" => FailReason::Brownout,
        other => return Err(snap_err(format!("unknown fail reason `{other}`"))),
    })
}

fn parse_sketch(toks: &[&str]) -> Result<LatencySketch, ServeError> {
    let mut it = toks.iter();
    let zeros = pu64(it.next(), "sketch zeros")?;
    let count = pu64(it.next(), "sketch count")?;
    let max = f64::from_bits(pu64(it.next(), "sketch max")?);
    let npairs = pusize(it.next(), "sketch pair count")?;
    let mut pairs = Vec::with_capacity(npairs);
    for _ in 0..npairs {
        let bin = pusize(it.next(), "sketch bin")?;
        let n = pu64(it.next(), "sketch bin count")?;
        pairs.push((bin, n));
    }
    Ok(LatencySketch::import(zeros, &pairs, count, max))
}

// ---------------------------------------------------------------------
// The snapshot itself
// ---------------------------------------------------------------------

/// A captured, restorable fleet state (see the module docs for the
/// format and integrity guarantees).
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSnapshot {
    /// Canonical body lines, without the `hash` trailer.
    body: Vec<String>,
    /// FNV-1a over the body joined with `\n`.
    hash: u64,
    /// Arrivals processed when captured (the snapshot's epoch).
    arrivals: u64,
    /// Grammar version (1 through 4), read from the header line.
    version: u8,
}

impl FleetSnapshot {
    /// The FNV-1a state hash: equal hashes mean bit-identical fleet
    /// states (pending events, queues, cards, metrics, RNG positions,
    /// and source cursor all included).
    #[must_use]
    pub fn state_hash(&self) -> u64 {
        self.hash
    }

    /// How many arrivals the captured run had processed — the
    /// snapshot's position on the workload.
    #[must_use]
    pub fn arrivals(&self) -> u64 {
        self.arrivals
    }

    /// The snapshot grammar version: 1 for classic fleets, 2 once the
    /// elastic machinery (roster, churn, tenants, brownout) is visible,
    /// 3 once the SDC defense is armed, 4 once autoregressive decode
    /// traffic or mid-generation session state is visible.
    #[must_use]
    pub fn version(&self) -> u8 {
        self.version
    }

    fn seal(body: Vec<String>, arrivals: u64) -> Self {
        let hash = Fnv64::hash(body.join("\n").as_bytes());
        let version = match body.first().map(String::as_str) {
            Some(h) if h == HEADER_V4 => 4,
            Some(h) if h == HEADER_V3 => 3,
            Some(h) if h == HEADER_V2 => 2,
            _ => 1,
        };
        Self { body, hash, arrivals, version }
    }

    /// Parse the canonical text form, verifying the version header and
    /// the integrity hash.
    ///
    /// # Errors
    /// [`ServeError::SnapshotIntegrity`] on an unknown header, a
    /// missing or malformed `hash` trailer, or a body that does not
    /// re-hash to the trailer — the file is untrusted input.
    /// [`ServeError::Snapshot`] on structural problems inside a sealed
    /// body (e.g. a malformed `arrivals` line).
    pub fn parse(text: &str) -> Result<Self, ServeError> {
        let mut body: Vec<String> =
            text.lines().map(str::to_owned).filter(|l| !l.trim().is_empty()).collect();
        let trailer = body.pop().ok_or_else(|| integrity_err("empty snapshot"))?;
        let stated = trailer
            .strip_prefix("hash ")
            .ok_or_else(|| integrity_err("snapshot does not end with a `hash` trailer"))?;
        let stated = u64::from_str_radix(stated.trim(), 16)
            .map_err(|_| integrity_err("malformed hash trailer"))?;
        let version = match body.first().map(String::as_str) {
            Some(h) if h == HEADER_V1 => 1,
            Some(h) if h == HEADER_V2 => 2,
            Some(h) if h == HEADER_V3 => 3,
            Some(h) if h == HEADER_V4 => 4,
            got => {
                return Err(integrity_err(format!(
                    "unsupported snapshot header `{}` (want `{HEADER_V1}`, `{HEADER_V2}`, \
                     `{HEADER_V3}`, or `{HEADER_V4}`)",
                    got.unwrap_or("")
                )))
            }
        };
        let computed = Fnv64::hash(body.join("\n").as_bytes());
        if computed != stated {
            return Err(integrity_err(format!(
                "hash mismatch: body hashes to {computed:016x}, trailer says {stated:016x}"
            )));
        }
        let arrivals = body
            .iter()
            .find_map(|l| l.strip_prefix("arrivals "))
            .ok_or_else(|| snap_err("snapshot has no arrivals line"))?
            .parse()
            .map_err(|_| snap_err("malformed arrivals line"))?;
        Ok(Self { body, hash: computed, arrivals, version })
    }

    /// Capture the complete state of a mid-run (or finished) simulation.
    pub(super) fn capture(
        config: &FleetConfig,
        q: &EventQueue<FleetEvent>,
        m: &SimModel,
        source: &dyn WorkloadSource,
        arrivals: u64,
        managed: bool,
        sketch: bool,
    ) -> Self {
        let events = q.sorted_events();
        let rows = m.scheduler.export_queues();
        let srows = m.scheduler.export_session_queues();
        // v4 once generation is visible: live or finished session state,
        // or a decode request still pending as an arrival (a pre-v4
        // grammar would silently drop its decode_steps on restore and
        // the resumed run would diverge from the uninterrupted one).
        // v3 only when the SDC defense is armed; v2 only when the
        // elastic machinery is visible: an elastic config, or traffic
        // already tagged with a nonzero tenant id anywhere the snapshot
        // will store a request. Classic fleets keep emitting
        // byte-identical v1 snapshots, elastic-but-undefended fleets
        // byte-identical v2 ones.
        let v4 = m.sessions.is_some()
            || events
                .iter()
                .any(|(_, _, ev)| matches!(ev, FleetEvent::Arrival(r) if r.is_decode()));
        let sdc = m.faulty.as_ref().is_some_and(|f| f.sdc.is_some());
        let v2 = sdc
            || config.elastic_active()
            || events
                .iter()
                .any(|(_, _, ev)| matches!(ev, FleetEvent::Arrival(r) if r.tenant != 0))
            || rows.iter().any(|(_, _, reqs)| reqs.iter().any(|r| r.tenant != 0))
            || m.faulty.as_ref().is_some_and(|f| {
                f.tenants.keys().any(|&t| t != 0)
                    || f.inflight
                        .iter()
                        .flatten()
                        .any(|i| i.batch.requests.iter().any(|r| r.tenant != 0))
            });
        let version = if v4 {
            4
        } else if sdc {
            3
        } else if v2 {
            2
        } else {
            1
        };
        let mut w: Vec<String> = Vec::new();
        w.push(
            match version {
                4 => HEADER_V4,
                3 => HEADER_V3,
                2 => HEADER_V2,
                _ => HEADER_V1,
            }
            .into(),
        );
        w.push(format!("config {:016x}", config_digest(config, version)));
        let cursor = source.state();
        let mut line = format!("source {}", source.kind());
        for word in &cursor.words {
            line.push_str(&format!(" {word}"));
        }
        w.push(line);
        w.push(format!("managed {}", u64::from(managed)));
        w.push(format!("sketch {}", u64::from(sketch)));
        w.push(format!("time {}", q.now().get()));
        w.push(format!("arrivals {arrivals}"));
        w.push(format!("counters {} {} {}", m.ops_total, m.batches, m.reprograms));
        w.push(format!("next_flush {}", opt_u64(m.next_flush)));
        w.push(format!("events {}", events.len()));
        for (t, rank, ev) in &events {
            w.push(format!("event {} {rank} {}", t.get(), event_tokens(ev, version)));
        }
        w.push(format!("queues {}", rows.len()));
        for (class, padded_seq_len, requests) in &rows {
            w.push(format!(
                "queue {} {} {} {padded_seq_len} {}",
                class.d_model,
                class.heads,
                class.layers,
                requests.len()
            ));
            for r in requests {
                w.push(format!("req {}", req_tokens(r, version)));
            }
        }
        w.push(format!("cards {}", m.cards.len()));
        for c in &m.cards {
            match c.loaded_class {
                Some(cl) => w.push(format!(
                    "card {} {} {} {} {}",
                    u64::from(c.busy),
                    c.busy_ns,
                    cl.d_model,
                    cl.heads,
                    cl.layers
                )),
                None => w.push(format!("card {} {} -", u64::from(c.busy), c.busy_ns)),
            }
        }
        match &m.metrics {
            MetricsAccum::Exact(responses) => {
                w.push(format!("metrics exact {}", responses.len()));
                for r in responses {
                    w.push(format!(
                        "resp {} {} {} {} {} {} {}",
                        r.id,
                        r.arrival_ns,
                        r.start_ns,
                        r.finish_ns,
                        r.card,
                        r.batch_size,
                        r.padded_seq_len
                    ));
                }
            }
            MetricsAccum::Sketch(sm) => {
                w.push(format!("metrics sketch {} {}", sm.completed(), sm.max_finish_ns()));
                let (lat, que) = sm.sketches();
                w.push(sketch_line("lsk", lat));
                w.push(sketch_line("qsk", que));
            }
        }
        match &m.memo {
            Some(memo) => {
                let keys: Vec<_> = memo.keys().collect();
                w.push(format!("memo 1 {} {} {}", memo.hits(), memo.misses(), keys.len()));
                for k in keys {
                    w.push(format!(
                        "key {} {} {} {} {} {}",
                        k.heads,
                        k.layers,
                        k.d_model,
                        k.seq_len,
                        k.batch,
                        u64::from(k.overlap)
                    ));
                }
            }
            None => w.push("memo 0 0 0 0".into()),
        }
        match &m.faulty {
            None => w.push("faults 0".into()),
            Some(f) => capture_faults(&mut w, f, version, sdc),
        }
        if version >= 4 {
            capture_sessions(&mut w, m, &srows, version);
        }
        Self::seal(w, arrivals)
    }

    /// Rebuild the simulation this snapshot captured: validate the
    /// config digest and source kind, seek the source, reconstruct the
    /// model and event queue, and verify the restored state re-hashes
    /// to this snapshot's hash.
    pub(super) fn apply(
        &self,
        config: &FleetConfig,
        managed: bool,
        sketch: bool,
        source: &mut dyn WorkloadSource,
    ) -> Result<(EventQueue<FleetEvent>, SimModel, u64), ServeError> {
        let mut c = Cursor::new(&self.body);
        let v2 = self.version >= 2;
        let v3 = self.version >= 3;
        // A v3 body always carries the SDC block; a v4 body carries it
        // exactly when the (digest-pinned) config arms the defense.
        let sdc = self.version == 3 || (self.version >= 4 && config.sdc_active());
        if !v2 && config.elastic_active() {
            return Err(snap_err(
                "v1 snapshot cannot resume under an elastic fleet config \
                 (roster/placement/churn/tenant/brownout knobs are set)",
            ));
        }
        if !v3 && config.sdc_active() {
            return Err(snap_err(
                "pre-v3 snapshot cannot resume under an SDC-armed fleet config \
                 (its grammar carries no corruption-stream or quarantine state)",
            ));
        }
        c.pos = 1;
        let digest = self.read_digest(&mut c)?;
        let want = config_digest(config, self.version);
        if digest != want {
            return Err(snap_err(format!(
                "snapshot was captured under a different fleet config \
                 (digest {digest:016x}, this fleet is {want:016x})"
            )));
        }
        let toks = c.expect("source")?;
        let (kind, words) =
            toks.split_first().ok_or_else(|| snap_err("source line missing kind"))?;
        if *kind != source.kind() {
            return Err(snap_err(format!(
                "snapshot records a `{kind}` source, resume supplied `{}`",
                source.kind()
            )));
        }
        let words = words
            .iter()
            .map(|t| pu64(Some(t), "source state word"))
            .collect::<Result<Vec<u64>, _>>()?;
        source.restore(&SourceState { words })?;
        let snap_managed = pbool(c.expect("managed")?.first(), "managed flag")?;
        if snap_managed != managed {
            return Err(snap_err(
                "snapshot was captured under a different managed mode \
                 (fault/overload/deadline knobs changed)",
            ));
        }
        let snap_sketch = pbool(c.expect("sketch")?.first(), "sketch flag")?;
        if snap_sketch != sketch {
            return Err(snap_err("snapshot was captured under a different metrics mode"));
        }
        let time = pu64(c.expect("time")?.first(), "time")?;
        let arrivals = pu64(c.expect("arrivals")?.first(), "arrivals")?;
        let counters = c.expect("counters")?;
        let mut model = SimModel::build(config, managed, false, sketch)?;
        model.ops_total = pu64(counters.first(), "ops_total")?;
        model.batches = pu64(counters.get(1), "batches")?;
        model.reprograms = pu64(counters.get(2), "reprograms")?;
        model.next_flush = popt(c.expect("next_flush")?.first(), "next_flush")?;

        let mut q = EventQueue::new();
        q.set_now(Cycles(time));
        let n_events = pusize(c.expect("events")?.first(), "event count")?;
        for _ in 0..n_events {
            let toks = c.expect("event")?;
            let t = pu64(toks.first(), "event time")?;
            let rank = pu64(toks.get(1), "event rank")? as u8;
            if t < time {
                return Err(snap_err(format!(
                    "pending event at {t} ns predates the snapshot clock {time} ns"
                )));
            }
            q.push(Cycles(t), rank, parse_event(&toks[2..], self.version)?);
        }

        let n_queues = pusize(c.expect("queues")?.first(), "queue count")?;
        let mut rows = Vec::with_capacity(n_queues);
        for _ in 0..n_queues {
            let toks = c.expect("queue")?;
            let class = CapacityClass {
                d_model: pusize(toks.first(), "queue d_model")?,
                heads: pusize(toks.get(1), "queue heads")?,
                layers: pusize(toks.get(2), "queue layers")?,
            };
            let padded = pusize(toks.get(3), "queue padded_seq_len")?;
            let k = pusize(toks.get(4), "queue length")?;
            let mut requests = Vec::with_capacity(k);
            for _ in 0..k {
                requests.push(parse_request(&c.expect("req")?, self.version)?);
            }
            rows.push((class, padded, requests));
        }
        model.scheduler.import_queues(rows);

        let n_cards = pusize(c.expect("cards")?.first(), "card count")?;
        if n_cards != model.cards.len() {
            return Err(snap_err(format!(
                "snapshot has {n_cards} cards, fleet has {}",
                model.cards.len()
            )));
        }
        for i in 0..n_cards {
            let toks = c.expect("card")?;
            let busy = pbool(toks.first(), "card busy")?;
            let busy_ns = pu64(toks.get(1), "card busy_ns")?;
            let class = match toks.get(2) {
                Some(&"-") => None,
                some => Some(CapacityClass {
                    d_model: pusize(some, "card class d_model")?,
                    heads: pusize(toks.get(3), "card class heads")?,
                    layers: pusize(toks.get(4), "card class layers")?,
                }),
            };
            if let Some(cl) = class {
                if model.functional {
                    // Functional dispatch on a warm card executes with
                    // the loaded weights — re-image them for real.
                    let weights = model.weights_for(cl).clone();
                    let card = &mut model.cards[i];
                    card.accel
                        .program(RuntimeConfig {
                            heads: cl.heads,
                            layers: cl.layers,
                            d_model: cl.d_model,
                            seq_len: 8,
                        })
                        .map_err(CoreError::from)?;
                    card.accel.try_load_weights(weights)?;
                }
                model.cards[i].loaded_class = Some(cl);
            }
            model.cards[i].busy = busy;
            model.cards[i].busy_ns = busy_ns;
        }

        let toks = c.expect("metrics")?;
        match (toks.first(), sketch) {
            (Some(&"exact"), false) => {
                let n = pusize(toks.get(1), "response count")?;
                let mut responses = Vec::with_capacity(n);
                for _ in 0..n {
                    let toks = c.expect("resp")?;
                    responses.push(ServeResponse {
                        id: pu64(toks.first(), "resp id")?,
                        arrival_ns: pu64(toks.get(1), "resp arrival")?,
                        start_ns: pu64(toks.get(2), "resp start")?,
                        finish_ns: pu64(toks.get(3), "resp finish")?,
                        card: pusize(toks.get(4), "resp card")?,
                        batch_size: pusize(toks.get(5), "resp batch_size")?,
                        padded_seq_len: pusize(toks.get(6), "resp padded_seq_len")?,
                    });
                }
                model.metrics = MetricsAccum::Exact(responses);
            }
            (Some(&"sketch"), true) => {
                let completed = pu64(toks.get(1), "completed")?;
                let max_finish_ns = pu64(toks.get(2), "max_finish_ns")?;
                let lat = parse_sketch(&c.expect("lsk")?)?;
                let que = parse_sketch(&c.expect("qsk")?)?;
                model.metrics = MetricsAccum::Sketch(StreamMetrics::from_parts(
                    completed,
                    max_finish_ns,
                    lat,
                    que,
                ));
            }
            (tag, _) => {
                return Err(snap_err(format!(
                    "metrics mode `{}` does not match the plan",
                    tag.unwrap_or(&"")
                )))
            }
        }

        let toks = c.expect("memo")?;
        let present = pbool(toks.first(), "memo flag")?;
        if present != model.memo.is_some() {
            return Err(snap_err("snapshot memo presence does not match the fleet config"));
        }
        let hits = pu64(toks.get(1), "memo hits")?;
        let misses = pu64(toks.get(2), "memo misses")?;
        let n_keys = pusize(toks.get(3), "memo key count")?;
        if present {
            // Reports are a pure function of their key: reprice each
            // stored key on a scratch card instead of serializing the
            // CycleReports, then restore the true traffic counters.
            // The memo only exists on a uniform roster, so slot 0's
            // device prices every key the fleet could have cached.
            let mut scratch = Accelerator::try_new(config.synthesis, &config.resolved_roster()[0])?;
            for _ in 0..n_keys {
                let toks = c.expect("key")?;
                scratch
                    .program(RuntimeConfig {
                        heads: pusize(toks.first(), "key heads")?,
                        layers: pusize(toks.get(1), "key layers")?,
                        d_model: pusize(toks.get(2), "key d_model")?,
                        seq_len: pusize(toks.get(3), "key seq_len")?,
                    })
                    .map_err(CoreError::from)?;
                let batch = pusize(toks.get(4), "key batch")?;
                let memo = model.memo.as_mut().expect("presence checked");
                let _ = memo.report(&scratch, batch);
            }
            model.memo.as_mut().expect("presence checked").set_counters(hits, misses);
        }

        let have_faults = pbool(c.expect("faults")?.first(), "faults flag")?;
        if have_faults != model.faulty.is_some() {
            return Err(snap_err("snapshot fault state does not match the managed mode"));
        }
        if have_faults {
            restore_faults(&mut c, &mut model, self.version, sdc)?;
        }
        if self.version >= 4 {
            restore_sessions(&mut c, &mut model)?;
        }

        // Self-check: the restored state must re-hash to exactly this
        // snapshot — anything less means the resumed run would diverge.
        let recap = Self::capture(config, &q, &model, &*source, arrivals, managed, sketch);
        if recap.hash != self.hash {
            return Err(snap_err(
                "restored state does not reproduce the snapshot hash (internal inconsistency)",
            ));
        }
        Ok((q, model, arrivals))
    }

    fn read_digest(&self, c: &mut Cursor<'_>) -> Result<u64, ServeError> {
        let toks = c.expect("config")?;
        let hex = toks.first().ok_or_else(|| snap_err("config line missing digest"))?;
        u64::from_str_radix(hex, 16).map_err(|_| snap_err("malformed config digest"))
    }
}

fn capture_faults(w: &mut Vec<String>, f: &FaultState, version: u8, sdc: bool) {
    w.push("faults 1".into());
    w.push(format!("f.submitted {}", f.submitted));
    w.push(format!("f.trackdl {}", u64::from(f.track_deadlines)));
    w.push(format!("f.batchseq {}", f.batch_seq));
    w.push(format!("f.hedges {} {} {}", f.hedges, f.hedge_wins, f.hedge_cancels));
    w.push(format!("f.retried {}", f.retried));
    w.push(format!("f.crashes {}", f.crashes));
    let s = &f.stats;
    w.push(format!(
        "f.stats {} {} {} {} {} {} {} {}",
        s.ecc_single,
        s.ecc_double,
        s.stalls,
        s.watchdog_trips,
        s.retries,
        s.stall_cycles,
        s.recovery_cycles,
        s.abort_cycles
    ));
    w.push(format!(
        "f.prio {} {} {} {} {} {} {} {} {} {}",
        f.prio_submitted[0],
        f.prio_submitted[1],
        f.prio_submitted[2],
        f.prio_completed[0],
        f.prio_completed[1],
        f.prio_completed[2],
        f.prio_good[0],
        f.prio_good[1],
        f.prio_good[2],
        f.good_completions
    ));
    w.push(format!("f.breaker_wake {}", opt_u64(f.breaker_wake)));
    w.push(format!("f.deadline_wake {}", opt_u64(f.deadline_wake)));
    for stream in &f.streams {
        let (rng, next_scripted) = stream.state();
        w.push(format!("stream {rng} {next_scripted}"));
    }
    for mon in &f.monitors {
        let (health, consecutive, total, open) = mon.export_state();
        w.push(format!("monitor {} {consecutive} {total} {}", health_code(health), opt_u64(open)));
    }
    let mut line = String::from("epochs");
    for e in &f.epochs {
        line.push_str(&format!(" {e}"));
    }
    w.push(line);
    for slot in &f.inflight {
        match slot {
            None => w.push("inflight -".into()),
            Some(i) => {
                let rt = i.batch.runtime;
                w.push(format!(
                    "inflight {} {} {} {} {} {} {} {} {}",
                    i.seq,
                    i.resolve_ns,
                    u64::from(i.is_hedge),
                    i.partner.map_or_else(|| "-".into(), |p| p.to_string()),
                    rt.heads,
                    rt.layers,
                    rt.d_model,
                    rt.seq_len,
                    i.batch.requests.len()
                ));
                for r in &i.batch.requests {
                    w.push(format!("req {}", req_tokens(r, version)));
                }
            }
        }
    }
    w.push(format!("attempts {}", f.attempts.len()));
    for (id, n) in &f.attempts {
        w.push(format!("att {id} {n}"));
    }
    for (tag, list) in [("failed", &f.failed), ("shed", &f.shed), ("expired", &f.expired)] {
        w.push(format!("{tag} {}", list.len()));
        for fr in list {
            w.push(format!("fr {} {}", fr.id, reason_tokens(&fr.reason)));
        }
    }
    w.push(format!(
        "limiter {}",
        f.limiter.as_ref().map_or_else(|| "-".into(), |l| l.raw_limit().to_bits().to_string())
    ));
    w.push(format!(
        "budget {}",
        f.retry_budget.as_ref().map_or_else(|| "-".into(), |b| b.milli().to_string())
    ));
    let svc = f.svc.export();
    let mut line = format!("svc {}", svc.len());
    for v in svc {
        line.push_str(&format!(" {v}"));
    }
    w.push(line);
    if version >= 2 {
        let mut line = String::from("f.present");
        for p in &f.present {
            line.push_str(&format!(" {}", u64::from(*p)));
        }
        w.push(line);
        let mut line = String::from("f.draining");
        for d in &f.draining {
            line.push_str(&format!(" {}", u64::from(*d)));
        }
        w.push(line);
        w.push(format!("f.pending_joins {}", f.pending_joins));
        w.push(format!("f.churn {} {}", f.joins, f.drains));
        w.push(format!("tenants {}", f.tenants.len()));
        for (t, l) in &f.tenants {
            w.push(format!(
                "tenant {t} {} {} {} {} {} {}",
                l.submitted, l.completed, l.shed, l.expired, l.failed, l.good
            ));
        }
    }
    if sdc {
        let s = f.sdc.as_ref().expect("the SDC block is only emitted with SDC state");
        w.push(format!(
            "s.counters {} {} {} {} {}",
            s.injected, s.detected, s.missed, s.re_execs, s.scrubs
        ));
        w.push(format!("s.scrub_armed {}", opt_u64(s.scrub_armed)));
        for stream in &s.streams {
            let (rng, next_scripted) = stream.state();
            w.push(format!("sstream {rng} {next_scripted}"));
        }
        let mut line = String::from("s.quarantined");
        for q in &s.quarantined {
            line.push_str(&format!(" {}", u64::from(*q)));
        }
        w.push(line);
        let mut line = String::from("s.dirty");
        for d in &s.dirty {
            line.push_str(&format!(" {d}"));
        }
        w.push(line);
        let mut line = String::from("s.pending");
        for p in &s.pending {
            match p {
                None => line.push_str(" -"),
                Some(covered) => line.push_str(&format!(" {}", u64::from(*covered))),
            }
        }
        w.push(line);
        let mut line = format!("s.reexec {}", s.reexec.len());
        for seq in &s.reexec {
            line.push_str(&format!(" {seq}"));
        }
        w.push(line);
    }
}

fn restore_faults(
    c: &mut Cursor<'_>,
    model: &mut SimModel,
    version: u8,
    sdc: bool,
) -> Result<(), ServeError> {
    let cards = model.cards.len();
    let f = model.faulty.as_mut().expect("managed model has fault state");
    f.submitted = pusize(c.expect("f.submitted")?.first(), "submitted")?;
    f.track_deadlines = pbool(c.expect("f.trackdl")?.first(), "track_deadlines")?;
    f.batch_seq = pu64(c.expect("f.batchseq")?.first(), "batch_seq")?;
    let toks = c.expect("f.hedges")?;
    f.hedges = pu64(toks.first(), "hedges")?;
    f.hedge_wins = pu64(toks.get(1), "hedge_wins")?;
    f.hedge_cancels = pu64(toks.get(2), "hedge_cancels")?;
    f.retried = pu64(c.expect("f.retried")?.first(), "retried")?;
    f.crashes = pu64(c.expect("f.crashes")?.first(), "crashes")?;
    let toks = c.expect("f.stats")?;
    f.stats.ecc_single = pu64(toks.first(), "ecc_single")?;
    f.stats.ecc_double = pu64(toks.get(1), "ecc_double")?;
    f.stats.stalls = pu64(toks.get(2), "stalls")?;
    f.stats.watchdog_trips = pu64(toks.get(3), "watchdog_trips")?;
    f.stats.retries = pu64(toks.get(4), "retries")?;
    f.stats.stall_cycles = pu64(toks.get(5), "stall_cycles")?;
    f.stats.recovery_cycles = pu64(toks.get(6), "recovery_cycles")?;
    f.stats.abort_cycles = pu64(toks.get(7), "abort_cycles")?;
    let toks = c.expect("f.prio")?;
    for (i, slot) in
        f.prio_submitted.iter_mut().chain(&mut f.prio_completed).chain(&mut f.prio_good).enumerate()
    {
        *slot = pusize(toks.get(i), "prio counter")?;
    }
    f.good_completions = pusize(toks.get(9), "good_completions")?;
    f.breaker_wake = popt(c.expect("f.breaker_wake")?.first(), "breaker_wake")?;
    f.deadline_wake = popt(c.expect("f.deadline_wake")?.first(), "deadline_wake")?;
    for stream in &mut f.streams {
        let toks = c.expect("stream")?;
        let rng = pu64(toks.first(), "stream rng state")?;
        let next_scripted = pusize(toks.get(1), "stream scripted cursor")?;
        stream.restore(rng, next_scripted);
    }
    for mon in &mut f.monitors {
        let toks = c.expect("monitor")?;
        mon.restore_state(
            health_from(pu64(toks.first(), "monitor health")?)?,
            pu64(toks.get(1), "monitor consecutive")? as u32,
            pu64(toks.get(2), "monitor total")? as u32,
            popt(toks.get(3), "monitor open_until")?,
        );
    }
    let toks = c.expect("epochs")?;
    if toks.len() != cards {
        return Err(snap_err(format!("epochs line wants {cards} entries, got {}", toks.len())));
    }
    for (i, e) in f.epochs.iter_mut().enumerate() {
        *e = pu64(toks.get(i), "epoch")?;
    }
    for slot in 0..cards {
        let toks = c.expect("inflight")?;
        if toks.first() == Some(&"-") {
            continue;
        }
        let seq = pu64(toks.first(), "inflight seq")?;
        let resolve_ns = pu64(toks.get(1), "inflight resolve_ns")?;
        let is_hedge = pbool(toks.get(2), "inflight is_hedge")?;
        let partner = popt(toks.get(3), "inflight partner")?.map(|p| p as usize);
        let runtime = RuntimeConfig {
            heads: pusize(toks.get(4), "inflight heads")?,
            layers: pusize(toks.get(5), "inflight layers")?,
            d_model: pusize(toks.get(6), "inflight d_model")?,
            seq_len: pusize(toks.get(7), "inflight seq_len")?,
        };
        let k = pusize(toks.get(8), "inflight batch size")?;
        let mut requests = Vec::with_capacity(k);
        for _ in 0..k {
            requests.push(parse_request(&c.expect("req")?, version)?);
        }
        let f = model.faulty.as_mut().expect("managed model has fault state");
        f.inflight[slot] = Some(Inflight {
            batch: Batch { requests, runtime },
            seq,
            resolve_ns,
            is_hedge,
            partner,
        });
    }
    let f = model.faulty.as_mut().expect("managed model has fault state");
    let n = pusize(c.expect("attempts")?.first(), "attempts count")?;
    let mut attempts = BTreeMap::new();
    for _ in 0..n {
        let toks = c.expect("att")?;
        attempts
            .insert(pu64(toks.first(), "attempt id")?, pu64(toks.get(1), "attempt count")? as u32);
    }
    f.attempts = attempts;
    for tag in ["failed", "shed", "expired"] {
        let n = pusize(c.expect(tag)?.first(), "failure count")?;
        let mut list = Vec::with_capacity(n);
        for _ in 0..n {
            let toks = c.expect("fr")?;
            list.push(FailedRequest {
                id: pu64(toks.first(), "failed id")?,
                reason: parse_reason(&toks[1..])?,
            });
        }
        let f = model.faulty.as_mut().expect("managed model has fault state");
        match tag {
            "failed" => f.failed = list,
            "shed" => f.shed = list,
            _ => f.expired = list,
        }
    }
    let f = model.faulty.as_mut().expect("managed model has fault state");
    match (c.expect("limiter")?.first(), f.limiter.as_mut()) {
        (Some(&"-"), None) => {}
        (Some(bits), Some(l)) => {
            l.set_raw_limit(f64::from_bits(pu64(Some(bits), "limiter bits")?));
        }
        _ => return Err(snap_err("snapshot limiter presence does not match the fleet config")),
    }
    match (c.expect("budget")?.first(), f.retry_budget.as_mut()) {
        (Some(&"-"), None) => {}
        (Some(milli), Some(b)) => b.set_milli(pu64(Some(milli), "budget milli")?),
        _ => {
            return Err(snap_err("snapshot retry-budget presence does not match the fleet config"))
        }
    }
    let toks = c.expect("svc")?;
    let n = pusize(toks.first(), "service-time count")?;
    let mut samples = Vec::with_capacity(n);
    for i in 0..n {
        samples.push(pu64(toks.get(1 + i), "service-time sample")?);
    }
    f.svc.import(samples);
    if version >= 2 {
        let toks = c.expect("f.present")?;
        if toks.len() != cards {
            return Err(snap_err(format!(
                "f.present line wants {cards} entries, got {}",
                toks.len()
            )));
        }
        for (i, slot) in f.present.iter_mut().enumerate() {
            *slot = pbool(toks.get(i), "present flag")?;
        }
        let toks = c.expect("f.draining")?;
        if toks.len() != cards {
            return Err(snap_err(format!(
                "f.draining line wants {cards} entries, got {}",
                toks.len()
            )));
        }
        for (i, slot) in f.draining.iter_mut().enumerate() {
            *slot = pbool(toks.get(i), "draining flag")?;
        }
        f.pending_joins = pusize(c.expect("f.pending_joins")?.first(), "pending joins")?;
        let toks = c.expect("f.churn")?;
        f.joins = pu64(toks.first(), "join count")?;
        f.drains = pu64(toks.get(1), "drain count")?;
        let n = pusize(c.expect("tenants")?.first(), "tenant count")?;
        let mut tenants = BTreeMap::new();
        for _ in 0..n {
            let toks = c.expect("tenant")?;
            tenants.insert(
                pu64(toks.first(), "tenant id")? as u32,
                TenantLedger {
                    submitted: pusize(toks.get(1), "tenant submitted")?,
                    completed: pusize(toks.get(2), "tenant completed")?,
                    shed: pusize(toks.get(3), "tenant shed")?,
                    expired: pusize(toks.get(4), "tenant expired")?,
                    failed: pusize(toks.get(5), "tenant failed")?,
                    good: pusize(toks.get(6), "tenant good")?,
                },
            );
        }
        f.tenants = tenants;
    } else {
        // v1 snapshots predate churn and tenancy: the fleet is fully
        // present, nothing is draining, and the run's entire history
        // belongs to tenant 0. Reconstructing that ledger keeps the
        // per-tenant conservation law holding across a v1 resume
        // without perturbing the recapture hash (v1 emission never
        // serializes it).
        f.present = vec![true; cards];
        f.draining = vec![false; cards];
        f.pending_joins = 0;
        f.joins = 0;
        f.drains = 0;
        f.tenants = BTreeMap::new();
        if f.submitted > 0 {
            f.tenants.insert(
                0,
                TenantLedger {
                    submitted: f.submitted,
                    completed: f.prio_completed.iter().sum(),
                    shed: f.shed.len(),
                    expired: f.expired.len(),
                    failed: f.failed.len(),
                    good: f.good_completions,
                },
            );
        }
    }
    if sdc {
        let f = model.faulty.as_mut().expect("managed model has fault state");
        let s = f.sdc.as_mut().ok_or_else(|| {
            snap_err("the snapshot's SDC block requires an SDC-armed fleet config")
        })?;
        let toks = c.expect("s.counters")?;
        s.injected = pu64(toks.first(), "sdc injected")?;
        s.detected = pu64(toks.get(1), "sdc detected")?;
        s.missed = pu64(toks.get(2), "sdc missed")?;
        s.re_execs = pu64(toks.get(3), "sdc re_execs")?;
        s.scrubs = pu64(toks.get(4), "sdc scrubs")?;
        s.scrub_armed = popt(c.expect("s.scrub_armed")?.first(), "scrub_armed")?;
        for stream in &mut s.streams {
            let toks = c.expect("sstream")?;
            let rng = pu64(toks.first(), "sdc stream rng state")?;
            let next_scripted = pusize(toks.get(1), "sdc stream scripted cursor")?;
            stream.restore(rng, next_scripted);
        }
        let toks = c.expect("s.quarantined")?;
        if toks.len() != cards {
            return Err(snap_err(format!(
                "s.quarantined line wants {cards} entries, got {}",
                toks.len()
            )));
        }
        for (i, slot) in s.quarantined.iter_mut().enumerate() {
            *slot = pbool(toks.get(i), "quarantined flag")?;
        }
        let toks = c.expect("s.dirty")?;
        if toks.len() != cards {
            return Err(snap_err(format!(
                "s.dirty line wants {cards} entries, got {}",
                toks.len()
            )));
        }
        for (i, slot) in s.dirty.iter_mut().enumerate() {
            *slot = pu64(toks.get(i), "dirty count")? as u32;
        }
        let toks = c.expect("s.pending")?;
        if toks.len() != cards {
            return Err(snap_err(format!(
                "s.pending line wants {cards} entries, got {}",
                toks.len()
            )));
        }
        for (i, slot) in s.pending.iter_mut().enumerate() {
            *slot = match toks.get(i) {
                Some(&"-") => None,
                tok => Some(pbool(tok, "pending draw")?),
            };
        }
        let toks = c.expect("s.reexec")?;
        let n = pusize(toks.first(), "reexec count")?;
        let mut reexec = std::collections::BTreeSet::new();
        for i in 0..n {
            reexec.insert(pu64(toks.get(1 + i), "reexec seq")?);
        }
        s.reexec = reexec;
    }
    Ok(())
}

/// The v4 generation block: queued sessions (the session-queue twin of
/// the one-shot queues), the token conservation ledger, the phase
/// latency accumulators, and each card's running generation batch.
/// KV residency is deliberately **not** serialized — reservations are
/// worst-case up-front, so [`restore_sessions`] re-derives them by
/// re-reserving per restored session.
fn capture_sessions(
    w: &mut Vec<String>,
    m: &SimModel,
    srows: &[(CapacityClass, usize, Vec<ServeRequest>)],
    version: u8,
) {
    w.push(format!("squeues {}", srows.len()));
    for (class, padded_seq_len, requests) in srows {
        w.push(format!(
            "squeue {} {} {} {padded_seq_len} {}",
            class.d_model,
            class.heads,
            class.layers,
            requests.len()
        ));
        for r in requests {
            w.push(format!("req {}", req_tokens(r, version)));
        }
    }
    match &m.sessions {
        None => w.push("sessions 0".into()),
        Some(s) => {
            w.push("sessions 1".into());
            w.push(format!(
                "g.tokens {} {} {} {}",
                s.tokens_requested, s.tokens_emitted, s.tokens_shed, s.tokens_on_time
            ));
            w.push(format!(
                "g.lat {} {} {} {}",
                s.prefill_ns_sum, s.prefill_count, s.decode_ns_sum, s.decode_tokens
            ));
            for slot in &s.cards {
                match slot {
                    None => w.push("gcard -".into()),
                    Some(g) => {
                        w.push(format!(
                            "gcard {} {} {} {} {} {}",
                            g.class.d_model,
                            g.class.heads,
                            g.class.layers,
                            g.padded_prompt,
                            u64::from(g.pending_step),
                            g.sessions.len()
                        ));
                        for sess in &g.sessions {
                            w.push(format!(
                                "sess {} {} {} {}",
                                sess.start_ns, sess.emitted, sess.last_emit_ns, sess.on_time
                            ));
                            w.push(format!("req {}", req_tokens(&sess.req, version)));
                        }
                    }
                }
            }
        }
    }
}

fn restore_sessions(c: &mut Cursor<'_>, model: &mut SimModel) -> Result<(), ServeError> {
    let n = pusize(c.expect("squeues")?.first(), "session queue count")?;
    let mut rows = Vec::with_capacity(n);
    for _ in 0..n {
        let toks = c.expect("squeue")?;
        let class = CapacityClass {
            d_model: pusize(toks.first(), "squeue d_model")?,
            heads: pusize(toks.get(1), "squeue heads")?,
            layers: pusize(toks.get(2), "squeue layers")?,
        };
        let padded = pusize(toks.get(3), "squeue padded_seq_len")?;
        let k = pusize(toks.get(4), "squeue length")?;
        let mut requests = Vec::with_capacity(k);
        for _ in 0..k {
            requests.push(parse_request(&c.expect("req")?, 4)?);
        }
        rows.push((class, padded, requests));
    }
    model.scheduler.import_session_queues(rows);
    if !pbool(c.expect("sessions")?.first(), "sessions flag")? {
        return Ok(());
    }
    let cards = model.cards.len();
    {
        let s = model.sessions_mut();
        let toks = c.expect("g.tokens")?;
        s.tokens_requested = pu64(toks.first(), "tokens requested")?;
        s.tokens_emitted = pu64(toks.get(1), "tokens emitted")?;
        s.tokens_shed = pu64(toks.get(2), "tokens shed")?;
        s.tokens_on_time = pu64(toks.get(3), "tokens on time")?;
        let toks = c.expect("g.lat")?;
        s.prefill_ns_sum = pu64(toks.first(), "prefill ns sum")?;
        s.prefill_count = pu64(toks.get(1), "prefill count")?;
        s.decode_ns_sum = pu64(toks.get(2), "decode ns sum")?;
        s.decode_tokens = pu64(toks.get(3), "decode token count")?;
    }
    for slot in 0..cards {
        let toks = c.expect("gcard")?;
        if toks.first() == Some(&"-") {
            continue;
        }
        let class = CapacityClass {
            d_model: pusize(toks.first(), "gcard d_model")?,
            heads: pusize(toks.get(1), "gcard heads")?,
            layers: pusize(toks.get(2), "gcard layers")?,
        };
        let padded_prompt = pusize(toks.get(3), "gcard padded prompt")?;
        let pending_step = pbool(toks.get(4), "gcard pending_step")?;
        let k = pusize(toks.get(5), "gcard session count")?;
        let mut sessions = Vec::with_capacity(k);
        for _ in 0..k {
            let toks = c.expect("sess")?;
            let start_ns = pu64(toks.first(), "session start")?;
            let emitted = pu64(toks.get(1), "session emitted")? as u32;
            let last_emit_ns = pu64(toks.get(2), "session last emit")?;
            let on_time = pu64(toks.get(3), "session on_time")? as u32;
            let req = parse_request(&c.expect("req")?, 4)?;
            sessions.push(GenSession { req, start_ns, emitted, last_emit_ns, on_time });
        }
        // Decode windows (and joiner prefills) are priced off the
        // card's *current* register file — resident sessions never
        // reprogram between token steps — so the restored card must
        // carry the exact program `start_session_batch` left it with:
        // the batch class at the padded prompt length. Without this the
        // resumed run prices every remaining window at the accelerator's
        // default (d_max) program and diverges from the uninterrupted
        // run.
        model.cards[slot]
            .accel
            .program(RuntimeConfig {
                heads: class.heads,
                layers: class.layers,
                d_model: class.d_model,
                seq_len: padded_prompt,
            })
            .map_err(CoreError::from)?;
        let s = model.sessions_mut();
        for sess in &sessions {
            // Reservations are worst-case up-front: re-reserving per
            // restored session reproduces the residency accounting.
            s.kv[slot].try_reserve(&kv_spec(&sess.req));
        }
        s.cards[slot] = Some(CardGen { class, padded_prompt, pending_step, sessions });
    }
    Ok(())
}

impl fmt::Display for FleetSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for line in &self.body {
            writeln!(f, "{line}")?;
        }
        writeln!(f, "hash {:016x}", self.hash)
    }
}

impl FromStr for FleetSnapshot {
    type Err = ServeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Self::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(snap: &FleetSnapshot) -> FleetSnapshot {
        FleetSnapshot::parse(&snap.to_string()).expect("canonical text parses")
    }

    #[test]
    fn parse_round_trips_and_checks_hash() {
        let snap = FleetSnapshot::seal(
            vec![HEADER_V1.into(), "config 0123456789abcdef".into(), "arrivals 7".into()],
            7,
        );
        let back = round_trip(&snap);
        assert_eq!(back, snap);
        assert_eq!(back.arrivals(), 7);
        assert_eq!(back.version(), 1);

        let mut text = snap.to_string();
        text = text.replace("arrivals 7", "arrivals 8");
        let err = FleetSnapshot::parse(&text).unwrap_err();
        assert!(matches!(err, ServeError::SnapshotIntegrity { .. }), "{err}");
        assert!(err.to_string().contains("hash mismatch"), "{err}");
    }

    #[test]
    fn parse_rejects_wrong_header_and_missing_trailer() {
        assert!(FleetSnapshot::parse("").is_err());
        assert!(FleetSnapshot::parse("not-a-snapshot\nhash 0").is_err());
        let headerless = FleetSnapshot::seal(vec!["wrong v9".into(), "arrivals 0".into()], 0);
        assert!(FleetSnapshot::parse(&headerless.to_string()).is_err());
        assert!("protea-fleet-snapshot v1\narrivals 3".parse::<FleetSnapshot>().is_err());
    }

    #[test]
    fn unknown_version_and_tampered_seal_are_integrity_errors() {
        let unknown =
            FleetSnapshot::seal(vec!["protea-fleet-snapshot v9".into(), "arrivals 0".into()], 0);
        let err = FleetSnapshot::parse(&unknown.to_string()).unwrap_err();
        assert!(matches!(err, ServeError::SnapshotIntegrity { .. }), "{err}");

        let err = FleetSnapshot::parse("protea-fleet-snapshot v1\narrivals 3").unwrap_err();
        assert!(matches!(err, ServeError::SnapshotIntegrity { .. }), "{err}");

        let v2 = FleetSnapshot::seal(
            vec![HEADER_V2.into(), "config 0123456789abcdef".into(), "arrivals 2".into()],
            2,
        );
        assert_eq!(round_trip(&v2).version(), 2);

        let v3 = FleetSnapshot::seal(
            vec![HEADER_V3.into(), "config 0123456789abcdef".into(), "arrivals 5".into()],
            5,
        );
        assert_eq!(round_trip(&v3).version(), 3);

        let v4 = FleetSnapshot::seal(
            vec![HEADER_V4.into(), "config 0123456789abcdef".into(), "arrivals 6".into()],
            6,
        );
        assert_eq!(round_trip(&v4).version(), 4);
    }

    #[test]
    fn event_and_request_tokens_round_trip() {
        let req = ServeRequest {
            id: 42,
            arrival_ns: 1_000,
            d_model: 96,
            heads: 4,
            layers: 2,
            seq_len: 17,
            priority: Priority::Interactive,
            deadline_ns: Some(5_000),
            tenant: 0,
            decode_steps: 0,
            token_deadline_ns: None,
        };
        let events = [
            FleetEvent::Arrival(req),
            FleetEvent::Crash { card: 3 },
            FleetEvent::Free { card: 0 },
            FleetEvent::Complete { card: 1, epoch: 9, start_ns: 77 },
            FleetEvent::Fail { card: 2, epoch: 4, kind: FaultKind::AxiTimeout },
            FleetEvent::Hedge { card: 1, seq: 12 },
            FleetEvent::Join { card: 2 },
            FleetEvent::Drain { card: 1 },
            FleetEvent::Scrub,
            FleetEvent::Requalify { card: 0, epoch: 6 },
            FleetEvent::Generate { card: 2, epoch: 8 },
            FleetEvent::Wake,
        ];
        for version in [1u8, 2, 4] {
            for ev in &events {
                let text = event_tokens(ev, version);
                let toks: Vec<&str> = text.split_whitespace().collect();
                assert_eq!(parse_event(&toks, version).unwrap(), *ev, "{text}");
            }
        }
    }

    #[test]
    fn v2_request_tokens_carry_the_tenant() {
        let req = ServeRequest {
            id: 7,
            arrival_ns: 500,
            d_model: 64,
            heads: 4,
            layers: 1,
            seq_len: 9,
            priority: Priority::BestEffort,
            deadline_ns: None,
            tenant: 31,
            decode_steps: 0,
            token_deadline_ns: None,
        };
        let toks_line = req_tokens(&req, 2);
        let toks: Vec<&str> = toks_line.split_whitespace().collect();
        assert_eq!(toks.len(), 9);
        assert_eq!(parse_request(&toks, 2).unwrap(), req);
        // The v1 grammar has no ninth token: the tenant id is dropped on
        // emit and rejected on parse.
        let v1_line = req_tokens(&req, 1);
        let v1: Vec<&str> = v1_line.split_whitespace().collect();
        assert_eq!(v1.len(), 8);
        assert_eq!(parse_request(&v1, 1).unwrap().tenant, 0);
        assert!(parse_request(&toks, 1).is_err());
        assert!(parse_request(&v1, 2).is_err());
    }

    #[test]
    fn v4_request_tokens_carry_the_generation_fields() {
        let req = ServeRequest {
            id: 11,
            arrival_ns: 900,
            d_model: 96,
            heads: 4,
            layers: 2,
            seq_len: 12,
            priority: Priority::Normal,
            deadline_ns: Some(9_000),
            tenant: 2,
            decode_steps: 16,
            token_deadline_ns: Some(1_500),
        };
        let line = req_tokens(&req, 4);
        let toks: Vec<&str> = line.split_whitespace().collect();
        assert_eq!(toks.len(), 11);
        assert_eq!(parse_request(&toks, 4).unwrap(), req);
        // Pre-v4 grammars drop the generation fields on emit and reject
        // the eleven-token form on parse.
        let v2_line = req_tokens(&req, 2);
        let v2: Vec<&str> = v2_line.split_whitespace().collect();
        assert_eq!(v2.len(), 9);
        let back = parse_request(&v2, 2).unwrap();
        assert_eq!(back.decode_steps, 0);
        assert_eq!(back.token_deadline_ns, None);
        assert!(parse_request(&toks, 2).is_err());
        assert!(parse_request(&v2, 4).is_err());
    }

    #[test]
    fn reason_tokens_round_trip() {
        let reasons = [
            FailReason::RetriesExhausted { last: FaultKind::EccDouble },
            FailReason::AllCardsDead,
            FailReason::Shed,
            FailReason::DeadlineExpired,
            FailReason::RetryBudgetExhausted { last: FaultKind::CardCrash },
            FailReason::Brownout,
        ];
        for r in reasons {
            let text = reason_tokens(&r);
            let toks: Vec<&str> = text.split_whitespace().collect();
            assert_eq!(parse_reason(&toks).unwrap(), r, "{text}");
        }
    }

    #[test]
    fn sketch_line_round_trips() {
        let mut s = LatencySketch::new();
        for v in [0.0, 0.5, 1.7, 1.7, 9_000.0] {
            s.record(v);
        }
        let line = sketch_line("lsk", &s);
        let toks: Vec<&str> = line.split_whitespace().skip(1).collect();
        assert_eq!(parse_sketch(&toks).unwrap(), s);
    }
}
