//! Fleet unit tests.
//!
//! These deliberately keep driving the deprecated `serve*` shims: they
//! are the regression net proving the shims still reproduce the
//! historical behavior on top of `Fleet::run`. New-API coverage lives
//! in `tests/serve_equiv.rs` and `tests/snapshot.rs`.
#![allow(deprecated)]

use super::{Fleet, FleetConfig};
use crate::error::ServeError;
use crate::faults::{FailReason, FaultConfig};
use crate::overload::{AimdConfig, HedgeConfig, OverloadConfig, RetryBudgetConfig};
use crate::request::{Priority, ServeRequest};
use crate::scheduler::BatchPolicy;
use crate::trace::Workload;
use protea_core::CoreError;
use protea_hwsim::{ExecTrace, SpanKind};
use protea_platform::FpgaDevice;

fn small_fleet(cards: usize) -> Fleet {
    Fleet::try_new(FleetConfig {
        cards,
        policy: BatchPolicy {
            max_batch: 4,
            max_wait_ns: 100_000,
            seq_buckets: vec![16, 32, 64, 128],
            max_queue: None,
        },
        ..FleetConfig::default()
    })
    .unwrap()
}

fn dense_workload(n: usize) -> Workload {
    Workload::poisson(n, 100_000.0, &[(96, 4, 2)], (8, 16), 11)
}

#[test]
fn zero_cards_rejected() {
    let err = Fleet::try_new(FleetConfig { cards: 0, ..FleetConfig::default() }).unwrap_err();
    assert_eq!(err, ServeError::NoCards);
}

#[test]
fn infeasible_bitstream_rejected() {
    let err =
        Fleet::try_new(FleetConfig { device: FpgaDevice::zcu102(), ..FleetConfig::default() })
            .unwrap_err();
    assert!(matches!(err, ServeError::Core(CoreError::Infeasible { .. })));
}

#[test]
fn empty_trace_rejected() {
    let fleet = small_fleet(2);
    assert_eq!(fleet.serve(&Workload::default()).unwrap_err(), ServeError::EmptyTrace);
}

#[test]
fn serves_every_request_exactly_once() {
    let fleet = small_fleet(2);
    let w = dense_workload(32);
    let report = fleet.serve(&w).unwrap();
    assert_eq!(report.completed, 32);
    assert!(report.mean_batch > 1.0, "dense arrivals must batch: {}", report.mean_batch);
    assert!(report.latency_ms.p50 > 0.0);
    assert!(report.latency_ms.p99 >= report.latency_ms.p95);
    assert!(report.latency_ms.p95 >= report.latency_ms.p50);
}

#[test]
fn deterministic_replay() {
    let fleet = small_fleet(3);
    let w = dense_workload(24);
    assert_eq!(fleet.serve(&w).unwrap(), fleet.serve(&w).unwrap());
}

#[test]
fn unservable_request_surfaces_as_error() {
    let fleet = small_fleet(1);
    let w = Workload {
        requests: vec![ServeRequest {
            id: 0,
            arrival_ns: 0,
            d_model: 4_096,
            heads: 4,
            layers: 2,
            seq_len: 8,
            ..ServeRequest::default()
        }],
    };
    assert!(matches!(fleet.serve(&w).unwrap_err(), ServeError::Unservable { id: 0, .. }));
}

#[test]
fn functional_mode_matches_timing_mode_schedule() {
    let base = small_fleet(2);
    let functional =
        Fleet::try_new(FleetConfig { functional: true, ..base.config().clone() }).unwrap();
    let w = dense_workload(8);
    let a = base.serve(&w).unwrap();
    let b = functional.serve(&w).unwrap();
    assert_eq!(a, b, "functional execution must not change the timing");
}

#[test]
fn reprograms_counted_across_classes() {
    let fleet = small_fleet(1);
    let w = Workload::poisson(12, 50_000.0, &[(96, 4, 2), (128, 4, 2)], (8, 16), 3);
    let report = fleet.serve(&w).unwrap();
    assert!(report.reprograms >= 2, "two classes on one card must reload: {report:?}");
}

#[test]
fn zero_rate_fault_config_reproduces_the_fault_free_schedule() {
    let base = small_fleet(2);
    let faulty = Fleet::try_new(FleetConfig {
        faults: Some(FaultConfig::default()),
        ..base.config().clone()
    })
    .unwrap();
    let w = dense_workload(24);
    let a = base.serve(&w).unwrap();
    let b = faulty.serve(&w).unwrap();
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.latency_ms, b.latency_ms, "zero-rate injection must not perturb timing");
    assert_eq!(a.throughput_rps, b.throughput_rps);
    assert_eq!(b.availability, 1.0);
    assert!(b.failed.is_empty());
    assert!(!b.degraded());
}

#[test]
fn faulty_replay_is_deterministic() {
    let fleet = Fleet::try_new(FleetConfig {
        faults: Some(FaultConfig::seeded(42, 0.05)),
        ..small_fleet(3).config().clone()
    })
    .unwrap();
    let w = dense_workload(24);
    assert_eq!(fleet.serve(&w).unwrap(), fleet.serve(&w).unwrap());
}

#[test]
fn no_request_is_ever_dropped_under_faults() {
    for seed in [1u64, 7, 42] {
        let fleet = Fleet::try_new(FleetConfig {
            faults: Some(FaultConfig::seeded(seed, 0.08)),
            ..small_fleet(2).config().clone()
        })
        .unwrap();
        let w = dense_workload(32);
        let r = fleet.serve(&w).unwrap();
        assert_eq!(r.submitted, 32);
        assert_eq!(
            r.completed + r.failed.len(),
            32,
            "seed {seed}: every request must complete or fail with a reason: {r:?}"
        );
        assert!((0.0..=1.0).contains(&r.availability) && r.availability.is_finite());
    }
}

#[test]
fn unrecoverable_faults_fail_over_to_the_surviving_card() {
    use protea_core::{FaultEvent, FaultKind};
    let fleet = Fleet::try_new(FleetConfig {
        faults: Some(FaultConfig {
            events: vec![
                FaultEvent { at_ns: 0, card: 0, kind: FaultKind::EccDouble },
                FaultEvent { at_ns: 1, card: 0, kind: FaultKind::EccDouble },
            ],
            ..FaultConfig::default()
        }),
        ..small_fleet(2).config().clone()
    })
    .unwrap();
    let w = dense_workload(8);
    let r = fleet.serve(&w).unwrap();
    assert_eq!(r.completed, 8, "all requests must survive via requeue: {r:?}");
    assert!(r.failed.is_empty());
    assert!(r.retried > 0, "the failed batch must have been requeued");
    assert_eq!(r.faults.ecc_double, 2);
    assert_eq!(r.availability, 1.0);
    // Card 0 took both hits but may have recovered (circuit cooled
    // down, later batch succeeded) — it must not be dead.
    assert_ne!(r.card_health[0], crate::health::CardHealth::Dead);
    assert_eq!(r.card_health[1], crate::health::CardHealth::Healthy);
}

#[test]
fn single_card_fleet_with_dead_card_fails_typed_not_hangs() {
    use protea_core::{FaultEvent, FaultKind};
    let fleet = Fleet::try_new(FleetConfig {
        cards: 1,
        faults: Some(FaultConfig {
            events: vec![FaultEvent { at_ns: 0, card: 0, kind: FaultKind::CardCrash }],
            ..FaultConfig::default()
        }),
        ..small_fleet(1).config().clone()
    })
    .unwrap();
    let w = dense_workload(6);
    let r = fleet.serve(&w).unwrap();
    assert_eq!(r.completed, 0);
    assert_eq!(r.failed.len(), 6, "every request fails with a typed reason: {r:?}");
    assert!(r.failed.iter().all(|fr| matches!(fr.reason, crate::faults::FailReason::AllCardsDead)));
    assert_eq!(r.availability, 0.0);
    assert_eq!(r.crashes, 1);
    assert_eq!(r.card_health[0], crate::health::CardHealth::Dead);
    assert!(r.throughput_rps.is_finite(), "no degenerate division: {r:?}");
}

#[test]
fn crash_mid_run_requeues_inflight_onto_survivor() {
    use protea_core::{FaultEvent, FaultKind};
    // Crash card 0 shortly after serving begins: whatever it was
    // running must finish elsewhere.
    let fleet = Fleet::try_new(FleetConfig {
        faults: Some(FaultConfig {
            events: vec![FaultEvent { at_ns: 150_000, card: 0, kind: FaultKind::CardCrash }],
            ..FaultConfig::default()
        }),
        ..small_fleet(2).config().clone()
    })
    .unwrap();
    let w = dense_workload(24);
    let r = fleet.serve(&w).unwrap();
    assert_eq!(r.completed + r.failed.len(), 24, "no drops: {r:?}");
    assert_eq!(r.crashes, 1);
    assert_eq!(r.card_health[0], crate::health::CardHealth::Dead);
    assert_eq!(r.completed, 24, "one surviving card must absorb the work");
}

#[test]
fn invalid_fault_config_rejected_up_front() {
    use protea_core::FaultRates;
    let bad_rates = FleetConfig {
        faults: Some(FaultConfig {
            rates: FaultRates { stall: 1.5, ..FaultRates::ZERO },
            ..FaultConfig::default()
        }),
        ..FleetConfig::default()
    };
    assert!(matches!(
        Fleet::try_new(bad_rates).unwrap_err(),
        ServeError::Core(CoreError::InvalidConfig(_))
    ));
    let zero_attempts = FleetConfig {
        faults: Some(FaultConfig { max_request_attempts: 0, ..FaultConfig::default() }),
        ..FleetConfig::default()
    };
    assert!(Fleet::try_new(zero_attempts).is_err());
}

#[test]
fn serial_baseline_is_slower_than_batched_fleet() {
    let fleet = small_fleet(4);
    let w = dense_workload(40);
    let batched = fleet.serve(&w).unwrap();
    let serial = fleet.serve_serial_baseline(&w).unwrap();
    assert_eq!(serial.completed, batched.completed);
    assert!(
        batched.throughput_rps > serial.throughput_rps,
        "batched {} vs serial {}",
        batched.throughput_rps,
        serial.throughput_rps
    );
}

// --------------------------- exec tracing ---------------------------

#[test]
fn traced_serve_is_bit_identical_and_records_spans() {
    let fleet = small_fleet(2);
    let w = dense_workload(24);
    let plain = fleet.serve(&w).unwrap();
    let (traced, trace) = fleet.serve_traced(&w).unwrap();
    assert_eq!(plain, traced, "tracing must never perturb the schedule");
    assert!(!trace.is_empty(), "a served workload must record spans");
    assert_eq!(trace.dropped(), 0);
    let kinds: Vec<SpanKind> = trace.spans().map(|s| s.kind).collect();
    assert!(kinds.contains(&SpanKind::Batch), "batch service windows must be recorded");
    assert!(kinds.contains(&SpanKind::Reprogram), "cold-card weight loads must be recorded");
    // Every span sits on a per-card track.
    assert!(trace.spans().all(|s| s.track >= protea_hwsim::exec_trace::track::CARD0));
    // Batches on one card never overlap in time.
    for card in 0..2u32 {
        let mut windows: Vec<(u64, u64)> = trace
            .spans()
            .filter(|s| {
                s.track == protea_hwsim::exec_trace::track::CARD0 + card
                    && s.kind == SpanKind::Batch
            })
            .map(|s| (s.start, s.end))
            .collect();
        windows.sort_unstable();
        for pair in windows.windows(2) {
            assert!(pair[0].1 <= pair[1].0, "card {card} double-booked: {pair:?}");
        }
    }
    // The export round-trips losslessly.
    let json = trace.to_chrome_json();
    let parsed = ExecTrace::parse_chrome_json(&json).unwrap();
    assert_eq!(parsed.len(), trace.len());
    assert!(parsed.iter().zip(trace.spans()).all(|(a, b)| a == b));
}

#[test]
fn traced_hedged_run_records_hedge_and_cancel_spans() {
    let fleet = Fleet::try_new(FleetConfig {
        overload: Some(OverloadConfig {
            hedge: Some(HedgeConfig { factor: 0.5, min_delay_ns: 10_000, min_samples: 4 }),
            ..OverloadConfig::default()
        }),
        ..small_fleet(3).config().clone()
    })
    .unwrap();
    let w = dense_workload(32);
    let plain = fleet.serve(&w).unwrap();
    let (traced, trace) = fleet.serve_traced(&w).unwrap();
    assert_eq!(plain, traced);
    assert!(plain.hedges > 0, "this config must hedge: {plain:?}");
    let kinds: Vec<SpanKind> = trace.spans().map(|s| s.kind).collect();
    assert!(kinds.contains(&SpanKind::Hedge), "hedge legs must be recorded");
    if plain.hedge_cancels > 0 {
        assert!(kinds.contains(&SpanKind::Cancel), "hedge wins must record the cancel");
    }
}

// --------------------------- timing memo ----------------------------

#[test]
fn memo_counters_surface_without_affecting_equality() {
    let memoized = small_fleet(2);
    let plain =
        Fleet::try_new(FleetConfig { timing_memo: false, ..memoized.config().clone() }).unwrap();
    let w = dense_workload(24);
    let a = memoized.serve(&w).unwrap();
    let b = plain.serve(&w).unwrap();
    assert_eq!(a, b, "the memo must be invisible in report equality");
    assert!(a.memo_misses >= 1, "the memoized run must price at least one key: {a:?}");
    assert!(a.memo_hits >= 1, "a dense single-class workload must hit the cache: {a:?}");
    assert_eq!((b.memo_hits, b.memo_misses), (0, 0), "memo off records nothing");
}

// ------------------------- overload layer -------------------------

/// `dense_workload` with a relative deadline stamped on every
/// request.
fn deadline_workload(n: usize, rel_ns: u64) -> Workload {
    let mut w = dense_workload(n);
    for r in &mut w.requests {
        r.deadline_ns = Some(r.arrival_ns + rel_ns);
    }
    w
}

#[test]
fn unarmed_overload_config_changes_nothing() {
    // Zero-overhead-when-off: an OverloadConfig with every knob off
    // (and no caps/deadlines anywhere) must yield a bit-identical
    // report through the untouched fault-free path.
    let base = small_fleet(2);
    let off = Fleet::try_new(FleetConfig {
        overload: Some(OverloadConfig::default()),
        ..base.config().clone()
    })
    .unwrap();
    let w = dense_workload(24);
    assert_eq!(base.serve(&w).unwrap(), off.serve(&w).unwrap());
}

#[test]
fn managed_path_without_pressure_keeps_fault_free_timing() {
    // Arm a limiter far above the offered load: the managed path is
    // taken, but timing must match the fault-free schedule exactly.
    let base = small_fleet(2);
    let armed = Fleet::try_new(FleetConfig {
        overload: Some(OverloadConfig {
            aimd: Some(AimdConfig { initial: 4_096, ..AimdConfig::default() }),
            ..OverloadConfig::default()
        }),
        ..base.config().clone()
    })
    .unwrap();
    let w = dense_workload(24);
    let a = base.serve(&w).unwrap();
    let b = armed.serve(&w).unwrap();
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.latency_ms, b.latency_ms, "idle overload controls must not perturb timing");
    assert_eq!(a.throughput_rps, b.throughput_rps);
    assert!(b.shed.is_empty() && b.expired.is_empty());
    assert!(b.accounted(), "{b:?}");
}

#[test]
fn bounded_queue_sheds_with_exact_accounting() {
    let fleet = Fleet::try_new(FleetConfig {
        cards: 1,
        policy: BatchPolicy {
            max_batch: 4,
            max_wait_ns: 100_000,
            seq_buckets: vec![16, 32, 64, 128],
            max_queue: Some(2),
        },
        ..FleetConfig::default()
    })
    .unwrap();
    // Arrival rate far above one card's service rate forces the cap.
    let w = Workload::poisson(64, 1_000_000.0, &[(96, 4, 2)], (8, 16), 5);
    let r = fleet.serve(&w).unwrap();
    assert!(!r.shed.is_empty(), "a 2-deep queue under this burst must shed: {r:?}");
    assert!(r.shed.iter().all(|s| s.reason == FailReason::Shed));
    assert_eq!(r.submitted, 64);
    assert!(r.accounted(), "conservation must hold: {r:?}");
    assert!(r.overloaded());
    // Determinism under shedding.
    assert_eq!(fleet.serve(&w).unwrap(), r);
}

#[test]
fn expired_requests_are_shed_before_dispatch() {
    let fleet = small_fleet(1);
    // Deadlines shorter than the queueing delay this burst builds up.
    let w = deadline_workload(48, 400_000);
    let r = fleet.serve(&w).unwrap();
    assert!(!r.expired.is_empty(), "tight deadlines under a burst must expire: {r:?}");
    assert!(r.expired.iter().all(|e| e.reason == FailReason::DeadlineExpired));
    assert!(r.accounted(), "{r:?}");
    assert!(r.completed_in_deadline <= r.completed);
    assert!(r.goodput_rps <= r.throughput_rps);
    // Expired requests were never burned on a card: every completion
    // belongs to a non-expired request.
    assert_eq!(r.completed + r.expired.len() + r.failed.len() + r.shed.len(), 48);
    // Per-priority SLO rows exist and cover all submissions.
    let slo_submitted: usize = r.slo.iter().map(|s| s.submitted).sum();
    assert_eq!(slo_submitted, 48);
}

#[test]
fn priority_displaces_best_effort_under_full_queue() {
    let fleet = Fleet::try_new(FleetConfig {
        cards: 1,
        policy: BatchPolicy {
            max_batch: 4,
            max_wait_ns: 100_000,
            seq_buckets: vec![16, 32, 64, 128],
            max_queue: Some(2),
        },
        ..FleetConfig::default()
    })
    .unwrap();
    let mut w = Workload::poisson(60, 1_500_000.0, &[(96, 4, 2)], (8, 16), 9);
    for (i, r) in w.requests.iter_mut().enumerate() {
        r.priority = if i % 2 == 0 { Priority::BestEffort } else { Priority::Interactive };
    }
    let r = fleet.serve(&w).unwrap();
    assert!(r.accounted(), "{r:?}");
    let shed_ids: std::collections::BTreeSet<u64> = r.shed.iter().map(|s| s.id).collect();
    let best_effort_shed = w
        .requests
        .iter()
        .filter(|q| q.priority == Priority::BestEffort && shed_ids.contains(&q.id))
        .count();
    let interactive_shed = shed_ids.len() - best_effort_shed;
    assert!(
        best_effort_shed >= interactive_shed,
        "shedding must prefer best-effort: {best_effort_shed} vs {interactive_shed}"
    );
}

#[test]
fn hedging_completes_every_request_exactly_once() {
    let fleet = Fleet::try_new(FleetConfig {
        overload: Some(OverloadConfig {
            // An aggressive hedge: fire almost immediately.
            hedge: Some(HedgeConfig { factor: 0.5, min_delay_ns: 10_000, min_samples: 4 }),
            ..OverloadConfig::default()
        }),
        ..small_fleet(3).config().clone()
    })
    .unwrap();
    let w = dense_workload(32);
    let (r, responses) = fleet.serve_with_responses(&w).unwrap();
    assert_eq!(r.completed, 32);
    assert!(r.hedges > 0, "an aggressive hedge policy must fire: {r:?}");
    assert!(r.hedge_wins <= r.hedges && r.hedge_cancels <= r.hedges);
    let mut ids: Vec<u64> = responses.iter().map(|resp| resp.id).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), 32, "no request may complete twice under hedging");
    assert!(r.accounted(), "{r:?}");
    // Deterministic replay with hedging on.
    assert_eq!(fleet.serve(&w).unwrap(), r);
}

#[test]
fn retry_budget_bounds_requeue_storms() {
    use protea_core::{FaultEvent, FaultKind};
    // Endless ECC faults on card 0 of 1: without a budget every
    // request would burn its full attempt cap; with an empty budget
    // each failed batch dies on its first fault.
    let events: Vec<FaultEvent> =
        (0..200).map(|i| FaultEvent { at_ns: i, card: 0, kind: FaultKind::EccDouble }).collect();
    let fleet = Fleet::try_new(FleetConfig {
        cards: 1,
        faults: Some(FaultConfig { events, ..FaultConfig::default() }),
        overload: Some(OverloadConfig {
            retry_budget: Some(RetryBudgetConfig { initial: 0, per_admission: 0.0, cap: 1 }),
            ..OverloadConfig::default()
        }),
        ..small_fleet(1).config().clone()
    })
    .unwrap();
    let w = dense_workload(8);
    let r = fleet.serve(&w).unwrap();
    assert_eq!(r.retried, 0, "an empty budget must forbid every requeue: {r:?}");
    assert!(r.failed.iter().any(|fr| matches!(fr.reason, FailReason::RetryBudgetExhausted { .. })));
    assert!(r.accounted(), "{r:?}");
}

#[test]
fn aimd_limiter_sheds_past_its_limit() {
    let fleet = Fleet::try_new(FleetConfig {
        cards: 1,
        overload: Some(OverloadConfig {
            aimd: Some(AimdConfig { initial: 4, min: 2, max: 8, increase: 1.0, decrease: 0.5 }),
            ..OverloadConfig::default()
        }),
        ..small_fleet(1).config().clone()
    })
    .unwrap();
    let w = Workload::poisson(64, 2_000_000.0, &[(96, 4, 2)], (8, 16), 13);
    let r = fleet.serve(&w).unwrap();
    assert!(!r.shed.is_empty(), "a limit of ~4-8 under 64 rushed arrivals must shed: {r:?}");
    assert!(r.accounted(), "{r:?}");
    assert_eq!(fleet.serve(&w).unwrap(), r, "AIMD state must replay deterministically");
}

#[test]
fn invalid_overload_config_rejected_up_front() {
    let bad = FleetConfig {
        overload: Some(OverloadConfig {
            aimd: Some(AimdConfig { min: 0, ..AimdConfig::default() }),
            ..OverloadConfig::default()
        }),
        ..FleetConfig::default()
    };
    assert!(matches!(
        Fleet::try_new(bad).unwrap_err(),
        ServeError::Core(CoreError::InvalidConfig(_))
    ));
    let zero_cap = FleetConfig {
        policy: BatchPolicy { max_queue: Some(0), ..BatchPolicy::default() },
        ..FleetConfig::default()
    };
    assert!(Fleet::try_new(zero_cap).is_err());
}

/// A KV budget too small for even one session: every batch member is
/// shed at session start with a typed reason, the card stays free, and
/// the token ledger still balances.
#[test]
fn kv_capacity_exhaustion_sheds_sessions_with_conserved_tokens() {
    use super::sim::SimModel;
    use crate::fleet::events::FleetEvent;
    use protea_hwsim::EventQueue;

    let config = FleetConfig { cards: 1, ..FleetConfig::default() };
    let mut m = SimModel::build(&config, true, false, false).unwrap();
    // A few bytes of KV headroom: no session's cache can ever fit.
    // (Real budgets are half a card's DRAM — gigabytes — so capacity
    // exhaustion is reachable only by shrinking the budget directly.)
    m.kv_budgets = vec![64];

    let steps = 8u32;
    let req = ServeRequest {
        id: 0,
        arrival_ns: 0,
        d_model: 96,
        heads: 4,
        layers: 2,
        seq_len: 8,
        deadline_ns: None,
        priority: Priority::Normal,
        tenant: 0,
        decode_steps: steps,
        token_deadline_ns: None,
    };
    let mut q: EventQueue<FleetEvent> = EventQueue::new();
    m.admit(req, 0);
    let batch =
        m.scheduler.pop_session_ready(10_000_000).expect("an aged single-session batch must flush");
    let took = m.start_session_batch(&mut q, 0, batch, 10_000_000).unwrap();
    assert!(!took, "with no KV headroom the card must stay free");

    let st = m.sessions.as_ref().expect("decode traffic creates session state");
    assert_eq!(st.tokens_requested, u64::from(steps));
    assert_eq!(st.tokens_shed, u64::from(steps), "every requested token resolves as shed");
    assert_eq!(st.tokens_emitted, 0);
    let shed = &m.faulty.as_ref().expect("managed model").shed;
    assert_eq!(shed.len(), 1, "the session lands in the shed ledger exactly once");
    assert!(matches!(shed[0].reason, FailReason::Shed));
}
