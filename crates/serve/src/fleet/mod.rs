//! The card fleet and the discrete-event queueing simulation.
//!
//! A [`Fleet`] models N identical ProTEA cards, each one a
//! `protea_core::Accelerator` synthesized from the same bitstream. The
//! serving loop is a discrete-event simulation on `protea_hwsim`'s
//! [`EventQueue`] with **nanoseconds** as the tick unit:
//!
//! * an *arrival* event admits a request to the [`BatchScheduler`] and
//!   lazily chains the next arrival from the [`WorkloadSource`] — at
//!   most one arrival is ever pending, so a 10M-request trace costs
//!   O(1) arrival memory;
//! * a *dispatch* programs a free card (register writes, plus a weight
//!   reload when the card was last serving a different capacity class),
//!   runs the batch through the unified execution pipeline
//!   (`Accelerator::execute` on a `RunPlan`), and converts the
//!   resulting report latency to a service interval;
//! * a *completion* frees the card and greedily re-dispatches.
//!
//! Every run goes through [`Fleet::run`] on a [`ServePlan`]; the legacy
//! `serve*` methods are deprecated shims over it, pinned byte-exact by
//! the `serve_equiv` tests.
//!
//! With a [`FaultConfig`] attached, the same simulation runs under
//! deterministic fault injection: per-card seeded `FaultStream`s feed
//! the driver's fault-aware timing path, unrecoverable faults and card
//! crashes requeue the in-flight batch onto surviving cards (bounded by
//! a per-request attempt budget), and a per-card circuit breaker rests
//! failing cards. Every submitted request ends in exactly one of
//! `completed` or `failed` — none is ever silently dropped. Without a
//! `FaultConfig` the code path is byte-for-byte the fault-free one, so
//! fault-free reports are bit-identical to earlier releases.
//!
//! The overload-control layer rides the same managed simulation: a
//! bounded [`BatchPolicy::max_queue`] plus an optional
//! [`OverloadConfig`] (AIMD concurrency limit, retry budget, hedged
//! dispatch) and per-request deadlines/priorities turn unbounded
//! queueing into *load shedding* with typed accounting — every
//! submitted request ends in exactly one of `completed`, `shed`,
//! `expired`, or `failed`. With none of those knobs set (and no
//! deadlines in the trace) the fault-free fast path is untouched.
//!
//! Everything user-supplied (trace shapes, arrival times) flows through
//! `Result` — a hostile trace can be rejected, never panic.
//!
//! ## Module layout
//!
//! * [`card`] — per-card state: the accelerator, the loaded weight
//!   class, and the reprogram-and-load step every dispatch flavor
//!   shares;
//! * [`sim`] — the mutable DES model (`SimModel`), fault/overload
//!   state, metrics accumulation, and admission control;
//! * [`events`] — the serializable [`FleetEvent`] vocabulary and its
//!   handler (what PR 5 expressed as boxed closures);
//! * [`dispatch`] — the dispatch, completion, failure, crash, and
//!   hedging logic plus the greedy dispatch loop;
//! * [`snapshot`] — versioned [`FleetSnapshot`] capture/restore;
//! * [`report`] — final [`ServeReport`] assembly.
//!
//! ## Tracing
//!
//! [`ServePlan::traced`] runs the identical simulation with a
//! fleet-level span recorder armed: every reprogram, batch service
//! window, hedge leg, and hedge cancellation lands in a bounded
//! [`ExecTrace`] ring buffer on per-card tracks, exportable as Chrome
//! trace-event JSON. Tracing is observational — the report of a traced
//! run is byte-identical to the untraced one.
//!
//! ## Snapshot / resume
//!
//! [`ServePlan::snapshot_every`] captures a versioned [`FleetSnapshot`]
//! every N arrivals: pending events, scheduler queues, card and
//! fault/overload state, RNG positions, the metrics accumulator, and
//! the source cursor. [`ServePlan::resume`] restores one and continues;
//! the resumed run's remaining snapshots, final state hash, and
//! [`ServeReport`] are bit-identical to the uninterrupted run's.

mod card;
mod dispatch;
mod events;
mod report;
mod sim;
pub(crate) mod snapshot;
#[cfg(test)]
mod tests;

use crate::elastic::{BrownoutLadder, ChurnAction, ChurnPlan, PlacementPolicy, TenantPolicy};
use crate::error::ServeError;
use crate::faults::{FaultConfig, SdcConfig};
use crate::overload::OverloadConfig;
use crate::plan::{MetricsMode, ServeOutcome, ServePlan};
use crate::report::ServeReport;
use crate::request::ServeResponse;
use crate::scheduler::{BatchPolicy, BatchScheduler};
use crate::source::WorkloadSource;
use crate::trace::Workload;
use events::FleetEvent;
use protea_core::{Accelerator, CoreError, SynthesisConfig};
use protea_hwsim::{Cycles, EventQueue, ExecTrace};
use protea_platform::FpgaDevice;
use sim::{MetricsAccum, SimModel};
use snapshot::FleetSnapshot;

/// Fleet construction parameters.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of cards (each gets the same bitstream).
    pub cards: usize,
    /// The bitstream all cards are synthesized from.
    pub synthesis: SynthesisConfig,
    /// Uniform-roster shorthand: the device a card is built on when
    /// [`roster`](Self::roster) is `None`. (The old doc claimed this was
    /// "the device every card is built on" — since heterogeneous
    /// rosters exist, that is only true of the shorthand.) Prefer
    /// `roster` for anything heterogeneous; this field stays because a
    /// `Some(vec![device; cards])` roster is pinned byte-identical to
    /// it by `tests/serve_equiv.rs`, so existing configs lose nothing.
    pub device: FpgaDevice,
    /// Batching policy.
    pub policy: BatchPolicy,
    /// When `true`, every batch also executes the bit-exact functional
    /// datapath (slow; service time is identical either way because the
    /// timing model is deterministic).
    pub functional: bool,
    /// Host→card weight-reload bandwidth in GB/s (1 GB/s = 1 byte/ns),
    /// pricing the reprogram penalty a batch pays when its card was
    /// serving a different capacity class.
    pub reload_gbps: f64,
    /// Fault injection and graceful-degradation policy. `None` (the
    /// default) is the exact fault-free simulation of earlier releases.
    pub faults: Option<FaultConfig>,
    /// Overload controls (AIMD admission, retry budget, hedging).
    /// `None` — or a config with every knob off — changes nothing.
    pub overload: Option<OverloadConfig>,
    /// Memoize fault-free batch timing per deterministic-plan key
    /// (see [`TimingMemo`](crate::memo::TimingMemo)). Byte-identical
    /// reports either way; `true` (the default) makes large serving
    /// sweeps dramatically cheaper to simulate. Memoization keys do not
    /// carry a device, so it silently disables itself on a
    /// heterogeneous roster.
    pub timing_memo: bool,
    /// Per-card device roster for a heterogeneous fleet. `None` (the
    /// default) means every card is built on [`device`](Self::device);
    /// `Some(v)` must have exactly [`cards`](Self::cards) entries, each
    /// feasibility-checked against the bitstream at construction.
    pub roster: Option<Vec<FpgaDevice>>,
    /// How the dispatcher picks among free cards.
    /// [`PlacementPolicy::FirstFree`] is the historical behavior.
    pub placement: PlacementPolicy,
    /// Scripted runtime churn: cards joining, draining, and crashing on
    /// a deterministic schedule. `None` changes nothing.
    pub churn: Option<ChurnPlan>,
    /// Per-tenant priority/SLO classes. `None` leaves the trace's own
    /// priority/deadline stamps in force; `Some` overwrites them per
    /// tenant and turns on per-tenant SLO rows in the report.
    pub tenants: Option<TenantPolicy>,
    /// Brownout degradation ladder: admission floors keyed to the live
    /// fraction of the fleet. `None` never browns out.
    pub brownout: Option<BrownoutLadder>,
    /// Silent-data-corruption defense: injection, ABFT detection,
    /// digest scrubbing, and the quarantine-and-reprogram recovery
    /// ladder. `None` — or a config with every knob off — changes
    /// nothing (byte-identical reports and snapshots, pinned by
    /// `tests/integrity.rs`).
    pub sdc: Option<SdcConfig>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            cards: 2,
            synthesis: SynthesisConfig::paper_default(),
            device: FpgaDevice::alveo_u55c(),
            policy: BatchPolicy::default(),
            functional: false,
            reload_gbps: 12.0,
            faults: None,
            overload: None,
            timing_memo: true,
            roster: None,
            placement: PlacementPolicy::FirstFree,
            churn: None,
            tenants: None,
            brownout: None,
            sdc: None,
        }
    }
}

impl FleetConfig {
    /// Whether any elastic feature is in force — a roster, a
    /// non-historical placement policy, churn, tenancy, or brownout.
    /// Gates the snapshot grammar version: an elastic config captures
    /// v2, everything else keeps emitting byte-identical v1.
    #[must_use]
    pub fn elastic_active(&self) -> bool {
        self.roster.is_some()
            || self.placement != PlacementPolicy::FirstFree
            || self.churn.is_some()
            || self.tenants.is_some()
            || self.brownout.is_some()
    }

    /// Whether the SDC defense layer is in force (any injection,
    /// detection, or scrub knob set). Gates the SDC state allocation,
    /// the managed simulation path, and the v3 snapshot grammar; an
    /// unarmed config keeps every byte of the SDC-free behavior.
    #[must_use]
    pub fn sdc_active(&self) -> bool {
        self.sdc.as_ref().is_some_and(SdcConfig::armed)
    }

    /// The per-card device list actually in force: the explicit roster,
    /// or [`device`](Self::device) repeated [`cards`](Self::cards)
    /// times.
    #[must_use]
    pub fn resolved_roster(&self) -> Vec<FpgaDevice> {
        match &self.roster {
            Some(r) => r.clone(),
            None => vec![self.device; self.cards],
        }
    }

    /// Whether every card sits on the same device (always true without
    /// an explicit roster). Timing memoization requires this — memo
    /// keys do not carry a device.
    #[must_use]
    pub fn uniform_roster(&self) -> bool {
        match &self.roster {
            Some(r) => r.windows(2).all(|w| w[0] == w[1]),
            None => true,
        }
    }
}

/// A fleet of simulated ProTEA cards behind one batch scheduler.
#[derive(Debug, Clone)]
pub struct Fleet {
    config: FleetConfig,
}

impl Fleet {
    /// Validate the configuration and build the fleet.
    ///
    /// # Errors
    /// [`ServeError::NoCards`] for an empty fleet;
    /// [`ServeError::Core`] (`Infeasible`) when the bitstream does not
    /// fit the device.
    pub fn try_new(config: FleetConfig) -> Result<Self, ServeError> {
        if config.cards == 0 {
            return Err(ServeError::NoCards);
        }
        if config.reload_gbps.is_nan() || config.reload_gbps <= 0.0 {
            return Err(ServeError::Core(CoreError::InvalidConfig(
                "reload_gbps must be positive".into(),
            )));
        }
        if let Some(f) = &config.faults {
            f.rates.validate().map_err(|m| ServeError::Core(CoreError::InvalidConfig(m)))?;
            if f.max_request_attempts == 0 {
                return Err(ServeError::Core(CoreError::InvalidConfig(
                    "max_request_attempts must be at least 1".into(),
                )));
            }
        }
        if let Some(o) = &config.overload {
            o.validate().map_err(|m| ServeError::Core(CoreError::InvalidConfig(m)))?;
        }
        if config.policy.max_queue == Some(0) {
            return Err(ServeError::Core(CoreError::InvalidConfig(
                "policy.max_queue must be at least 1 when set".into(),
            )));
        }
        if let Some(roster) = &config.roster {
            if roster.len() != config.cards {
                return Err(ServeError::Core(CoreError::InvalidConfig(format!(
                    "roster lists {} devices for a fleet of {} cards",
                    roster.len(),
                    config.cards
                ))));
            }
        }
        if let Some(churn) = &config.churn {
            churn
                .validate(config.cards)
                .map_err(|m| ServeError::Core(CoreError::InvalidConfig(m)))?;
        }
        if let Some(b) = &config.brownout {
            b.validate().map_err(|m| ServeError::Core(CoreError::InvalidConfig(m)))?;
        }
        if let Some(s) = &config.sdc {
            s.validate().map_err(|m| ServeError::Core(CoreError::InvalidConfig(m)))?;
        }
        // Fail now, not at dispatch time, if the design cannot exist on
        // *any* card's device.
        for device in config.resolved_roster() {
            Accelerator::try_new(config.synthesis, &device)?;
        }
        Ok(Self { config })
    }

    /// The configuration in force.
    #[must_use]
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Execute `plan`. This is the single entry point every run flavor
    /// goes through — batched or serial baseline, exact or sketch
    /// metrics, traced, snapshotting, or resuming.
    ///
    /// # Errors
    /// [`ServeError::Plan`] for contradictory plan flags;
    /// [`ServeError::EmptyTrace`] when the source yields nothing;
    /// [`ServeError::Snapshot`] when a resume snapshot does not match
    /// the fleet config or source; [`ServeError::Unservable`] when a
    /// request exceeds the synthesized capacity; [`ServeError::Core`]
    /// if the hardware layer rejects a dispatch (unreachable for
    /// admitted requests, but surfaced rather than unwrapped).
    pub fn run(&self, mut plan: ServePlan<'_>) -> Result<ServeOutcome, ServeError> {
        plan.validate()?;
        let sketch = plan.metrics == MetricsMode::Sketch;
        let collect = plan.collect_responses;
        let traced = plan.traced;
        let serial = plan.serial;
        let every = plan.snapshot_every;
        let resume = plan.resume.take();
        let source = plan.source_mut();
        if serial {
            return self.run_serial(source, sketch, traced, collect);
        }
        self.run_streaming(source, sketch, collect, traced, every, resume)
    }

    fn run_streaming(
        &self,
        source: &mut dyn WorkloadSource,
        sketch: bool,
        collect: bool,
        traced: bool,
        every: Option<u64>,
        resume: Option<FleetSnapshot>,
    ) -> Result<ServeOutcome, ServeError> {
        // The managed path carries fault *and* overload machinery; it is
        // entered only when some knob needs it, so a plain fleet keeps
        // the historical fault-free fast path byte-for-byte.
        let managed = self.config.faults.is_some()
            || self.config.overload.as_ref().is_some_and(OverloadConfig::any)
            || self.config.policy.max_queue.is_some()
            || self.config.churn.is_some()
            || self.config.tenants.is_some()
            || self.config.brownout.is_some()
            || self.config.sdc_active()
            || source.has_deadlines()
            // Generation sessions need the typed failure/shed ledgers
            // for token conservation, so decode workloads always run
            // managed (zero-rate faults: timing is unperturbed).
            || source.has_decode();
        let hashing = every.is_some() || resume.is_some();
        let (mut q, mut model, mut arrivals_seen) = match resume {
            Some(snap) => snap.apply(&self.config, managed, sketch, source)?,
            None => {
                let mut q = EventQueue::new();
                let mut model = SimModel::build(&self.config, managed, traced, sketch)?;
                if let Some(f) = model.faulty.as_mut() {
                    f.track_deadlines = source.has_deadlines()
                        || self.config.tenants.as_ref().is_some_and(TenantPolicy::any_deadline);
                    // Card-crash events: each card's crash timestamp is
                    // drawn once, up front, so the draw order (and thus
                    // the whole run) is deterministic in the seed.
                    let crashes: Vec<(usize, u64)> = f
                        .streams
                        .iter_mut()
                        .enumerate()
                        .filter_map(|(card, s)| s.crash_at_ns().map(|at| (card, at)))
                        .collect();
                    for (card, at) in crashes {
                        q.push(Cycles(at), events::RANK_CRASH, FleetEvent::Crash { card });
                    }
                    // Scripted churn rides the same rank: cards absent
                    // at time zero, plus the join/drain/crash schedule.
                    // A resumed run skips this — the pending churn
                    // events were serialized with the snapshot.
                    if let Some(plan) = &self.config.churn {
                        for &card in &plan.start_absent {
                            f.present[card] = false;
                        }
                        for e in &plan.events {
                            let ev = match e.action {
                                ChurnAction::Join => {
                                    f.pending_joins += 1;
                                    FleetEvent::Join { card: e.card }
                                }
                                ChurnAction::Drain => FleetEvent::Drain { card: e.card },
                                ChurnAction::Crash => FleetEvent::Crash { card: e.card },
                            };
                            q.push(Cycles(e.at_ns), events::RANK_CRASH, ev);
                        }
                    }
                }
                if !events::pull_arrival(&mut q, &mut model, source) {
                    return Err(model.error.take().unwrap_or(ServeError::EmptyTrace));
                }
                (q, model, 0)
            }
        };
        let mut snapshots = Vec::new();
        while let Some((t, ev)) = q.pop() {
            let is_arrival = matches!(ev, FleetEvent::Arrival(_));
            events::handle_event(&mut q, &mut model, source, t.get(), ev);
            if is_arrival {
                arrivals_seen += 1;
                if model.error.is_none() && every.is_some_and(|n| arrivals_seen % n == 0) {
                    snapshots.push(FleetSnapshot::capture(
                        &self.config,
                        &q,
                        &model,
                        source,
                        arrivals_seen,
                        managed,
                        sketch,
                    ));
                }
            }
        }
        if let Some(e) = model.error {
            return Err(e);
        }
        let state_hash = hashing.then(|| {
            FleetSnapshot::capture(&self.config, &q, &model, source, arrivals_seen, managed, sketch)
                .state_hash()
        });
        let trace = traced.then(|| model.trace.take().expect("traced run records a trace"));
        let responses = collect.then(|| match &model.metrics {
            MetricsAccum::Exact(v) => v.clone(),
            MetricsAccum::Sketch(_) => unreachable!("validated: collect requires exact metrics"),
        });
        Ok(ServeOutcome { report: model.into_report(), responses, trace, snapshots, state_hash })
    }

    /// The baseline the batched fleet is judged against: one card, no
    /// batching — every request runs alone (still padded to its
    /// bucket), in arrival order.
    fn run_serial(
        &self,
        source: &mut dyn WorkloadSource,
        sketch: bool,
        traced: bool,
        collect: bool,
    ) -> Result<ServeOutcome, ServeError> {
        // The serial baseline is one unmanaged card: slice any roster
        // down to its first device and drop the churn schedule (a
        // baseline that loses its only card is not a baseline) and the
        // SDC knobs (corrupting the yardstick would corrupt the
        // comparison).
        let single = FleetConfig {
            cards: 1,
            roster: self.config.roster.as_ref().map(|r| vec![r[0]]),
            churn: None,
            sdc: None,
            ..self.config.clone()
        };
        let mut m = SimModel::build(&single, false, traced, sketch)?;
        let mut free_at = 0u64;
        let mut any = false;
        while let Some(req) = source.next_request()? {
            any = true;
            if req.is_decode() {
                // The serial yardstick has no resident-session machinery;
                // a decode request would queue as a session and never
                // pop. Reject it typed instead of erroring obscurely.
                return Err(ServeError::Unservable {
                    id: req.id,
                    why: "the serial baseline serves encode-only workloads; \
                          generation requests need the batched fleet"
                        .into(),
                });
            }
            // admission check through the same scheduler validation
            let mut probe = BatchScheduler::new(single.policy.clone(), single.synthesis);
            probe.push(req)?;
            let batch = probe.pop_any().ok_or(ServeError::EmptyTrace)?;
            let start = free_at.max(req.arrival_ns);
            let finish = m.dispatch(0, &batch, start)?;
            free_at = finish;
        }
        if !any {
            return Err(ServeError::EmptyTrace);
        }
        let trace = traced.then(|| m.trace.take().expect("traced run records a trace"));
        let responses = collect.then(|| match &m.metrics {
            MetricsAccum::Exact(v) => v.clone(),
            MetricsAccum::Sketch(_) => unreachable!("validated: collect requires exact metrics"),
        });
        Ok(ServeOutcome {
            report: m.into_report(),
            responses,
            trace,
            snapshots: Vec::new(),
            state_hash: None,
        })
    }

    /// Serve `workload` with batching across all cards. Returns the
    /// aggregate report.
    ///
    /// # Errors
    /// Same conditions as [`run`](Self::run).
    #[deprecated(note = "use `Fleet::run` with a `ServePlan`")]
    pub fn serve(&self, workload: &Workload) -> Result<ServeReport, ServeError> {
        Ok(self.run(ServePlan::workload(workload))?.report)
    }

    /// Like `serve`, but also returns the individual completion
    /// records, so callers (property tests, traces) can audit
    /// per-request outcomes — e.g. that hedging never records a request
    /// twice.
    ///
    /// # Errors
    /// Same conditions as [`run`](Self::run).
    #[deprecated(note = "use `Fleet::run` with `ServePlan::collect_responses`")]
    pub fn serve_with_responses(
        &self,
        workload: &Workload,
    ) -> Result<(ServeReport, Vec<ServeResponse>), ServeError> {
        let out = self.run(ServePlan::workload(workload).collect_responses())?;
        Ok((out.report, out.responses.expect("exact-mode run collects responses")))
    }

    /// Like `serve`, but with the fleet-level span recorder armed (see
    /// the module docs). The report is byte-identical to the untraced
    /// run — tracing never perturbs the schedule.
    ///
    /// # Errors
    /// Same conditions as [`run`](Self::run).
    #[deprecated(note = "use `Fleet::run` with `ServePlan::traced`")]
    pub fn serve_traced(
        &self,
        workload: &Workload,
    ) -> Result<(ServeReport, ExecTrace), ServeError> {
        let out = self.run(ServePlan::workload(workload).traced())?;
        Ok((out.report, out.trace.expect("traced run records a trace")))
    }

    /// The serial (one card, no batching) baseline report.
    ///
    /// # Errors
    /// Same conditions as [`run`](Self::run).
    #[deprecated(note = "use `Fleet::run` with `ServePlan::serial_baseline`")]
    pub fn serve_serial_baseline(&self, workload: &Workload) -> Result<ServeReport, ServeError> {
        Ok(self.run(ServePlan::workload(workload).serial_baseline())?.report)
    }
}
