//! The card fleet and the discrete-event queueing simulation.
//!
//! A [`Fleet`] models N identical ProTEA cards, each one a
//! `protea_core::Accelerator` synthesized from the same bitstream. The
//! serving loop is a discrete-event simulation on `protea_hwsim`'s
//! kernel with **nanoseconds** as the tick unit:
//!
//! * an *arrival* event admits a request to the [`BatchScheduler`];
//! * a *dispatch* programs a free card (register writes, plus a weight
//!   reload when the card was last serving a different capacity class),
//!   runs the batch through the unified execution pipeline
//!   (`Accelerator::execute` on a `RunPlan`), and converts the
//!   resulting report latency to a service interval;
//! * a *completion* frees the card and greedily re-dispatches.
//!
//! With a [`FaultConfig`] attached, the same simulation runs under
//! deterministic fault injection: per-card seeded `FaultStream`s feed
//! the driver's fault-aware timing path, unrecoverable faults and card
//! crashes requeue the in-flight batch onto surviving cards (bounded by
//! a per-request attempt budget), and a per-card circuit breaker rests
//! failing cards. Every submitted request ends in exactly one of
//! `completed` or `failed` — none is ever silently dropped. Without a
//! `FaultConfig` the code path is byte-for-byte the fault-free one, so
//! fault-free reports are bit-identical to earlier releases.
//!
//! The overload-control layer rides the same managed simulation: a
//! bounded [`BatchPolicy::max_queue`] plus an optional
//! [`OverloadConfig`] (AIMD concurrency limit, retry budget, hedged
//! dispatch) and per-request deadlines/priorities turn unbounded
//! queueing into *load shedding* with typed accounting — every
//! submitted request ends in exactly one of `completed`, `shed`,
//! `expired`, or `failed`. With none of those knobs set (and no
//! deadlines in the trace) the fault-free fast path is untouched.
//!
//! Everything user-supplied (trace shapes, arrival times) flows through
//! `Result` — a hostile trace can be rejected, never panic.
//!
//! ## Module layout
//!
//! * [`card`] — per-card state: the accelerator, the loaded weight
//!   class, and the reprogram-and-load step every dispatch flavor
//!   shares;
//! * [`sim`] — the mutable DES model (`SimModel`), fault/overload
//!   state, and admission control;
//! * [`dispatch`] — the dispatch, completion, failure, crash, and
//!   hedging event handlers plus the greedy dispatch loop;
//! * [`report`] — final [`ServeReport`] assembly.
//!
//! ## Tracing
//!
//! [`Fleet::serve_traced`] runs the identical simulation with a
//! fleet-level span recorder armed: every reprogram, batch service
//! window, hedge leg, and hedge cancellation lands in a bounded
//! [`ExecTrace`] ring buffer on per-card tracks, exportable as Chrome
//! trace-event JSON. Tracing is observational — the report of a traced
//! run is byte-identical to the untraced one.

mod card;
mod dispatch;
mod report;
mod sim;
#[cfg(test)]
mod tests;

use crate::error::ServeError;
use crate::faults::FaultConfig;
use crate::overload::OverloadConfig;
use crate::report::ServeReport;
use crate::request::ServeResponse;
use crate::scheduler::{BatchPolicy, BatchScheduler};
use crate::trace::Workload;
use dispatch::dispatch_all;
use protea_core::{Accelerator, CoreError, SynthesisConfig};
use protea_hwsim::{Cycles, ExecTrace, Simulator};
use protea_platform::FpgaDevice;
use sim::SimModel;

/// Fleet construction parameters.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of cards (each gets the same bitstream).
    pub cards: usize,
    /// The bitstream all cards are synthesized from.
    pub synthesis: SynthesisConfig,
    /// The device every card is built on.
    pub device: FpgaDevice,
    /// Batching policy.
    pub policy: BatchPolicy,
    /// When `true`, every batch also executes the bit-exact functional
    /// datapath (slow; service time is identical either way because the
    /// timing model is deterministic).
    pub functional: bool,
    /// Host→card weight-reload bandwidth in GB/s (1 GB/s = 1 byte/ns),
    /// pricing the reprogram penalty a batch pays when its card was
    /// serving a different capacity class.
    pub reload_gbps: f64,
    /// Fault injection and graceful-degradation policy. `None` (the
    /// default) is the exact fault-free simulation of earlier releases.
    pub faults: Option<FaultConfig>,
    /// Overload controls (AIMD admission, retry budget, hedging).
    /// `None` — or a config with every knob off — changes nothing.
    pub overload: Option<OverloadConfig>,
    /// Memoize fault-free batch timing per deterministic-plan key
    /// (see [`TimingMemo`](crate::memo::TimingMemo)). Byte-identical
    /// reports either way; `true` (the default) makes large serving
    /// sweeps dramatically cheaper to simulate.
    pub timing_memo: bool,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            cards: 2,
            synthesis: SynthesisConfig::paper_default(),
            device: FpgaDevice::alveo_u55c(),
            policy: BatchPolicy::default(),
            functional: false,
            reload_gbps: 12.0,
            faults: None,
            overload: None,
            timing_memo: true,
        }
    }
}

/// A fleet of simulated ProTEA cards behind one batch scheduler.
#[derive(Debug, Clone)]
pub struct Fleet {
    config: FleetConfig,
}

impl Fleet {
    /// Validate the configuration and build the fleet.
    ///
    /// # Errors
    /// [`ServeError::NoCards`] for an empty fleet;
    /// [`ServeError::Core`] (`Infeasible`) when the bitstream does not
    /// fit the device.
    pub fn try_new(config: FleetConfig) -> Result<Self, ServeError> {
        if config.cards == 0 {
            return Err(ServeError::NoCards);
        }
        if config.reload_gbps.is_nan() || config.reload_gbps <= 0.0 {
            return Err(ServeError::Core(CoreError::InvalidConfig(
                "reload_gbps must be positive".into(),
            )));
        }
        if let Some(f) = &config.faults {
            f.rates.validate().map_err(|m| ServeError::Core(CoreError::InvalidConfig(m)))?;
            if f.max_request_attempts == 0 {
                return Err(ServeError::Core(CoreError::InvalidConfig(
                    "max_request_attempts must be at least 1".into(),
                )));
            }
        }
        if let Some(o) = &config.overload {
            o.validate().map_err(|m| ServeError::Core(CoreError::InvalidConfig(m)))?;
        }
        if config.policy.max_queue == Some(0) {
            return Err(ServeError::Core(CoreError::InvalidConfig(
                "policy.max_queue must be at least 1 when set".into(),
            )));
        }
        // Fail now, not at dispatch time, if the design cannot exist.
        Accelerator::try_new(config.synthesis, &config.device)?;
        Ok(Self { config })
    }

    /// The configuration in force.
    #[must_use]
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Serve `workload` with batching across all cards. Returns the
    /// aggregate report.
    ///
    /// # Errors
    /// [`ServeError::EmptyTrace`] for an empty workload;
    /// [`ServeError::Unservable`] when a request exceeds the synthesized
    /// capacity; [`ServeError::Core`] if the hardware layer rejects a
    /// dispatch (unreachable for admitted requests, but surfaced rather
    /// than unwrapped).
    pub fn serve(&self, workload: &Workload) -> Result<ServeReport, ServeError> {
        Ok(self.run_sim(workload, false)?.into_report())
    }

    /// Like [`serve`](Self::serve), but also returns the individual
    /// completion records, so callers (property tests, traces) can audit
    /// per-request outcomes — e.g. that hedging never records a request
    /// twice.
    ///
    /// # Errors
    /// Same conditions as [`serve`](Self::serve).
    pub fn serve_with_responses(
        &self,
        workload: &Workload,
    ) -> Result<(ServeReport, Vec<ServeResponse>), ServeError> {
        let model = self.run_sim(workload, false)?;
        let responses = model.responses.clone();
        Ok((model.into_report(), responses))
    }

    /// Like [`serve`](Self::serve), but with the fleet-level span
    /// recorder armed: reprograms, batch service windows, hedge legs,
    /// and hedge cancellations land on per-card tracks in the returned
    /// [`ExecTrace`] (export with
    /// [`ExecTrace::to_chrome_json`]). The report is byte-identical to
    /// the untraced run — tracing never perturbs the schedule.
    ///
    /// # Errors
    /// Same conditions as [`serve`](Self::serve).
    pub fn serve_traced(
        &self,
        workload: &Workload,
    ) -> Result<(ServeReport, ExecTrace), ServeError> {
        let mut model = self.run_sim(workload, true)?;
        let trace = model.trace.take().expect("traced run records a trace");
        Ok((model.into_report(), trace))
    }

    fn run_sim(&self, workload: &Workload, traced: bool) -> Result<SimModel, ServeError> {
        if workload.requests.is_empty() {
            return Err(ServeError::EmptyTrace);
        }
        // The managed path carries fault *and* overload machinery; it is
        // entered only when some knob needs it, so a plain fleet keeps
        // the historical fault-free fast path byte-for-byte.
        let managed = self.config.faults.is_some()
            || self.config.overload.as_ref().is_some_and(OverloadConfig::any)
            || self.config.policy.max_queue.is_some()
            || workload.requests.iter().any(|r| r.deadline_ns.is_some());
        let mut model = SimModel::build(&self.config, managed, traced)?;
        let mut sim = Simulator::<SimModel>::new();
        for req in workload.requests.iter().copied() {
            sim.schedule_at(Cycles(req.arrival_ns), move |sim, m: &mut SimModel| {
                if m.error.is_some() {
                    return;
                }
                if m.faulty.is_some() {
                    m.admit(req, sim.now().get());
                } else if let Err(e) = m.scheduler.push(req) {
                    m.error = Some(e);
                    return;
                }
                dispatch_all(sim, m);
            });
        }
        // Card-crash events: each card's crash timestamp is drawn once,
        // up front, so the draw order (and thus the whole run) is
        // deterministic in the seed.
        if let Some(f) = model.faulty.as_mut() {
            f.submitted = workload.requests.len();
            f.track_deadlines = workload.requests.iter().any(|r| r.deadline_ns.is_some());
            let crashes: Vec<(usize, u64)> = f
                .streams
                .iter_mut()
                .enumerate()
                .filter_map(|(card, s)| s.crash_at_ns().map(|at| (card, at)))
                .collect();
            for (card, at) in crashes {
                sim.schedule_at(Cycles(at), move |sim, m: &mut SimModel| {
                    if m.error.is_some() {
                        return;
                    }
                    m.crash_card(card, sim.now().get());
                    dispatch_all(sim, m);
                });
            }
        }
        sim.run(&mut model);
        if let Some(e) = model.error {
            return Err(e);
        }
        Ok(model)
    }

    /// The baseline the batched fleet is judged against: one card, no
    /// batching — every request runs alone (still padded to its bucket),
    /// in arrival order.
    ///
    /// # Errors
    /// Same conditions as [`serve`](Self::serve).
    pub fn serve_serial_baseline(&self, workload: &Workload) -> Result<ServeReport, ServeError> {
        if workload.requests.is_empty() {
            return Err(ServeError::EmptyTrace);
        }
        let single = FleetConfig { cards: 1, ..self.config.clone() };
        let mut m = SimModel::build(&single, false, false)?;
        let mut free_at = 0u64;
        for req in &workload.requests {
            // admission check through the same scheduler validation
            let mut probe = BatchScheduler::new(single.policy.clone(), single.synthesis);
            probe.push(*req)?;
            let batch = probe.pop_any().ok_or(ServeError::EmptyTrace)?;
            let start = free_at.max(req.arrival_ns);
            let finish = m.dispatch(0, &batch, start)?;
            free_at = finish;
        }
        Ok(m.into_report())
    }
}
