//! Per-card state and the reprogram-and-load step every dispatch
//! flavor shares.
//!
//! Historically the fault-free and fault-injected dispatch paths each
//! carried their own copy of the "same class? otherwise count a
//! reprogram, price the reload DMA, and re-image the weights" block.
//! [`SimModel::prepare_card`] is that block, once — both paths (and any
//! future one) call it, so the reprogram accounting and the trace span
//! it emits can never drift apart.

use super::sim::{record_span, SimModel};
use crate::error::ServeError;
use crate::request::CapacityClass;
use crate::scheduler::Batch;
use protea_core::{Accelerator, CoreError};
use protea_hwsim::SpanKind;
use protea_model::{EncoderConfig, EncoderWeights, QuantSchedule, QuantizedEncoder};

/// One simulated ProTEA card: the accelerator instance, which capacity
/// class's weights it currently carries, and its busy accounting.
pub(super) struct Card {
    pub(super) accel: Accelerator,
    pub(super) loaded_class: Option<CapacityClass>,
    pub(super) busy: bool,
    pub(super) busy_ns: u64,
    /// The device's relative throughput weight
    /// ([`FpgaDevice::relative_capacity`](protea_platform::FpgaDevice::relative_capacity)),
    /// read by capacity-aware placement.
    pub(super) capacity: f64,
}

impl SimModel {
    /// Deterministic per-class weight image (cached; the simulation
    /// models weight *movement*, so contents only matter for the
    /// functional mode's bit-exactness).
    pub(super) fn weights_for(&mut self, class: CapacityClass) -> &QuantizedEncoder {
        self.weights.entry(class).or_insert_with(|| {
            let cfg = EncoderConfig::new(class.d_model, class.heads, class.layers, 8);
            let seed = 0x5eed
                ^ (class.d_model as u64) << 32
                ^ (class.heads as u64) << 16
                ^ class.layers as u64;
            QuantizedEncoder::from_float(&EncoderWeights::random(cfg, seed), QuantSchedule::paper())
        })
    }

    /// DMA time to re-image a card with `class`'s weights.
    pub(super) fn reload_ns(&self, class: CapacityClass) -> u64 {
        let d = class.d_model as u64;
        let f = 4 * d; // ffn_mult = 4 throughout the serving model
        let per_layer = 4 * d * d + 2 * d * f + (3 * d + d + f + d) * 4;
        let bytes = per_layer * class.layers as u64;
        (bytes as f64 / self.reload_gbps) as u64
    }

    /// Program `card`'s registers for `batch` and ensure it carries the
    /// batch's class weights, counting a reprogram (and pricing the
    /// reload DMA) when the class changed. Returns the reload time in
    /// ns (zero on a warm card). Emits a [`SpanKind::Reprogram`] span
    /// over the reload window when tracing is armed.
    pub(super) fn prepare_card(
        &mut self,
        card: usize,
        batch: &Batch,
        now_ns: u64,
    ) -> Result<u64, ServeError> {
        let class = batch.requests[0].class();
        let warm = self.cards[card].loaded_class == Some(class);
        let reload_ns = if warm {
            0
        } else {
            self.reprograms += 1;
            self.reload_ns(class)
        };
        let weights = (!warm).then(|| self.weights_for(class).clone());
        let c = &mut self.cards[card];
        c.accel.program(batch.runtime).map_err(CoreError::from)?;
        if let Some(w) = weights {
            c.accel.try_load_weights(w)?;
            c.loaded_class = Some(class);
        }
        record_span(
            &mut self.trace,
            format!("reprogram d{} h{} l{}", class.d_model, class.heads, class.layers),
            SpanKind::Reprogram,
            card,
            now_ns,
            now_ns.saturating_add(reload_ns),
        );
        Ok(reload_ns)
    }
}
