//! Final [`ServeReport`] assembly from the finished simulation model.

use super::sim::{MetricsAccum, SimModel};
use crate::health::CardMonitor;
use crate::report::{FaultOutcome, PrioritySlo, ServeReport, TenantSlo};
use crate::request::Priority;

impl SimModel {
    /// Fold the finished run into its aggregate report. Memo counters
    /// ride along as observability fields — they never participate in
    /// report equality, so memoized and unmemoized runs stay
    /// byte-identical where it matters.
    pub(super) fn into_report(self) -> ServeReport {
        let (memo_hits, memo_misses) =
            self.memo.as_ref().map_or((0, 0), |m| (m.hits(), m.misses()));
        let busy: Vec<u64> = self.cards.iter().map(|c| c.busy_ns).collect();
        let report = match &self.metrics {
            MetricsAccum::Exact(responses) => ServeReport::from_responses(
                responses,
                self.ops_total,
                self.batches,
                self.reprograms,
                &busy,
            ),
            MetricsAccum::Sketch(stream) => ServeReport::from_stream(
                stream,
                self.ops_total,
                self.batches,
                self.reprograms,
                &busy,
            ),
        };
        // Session state is read before the faulty match partially moves
        // `self`; the token fields land after the fold so with_faults
        // cannot clobber them.
        let gen = self.sessions;
        let mut report = match self.faulty {
            None => report,
            Some(mut f) => {
                if let Some(s) = f.sdc.as_mut() {
                    // Resident corruption still undetected when the run
                    // ends was never caught by any rung: missed.
                    s.missed += s.dirty.iter().map(|&d| u64::from(d)).sum::<u64>();
                    s.dirty.iter_mut().for_each(|d| *d = 0);
                }
                let slo: Vec<PrioritySlo> = Priority::ALL
                    .iter()
                    .map(|&p| PrioritySlo {
                        priority: p,
                        submitted: f.prio_submitted[p.index()],
                        completed: f.prio_completed[p.index()],
                        within_deadline: f.prio_good[p.index()],
                    })
                    .filter(|s| s.submitted > 0)
                    .collect();
                // Tenant rows appear only when tenancy was visible — a
                // policy installed, or traffic tagged with a nonzero
                // tenant id — so a managed single-tenant run's report
                // stays byte-identical to the pre-tenancy era.
                let visible = f.tenant_policy.is_some() || f.tenants.keys().any(|&t| t != 0);
                let tenant_slo: Vec<TenantSlo> = if visible {
                    f.tenants
                        .iter()
                        .map(|(&tenant, l)| TenantSlo {
                            tenant,
                            submitted: l.submitted,
                            completed: l.completed,
                            shed: l.shed,
                            expired: l.expired,
                            failed: l.failed,
                            within_deadline: l.good,
                        })
                        .collect()
                } else {
                    Vec::new()
                };
                report.with_faults(FaultOutcome {
                    submitted: f.submitted,
                    failed: f.failed,
                    retried: f.retried,
                    crashes: f.crashes,
                    faults: f.stats,
                    card_health: f.monitors.iter().map(CardMonitor::health).collect(),
                    shed: f.shed,
                    expired: f.expired,
                    completed_in_deadline: f.track_deadlines.then_some(f.good_completions),
                    hedges: f.hedges,
                    hedge_wins: f.hedge_wins,
                    hedge_cancels: f.hedge_cancels,
                    slo,
                    joins: f.joins,
                    drains: f.drains,
                    tenant_slo,
                    sdc_injected: f.sdc.as_ref().map_or(0, |s| s.injected),
                    sdc_detected: f.sdc.as_ref().map_or(0, |s| s.detected),
                    sdc_missed: f.sdc.as_ref().map_or(0, |s| s.missed),
                    re_execs: f.sdc.as_ref().map_or(0, |s| s.re_execs),
                    scrubs: f.sdc.as_ref().map_or(0, |s| s.scrubs),
                })
            }
        };
        if let Some(st) = gen {
            let span = if report.makespan_s > 0.0 { report.makespan_s } else { f64::MIN_POSITIVE };
            report.tokens_requested = st.tokens_requested;
            report.tokens_emitted = st.tokens_emitted;
            report.tokens_shed = st.tokens_shed;
            report.tokens_on_time = st.tokens_on_time;
            report.tokens_per_s = st.tokens_emitted as f64 / span;
            report.prefill_ms_mean = if st.prefill_count == 0 {
                0.0
            } else {
                st.prefill_ns_sum as f64 / 1e6 / st.prefill_count as f64
            };
            report.decode_ms_per_token = if st.decode_tokens == 0 {
                0.0
            } else {
                st.decode_ns_sum as f64 / 1e6 / st.decode_tokens as f64
            };
        }
        report.memo_hits = memo_hits;
        report.memo_misses = memo_misses;
        report
    }
}
