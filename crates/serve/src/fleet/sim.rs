//! The mutable DES model: per-run state, fault/overload bookkeeping,
//! and admission control.
//!
//! [`SimModel`] is the single state value the event kernel mutates.
//! Construction ([`SimModel::build`]) decides once whether the run is
//! *managed* (fault injection, overload control, deadlines, or a
//! bounded queue) — an unmanaged run never allocates any of that
//! machinery and follows the historical fault-free path byte-for-byte.

use super::card::Card;
use super::FleetConfig;
use crate::elastic::{BrownoutLadder, PlacementPolicy, TenantPolicy};
use crate::error::ServeError;
use crate::faults::{FailReason, FailedRequest, FaultConfig};
use crate::health::{CardHealth, CardMonitor, CircuitBreaker};
use crate::memo::TimingMemo;
use crate::overload::{AimdLimiter, HedgeConfig, RetryBudget, ServiceTimeTracker};
use crate::request::{CapacityClass, ServeRequest, ServeResponse};
use crate::scheduler::{Batch, BatchScheduler};
use crate::sketch::StreamMetrics;
use protea_core::SdcStream;
use protea_core::{Accelerator, FaultStats, FaultStream};
use protea_hwsim::exec_trace::{track, ExecTrace, SpanKind};
use protea_mem::{KvResidency, KvSpec};
use protea_model::QuantizedEncoder;
use std::collections::BTreeMap;

/// How completions accumulate into the final report: exact responses
/// (O(completed) memory, byte-identical to the historical path) or the
/// O(1) streaming log-histogram sketch.
pub(super) enum MetricsAccum {
    /// Keep every [`ServeResponse`]; percentiles are exact nearest-rank.
    Exact(Vec<ServeResponse>),
    /// Fold each response into [`StreamMetrics`] and drop it.
    Sketch(StreamMetrics),
}

impl MetricsAccum {
    pub(super) fn record(&mut self, resp: ServeResponse) {
        match self {
            MetricsAccum::Exact(v) => v.push(resp),
            MetricsAccum::Sketch(s) => s.record(&resp),
        }
    }
}

/// All mutable simulation state (the DES model type).
pub(super) struct SimModel {
    pub(super) scheduler: BatchScheduler,
    pub(super) cards: Vec<Card>,
    pub(super) metrics: MetricsAccum,
    pub(super) weights: BTreeMap<CapacityClass, QuantizedEncoder>,
    pub(super) functional: bool,
    pub(super) reload_gbps: f64,
    pub(super) ops_total: u64,
    pub(super) batches: u64,
    pub(super) reprograms: u64,
    pub(super) next_flush: Option<u64>,
    pub(super) error: Option<ServeError>,
    /// How the dispatch loop picks among free cards;
    /// [`PlacementPolicy::FirstFree`] reproduces the historical scan.
    pub(super) placement: PlacementPolicy,
    /// Fault-injection state; `None` keeps the exact fault-free path.
    pub(super) faulty: Option<FaultState>,
    /// Timing cache for the fault-free dispatch path (`None` = off).
    pub(super) memo: Option<TimingMemo>,
    /// Fleet-level span recorder (`None` = untraced; recording is
    /// observational and never perturbs the schedule).
    pub(super) trace: Option<ExecTrace>,
    /// Autoregressive generation state, allocated lazily on the first
    /// decode-tagged request — encoder-only runs never touch it.
    pub(super) sessions: Option<SessionState>,
    /// Per-card KV byte budgets (half of each card's DRAM), fixed at
    /// build so lazy session allocation never re-resolves the roster.
    pub(super) kv_budgets: Vec<u64>,
}

/// Everything the continuous-batching generation layer tracks: one
/// running generation batch per card, per-card KV residency, the token
/// conservation ledger, and the phase latency accumulators.
pub(super) struct SessionState {
    /// The generation batch running on each card, if any.
    pub(super) cards: Vec<Option<CardGen>>,
    /// Per-card resident-KV accounting; a session reserves its
    /// worst-case footprint at batch start and releases it on retire.
    pub(super) kv: Vec<KvResidency>,
    /// Decode tokens asked for by every admitted generation request.
    pub(super) tokens_requested: u64,
    /// Decode tokens actually emitted.
    pub(super) tokens_emitted: u64,
    /// Decode tokens never emitted because their request was shed,
    /// expired, failed, or crashed mid-generation. The conservation law
    /// `tokens_emitted + tokens_shed == tokens_requested` holds at the
    /// end of every run.
    pub(super) tokens_shed: u64,
    /// Emitted tokens that met their per-token deadline (tokens with no
    /// deadline count vacuously).
    pub(super) tokens_on_time: u64,
    /// Summed prefill window cost (ns) and number of prefilled prompts.
    pub(super) prefill_ns_sum: u64,
    pub(super) prefill_count: u64,
    /// Summed decode round cost (ns) and tokens generated in them.
    pub(super) decode_ns_sum: u64,
    pub(super) decode_tokens: u64,
}

impl SessionState {
    fn new(cards: usize, kv_budgets: &[u64]) -> Self {
        Self {
            cards: (0..cards).map(|_| None).collect(),
            kv: kv_budgets.iter().map(|&b| KvResidency::new(b)).collect(),
            tokens_requested: 0,
            tokens_emitted: 0,
            tokens_shed: 0,
            tokens_on_time: 0,
            prefill_ns_sum: 0,
            prefill_count: 0,
            decode_ns_sum: 0,
            decode_tokens: 0,
        }
    }
}

/// The generation batch resident on one card: the sessions decoding in
/// lockstep, the class/prompt bucket new joiners must match, and
/// whether the next `Generate` event has a token step to bank.
pub(super) struct CardGen {
    /// The batch's capacity class (what the card is programmed for).
    pub(super) class: CapacityClass,
    /// The padded prompt bucket the batch was formed at (joiners must
    /// match it so the register file never reprograms mid-generation).
    pub(super) padded_prompt: usize,
    /// Whether the window ending at the next `Generate` event emits a
    /// token for every active session (false for the initial
    /// prefill-only window).
    pub(super) pending_step: bool,
    /// The sessions currently decoding on this card.
    pub(super) sessions: Vec<GenSession>,
}

/// One in-flight generation session.
pub(super) struct GenSession {
    pub(super) req: ServeRequest,
    /// When the session's batch started service (prefill start).
    pub(super) start_ns: u64,
    /// Tokens emitted so far.
    pub(super) emitted: u32,
    /// When the previous token was emitted (arrival before the first) —
    /// the base of the next per-token deadline.
    pub(super) last_emit_ns: u64,
    /// Tokens that met their per-token deadline.
    pub(super) on_time: u32,
}

/// The worst-case KV footprint of a generation request: self-attention
/// rows grow to prompt + decode steps; the cross-attention cache spans
/// the prompt-length encoder memory. Deterministic in the request
/// alone, so snapshot restore re-derives reservations exactly.
pub(super) fn kv_spec(req: &ServeRequest) -> KvSpec {
    KvSpec {
        layers: req.layers,
        d_model: req.d_model,
        self_rows: req.seq_len + req.decode_steps as usize,
        cross_rows: req.seq_len,
    }
}

/// Everything the fault-injected simulation tracks on top of the
/// fault-free model.
pub(super) struct FaultState {
    pub(super) watchdog: protea_core::Watchdog,
    pub(super) retry: protea_core::RetryPolicy,
    pub(super) max_request_attempts: u32,
    /// One seeded fault source per card.
    pub(super) streams: Vec<FaultStream>,
    /// Per-card health + circuit breaker.
    pub(super) monitors: Vec<CardMonitor>,
    /// Per-card dispatch epoch. The DES kernel cannot cancel scheduled
    /// events, so a crash bumps the card's epoch and any in-flight
    /// completion/failure event that captured the old epoch no-ops.
    pub(super) epochs: Vec<u64>,
    /// The batch currently running on each card, held so a crash or
    /// failure can requeue it.
    pub(super) inflight: Vec<Option<Inflight>>,
    /// Failed dispatch attempts per request id (bounds requeues).
    pub(super) attempts: BTreeMap<u64, u32>,
    pub(super) failed: Vec<FailedRequest>,
    pub(super) retried: u64,
    pub(super) crashes: u64,
    pub(super) stats: FaultStats,
    pub(super) submitted: usize,
    /// Dedup for scheduled circuit-breaker cooldown wake-ups.
    pub(super) breaker_wake: Option<u64>,
    // --- overload control (all optional; defaults change nothing) ---
    /// AIMD concurrency limiter over requests in the system.
    pub(super) limiter: Option<AimdLimiter>,
    /// Fleet-wide token bucket bounding post-fault requeues.
    pub(super) retry_budget: Option<RetryBudget>,
    /// Hedged-dispatch policy.
    pub(super) hedge: Option<HedgeConfig>,
    /// Observed batch service times, feeding the p99 hedge delay.
    pub(super) svc: ServiceTimeTracker,
    /// Requests shed at admission (queue cap / concurrency limit).
    pub(super) shed: Vec<FailedRequest>,
    /// Requests dropped in queue at their deadline.
    pub(super) expired: Vec<FailedRequest>,
    /// Per-priority submitted/completed/deadline-met counters, indexed
    /// by [`Priority::index`](crate::request::Priority::index).
    pub(super) prio_submitted: [usize; 3],
    pub(super) prio_completed: [usize; 3],
    pub(super) prio_good: [usize; 3],
    /// Completions that met their deadline.
    pub(super) good_completions: usize,
    /// Whether any request in the workload carries a deadline (gates
    /// expiry sweeps and goodput-vs-throughput reporting).
    pub(super) track_deadlines: bool,
    /// Monotone dispatch id; a hedge leg shares its primary's seq.
    pub(super) batch_seq: u64,
    pub(super) hedges: u64,
    pub(super) hedge_wins: u64,
    pub(super) hedge_cancels: u64,
    /// Dedup for scheduled request-deadline wake-ups.
    pub(super) deadline_wake: Option<u64>,
    // --- elasticity (churn, tenancy, brownout; defaults change nothing) ---
    /// Whether each roster slot currently holds a card. A non-churn run
    /// has every slot present for its whole life.
    pub(super) present: Vec<bool>,
    /// Slots refusing new batches while their in-flight work finishes.
    pub(super) draining: Vec<bool>,
    /// Scripted joins not yet fired — a fleet with a join pending is
    /// not dead even when every present card is.
    pub(super) pending_joins: usize,
    /// The breaker template, kept so a joining card gets a fresh
    /// monitor with the configured thresholds.
    pub(super) breaker: CircuitBreaker,
    /// Cards that (re)joined at runtime.
    pub(super) joins: u64,
    /// Cards that drained out cleanly at runtime.
    pub(super) drains: u64,
    /// Per-tenant conservation ledger. Tenant `0` is the default; the
    /// map stays empty until the first managed submission.
    pub(super) tenants: BTreeMap<u32, TenantLedger>,
    /// Per-tenant service classes (`None`: trace stamps rule).
    pub(super) tenant_policy: Option<TenantPolicy>,
    /// Brownout admission ladder (`None`: never browns out).
    pub(super) brownout: Option<BrownoutLadder>,
    // --- silent-data-corruption defense (`None` changes nothing) ---
    /// SDC injection/detection/recovery state; allocated only when the
    /// config arms at least one SDC knob.
    pub(super) sdc: Option<SdcState>,
}

/// Everything the SDC defense layer tracks: per-card corruption
/// streams, resident-corruption and quarantine flags, the in-flight
/// draw, and the five report counters.
pub(super) struct SdcState {
    /// Verify ABFT checksums in every GEMM epilogue (charged on service
    /// time; detects activation-site hits in checksummed compute).
    pub(super) abft: bool,
    /// Periodic weight-digest scrub interval, if armed.
    pub(super) scrub_every_ns: Option<u64>,
    /// One seeded corruption source per card.
    pub(super) streams: Vec<SdcStream>,
    /// Cards locked out while their quarantine reprogram+reload runs;
    /// the pending `Requalify` event releases the flag.
    pub(super) quarantined: Vec<bool>,
    /// Undetected weight-site hits resident on each card — corrupt
    /// SRAM that keeps poisoning batches until a digest rung (load,
    /// reprogram, scrub) catches it.
    pub(super) dirty: Vec<u32>,
    /// The SDC draw for the batch in flight on each card:
    /// `Some(detected)` when it was hit, resolved at completion.
    pub(super) pending: Vec<Option<bool>>,
    /// Dedup for the scheduled scrub event (mirrors `breaker_wake`).
    pub(super) scrub_armed: Option<u64>,
    /// Dispatch seqs that are re-executions of a detected batch: a
    /// second detection on the same work escalates to quarantine
    /// instead of re-executing forever.
    pub(super) reexec: std::collections::BTreeSet<u64>,
    /// Batches struck by an injected corruption.
    pub(super) injected: u64,
    /// Hits caught by a detection rung (ABFT, digest, scrub).
    pub(super) detected: u64,
    /// Hits served to completion undetected — silently wrong results.
    pub(super) missed: u64,
    /// Batches re-executed after a detection.
    pub(super) re_execs: u64,
    /// Scrub sweeps performed.
    pub(super) scrubs: u64,
}

/// Per-tenant accounting: the same conservation law the fleet-wide
/// report obeys (`completed + shed + expired + failed == submitted`),
/// kept per tenant id.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(super) struct TenantLedger {
    pub(super) submitted: usize,
    pub(super) completed: usize,
    pub(super) shed: usize,
    pub(super) expired: usize,
    pub(super) failed: usize,
    /// Completions that met their deadline (vacuously counted without
    /// one).
    pub(super) good: usize,
}

impl FaultState {
    /// The (lazily created) conservation ledger for `tenant`.
    pub(super) fn ledger(&mut self, tenant: u32) -> &mut TenantLedger {
        self.tenants.entry(tenant).or_default()
    }
}

pub(super) struct Inflight {
    pub(super) batch: Batch,
    /// Dispatch id, shared by the two legs of a hedged pair.
    pub(super) seq: u64,
    /// When the scheduled completion/failure event will fire — the
    /// busy time refunded if this leg is cancelled by a hedge win.
    pub(super) resolve_ns: u64,
    /// Whether this leg is the hedge (second) dispatch of its seq.
    pub(super) is_hedge: bool,
    /// The card running the other leg of this seq, if hedged.
    pub(super) partner: Option<usize>,
}

/// Record a fleet-level span on `card`'s track, if tracing is armed.
/// Zero-length spans are skipped (nothing happened). A free function
/// over the `Option` so callers can record while other `SimModel`
/// fields are mutably borrowed.
pub(super) fn record_span(
    trace: &mut Option<ExecTrace>,
    name: String,
    kind: SpanKind,
    card: usize,
    start_ns: u64,
    end_ns: u64,
) {
    if let Some(tr) = trace.as_mut() {
        if end_ns > start_ns {
            tr.push(name, kind, track::CARD0 + card as u32, start_ns, end_ns);
        }
    }
}

impl SimModel {
    pub(super) fn build(
        config: &FleetConfig,
        managed: bool,
        traced: bool,
        sketch: bool,
    ) -> Result<Self, ServeError> {
        let mut cards = Vec::with_capacity(config.cards);
        let mut kv_budgets = Vec::with_capacity(config.cards);
        for device in config.resolved_roster() {
            // Half of each card's DRAM is carved out for resident KV
            // caches; weights and activations own the other half.
            kv_budgets.push(device.dram_capacity_bytes() / 2);
            cards.push(Card {
                accel: Accelerator::try_new(config.synthesis, &device)?,
                loaded_class: None,
                busy: false,
                busy_ns: 0,
                capacity: device.relative_capacity(),
            });
        }
        // A managed run without an explicit `FaultConfig` uses the
        // zero-rate default, which is proven to reproduce the fault-free
        // schedule bit-exactly — overload control never perturbs timing.
        let fault_default = FaultConfig::default();
        let f = config.faults.as_ref().unwrap_or(&fault_default);
        let ov = config.overload.unwrap_or_default();
        let faulty = managed.then(|| FaultState {
            watchdog: f.watchdog,
            retry: f.retry,
            max_request_attempts: f.max_request_attempts,
            streams: (0..config.cards)
                .map(|card| {
                    FaultStream::seeded(f.seed, card, f.rates).with_events(
                        f.events.iter().filter(|e| e.card == card).map(|e| (e.at_ns, e.kind)),
                    )
                })
                .collect(),
            monitors: vec![CardMonitor::new(f.breaker); config.cards],
            epochs: vec![0; config.cards],
            inflight: (0..config.cards).map(|_| None).collect(),
            attempts: BTreeMap::new(),
            failed: Vec::new(),
            retried: 0,
            crashes: 0,
            stats: FaultStats::default(),
            submitted: 0,
            breaker_wake: None,
            limiter: ov.aimd.map(AimdLimiter::new),
            retry_budget: ov.retry_budget.map(RetryBudget::new),
            hedge: ov.hedge,
            svc: ServiceTimeTracker::default(),
            shed: Vec::new(),
            expired: Vec::new(),
            prio_submitted: [0; 3],
            prio_completed: [0; 3],
            prio_good: [0; 3],
            good_completions: 0,
            track_deadlines: false,
            batch_seq: 0,
            hedges: 0,
            hedge_wins: 0,
            hedge_cancels: 0,
            deadline_wake: None,
            present: vec![true; config.cards],
            draining: vec![false; config.cards],
            pending_joins: 0,
            breaker: f.breaker,
            joins: 0,
            drains: 0,
            tenants: BTreeMap::new(),
            tenant_policy: config.tenants.clone(),
            brownout: config.brownout,
            sdc: config.sdc.as_ref().filter(|s| s.armed()).map(|s| SdcState {
                abft: s.abft,
                scrub_every_ns: s.scrub_every_ns,
                streams: (0..config.cards)
                    .map(|card| {
                        SdcStream::seeded(s.seed, card, s.rate, s.weight_fraction).with_events(
                            s.events.iter().filter(|e| e.card == card).map(|e| (e.at_ns, e.site)),
                        )
                    })
                    .collect(),
                quarantined: vec![false; config.cards],
                dirty: vec![0; config.cards],
                pending: vec![None; config.cards],
                scrub_armed: None,
                reexec: std::collections::BTreeSet::new(),
                injected: 0,
                detected: 0,
                missed: 0,
                re_execs: 0,
                scrubs: 0,
            }),
        });
        Ok(Self {
            scheduler: BatchScheduler::new(config.policy.clone(), config.synthesis),
            cards,
            metrics: if sketch {
                MetricsAccum::Sketch(StreamMetrics::new())
            } else {
                MetricsAccum::Exact(Vec::new())
            },
            weights: BTreeMap::new(),
            functional: config.functional,
            reload_gbps: config.reload_gbps,
            ops_total: 0,
            batches: 0,
            reprograms: 0,
            next_flush: None,
            error: None,
            placement: config.placement,
            faulty,
            // Memo keys carry no device, so memoization is only sound
            // when every card prices a batch identically.
            memo: (config.timing_memo && config.uniform_roster()).then(TimingMemo::new),
            trace: traced.then(ExecTrace::new),
            sessions: None,
            kv_budgets,
        })
    }

    /// The generation state, allocated on first touch (an encoder-only
    /// run never allocates it, so its snapshots stay pre-v4).
    pub(super) fn sessions_mut(&mut self) -> &mut SessionState {
        let cards = self.cards.len();
        self.sessions.get_or_insert_with(|| SessionState::new(cards, &self.kv_budgets))
    }

    /// Charge the never-to-be-emitted remainder of a generation
    /// request's tokens to the shed side of the conservation ledger —
    /// called on every terminal path that is not a completed session
    /// (admission shed/expiry/failure, queue expiry, dead-fleet drain,
    /// KV-capacity shed, mid-generation crash). No-op for one-shots.
    pub(super) fn shed_session_tokens(&mut self, req: &ServeRequest, emitted: u32) {
        if !req.is_decode() {
            return;
        }
        let remaining = u64::from(req.decode_steps.saturating_sub(emitted));
        self.sessions_mut().tokens_shed += remaining;
    }

    /// Whether the fleet can never serve another request: every roster
    /// slot is absent or dead *and* no scripted join is still pending.
    /// Vacuously false without fault state; a non-churn run (all slots
    /// present, no pending joins) reduces to the historical "every
    /// monitor is dead".
    pub(super) fn all_cards_dead(&self) -> bool {
        self.faulty.as_ref().is_some_and(|f| {
            f.pending_joins == 0
                && f.monitors
                    .iter()
                    .enumerate()
                    .all(|(i, m)| !f.present[i] || m.health() == CardHealth::Dead)
        })
    }

    /// Fraction of roster slots holding a live card (present, not
    /// draining, not dead) — the brownout ladder's input. `1.0` without
    /// fault state.
    pub(super) fn live_fraction(&self) -> f64 {
        let Some(f) = self.faulty.as_ref() else { return 1.0 };
        if self.cards.is_empty() {
            return 0.0;
        }
        let live = (0..self.cards.len())
            .filter(|&i| {
                f.present[i] && !f.draining[i] && f.monitors[i].health() != CardHealth::Dead
            })
            .count();
        live as f64 / self.cards.len() as f64
    }

    /// Whether `card` may take a new batch right now: idle and (under
    /// fault state) present, not draining, alive with a closed or
    /// cooled-down circuit.
    fn dispatchable(&self, card: usize, now_ns: u64) -> bool {
        !self.cards[card].busy
            && self.faulty.as_ref().is_none_or(|f| {
                f.present[card]
                    && !f.draining[card]
                    && f.monitors[card].available(now_ns)
                    && f.sdc.as_ref().is_none_or(|s| !s.quarantined[card])
            })
    }

    /// The card the placement policy picks for the next batch, among
    /// the dispatchable ones. [`PlacementPolicy::FirstFree`] is the
    /// historical lowest-index scan; every other policy breaks ties to
    /// the lowest index so runs stay deterministic.
    pub(super) fn free_card(&self, now_ns: u64) -> Option<usize> {
        let mut candidates = (0..self.cards.len()).filter(|&i| self.dispatchable(i, now_ns));
        match self.placement {
            PlacementPolicy::FirstFree => candidates.next(),
            PlacementPolicy::FastestFirst => candidates.max_by(|&a, &b| {
                let fa = self.cards[a].accel.design().fmax_mhz;
                let fb = self.cards[b].accel.design().fmax_mhz;
                fa.partial_cmp(&fb).expect("fmax is finite").then(b.cmp(&a)) // equal clocks: prefer the lower index
            }),
            PlacementPolicy::LeastLoaded => candidates.min_by_key(|&i| (self.cards[i].busy_ns, i)),
            PlacementPolicy::CapacityAware => candidates.min_by(|&a, &b| {
                let la = self.cards[a].busy_ns as f64 / self.cards[a].capacity;
                let lb = self.cards[b].busy_ns as f64 / self.cards[b].capacity;
                la.partial_cmp(&lb).expect("capacity is positive").then(a.cmp(&b))
            }),
        }
    }

    /// Count of requests queued or in flight (hedge legs are duplicate
    /// work, not extra requests, so they do not count).
    pub(super) fn in_system(&self) -> usize {
        let inflight: usize = self.faulty.as_ref().map_or(0, |f| {
            f.inflight.iter().flatten().filter(|i| !i.is_hedge).map(|i| i.batch.len()).sum()
        });
        let generating: usize = self
            .sessions
            .as_ref()
            .map_or(0, |s| s.cards.iter().flatten().map(|g| g.sessions.len()).sum());
        self.scheduler.pending() + inflight + generating
    }

    /// Managed admission: tenant-class stamping, per-priority and
    /// per-tenant accounting, dead-fleet / arrival-past-deadline /
    /// brownout checks, the AIMD concurrency gate, then the (possibly
    /// bounded) scheduler push. Every rejected request is recorded with
    /// a typed reason — nothing is silently dropped — and every
    /// outcome lands in exactly one bucket of its tenant's ledger.
    pub(super) fn admit(&mut self, mut req: ServeRequest, now_ns: u64) {
        if req.is_decode() {
            // Every decode token a generation request asks for enters
            // the conservation ledger here, before any outcome branch —
            // whichever way the request leaves the system, its tokens
            // resolve as emitted or shed, never lost.
            self.sessions_mut().tokens_requested += u64::from(req.decode_steps);
        }
        {
            let f = self.faulty.as_mut().expect("managed admission requires fault state");
            // The tenant policy rewrites the request's service class
            // *before* any accounting, so submitted/shed tallies agree
            // with the class the request actually ran under.
            if let Some(policy) = f.tenant_policy.as_ref() {
                let class = policy.class_for(req.tenant);
                req.priority = class.priority;
                req.deadline_ns = class.deadline_rel_ns.map(|d| req.arrival_ns.saturating_add(d));
            }
            f.prio_submitted[req.priority.index()] += 1;
            f.ledger(req.tenant).submitted += 1;
        }
        if self.all_cards_dead() {
            // Nothing can ever serve this request — fail it with a
            // typed reason rather than queueing it forever.
            self.shed_session_tokens(&req, 0);
            let f = self.faulty.as_mut().expect("fault state");
            f.failed.push(FailedRequest { id: req.id, reason: FailReason::AllCardsDead });
            f.ledger(req.tenant).failed += 1;
            return;
        }
        if req.expired_at(now_ns) {
            // Already dead on arrival: never let it touch a queue.
            self.shed_session_tokens(&req, 0);
            let f = self.faulty.as_mut().expect("fault state");
            f.expired.push(FailedRequest { id: req.id, reason: FailReason::DeadlineExpired });
            f.ledger(req.tenant).expired += 1;
            return;
        }
        let live = self.live_fraction();
        let f = self.faulty.as_mut().expect("fault state");
        if let Some(floor) = f.brownout.and_then(|b| b.floor(live)) {
            if req.priority < floor {
                // Brownout: capacity has dropped below the ladder's
                // threshold, and this class is below the raised floor.
                f.shed.push(FailedRequest { id: req.id, reason: FailReason::Brownout });
                f.ledger(req.tenant).shed += 1;
                self.shed_session_tokens(&req, 0);
                return;
            }
        }
        let in_system = self.in_system();
        let f = self.faulty.as_mut().expect("fault state");
        if f.limiter.as_ref().is_some_and(|l| !l.admits(in_system)) {
            // Priority-ordered shedding: before bouncing the newcomer,
            // displace a queued request of strictly lower priority (the
            // youngest of the lowest class) — net requests in system
            // stays within the limit either way.
            match self.scheduler.evict_lower_priority(req.priority) {
                Some(victim) => {
                    let f = self.faulty.as_mut().expect("fault state");
                    f.shed.push(FailedRequest { id: victim.id, reason: FailReason::Shed });
                    f.ledger(victim.tenant).shed += 1;
                }
                None => {
                    f.shed.push(FailedRequest { id: req.id, reason: FailReason::Shed });
                    f.ledger(req.tenant).shed += 1;
                    self.shed_session_tokens(&req, 0);
                    return;
                }
            }
        }
        match self.scheduler.push(req) {
            Ok(victim) => {
                let f = self.faulty.as_mut().expect("fault state");
                if let Some(b) = f.retry_budget.as_mut() {
                    b.on_admission();
                }
                if let Some(v) = victim {
                    f.shed.push(FailedRequest { id: v.id, reason: FailReason::Shed });
                    f.ledger(v.tenant).shed += 1;
                    self.shed_session_tokens(&v, 0);
                }
            }
            Err(ServeError::Overloaded { id, .. }) => {
                // The scheduler bounced the incoming request itself.
                let f = self.faulty.as_mut().expect("fault state");
                f.shed.push(FailedRequest { id, reason: FailReason::Shed });
                f.ledger(req.tenant).shed += 1;
                self.shed_session_tokens(&req, 0);
            }
            Err(e) => self.error = Some(e),
        }
    }

    /// Drop every queued request whose deadline has passed, recording
    /// each as expired. Expiries are the queue-congestion signal the
    /// AIMD limiter backs off on (once per sweep that shed anything).
    pub(super) fn shed_expired(&mut self, now_ns: u64) {
        if self.faulty.as_ref().is_none_or(|f| !f.track_deadlines) {
            return;
        }
        let expired = self.scheduler.take_expired(now_ns);
        if expired.is_empty() {
            return;
        }
        for r in &expired {
            self.shed_session_tokens(r, 0);
        }
        let f = self.faulty.as_mut().expect("fault state");
        for r in &expired {
            f.expired.push(FailedRequest { id: r.id, reason: FailReason::DeadlineExpired });
            f.ledger(r.tenant).expired += 1;
        }
        if let Some(l) = f.limiter.as_mut() {
            l.on_overload();
        }
    }

    /// Requeue a failed batch's requests, failing any whose attempt
    /// budget is spent or (with a retry budget armed) for which the
    /// fleet-wide token bucket is empty — a requeue storm after mass
    /// card death must not amplify an overload. Counted per request so
    /// no request retries unboundedly.
    pub(super) fn requeue_or_fail(&mut self, batch: Batch, kind: protea_core::FaultKind) {
        let f = self.faulty.as_mut().expect("fault state");
        let mut survivors = Vec::with_capacity(batch.requests.len());
        for r in batch.requests {
            let attempts = f.attempts.entry(r.id).or_insert(0);
            *attempts += 1;
            if *attempts >= f.max_request_attempts {
                f.failed.push(FailedRequest {
                    id: r.id,
                    reason: FailReason::RetriesExhausted { last: kind },
                });
                f.ledger(r.tenant).failed += 1;
            } else if f.retry_budget.as_mut().is_some_and(|b| !b.try_withdraw()) {
                f.failed.push(FailedRequest {
                    id: r.id,
                    reason: FailReason::RetryBudgetExhausted { last: kind },
                });
                f.ledger(r.tenant).failed += 1;
            } else {
                survivors.push(r);
            }
        }
        f.retried += survivors.len() as u64;
        if !survivors.is_empty() {
            self.scheduler.requeue(&Batch { requests: survivors, runtime: batch.runtime });
        }
        // The caller may have just retired the last live card (e.g. the
        // quarantine ladder's second strike): survivors requeued onto a
        // dead fleet must resolve as typed failures, not strand in the
        // queue past the end of the run.
        self.fail_all_pending_if_dead();
    }

    /// Once the last card dies, drain everything still queued into
    /// typed failures — queued requests must never be stranded.
    pub(super) fn fail_all_pending_if_dead(&mut self) {
        if !self.all_cards_dead() {
            return;
        }
        while let Some(batch) = self.scheduler.pop_any() {
            let f = self.faulty.as_mut().expect("fault state");
            for r in batch.requests {
                f.failed.push(FailedRequest { id: r.id, reason: FailReason::AllCardsDead });
                f.ledger(r.tenant).failed += 1;
            }
        }
        while let Some(batch) = self.scheduler.pop_any_session() {
            for r in batch.requests {
                self.shed_session_tokens(&r, 0);
                let f = self.faulty.as_mut().expect("fault state");
                f.failed.push(FailedRequest { id: r.id, reason: FailReason::AllCardsDead });
                f.ledger(r.tenant).failed += 1;
            }
        }
    }

    /// A scripted join fires: the slot (re)gains a card with a fresh
    /// monitor, a bumped epoch, and *no loaded weights* — the first
    /// batch it takes pays the full reprogram-and-reload charge, which
    /// is exactly how the paper prices a runtime retarget (register
    /// writes plus a weight image over `reload_gbps`; never a
    /// re-synthesis). Joining a slot that is already present only
    /// consumes the pending-join token.
    pub(super) fn join_card(&mut self, card: usize) {
        let Some(f) = self.faulty.as_mut() else { return };
        f.pending_joins = f.pending_joins.saturating_sub(1);
        // A join revives an absent slot or replaces a dead card (its
        // crash already bumped the epoch and requeued any in-flight
        // work); joining a live, present card is a no-op.
        if f.present[card] && f.monitors[card].health() != CardHealth::Dead {
            return;
        }
        f.present[card] = true;
        f.draining[card] = false;
        f.epochs[card] += 1;
        f.monitors[card] = CardMonitor::new(f.breaker);
        f.joins += 1;
        if let Some(s) = f.sdc.as_mut() {
            // A fresh card brings a fresh, digest-verified image.
            s.quarantined[card] = false;
            s.dirty[card] = 0;
            s.pending[card] = None;
        }
        let c = &mut self.cards[card];
        c.busy = false;
        c.loaded_class = None;
    }

    /// A scripted drain fires: the card stops taking new batches; if it
    /// is already idle it leaves immediately, otherwise the completion
    /// (or failure) of its in-flight batch finishes the drain.
    pub(super) fn drain_card(&mut self, card: usize) {
        let idle = {
            let Some(f) = self.faulty.as_mut() else { return };
            if !f.present[card] || f.draining[card] {
                return;
            }
            f.draining[card] = true;
            f.inflight[card].is_none() && !self.cards[card].busy
        };
        if idle {
            self.finish_drain(card);
        }
    }

    /// Complete a voluntary scale-down: the slot empties, its epoch
    /// bumps (any stale event no-ops), and anything still queued fails
    /// typed if this was the last serving card.
    pub(super) fn finish_drain(&mut self, card: usize) {
        if let Some(f) = self.faulty.as_mut() {
            f.present[card] = false;
            f.draining[card] = false;
            f.epochs[card] += 1;
            f.drains += 1;
            if let Some(s) = f.sdc.as_mut() {
                // The card leaves with its image: resident corruption
                // that no rung ever caught resolves as missed.
                s.missed += u64::from(std::mem::take(&mut s.dirty[card]));
                s.quarantined[card] = false;
                s.pending[card] = None;
            }
            let c = &mut self.cards[card];
            c.busy = false;
            c.loaded_class = None;
        }
        self.fail_all_pending_if_dead();
    }
}
