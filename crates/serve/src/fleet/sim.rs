//! The mutable DES model: per-run state, fault/overload bookkeeping,
//! and admission control.
//!
//! [`SimModel`] is the single state value the event kernel mutates.
//! Construction ([`SimModel::build`]) decides once whether the run is
//! *managed* (fault injection, overload control, deadlines, or a
//! bounded queue) — an unmanaged run never allocates any of that
//! machinery and follows the historical fault-free path byte-for-byte.

use super::card::Card;
use super::FleetConfig;
use crate::error::ServeError;
use crate::faults::{FailReason, FailedRequest, FaultConfig};
use crate::health::CardMonitor;
use crate::memo::TimingMemo;
use crate::overload::{AimdLimiter, HedgeConfig, RetryBudget, ServiceTimeTracker};
use crate::request::{CapacityClass, ServeRequest, ServeResponse};
use crate::scheduler::{Batch, BatchScheduler};
use crate::sketch::StreamMetrics;
use protea_core::{Accelerator, FaultStats, FaultStream};
use protea_hwsim::exec_trace::{track, ExecTrace, SpanKind};
use protea_model::QuantizedEncoder;
use std::collections::BTreeMap;

/// How completions accumulate into the final report: exact responses
/// (O(completed) memory, byte-identical to the historical path) or the
/// O(1) streaming log-histogram sketch.
pub(super) enum MetricsAccum {
    /// Keep every [`ServeResponse`]; percentiles are exact nearest-rank.
    Exact(Vec<ServeResponse>),
    /// Fold each response into [`StreamMetrics`] and drop it.
    Sketch(StreamMetrics),
}

impl MetricsAccum {
    pub(super) fn record(&mut self, resp: ServeResponse) {
        match self {
            MetricsAccum::Exact(v) => v.push(resp),
            MetricsAccum::Sketch(s) => s.record(&resp),
        }
    }
}

/// All mutable simulation state (the DES model type).
pub(super) struct SimModel {
    pub(super) scheduler: BatchScheduler,
    pub(super) cards: Vec<Card>,
    pub(super) metrics: MetricsAccum,
    pub(super) weights: BTreeMap<CapacityClass, QuantizedEncoder>,
    pub(super) functional: bool,
    pub(super) reload_gbps: f64,
    pub(super) ops_total: u64,
    pub(super) batches: u64,
    pub(super) reprograms: u64,
    pub(super) next_flush: Option<u64>,
    pub(super) error: Option<ServeError>,
    /// Fault-injection state; `None` keeps the exact fault-free path.
    pub(super) faulty: Option<FaultState>,
    /// Timing cache for the fault-free dispatch path (`None` = off).
    pub(super) memo: Option<TimingMemo>,
    /// Fleet-level span recorder (`None` = untraced; recording is
    /// observational and never perturbs the schedule).
    pub(super) trace: Option<ExecTrace>,
}

/// Everything the fault-injected simulation tracks on top of the
/// fault-free model.
pub(super) struct FaultState {
    pub(super) watchdog: protea_core::Watchdog,
    pub(super) retry: protea_core::RetryPolicy,
    pub(super) max_request_attempts: u32,
    /// One seeded fault source per card.
    pub(super) streams: Vec<FaultStream>,
    /// Per-card health + circuit breaker.
    pub(super) monitors: Vec<CardMonitor>,
    /// Per-card dispatch epoch. The DES kernel cannot cancel scheduled
    /// events, so a crash bumps the card's epoch and any in-flight
    /// completion/failure event that captured the old epoch no-ops.
    pub(super) epochs: Vec<u64>,
    /// The batch currently running on each card, held so a crash or
    /// failure can requeue it.
    pub(super) inflight: Vec<Option<Inflight>>,
    /// Failed dispatch attempts per request id (bounds requeues).
    pub(super) attempts: BTreeMap<u64, u32>,
    pub(super) failed: Vec<FailedRequest>,
    pub(super) retried: u64,
    pub(super) crashes: u64,
    pub(super) stats: FaultStats,
    pub(super) submitted: usize,
    /// Dedup for scheduled circuit-breaker cooldown wake-ups.
    pub(super) breaker_wake: Option<u64>,
    // --- overload control (all optional; defaults change nothing) ---
    /// AIMD concurrency limiter over requests in the system.
    pub(super) limiter: Option<AimdLimiter>,
    /// Fleet-wide token bucket bounding post-fault requeues.
    pub(super) retry_budget: Option<RetryBudget>,
    /// Hedged-dispatch policy.
    pub(super) hedge: Option<HedgeConfig>,
    /// Observed batch service times, feeding the p99 hedge delay.
    pub(super) svc: ServiceTimeTracker,
    /// Requests shed at admission (queue cap / concurrency limit).
    pub(super) shed: Vec<FailedRequest>,
    /// Requests dropped in queue at their deadline.
    pub(super) expired: Vec<FailedRequest>,
    /// Per-priority submitted/completed/deadline-met counters, indexed
    /// by [`Priority::index`](crate::request::Priority::index).
    pub(super) prio_submitted: [usize; 3],
    pub(super) prio_completed: [usize; 3],
    pub(super) prio_good: [usize; 3],
    /// Completions that met their deadline.
    pub(super) good_completions: usize,
    /// Whether any request in the workload carries a deadline (gates
    /// expiry sweeps and goodput-vs-throughput reporting).
    pub(super) track_deadlines: bool,
    /// Monotone dispatch id; a hedge leg shares its primary's seq.
    pub(super) batch_seq: u64,
    pub(super) hedges: u64,
    pub(super) hedge_wins: u64,
    pub(super) hedge_cancels: u64,
    /// Dedup for scheduled request-deadline wake-ups.
    pub(super) deadline_wake: Option<u64>,
}

pub(super) struct Inflight {
    pub(super) batch: Batch,
    /// Dispatch id, shared by the two legs of a hedged pair.
    pub(super) seq: u64,
    /// When the scheduled completion/failure event will fire — the
    /// busy time refunded if this leg is cancelled by a hedge win.
    pub(super) resolve_ns: u64,
    /// Whether this leg is the hedge (second) dispatch of its seq.
    pub(super) is_hedge: bool,
    /// The card running the other leg of this seq, if hedged.
    pub(super) partner: Option<usize>,
}

/// Record a fleet-level span on `card`'s track, if tracing is armed.
/// Zero-length spans are skipped (nothing happened). A free function
/// over the `Option` so callers can record while other `SimModel`
/// fields are mutably borrowed.
pub(super) fn record_span(
    trace: &mut Option<ExecTrace>,
    name: String,
    kind: SpanKind,
    card: usize,
    start_ns: u64,
    end_ns: u64,
) {
    if let Some(tr) = trace.as_mut() {
        if end_ns > start_ns {
            tr.push(name, kind, track::CARD0 + card as u32, start_ns, end_ns);
        }
    }
}

impl SimModel {
    pub(super) fn build(
        config: &FleetConfig,
        managed: bool,
        traced: bool,
        sketch: bool,
    ) -> Result<Self, ServeError> {
        let mut cards = Vec::with_capacity(config.cards);
        for _ in 0..config.cards {
            cards.push(Card {
                accel: Accelerator::try_new(config.synthesis, &config.device)?,
                loaded_class: None,
                busy: false,
                busy_ns: 0,
            });
        }
        // A managed run without an explicit `FaultConfig` uses the
        // zero-rate default, which is proven to reproduce the fault-free
        // schedule bit-exactly — overload control never perturbs timing.
        let fault_default = FaultConfig::default();
        let f = config.faults.as_ref().unwrap_or(&fault_default);
        let ov = config.overload.unwrap_or_default();
        let faulty = managed.then(|| FaultState {
            watchdog: f.watchdog,
            retry: f.retry,
            max_request_attempts: f.max_request_attempts,
            streams: (0..config.cards)
                .map(|card| {
                    FaultStream::seeded(f.seed, card, f.rates).with_events(
                        f.events.iter().filter(|e| e.card == card).map(|e| (e.at_ns, e.kind)),
                    )
                })
                .collect(),
            monitors: vec![CardMonitor::new(f.breaker); config.cards],
            epochs: vec![0; config.cards],
            inflight: (0..config.cards).map(|_| None).collect(),
            attempts: BTreeMap::new(),
            failed: Vec::new(),
            retried: 0,
            crashes: 0,
            stats: FaultStats::default(),
            submitted: 0,
            breaker_wake: None,
            limiter: ov.aimd.map(AimdLimiter::new),
            retry_budget: ov.retry_budget.map(RetryBudget::new),
            hedge: ov.hedge,
            svc: ServiceTimeTracker::default(),
            shed: Vec::new(),
            expired: Vec::new(),
            prio_submitted: [0; 3],
            prio_completed: [0; 3],
            prio_good: [0; 3],
            good_completions: 0,
            track_deadlines: false,
            batch_seq: 0,
            hedges: 0,
            hedge_wins: 0,
            hedge_cancels: 0,
            deadline_wake: None,
        });
        Ok(Self {
            scheduler: BatchScheduler::new(config.policy.clone(), config.synthesis),
            cards,
            metrics: if sketch {
                MetricsAccum::Sketch(StreamMetrics::new())
            } else {
                MetricsAccum::Exact(Vec::new())
            },
            weights: BTreeMap::new(),
            functional: config.functional,
            reload_gbps: config.reload_gbps,
            ops_total: 0,
            batches: 0,
            reprograms: 0,
            next_flush: None,
            error: None,
            faulty,
            memo: config.timing_memo.then(TimingMemo::new),
            trace: traced.then(ExecTrace::new),
        })
    }

    /// Whether every card in the fleet is dead (vacuously false without
    /// fault injection).
    pub(super) fn all_cards_dead(&self) -> bool {
        self.faulty.as_ref().is_some_and(|f| {
            f.monitors.iter().all(|m| m.health() == crate::health::CardHealth::Dead)
        })
    }

    /// First card that is idle and (under fault injection) alive with a
    /// closed or cooled-down circuit.
    pub(super) fn free_card(&self, now_ns: u64) -> Option<usize> {
        self.cards.iter().enumerate().position(|(i, c)| {
            !c.busy && self.faulty.as_ref().is_none_or(|f| f.monitors[i].available(now_ns))
        })
    }

    /// Count of requests queued or in flight (hedge legs are duplicate
    /// work, not extra requests, so they do not count).
    pub(super) fn in_system(&self) -> usize {
        let inflight: usize = self.faulty.as_ref().map_or(0, |f| {
            f.inflight.iter().flatten().filter(|i| !i.is_hedge).map(|i| i.batch.len()).sum()
        });
        self.scheduler.pending() + inflight
    }

    /// Managed admission: per-priority accounting, dead-fleet and
    /// arrival-past-deadline checks, the AIMD concurrency gate, then the
    /// (possibly bounded) scheduler push. Every rejected request is
    /// recorded with a typed reason — nothing is silently dropped.
    pub(super) fn admit(&mut self, req: ServeRequest, now_ns: u64) {
        let prio = req.priority.index();
        self.faulty.as_mut().expect("managed admission requires fault state").prio_submitted
            [prio] += 1;
        if self.all_cards_dead() {
            // Nothing can ever serve this request — fail it with a
            // typed reason rather than queueing it forever.
            let f = self.faulty.as_mut().expect("fault state");
            f.failed.push(FailedRequest { id: req.id, reason: FailReason::AllCardsDead });
            return;
        }
        if req.expired_at(now_ns) {
            // Already dead on arrival: never let it touch a queue.
            let f = self.faulty.as_mut().expect("fault state");
            f.expired.push(FailedRequest { id: req.id, reason: FailReason::DeadlineExpired });
            return;
        }
        let in_system = self.in_system();
        let f = self.faulty.as_mut().expect("fault state");
        if f.limiter.as_ref().is_some_and(|l| !l.admits(in_system)) {
            // Priority-ordered shedding: before bouncing the newcomer,
            // displace a queued request of strictly lower priority (the
            // youngest of the lowest class) — net requests in system
            // stays within the limit either way.
            match self.scheduler.evict_lower_priority(req.priority) {
                Some(victim) => {
                    let f = self.faulty.as_mut().expect("fault state");
                    f.shed.push(FailedRequest { id: victim.id, reason: FailReason::Shed });
                }
                None => {
                    f.shed.push(FailedRequest { id: req.id, reason: FailReason::Shed });
                    return;
                }
            }
        }
        match self.scheduler.push(req) {
            Ok(victim) => {
                let f = self.faulty.as_mut().expect("fault state");
                if let Some(b) = f.retry_budget.as_mut() {
                    b.on_admission();
                }
                if let Some(v) = victim {
                    f.shed.push(FailedRequest { id: v.id, reason: FailReason::Shed });
                }
            }
            Err(ServeError::Overloaded { id, .. }) => {
                let f = self.faulty.as_mut().expect("fault state");
                f.shed.push(FailedRequest { id, reason: FailReason::Shed });
            }
            Err(e) => self.error = Some(e),
        }
    }

    /// Drop every queued request whose deadline has passed, recording
    /// each as expired. Expiries are the queue-congestion signal the
    /// AIMD limiter backs off on (once per sweep that shed anything).
    pub(super) fn shed_expired(&mut self, now_ns: u64) {
        if self.faulty.as_ref().is_none_or(|f| !f.track_deadlines) {
            return;
        }
        let expired = self.scheduler.take_expired(now_ns);
        if expired.is_empty() {
            return;
        }
        let f = self.faulty.as_mut().expect("fault state");
        for r in &expired {
            f.expired.push(FailedRequest { id: r.id, reason: FailReason::DeadlineExpired });
        }
        if let Some(l) = f.limiter.as_mut() {
            l.on_overload();
        }
    }

    /// Requeue a failed batch's requests, failing any whose attempt
    /// budget is spent or (with a retry budget armed) for which the
    /// fleet-wide token bucket is empty — a requeue storm after mass
    /// card death must not amplify an overload. Counted per request so
    /// no request retries unboundedly.
    pub(super) fn requeue_or_fail(&mut self, batch: Batch, kind: protea_core::FaultKind) {
        let f = self.faulty.as_mut().expect("fault state");
        let mut survivors = Vec::with_capacity(batch.requests.len());
        for r in batch.requests {
            let attempts = f.attempts.entry(r.id).or_insert(0);
            *attempts += 1;
            if *attempts >= f.max_request_attempts {
                f.failed.push(FailedRequest {
                    id: r.id,
                    reason: FailReason::RetriesExhausted { last: kind },
                });
            } else if f.retry_budget.as_mut().is_some_and(|b| !b.try_withdraw()) {
                f.failed.push(FailedRequest {
                    id: r.id,
                    reason: FailReason::RetryBudgetExhausted { last: kind },
                });
            } else {
                survivors.push(r);
            }
        }
        f.retried += survivors.len() as u64;
        if !survivors.is_empty() {
            self.scheduler.requeue(&Batch { requests: survivors, runtime: batch.runtime });
        }
    }

    /// Once the last card dies, drain everything still queued into
    /// typed failures — queued requests must never be stranded.
    pub(super) fn fail_all_pending_if_dead(&mut self) {
        if !self.all_cards_dead() {
            return;
        }
        while let Some(batch) = self.scheduler.pop_any() {
            let f = self.faulty.as_mut().expect("fault state");
            for r in batch.requests {
                f.failed.push(FailedRequest { id: r.id, reason: FailReason::AllCardsDead });
            }
        }
    }
}
