//! Dispatch, completion, failure, crash, and hedging event handlers,
//! plus the greedy dispatch loop.
//!
//! Every dispatch flavor runs through the same two steps: the shared
//! reprogram-and-load (`prepare_card`) and the unified execution
//! pipeline (`Accelerator::execute` on a [`RunPlan`]) — the only
//! difference between flavors is which plan they build (functional vs
//! timing vs fault-armed), not which code path they take.

use super::events::{FleetEvent, RANK_DYN};
use super::sim::{kv_spec, record_span, CardGen, GenSession, Inflight, SimModel};
use crate::error::ServeError;
use crate::faults::{FailReason, FailedRequest};
use crate::health::CardHealth;
use crate::request::ServeResponse;
use crate::scheduler::Batch;
use protea_core::{CoreError, FaultKind, FaultPlan, RunPlan, SdcSite};
use protea_hwsim::{Cycles, EventQueue, SpanKind};
use protea_model::{EncoderConfig, OpCount};
use protea_tensor::Matrix;

/// How a fault-injected dispatch resolved at dispatch time.
pub(super) enum FaultyDispatch {
    /// The batch will complete cleanly at `finish_ns`.
    Done { finish_ns: u64 },
    /// An unrecoverable fault will be detected at `at_ns`.
    Failed { at_ns: u64, kind: FaultKind },
}

/// Deterministic per-request input pattern for the functional mode:
/// id-seeded bytes over the live rows, zero padding above them.
fn functional_inputs(batch: &Batch) -> Vec<Matrix<i8>> {
    batch
        .requests
        .iter()
        .map(|r| {
            let live_rows = r.seq_len;
            Matrix::from_fn(batch.runtime.seq_len, batch.runtime.d_model, move |row, col| {
                if row < live_rows {
                    (((r.id as usize).wrapping_mul(31) + row * 17 + col * 7) % 199) as i8
                } else {
                    0 // padding
                }
            })
        })
        .collect()
}

/// Extra service time ABFT checksum verification charges on a batch:
/// one row-sum pass over the activations (`1/(batch·seq_len)` of the
/// GEMM work) plus a row and a column checksum per output tile
/// (`2/d_model`) — the classic O(1/m + 1/n) ABFT tax, ~2.5% at the
/// paper's d96/b8/sl32 design point.
fn abft_overhead_ns(service_ns: u64, batch: &Batch) -> u64 {
    let rows = (batch.len() * batch.runtime.seq_len).max(1) as f64;
    let cols = batch.runtime.d_model.max(1) as f64;
    ((service_ns as f64) * (1.0 / rows + 2.0 / cols)).ceil() as u64
}

/// Whether an activation-site hit at `locus` lands in ABFT-protected
/// compute. The checksums cover the GEMM epilogues only, so a hit is
/// caught iff its (uniformly drawn) locus falls inside the matmul share
/// of the batch's op count — softmax, layernorm, and residual datapaths
/// stay unprotected and their hits complete undetected.
fn abft_covers(locus: u64, batch: &Batch) -> bool {
    let cfg = EncoderConfig::new(
        batch.runtime.d_model,
        batch.runtime.heads,
        batch.runtime.layers,
        batch.runtime.seq_len,
    );
    let ops = OpCount::for_config(&cfg);
    let frac = ops.matmul_only() as f64 / ops.total().max(1) as f64;
    (locus as f64 / u64::MAX as f64) < frac
}

impl SimModel {
    /// Program `card` for `batch`, pay any reload, run, and record the
    /// member responses. Returns the completion time.
    pub(super) fn dispatch(
        &mut self,
        card: usize,
        batch: &Batch,
        now_ns: u64,
    ) -> Result<u64, ServeError> {
        let reload_ns = self.prepare_card(card, batch, now_ns)?;
        let report = if self.functional {
            let inputs = functional_inputs(batch);
            let (outcome, _) = self.cards[card].accel.execute(RunPlan::functional(&inputs));
            outcome?.report
        } else if let Some(memo) = self.memo.as_mut() {
            // Fault-free timing is a pure function of the plan key:
            // identical bytes to the direct call, priced once per key.
            memo.report(&self.cards[card].accel, batch.len())
        } else {
            let (outcome, _) = self.cards[card].accel.execute(RunPlan::timing(batch.len()));
            outcome?.report
        };
        let service_ns = (report.latency_ms() * 1e6).ceil() as u64;
        let finish_ns = now_ns.saturating_add(reload_ns).saturating_add(service_ns);
        let c = &mut self.cards[card];
        c.busy = true;
        c.busy_ns = c.busy_ns.saturating_add(reload_ns + service_ns);
        self.batches += 1;
        record_span(
            &mut self.trace,
            format!(
                "batch x{} d{} sl{}",
                batch.len(),
                batch.runtime.d_model,
                batch.runtime.seq_len
            ),
            SpanKind::Batch,
            card,
            now_ns.saturating_add(reload_ns),
            finish_ns,
        );
        for r in &batch.requests {
            // useful work is counted at the *actual* request shape
            let cfg = EncoderConfig::new(r.d_model, r.heads, r.layers, r.seq_len);
            self.ops_total = self.ops_total.saturating_add(OpCount::for_config(&cfg).total());
            self.metrics.record(ServeResponse {
                id: r.id,
                arrival_ns: r.arrival_ns,
                start_ns: now_ns,
                finish_ns,
                card,
                batch_size: batch.len(),
                padded_seq_len: batch.runtime.seq_len,
            });
        }
        Ok(finish_ns)
    }

    /// Program `card` for `batch` under fault injection. Unlike the
    /// fault-free [`dispatch`](Self::dispatch), responses are **not**
    /// recorded here — the batch is parked in `inflight` and either the
    /// completion event records it or a failure/crash requeues it.
    pub(super) fn dispatch_faulty(
        &mut self,
        card: usize,
        batch: &Batch,
        now_ns: u64,
        seq: u64,
        is_hedge: bool,
    ) -> Result<FaultyDispatch, ServeError> {
        // Load-time digest rung: a class switch replaces the resident
        // image, and the fresh load verifies its sealed digest on the
        // way in — so resident corruption is wiped and resolves as
        // detected. A *warm* dispatch trusts the resident image: a
        // dirty one keeps serving silently-wrong answers until the
        // periodic scrub sweep (or a crash, or the end of the run)
        // resolves its hit — weight corruption is invisible to ABFT,
        // which only checks the activation datapath.
        let warm = self.cards[card].loaded_class == Some(batch.requests[0].class());
        if !warm {
            if let Some(s) = self.faulty.as_mut().and_then(|f| f.sdc.as_mut()) {
                s.detected += u64::from(std::mem::take(&mut s.dirty[card]));
            }
        }
        let reload_ns = self.prepare_card(card, batch, now_ns)?;
        let f = self.faulty.as_mut().expect("dispatch_faulty requires fault state");
        let c = &mut self.cards[card];
        let fmax_mhz = c.accel.design().fmax_mhz;
        let cycles_to_ns = |cycles: u64| (cycles as f64 * 1e3 / fmax_mhz).ceil() as u64;
        let (outcome, stats) =
            c.accel.execute(RunPlan::timing(batch.len()).with_faults(FaultPlan {
                stream: &mut f.streams[card],
                watchdog: f.watchdog,
                retry: f.retry,
                now_ns,
            }));
        f.stats.merge(&stats);
        let dispatched = match outcome {
            Ok(run) => {
                let mut service_ns = (run.report.latency_ms() * 1e6).ceil() as u64;
                if f.sdc.as_ref().is_some_and(|s| s.abft) {
                    // ABFT verification runs in every GEMM epilogue,
                    // hit or no hit — the overhead is the price of the
                    // defense, not of the corruption.
                    service_ns = service_ns.saturating_add(abft_overhead_ns(service_ns, batch));
                }
                // The corruption draw resolves per *executed* batch; an
                // aborted leg never finishes its epilogue, so only the
                // clean outcome draws.
                if let Some(s) = f.sdc.as_mut() {
                    if let Some(hit) = s.streams[card].sample_batch(now_ns) {
                        s.injected += 1;
                        match hit.site {
                            SdcSite::Weights => {
                                // Resident SRAM corruption: ABFT's
                                // checksum prediction is computed from
                                // the same corrupt weights, so only a
                                // digest rung can catch this.
                                s.dirty[card] += 1;
                            }
                            SdcSite::Activations => {
                                let covered = s.abft && abft_covers(hit.locus, batch);
                                s.pending[card] = Some(covered);
                            }
                        }
                    }
                }
                let finish_ns = now_ns.saturating_add(reload_ns).saturating_add(service_ns);
                c.busy_ns = c.busy_ns.saturating_add(reload_ns + service_ns);
                FaultyDispatch::Done { finish_ns }
            }
            Err(CoreError::Fault { kind, .. }) => {
                // The card is occupied until the driver detects the
                // fatal fault and gives up.
                let abort_ns = cycles_to_ns(stats.abort_cycles);
                let at_ns = now_ns.saturating_add(reload_ns).saturating_add(abort_ns);
                c.busy_ns = c.busy_ns.saturating_add(reload_ns + abort_ns);
                FaultyDispatch::Failed { at_ns, kind }
            }
            Err(other) => return Err(other.into()),
        };
        let resolve_ns = match &dispatched {
            FaultyDispatch::Done { finish_ns } => *finish_ns,
            FaultyDispatch::Failed { at_ns, .. } => *at_ns,
        };
        c.busy = true;
        f.inflight[card] =
            Some(Inflight { batch: batch.clone(), seq, resolve_ns, is_hedge, partner: None });
        let (kind, name) = match &dispatched {
            FaultyDispatch::Done { .. } if is_hedge => {
                (SpanKind::Hedge, format!("hedge x{} seq{seq}", batch.len()))
            }
            FaultyDispatch::Done { .. } => {
                (SpanKind::Batch, format!("batch x{} seq{seq}", batch.len()))
            }
            FaultyDispatch::Failed { kind, .. } => {
                (SpanKind::Batch, format!("abort {kind:?} seq{seq}"))
            }
        };
        record_span(
            &mut self.trace,
            name,
            kind,
            card,
            now_ns.saturating_add(reload_ns),
            resolve_ns,
        );
        Ok(dispatched)
    }

    /// A fault-injected batch completed: free the card, record the
    /// member responses, and credit the card's health. No-op if the
    /// card crashed while the batch was in flight (stale epoch).
    ///
    /// Under SDC injection, the batch's corruption draw resolves here
    /// first: a *detected* hit discards the result and runs the
    /// recovery ladder instead of completing; a *missed* hit falls
    /// through — the fleet serves a silently wrong answer and the
    /// `sdc_missed` counter is the only witness.
    pub(super) fn complete_faulty(
        &mut self,
        q: &mut EventQueue<FleetEvent>,
        card: usize,
        epoch: u64,
        start_ns: u64,
        finish_ns: u64,
    ) {
        let f = self.faulty.as_mut().expect("fault state");
        if f.epochs[card] != epoch {
            return;
        }
        let Some(inflight) = f.inflight[card].take() else { return };
        match f.sdc.as_mut().and_then(|s| s.pending[card].take()) {
            Some(true) => {
                f.sdc.as_mut().expect("hit drawn above").detected += 1;
                self.recover_detected(q, card, inflight, finish_ns);
                return;
            }
            Some(false) => f.sdc.as_mut().expect("hit drawn above").missed += 1,
            None => {}
        }
        if let Some(s) = f.sdc.as_mut() {
            // A re-execution that lands cleanly clears its strike.
            s.reexec.remove(&inflight.seq);
        }
        // First completion of a hedged pair wins: cancel the loser by
        // bumping its epoch (its pending completion/failure event goes
        // stale) and refund the busy time it will no longer spend. The
        // responses below are recorded exactly once, by this winner.
        if let Some(p) = inflight.partner {
            if f.inflight[p].as_ref().is_some_and(|l| l.seq == inflight.seq) {
                let loser = f.inflight[p].take().expect("pair checked above");
                f.epochs[p] += 1;
                f.hedge_cancels += 1;
                if inflight.is_hedge {
                    f.hedge_wins += 1;
                }
                self.cards[p].busy = false;
                self.cards[p].busy_ns = self.cards[p]
                    .busy_ns
                    .saturating_sub(loser.resolve_ns.saturating_sub(finish_ns));
                if let Some(s) = f.sdc.as_mut() {
                    // The loser's execution is abandoned mid-flight;
                    // its corruption draw never materializes.
                    s.pending[p] = None;
                }
                record_span(
                    &mut self.trace,
                    format!("hedge cancel seq{}", inflight.seq),
                    SpanKind::Cancel,
                    p,
                    finish_ns,
                    loser.resolve_ns,
                );
            }
        }
        f.monitors[card].record_success();
        f.svc.record(finish_ns.saturating_sub(start_ns));
        if let Some(l) = f.limiter.as_mut() {
            l.on_success();
        }
        self.cards[card].busy = false;
        self.batches += 1;
        let batch = inflight.batch;
        for r in &batch.requests {
            f.prio_completed[r.priority.index()] += 1;
            let good = r.within_deadline(finish_ns);
            if good {
                f.good_completions += 1;
                f.prio_good[r.priority.index()] += 1;
            }
            let ledger = f.ledger(r.tenant);
            ledger.completed += 1;
            if good {
                ledger.good += 1;
            }
            let cfg = EncoderConfig::new(r.d_model, r.heads, r.layers, r.seq_len);
            self.ops_total = self.ops_total.saturating_add(OpCount::for_config(&cfg).total());
            self.metrics.record(ServeResponse {
                id: r.id,
                arrival_ns: r.arrival_ns,
                start_ns,
                finish_ns,
                card,
                batch_size: batch.len(),
                padded_seq_len: batch.runtime.seq_len,
            });
        }
        // A draining card's last in-flight batch just landed: the drain
        // completes and the card leaves the fleet.
        if self.faulty.as_ref().expect("fault state").draining[card] {
            self.finish_drain(card);
        }
    }

    /// The recovery ladder for a batch whose completion on `card` was
    /// flagged by ABFT: the result is discarded (never recorded), then
    /// — cheapest rung first — a live hedge partner inherits the work,
    /// a draining card hands it back and leaves, a second strike on the
    /// same work escalates to quarantine, and a first strike simply
    /// re-executes the batch on the same card.
    fn recover_detected(
        &mut self,
        q: &mut EventQueue<FleetEvent>,
        card: usize,
        inflight: Inflight,
        now_ns: u64,
    ) {
        self.cards[card].busy = false;
        let f = self.faulty.as_mut().expect("fault state");
        // No health credit — the card produced a wrong answer. No
        // debit either on a first strike: one transient flip is not a
        // sick card; the quarantine rungs below are the escalation.
        let partner_alive = inflight
            .partner
            .is_some_and(|p| f.inflight[p].as_ref().is_some_and(|other| other.seq == inflight.seq));
        let second_strike = f.sdc.as_mut().expect("sdc state").reexec.remove(&inflight.seq);
        let draining = f.draining[card];
        if partner_alive {
            // The other leg is already executing this work elsewhere:
            // dissolve the pair — the survivor *is* the re-execution —
            // and quarantine the card that lied.
            let p = inflight.partner.expect("checked above");
            f.inflight[p].as_mut().expect("checked above").partner = None;
            self.quarantine_card(q, card, now_ns);
        } else if draining {
            // The card was leaving anyway: hand the work back to the
            // survivors — quarantining a departing card would waste a
            // reload on an image nobody will serve from.
            self.requeue_or_fail(inflight.batch, FaultKind::SilentCorrupt);
            self.finish_drain(card);
        } else if second_strike {
            // The re-execution was detected *again*: stop trusting the
            // card, quarantine it, and move the work elsewhere.
            self.quarantine_card(q, card, now_ns);
            self.requeue_or_fail(inflight.batch, FaultKind::SilentCorrupt);
        } else {
            // First strike: re-execute in place — the cheapest rung,
            // no reload, no requeue churn, same card, fresh draw.
            let seq = {
                f.batch_seq += 1;
                let seq = f.batch_seq;
                let s = f.sdc.as_mut().expect("sdc state");
                s.re_execs += 1;
                s.reexec.insert(seq);
                seq
            };
            match self.dispatch_faulty(card, &inflight.batch, now_ns, seq, false) {
                Ok(outcome) => {
                    let epoch = self.faulty.as_ref().expect("fault state").epochs[card];
                    schedule_leg(q, card, epoch, now_ns, outcome);
                }
                Err(e) => self.error = Some(e),
            }
        }
    }

    /// Quarantine `card` after a detected corruption: lock it out of
    /// dispatch, bump its epoch (any stale event no-ops), debit its
    /// health ladder — repeated quarantines escalate to Dead exactly
    /// like repeated faults — and charge the paper's full restore
    /// price: a reprogram plus a fresh, digest-verified weight image
    /// over the reload link. The scheduled [`FleetEvent::Requalify`]
    /// readmits the card when the restore lands.
    pub(super) fn quarantine_card(
        &mut self,
        q: &mut EventQueue<FleetEvent>,
        card: usize,
        now_ns: u64,
    ) {
        let reload_ns = self.cards[card].loaded_class.map_or(0, |cl| self.reload_ns(cl));
        let epoch;
        let preempted;
        {
            let f = self.faulty.as_mut().expect("fault state");
            {
                let s = f.sdc.as_mut().expect("sdc state");
                s.quarantined[card] = true;
                // The re-image wipes resident corruption, and the
                // load-time digest verification catches it on the way:
                // undetected weight hits resolve as detected here.
                s.detected += u64::from(std::mem::take(&mut s.dirty[card]));
                s.pending[card] = None;
            }
            f.epochs[card] += 1;
            epoch = f.epochs[card];
            f.monitors[card].record_failure(now_ns);
            preempted = match f.inflight[card].take() {
                None => None,
                Some(inflight) => {
                    f.sdc.as_mut().expect("sdc state").reexec.remove(&inflight.seq);
                    let partner_alive = inflight.partner.is_some_and(|p| {
                        f.inflight[p].as_ref().is_some_and(|other| other.seq == inflight.seq)
                    });
                    if partner_alive {
                        let p = inflight.partner.expect("checked above");
                        f.inflight[p].as_mut().expect("checked above").partner = None;
                        None
                    } else {
                        Some(inflight.batch)
                    }
                }
            };
        }
        if let Some(batch) = preempted {
            // A scrub pre-empted the in-flight batch: its work moves to
            // the survivors, its completion event goes stale.
            self.requeue_or_fail(batch, FaultKind::SilentCorrupt);
        }
        // Resident generation sessions were decoding against the very
        // image that just failed its digest — their outputs cannot be
        // trusted and their caches do not survive the re-image.
        self.shed_card_sessions(card, FaultKind::SilentCorrupt);
        self.reprograms += 1;
        let c = &mut self.cards[card];
        c.busy = true; // occupied by its own restore until requalified
        c.busy_ns = c.busy_ns.saturating_add(reload_ns);
        record_span(
            &mut self.trace,
            format!("quarantine reload card{card}"),
            SpanKind::Reprogram,
            card,
            now_ns,
            now_ns.saturating_add(reload_ns),
        );
        q.push(
            Cycles(now_ns.saturating_add(reload_ns)),
            RANK_DYN,
            FleetEvent::Requalify { card, epoch },
        );
        // The health debit above can tip the last live card to Dead —
        // the queue must flush here exactly as it does after a loud
        // fault, or pending work (and the scrub chain keeping the run
        // alive for it) waits forever on a fleet that cannot serve.
        self.fail_all_pending_if_dead();
    }

    /// The quarantine restore on `card` finished: release it with a
    /// fresh, digest-verified image. No-op on a stale epoch (the card
    /// crashed or drained away mid-restore).
    pub(super) fn requalify_card(&mut self, card: usize, epoch: u64) {
        let Some(f) = self.faulty.as_mut() else { return };
        if f.epochs[card] != epoch {
            return;
        }
        if let Some(s) = f.sdc.as_mut() {
            s.quarantined[card] = false;
        }
        self.cards[card].busy = false;
    }

    /// A scrub event fires: sweep every live resident card's weight
    /// digest against its seal. Cards whose digest disagrees go
    /// straight to quarantine-and-reprogram — pre-empting any in-flight
    /// batch — and `dispatch_all` re-arms the sweep while work remains.
    pub(super) fn scrub_fleet(&mut self, q: &mut EventQueue<FleetEvent>, now_ns: u64) {
        let to_quarantine: Vec<usize> = {
            let Some(f) = self.faulty.as_mut() else { return };
            let Some(s) = f.sdc.as_mut() else { return };
            s.scrubs += 1;
            let dirty: Vec<usize> =
                (0..s.dirty.len()).filter(|&c| s.dirty[c] > 0 && !s.quarantined[c]).collect();
            dirty
                .into_iter()
                .filter(|&c| {
                    f.present[c] && !f.draining[c] && f.monitors[c].health() != CardHealth::Dead
                })
                .collect()
        };
        for card in to_quarantine {
            self.quarantine_card(q, card, now_ns);
        }
    }

    /// The driver gave up on a batch at `now_ns`: free the card, trip
    /// its breaker, and requeue the batch onto survivors. No-op on a
    /// stale epoch (the card crashed first and already requeued it).
    pub(super) fn fail_faulty(&mut self, card: usize, epoch: u64, now_ns: u64, kind: FaultKind) {
        let f = self.faulty.as_mut().expect("fault state");
        if f.epochs[card] != epoch {
            return;
        }
        let Some(inflight) = f.inflight[card].take() else { return };
        if let Some(s) = f.sdc.as_mut() {
            // A failed re-execution surfaces as a loud fault and takes
            // the requeue path below; its strike is spent.
            s.reexec.remove(&inflight.seq);
        }
        f.monitors[card].record_failure(now_ns);
        if let Some(l) = f.limiter.as_mut() {
            l.on_overload();
        }
        self.cards[card].busy = false;
        let draining = f.draining[card];
        // A leg of a hedged pair that fails while its partner still runs
        // dissolves the pair: the survivor keeps sole responsibility,
        // nothing requeues, nothing is double-counted.
        let mut dissolved = false;
        if let Some(p) = inflight.partner {
            if let Some(other) = f.inflight[p].as_mut() {
                if other.seq == inflight.seq {
                    other.partner = None;
                    dissolved = true;
                }
            }
        }
        if !dissolved {
            self.requeue_or_fail(inflight.batch, kind);
        }
        if draining {
            // Even a failed final batch completes the drain — the card
            // was leaving either way.
            self.finish_drain(card);
        }
        self.fail_all_pending_if_dead();
    }

    /// Card `card` dropped off the bus at `now_ns`: kill it, invalidate
    /// any in-flight completion/failure events, and requeue its batch.
    pub(super) fn crash_card(&mut self, card: usize, _now_ns: u64) {
        let f = self.faulty.as_mut().expect("fault state");
        // An absent slot has nothing to crash; a dead card is dead.
        if !f.present[card] || f.monitors[card].health() == crate::health::CardHealth::Dead {
            return;
        }
        f.crashes += 1;
        f.draining[card] = false; // the crash pre-empts any drain
        f.epochs[card] += 1;
        f.monitors[card].kill();
        if let Some(s) = f.sdc.as_mut() {
            // The card's image dies with it: resident corruption that
            // no rung ever caught resolves as missed, and any pending
            // quarantine restore (Requalify) went stale with the epoch.
            s.missed += u64::from(std::mem::take(&mut s.dirty[card]));
            s.pending[card] = None;
            s.quarantined[card] = false;
        }
        self.cards[card].busy = false;
        if let Some(inflight) = f.inflight[card].take() {
            if let Some(s) = f.sdc.as_mut() {
                s.reexec.remove(&inflight.seq);
            }
            // If the crashed card was one leg of a hedged pair and the
            // other leg is still running, that survivor owns the batch —
            // requeueing here would serve it twice.
            let partner_alive = inflight.partner.is_some_and(|p| {
                f.inflight[p].as_ref().is_some_and(|other| other.seq == inflight.seq)
            });
            if partner_alive {
                let p = inflight.partner.expect("checked above");
                f.inflight[p].as_mut().expect("checked above").partner = None;
            } else {
                self.requeue_or_fail(inflight.batch, FaultKind::CardCrash);
            }
        }
        // Generation sessions die with the card: their KV caches are
        // gone, so the work cannot move — remaining tokens shed.
        self.shed_card_sessions(card, FaultKind::CardCrash);
        self.fail_all_pending_if_dead();
    }

    /// Hedge the batch dispatched as `seq` on `card`, if it is still in
    /// flight, un-hedged, and a second healthy card sits idle: re-issue
    /// it there and link the two legs. Returns the new leg's
    /// `(card, epoch, outcome)` for event scheduling, or `None` when
    /// hedging is moot (already resolved, already hedged, no free card).
    pub(super) fn start_hedge(
        &mut self,
        card: usize,
        seq: u64,
        now_ns: u64,
    ) -> Result<Option<(usize, u64, FaultyDispatch)>, ServeError> {
        let f = self.faulty.as_ref().expect("fault state");
        let still_running =
            f.inflight[card].as_ref().is_some_and(|i| i.seq == seq && i.partner.is_none());
        if !still_running {
            return Ok(None);
        }
        let Some(hedge_card) = self.free_card(now_ns) else { return Ok(None) };
        let batch = self.faulty.as_ref().expect("fault state").inflight[card]
            .as_ref()
            .expect("still running")
            .batch
            .clone();
        let outcome = self.dispatch_faulty(hedge_card, &batch, now_ns, seq, true)?;
        let f = self.faulty.as_mut().expect("fault state");
        f.hedges += 1;
        f.inflight[hedge_card].as_mut().expect("just dispatched").partner = Some(card);
        f.inflight[card].as_mut().expect("still running").partner = Some(hedge_card);
        Ok(Some((hedge_card, f.epochs[hedge_card], outcome)))
    }

    /// Start a generation batch on `card`: reserve every member's
    /// worst-case KV footprint (members that do not fit are shed, with
    /// their tokens conserved), pay the reprogram-and-load, price the
    /// batched prefill, and schedule the first
    /// [`FleetEvent::Generate`] window. The prefill window emits no
    /// tokens; every subsequent decode window banks one token per
    /// resident session. Returns whether the card actually took the
    /// batch (false when every member was shed on KV capacity).
    pub(super) fn start_session_batch(
        &mut self,
        q: &mut EventQueue<FleetEvent>,
        card: usize,
        batch: Batch,
        now_ns: u64,
    ) -> Result<bool, ServeError> {
        let class = batch.requests[0].class();
        let padded = batch.runtime.seq_len;
        // Admission to the batch is a promise the cache cannot break
        // mid-generation, so the worst-case footprint (prompt + every
        // requested token) reserves up front.
        let mut members = Vec::with_capacity(batch.requests.len());
        for r in batch.requests {
            let fits = self.sessions_mut().kv[card].try_reserve(&kv_spec(&r));
            if fits {
                members.push(r);
            } else {
                self.shed_session_tokens(&r, 0);
                let f = self.faulty.as_mut().expect("decode runs are managed");
                f.shed.push(FailedRequest { id: r.id, reason: FailReason::Shed });
                f.ledger(r.tenant).shed += 1;
            }
        }
        if members.is_empty() {
            return Ok(false);
        }
        let batch = Batch { requests: members, runtime: batch.runtime };
        let reload_ns = self.prepare_card(card, &batch, now_ns)?;
        let (outcome, _) = self.cards[card].accel.execute(RunPlan::prefill(padded, batch.len()));
        let service_ns = (outcome?.report.latency_ms() * 1e6).ceil() as u64;
        let finish_ns = now_ns.saturating_add(reload_ns).saturating_add(service_ns);
        {
            let st = self.sessions_mut();
            st.prefill_ns_sum += service_ns;
            st.prefill_count += batch.len() as u64;
            st.cards[card] = Some(CardGen {
                class,
                padded_prompt: padded,
                pending_step: false,
                sessions: batch
                    .requests
                    .iter()
                    .map(|r| GenSession {
                        req: *r,
                        start_ns: now_ns,
                        emitted: 0,
                        last_emit_ns: r.arrival_ns,
                        on_time: 0,
                    })
                    .collect(),
            });
        }
        let c = &mut self.cards[card];
        c.busy = true;
        c.busy_ns = c.busy_ns.saturating_add(reload_ns + service_ns);
        self.batches += 1;
        record_span(
            &mut self.trace,
            format!("prefill x{} d{} sl{}", batch.len(), batch.runtime.d_model, padded),
            SpanKind::Batch,
            card,
            now_ns.saturating_add(reload_ns),
            finish_ns,
        );
        let epoch = self.faulty.as_ref().map_or(0, |f| f.epochs[card]);
        q.push(Cycles(finish_ns), RANK_DYN, FleetEvent::Generate { card, epoch });
        Ok(true)
    }

    /// A generation compute window on `card` ended. Bank one token per
    /// resident session when a step was pending, retire sessions that
    /// reached their requested length, pull compatible queued prefills
    /// into the freed slots (continuous batching), and price the next
    /// window. No-op on a stale epoch — the card crashed, drained, or
    /// was quarantined mid-window and its sessions were already shed.
    pub(super) fn generate_round(
        &mut self,
        q: &mut EventQueue<FleetEvent>,
        card: usize,
        epoch: u64,
        now_ns: u64,
    ) {
        if self.faulty.as_ref().is_some_and(|f| f.epochs[card] != epoch) {
            return;
        }
        let Some(mut gen) = self.sessions.as_mut().and_then(|s| s.cards[card].take()) else {
            return;
        };
        // Bank the tokens the finished window produced. A token is on
        // time when it lands within the per-token deadline of the
        // previous emission (of the arrival, for the first token — the
        // time-to-first-token deadline); tokens without a deadline
        // count vacuously.
        if gen.pending_step {
            let mut on_time = 0u64;
            for s in &mut gen.sessions {
                s.emitted += 1;
                let met = s
                    .req
                    .token_deadline_ns
                    .is_none_or(|d| now_ns <= s.last_emit_ns.saturating_add(d));
                if met {
                    s.on_time += 1;
                    on_time += 1;
                }
                s.last_emit_ns = now_ns;
            }
            let st = self.sessions.as_mut().expect("taken above");
            st.tokens_emitted += gen.sessions.len() as u64;
            st.decode_tokens += gen.sessions.len() as u64;
            st.tokens_on_time += on_time;
        }
        // Retire sessions that reached their requested length: release
        // their KV carve-out and record the completion at the final
        // token's timestamp.
        let batch_size = gen.sessions.len();
        let (done, active): (Vec<GenSession>, Vec<GenSession>) =
            gen.sessions.into_iter().partition(|s| s.emitted >= s.req.decode_steps);
        gen.sessions = active;
        for s in done {
            let r = s.req;
            self.sessions.as_mut().expect("taken above").kv[card].release(&kv_spec(&r));
            let f = self.faulty.as_mut().expect("decode runs are managed");
            f.prio_completed[r.priority.index()] += 1;
            let good = r.within_deadline(now_ns);
            if good {
                f.good_completions += 1;
                f.prio_good[r.priority.index()] += 1;
            }
            let ledger = f.ledger(r.tenant);
            ledger.completed += 1;
            if good {
                ledger.good += 1;
            }
            let cfg = EncoderConfig::new(r.d_model, r.heads, r.layers, r.seq_len);
            self.ops_total = self.ops_total.saturating_add(OpCount::for_config(&cfg).total());
            self.metrics.record(ServeResponse {
                id: r.id,
                arrival_ns: r.arrival_ns,
                start_ns: s.start_ns,
                finish_ns: now_ns,
                card,
                batch_size,
                padded_seq_len: gen.padded_prompt,
            });
        }
        // Continuous batching: freed slots refill with queued
        // compatible prefills *between* token steps — the joiners'
        // prompts prefill inside this window ahead of the next step,
        // resident sessions keep their caches, nothing reprograms.
        let draining = self.faulty.as_ref().is_some_and(|f| f.draining[card]);
        let mut joiner_prefill_ns = 0u64;
        if !draining {
            let slots = self.scheduler.policy().max_batch.saturating_sub(gen.sessions.len());
            let joiners = self.scheduler.take_session_joiners(gen.class, gen.padded_prompt, slots);
            let mut admitted = 0usize;
            for r in joiners {
                let fits =
                    self.sessions.as_mut().expect("taken above").kv[card].try_reserve(&kv_spec(&r));
                if !fits {
                    self.shed_session_tokens(&r, 0);
                    let f = self.faulty.as_mut().expect("decode runs are managed");
                    f.shed.push(FailedRequest { id: r.id, reason: FailReason::Shed });
                    f.ledger(r.tenant).shed += 1;
                    continue;
                }
                gen.sessions.push(GenSession {
                    req: r,
                    start_ns: now_ns,
                    emitted: 0,
                    last_emit_ns: r.arrival_ns,
                    on_time: 0,
                });
                admitted += 1;
            }
            if admitted > 0 {
                let (outcome, _) =
                    self.cards[card].accel.execute(RunPlan::prefill(gen.padded_prompt, admitted));
                match outcome {
                    Ok(run) => {
                        joiner_prefill_ns = (run.report.latency_ms() * 1e6).ceil() as u64;
                        let st = self.sessions.as_mut().expect("taken above");
                        st.prefill_ns_sum += joiner_prefill_ns;
                        st.prefill_count += admitted as u64;
                    }
                    Err(e) => {
                        self.error = Some(e.into());
                        return;
                    }
                }
            }
        }
        // Batch drained: the card goes idle (and a pending scale-down
        // completes — the drain was deferred while tokens flowed).
        if gen.sessions.is_empty() {
            self.cards[card].busy = false;
            if draining {
                self.finish_drain(card);
            }
            return;
        }
        // Price the next decode window: every resident session takes
        // one KV-cached token step in lockstep. The kv_len register
        // covers the longest member cache, clamped to the synthesized
        // window — positions beyond SL_MAX fall out of the attention
        // span, exactly like a sliding-window decode kernel.
        let step = gen.sessions.iter().map(|s| s.emitted as usize).max().unwrap_or(0);
        let sl_max = self.cards[card].accel.design().config.sl_max;
        let kv_len = (gen.padded_prompt + step + 1).min(sl_max);
        let (outcome, _) =
            self.cards[card].accel.execute(RunPlan::decode(step, kv_len, gen.sessions.len()));
        let service_ns = match outcome {
            Ok(run) => (run.report.latency_ms() * 1e6).ceil() as u64,
            Err(e) => {
                self.error = Some(e.into());
                return;
            }
        };
        let window_ns = joiner_prefill_ns.saturating_add(service_ns);
        let finish_ns = now_ns.saturating_add(window_ns);
        self.sessions.as_mut().expect("taken above").decode_ns_sum += service_ns;
        let c = &mut self.cards[card];
        c.busy_ns = c.busy_ns.saturating_add(window_ns);
        record_span(
            &mut self.trace,
            format!("decode x{} kv{}", gen.sessions.len(), kv_len),
            SpanKind::Batch,
            card,
            now_ns,
            finish_ns,
        );
        gen.pending_step = true;
        self.sessions.as_mut().expect("taken above").cards[card] = Some(gen);
        q.push(Cycles(finish_ns), RANK_DYN, FleetEvent::Generate { card, epoch });
    }

    /// Discard every generation session resident on `card` — it crashed
    /// or its image can no longer be trusted. Each session's remaining
    /// tokens are conserved as shed, each fails typed, and the card's
    /// KV carve-out empties with it.
    pub(super) fn shed_card_sessions(&mut self, card: usize, kind: FaultKind) {
        let Some(st) = self.sessions.as_mut() else { return };
        let Some(gen) = st.cards[card].take() else { return };
        st.kv[card].clear();
        for s in &gen.sessions {
            st.tokens_shed += u64::from(s.req.decode_steps.saturating_sub(s.emitted));
        }
        let f = self.faulty.as_mut().expect("decode runs are managed");
        for s in gen.sessions {
            f.failed.push(FailedRequest {
                id: s.req.id,
                reason: FailReason::RetriesExhausted { last: kind },
            });
            f.ledger(s.req.tenant).failed += 1;
        }
    }
}

/// Greedy dispatch: while a card is free (and, under fault injection,
/// alive with a closed circuit) and a batch is ready, pair them; then
/// arm wake-ups for the earliest waiting partial batch and the earliest
/// circuit cooldown.
pub(super) fn dispatch_all(q: &mut EventQueue<FleetEvent>, m: &mut SimModel) {
    if m.error.is_some() {
        return;
    }
    let now = q.now().get();
    // Deadline-aware flush: expired requests are shed *before* the
    // dispatch loop below can pair them with a card.
    m.shed_expired(now);
    while let Some(card) = m.free_card(now) {
        let mut ready = m.scheduler.pop_ready(now);
        if ready.is_none() {
            // Deadline-aware flush, part two: a partial batch whose
            // deadline is closer than the observed p99 service time
            // dispatches now — waiting out the generic batching window
            // would guarantee it expires in queue.
            if let Some(f) = m.faulty.as_ref().filter(|f| f.track_deadlines) {
                ready = m.scheduler.pop_urgent(now, f.svc.p99_ns());
            }
        }
        let Some(batch) = ready else { break };
        if m.faulty.is_some() {
            let seq = {
                let f = m.faulty.as_mut().expect("fault state");
                f.batch_seq += 1;
                f.batch_seq
            };
            match m.dispatch_faulty(card, &batch, now, seq, false) {
                Ok(outcome) => {
                    let epoch = m.faulty.as_ref().expect("fault state").epochs[card];
                    schedule_leg(q, card, epoch, now, outcome);
                    arm_hedge(q, m, card, seq, now);
                }
                Err(e) => {
                    m.error = Some(e);
                    return;
                }
            }
        } else {
            match m.dispatch(card, &batch, now) {
                Ok(finish_ns) => {
                    q.push(Cycles(finish_ns), RANK_DYN, FleetEvent::Free { card });
                }
                Err(e) => {
                    m.error = Some(e);
                    return;
                }
            }
        }
    }
    // Generation batches claim cards after the one-shot loop: a free
    // card left over prefills the best queued session batch, then holds
    // it resident, emitting tokens window by window until it drains.
    // (Encoder-only runs have no session queues; this loop breaks
    // immediately and perturbs nothing.)
    while let Some(card) = m.free_card(now) {
        let Some(batch) = m.scheduler.pop_session_ready(now) else { break };
        if let Err(e) = m.start_session_batch(q, card, batch, now) {
            m.error = Some(e);
            return;
        }
    }
    // A partial batch left waiting needs a wake-up at its deadline; one
    // already overdue (deadline ≤ now with every card busy) is picked up
    // by the next completion's dispatch_all.
    if let Some(deadline) = m.scheduler.next_flush_deadline_ns() {
        let stale = m.next_flush.is_none_or(|t| t <= now || deadline < t);
        if deadline > now && stale {
            m.next_flush = Some(deadline);
            q.push(Cycles(deadline), RANK_DYN, FleetEvent::Wake);
        }
    }
    // A queued request with a deadline needs a wake-up: early enough to
    // flush its batch while it can still complete in time (deadline
    // minus the p99 service estimate), or at the deadline itself so it
    // is shed promptly rather than only at the next arrival or
    // completion event.
    if m.faulty.as_ref().is_some_and(|f| f.track_deadlines) {
        let headroom = m.faulty.as_ref().and_then(|f| f.svc.p99_ns());
        if let Some(d) = m.scheduler.next_deadline_wake_ns(now, headroom) {
            let f = m.faulty.as_mut().expect("fault state");
            let stale = f.deadline_wake.is_none_or(|t| t <= now || d < t);
            if d > now && stale {
                f.deadline_wake = Some(d);
                q.push(Cycles(d), RANK_DYN, FleetEvent::Wake);
            }
        }
    }
    // Periodic weight-digest scrub: (re)armed only while work remains
    // in the system — and only while some card could still serve it —
    // so the scrub chain never outlives the workload (or a fully dead
    // fleet, where requests arriving after the last card died would
    // otherwise keep it ticking forever). Same dedup idiom as the
    // wakes.
    if m.in_system() > 0 && !m.all_cards_dead() {
        if let Some(s) = m.faulty.as_ref().and_then(|f| f.sdc.as_ref()) {
            if let Some(every) = s.scrub_every_ns {
                if s.scrub_armed.is_none_or(|t| t <= now) {
                    let at = now.saturating_add(every);
                    m.faulty
                        .as_mut()
                        .expect("checked above")
                        .sdc
                        .as_mut()
                        .expect("checked above")
                        .scrub_armed = Some(at);
                    q.push(Cycles(at), RANK_DYN, FleetEvent::Scrub);
                }
            }
        }
    }
    // If work is pending and some idle card is only blocked by an open
    // circuit, wake up when the earliest cooldown expires — otherwise a
    // fleet of tripped-but-alive cards would hang.
    if m.scheduler.pending() > 0 {
        if let Some(f) = m.faulty.as_ref() {
            let wake = m
                .cards
                .iter()
                .enumerate()
                .filter(|&(i, c)| !c.busy && f.present[i] && !f.draining[i])
                .filter_map(|(i, _)| f.monitors[i].open_until_ns())
                .filter(|&t| t > now)
                .min();
            if let Some(t) = wake {
                let stale = f.breaker_wake.is_none_or(|w| w <= now || t < w);
                if stale {
                    m.faulty.as_mut().expect("fault state").breaker_wake = Some(t);
                    q.push(Cycles(t), RANK_DYN, FleetEvent::Wake);
                }
            }
        }
    }
}

/// Schedule the completion or failure event for one dispatched leg
/// (primary or hedge). The captured epoch makes the event a no-op if the
/// card crashed — or the leg was cancelled by a hedge win — first. The
/// event's own timestamp carries the resolve time, so the handler can
/// pass the popped `now` where the old closure captured `finish_ns`.
pub(super) fn schedule_leg(
    q: &mut EventQueue<FleetEvent>,
    card: usize,
    epoch: u64,
    start_ns: u64,
    outcome: FaultyDispatch,
) {
    match outcome {
        FaultyDispatch::Done { finish_ns } => {
            q.push(Cycles(finish_ns), RANK_DYN, FleetEvent::Complete { card, epoch, start_ns });
        }
        FaultyDispatch::Failed { at_ns, kind } => {
            q.push(Cycles(at_ns), RANK_DYN, FleetEvent::Fail { card, epoch, kind });
        }
    }
}

/// Arm a hedge check for the batch just dispatched as `seq` on `card`:
/// after the p99-derived delay, if the leg is still in flight, re-issue
/// it on a second healthy idle card (the check itself decides — the
/// batch may long since have completed, failed, or crashed away).
pub(super) fn arm_hedge(
    q: &mut EventQueue<FleetEvent>,
    m: &mut SimModel,
    card: usize,
    seq: u64,
    now: u64,
) {
    if m.cards.len() < 2 {
        return;
    }
    let f = m.faulty.as_ref().expect("fault state");
    let Some(h) = f.hedge else { return };
    let hedge_at = now.saturating_add(f.svc.hedge_delay_ns(&h));
    let resolve_ns = f.inflight[card].as_ref().map_or(0, |i| i.resolve_ns);
    // The simulation already knows when this leg resolves; a hedge that
    // could only fire afterwards is pointless, so skip the event. (A
    // real fleet schedules the timer unconditionally and finds the work
    // gone — same outcome, fewer events.)
    if hedge_at >= resolve_ns {
        return;
    }
    q.push(Cycles(hedge_at), RANK_DYN, FleetEvent::Hedge { card, seq });
}
