//! The fleet's typed event vocabulary and the one handler that
//! interprets it.
//!
//! PR 5's fleet scheduled boxed closures on the legacy `Simulator`
//! kernel; closures cannot be serialized, so that fleet could not
//! checkpoint. Every closure is now a [`FleetEvent`] variant — plain
//! data — handled by [`handle_event`], and the pending-event set can be
//! drained to a snapshot and rebuilt later.
//!
//! ## Ordering
//!
//! The closure kernel fired same-time events in scheduling order, and
//! the old driver scheduled every arrival first, then every crash, then
//! dynamics as the simulation produced them. With lazy arrival chaining
//! the *insertion* order changes, so the class order is made explicit
//! through the [`EventQueue`] rank: arrivals ([`RANK_ARRIVAL`]) outrank
//! crashes ([`RANK_CRASH`]) outrank everything scheduled mid-run
//! ([`RANK_DYN`]) at equal timestamps — reproducing the historical
//! firing order exactly (pinned by the `serve_equiv` tests).

use super::dispatch::{dispatch_all, schedule_leg};
use super::sim::SimModel;
use crate::error::ServeError;
use crate::request::ServeRequest;
use crate::source::WorkloadSource;
use protea_core::FaultKind;
use protea_hwsim::{Cycles, EventQueue};

/// Rank for arrival events: first among same-time events.
pub(super) const RANK_ARRIVAL: u8 = 0;
/// Rank for card-crash events: after arrivals, before dynamics.
pub(super) const RANK_CRASH: u8 = 1;
/// Rank for everything scheduled during the run (completions, failures,
/// hedge checks, wake-ups).
pub(super) const RANK_DYN: u8 = 2;

/// One schedulable fleet occurrence. Everything the old closure kernel
/// captured is now an explicit, serializable payload.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum FleetEvent {
    /// A request reaches the fleet (the handler lazily chains the next
    /// arrival from the source, so at most one is ever pending).
    Arrival(ServeRequest),
    /// A card drops off the bus.
    Crash {
        /// The dying card.
        card: usize,
    },
    /// A fault-free batch completes, freeing its card.
    Free {
        /// The card to free.
        card: usize,
    },
    /// A fault-armed batch completes (no-op if `epoch` went stale).
    Complete {
        /// The card the batch ran on.
        card: usize,
        /// Dispatch epoch captured at dispatch; a crash or hedge win
        /// bumps the card's epoch so this event no-ops.
        epoch: u64,
        /// When the batch started service.
        start_ns: u64,
    },
    /// The driver gives up on a fault-armed batch.
    Fail {
        /// The card the batch ran on.
        card: usize,
        /// Dispatch epoch captured at dispatch.
        epoch: u64,
        /// The unrecoverable fault class.
        kind: FaultKind,
    },
    /// Hedge check for the batch dispatched as `seq` on `card`.
    Hedge {
        /// The card running the (possibly straggling) primary leg.
        card: usize,
        /// The dispatch id to hedge.
        seq: u64,
    },
    /// A scripted churn join: the slot (re)gains a card, whose first
    /// batch pays the full reprogramming charge.
    Join {
        /// The joining roster slot.
        card: usize,
    },
    /// A scripted churn drain: the card stops taking batches, finishes
    /// its in-flight work, then leaves cleanly.
    Drain {
        /// The draining card.
        card: usize,
    },
    /// Periodic weight-digest scrub sweep over every live resident
    /// card (armed only while work remains in the system).
    Scrub,
    /// A quarantined card's reprogram-and-reload finished: readmit it
    /// with a fresh, digest-verified image (no-op if `epoch` went
    /// stale — the card crashed or drained away mid-restore).
    Requalify {
        /// The card leaving quarantine.
        card: usize,
        /// Epoch captured when the quarantine began.
        epoch: u64,
    },
    /// A generation compute window on `card` ended: bank one token per
    /// active session (when a step was pending), retire finished
    /// sessions, admit queued joiners, and price the next window
    /// (no-op if `epoch` went stale — the card crashed or drained).
    Generate {
        /// The card running the generation batch.
        card: usize,
        /// Dispatch epoch captured when the window was priced.
        epoch: u64,
    },
    /// Bare dispatch wake-up (batch flush window, request deadline, or
    /// circuit-breaker cooldown).
    Wake,
}

/// Pull the next request from `source` and schedule its arrival.
/// Returns whether an arrival was chained (false on exhaustion or
/// error; errors land in `m.error`).
pub(super) fn pull_arrival(
    q: &mut EventQueue<FleetEvent>,
    m: &mut SimModel,
    source: &mut dyn WorkloadSource,
) -> bool {
    match source.next_request() {
        Ok(Some(next)) => {
            if Cycles(next.arrival_ns) < q.now() {
                // A hostile source must surface as an error, never as a
                // causality panic inside the event queue.
                m.error = Some(ServeError::Trace {
                    at: 0,
                    msg: format!(
                        "source yielded an out-of-order arrival at {} ns (clock is at {} ns)",
                        next.arrival_ns,
                        q.now().get()
                    ),
                });
                return false;
            }
            q.push(Cycles(next.arrival_ns), RANK_ARRIVAL, FleetEvent::Arrival(next));
            true
        }
        Ok(None) => false,
        Err(e) => {
            m.error = Some(e);
            false
        }
    }
}

/// Interpret one popped event. Each arm mirrors the body of the closure
/// the old kernel would have run — including which arms check `m.error`
/// (the fault-free `Free` did not; `dispatch_all` guards itself).
pub(super) fn handle_event(
    q: &mut EventQueue<FleetEvent>,
    m: &mut SimModel,
    source: &mut dyn WorkloadSource,
    now: u64,
    ev: FleetEvent,
) {
    match ev {
        FleetEvent::Arrival(req) => {
            if m.error.is_some() {
                return;
            }
            pull_arrival(q, m, source);
            if m.error.is_some() {
                return;
            }
            if m.faulty.is_some() {
                m.faulty.as_mut().expect("checked above").submitted += 1;
                m.admit(req, now);
            } else if let Err(e) = m.scheduler.push(req) {
                m.error = Some(e);
                return;
            }
            dispatch_all(q, m);
        }
        FleetEvent::Crash { card } => {
            if m.error.is_some() {
                return;
            }
            m.crash_card(card, now);
            dispatch_all(q, m);
        }
        FleetEvent::Free { card } => {
            m.cards[card].busy = false;
            dispatch_all(q, m);
        }
        FleetEvent::Complete { card, epoch, start_ns } => {
            if m.error.is_some() {
                return;
            }
            m.complete_faulty(q, card, epoch, start_ns, now);
            dispatch_all(q, m);
        }
        FleetEvent::Fail { card, epoch, kind } => {
            if m.error.is_some() {
                return;
            }
            m.fail_faulty(card, epoch, now, kind);
            dispatch_all(q, m);
        }
        FleetEvent::Join { card } => {
            if m.error.is_some() {
                return;
            }
            m.join_card(card);
            dispatch_all(q, m);
        }
        FleetEvent::Drain { card } => {
            if m.error.is_some() {
                return;
            }
            m.drain_card(card);
            dispatch_all(q, m);
        }
        FleetEvent::Hedge { card, seq } => {
            if m.error.is_some() {
                return;
            }
            match m.start_hedge(card, seq, now) {
                Ok(Some((hedge_card, epoch, outcome))) => {
                    schedule_leg(q, hedge_card, epoch, now, outcome);
                }
                Ok(None) => {}
                Err(e) => m.error = Some(e),
            }
        }
        FleetEvent::Scrub => {
            if m.error.is_some() {
                return;
            }
            m.scrub_fleet(q, now);
            dispatch_all(q, m);
        }
        FleetEvent::Requalify { card, epoch } => {
            if m.error.is_some() {
                return;
            }
            m.requalify_card(card, epoch);
            dispatch_all(q, m);
        }
        FleetEvent::Generate { card, epoch } => {
            if m.error.is_some() {
                return;
            }
            m.generate_round(q, card, epoch, now);
            dispatch_all(q, m);
        }
        FleetEvent::Wake => dispatch_all(q, m),
    }
}
