//! Fleet-level fault-injection configuration and failure records.
//!
//! [`FaultConfig`] is the one knob block a chaos experiment turns:
//! which faults to inject (seeded rates and/or scripted events) and how
//! the fleet responds (watchdog, retry budget, circuit breaker,
//! per-request attempt cap). Requests the fleet could not serve despite
//! retries come back as [`FailedRequest`]s in the report — **never**
//! silently dropped: every submitted request ends in exactly one of
//! `completed` or `failed`.

use crate::health::CircuitBreaker;
use core::fmt;
use protea_core::{FaultEvent, FaultKind, FaultRates, RetryPolicy, Watchdog};

/// Everything a fault-injected serving simulation needs beyond the
/// fault-free [`FleetConfig`](crate::FleetConfig) fields.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Seed for the per-card fault streams (two runs with the same seed
    /// replay bit-identically).
    pub seed: u64,
    /// Random fault probabilities (see [`FaultRates`]).
    pub rates: FaultRates,
    /// Explicitly scripted faults, routed to their target cards.
    pub events: Vec<FaultEvent>,
    /// The driver's hung-transfer watchdog.
    pub watchdog: Watchdog,
    /// The driver's in-run retry policy for recoverable faults.
    pub retry: RetryPolicy,
    /// Fleet-level circuit-breaker thresholds.
    pub breaker: CircuitBreaker,
    /// Times one request may be dispatched (first try included) before
    /// it is failed with [`FailReason::RetriesExhausted`]. At least 1.
    pub max_request_attempts: u32,
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            rates: FaultRates::ZERO,
            events: Vec::new(),
            watchdog: Watchdog::default(),
            retry: RetryPolicy::default(),
            breaker: CircuitBreaker::default(),
            max_request_attempts: 5,
        }
    }
}

impl FaultConfig {
    /// A seeded configuration at the canonical fault mix
    /// ([`FaultRates::scaled`]), default response policies.
    #[must_use]
    pub fn seeded(seed: u64, rate: f64) -> Self {
        Self { seed, rates: FaultRates::scaled(rate), ..Self::default() }
    }
}

/// Why a request ultimately failed (or, for the overload reasons, was
/// deliberately not served).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailReason {
    /// Every dispatch attempt ended in an unrecoverable card fault.
    RetriesExhausted {
        /// The fault class of the last failed attempt.
        last: FaultKind,
    },
    /// No live card remained to serve it.
    AllCardsDead,
    /// Shed at admission under overload: its bucket queue was at the
    /// configured cap (possibly displaced by a higher-priority arrival)
    /// or the AIMD concurrency limit was reached.
    Shed,
    /// Its completion deadline passed while it was still queued, so it
    /// was dropped before dispatch rather than burned on a card.
    DeadlineExpired,
    /// A card fault would have requeued it, but the fleet's retry
    /// budget was empty — requeue storms must not amplify overload.
    RetryBudgetExhausted {
        /// The fault class of the attempt that wanted the retry.
        last: FaultKind,
    },
    /// Shed by the brownout ladder: live fleet capacity had dropped
    /// below the configured threshold and the request's service class
    /// fell under the raised admission floor. Brownout sheds recover on
    /// their own as cards rejoin — no retry storm required.
    Brownout,
}

impl fmt::Display for FailReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailReason::RetriesExhausted { last } => {
                write!(f, "retry budget exhausted (last fault: {last})")
            }
            FailReason::AllCardsDead => write!(f, "every card in the fleet is dead"),
            FailReason::Shed => write!(f, "shed at admission (queue full or over limit)"),
            FailReason::DeadlineExpired => write!(f, "deadline expired while queued"),
            FailReason::RetryBudgetExhausted { last } => {
                write!(f, "fleet retry budget empty (last fault: {last})")
            }
            FailReason::Brownout => {
                write!(f, "shed by brownout (admission floor above its class)")
            }
        }
    }
}

/// One request the fleet could not serve, with its typed reason.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailedRequest {
    /// The request id from the workload trace.
    pub id: u64,
    /// Why it failed.
    pub reason: FailReason,
}

impl fmt::Display for FailedRequest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "request {}: {}", self.id, self.reason)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_fault_free_but_armed() {
        let c = FaultConfig::default();
        assert!(c.rates.is_zero());
        assert!(c.max_request_attempts >= 1);
        assert!(c.rates.validate().is_ok());
    }

    #[test]
    fn seeded_scales_the_canonical_mix() {
        let c = FaultConfig::seeded(9, 0.2);
        assert_eq!(c.seed, 9);
        assert!(!c.rates.is_zero());
        assert!(c.rates.validate().is_ok());
    }

    #[test]
    fn failure_displays_name_the_reason() {
        let a = FailedRequest {
            id: 3,
            reason: FailReason::RetriesExhausted { last: FaultKind::EccDouble },
        };
        assert!(a.to_string().contains("request 3"));
        assert!(a.to_string().contains("double-bit ECC"));
        let b = FailedRequest { id: 4, reason: FailReason::AllCardsDead };
        assert!(b.to_string().contains("dead"));
    }
}
