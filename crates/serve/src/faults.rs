//! Fleet-level fault-injection configuration and failure records.
//!
//! [`FaultConfig`] is the one knob block a chaos experiment turns:
//! which faults to inject (seeded rates and/or scripted events) and how
//! the fleet responds (watchdog, retry budget, circuit breaker,
//! per-request attempt cap). Requests the fleet could not serve despite
//! retries come back as [`FailedRequest`]s in the report — **never**
//! silently dropped: every submitted request ends in exactly one of
//! `completed` or `failed`.

use crate::health::CircuitBreaker;
use core::fmt;
use protea_core::{FaultEvent, FaultKind, FaultRates, RetryPolicy, SdcEvent, Watchdog};

/// Everything a fault-injected serving simulation needs beyond the
/// fault-free [`FleetConfig`](crate::FleetConfig) fields.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Seed for the per-card fault streams (two runs with the same seed
    /// replay bit-identically).
    pub seed: u64,
    /// Random fault probabilities (see [`FaultRates`]).
    pub rates: FaultRates,
    /// Explicitly scripted faults, routed to their target cards.
    pub events: Vec<FaultEvent>,
    /// The driver's hung-transfer watchdog.
    pub watchdog: Watchdog,
    /// The driver's in-run retry policy for recoverable faults.
    pub retry: RetryPolicy,
    /// Fleet-level circuit-breaker thresholds.
    pub breaker: CircuitBreaker,
    /// Times one request may be dispatched (first try included) before
    /// it is failed with [`FailReason::RetriesExhausted`]. At least 1.
    pub max_request_attempts: u32,
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            rates: FaultRates::ZERO,
            events: Vec::new(),
            watchdog: Watchdog::default(),
            retry: RetryPolicy::default(),
            breaker: CircuitBreaker::default(),
            max_request_attempts: 5,
        }
    }
}

impl FaultConfig {
    /// A seeded configuration at the canonical fault mix
    /// ([`FaultRates::scaled`]), default response policies.
    #[must_use]
    pub fn seeded(seed: u64, rate: f64) -> Self {
        Self { seed, rates: FaultRates::scaled(rate), ..Self::default() }
    }
}

/// The silent-data-corruption defense knobs: injection (seeded rate
/// and/or scripted [`SdcEvent`]s), detection (ABFT checksums on the
/// GEMM epilogue, periodic weight-digest scrubs), and — implicitly —
/// the recovery ladder the fleet runs when a hit is detected
/// (re-execute on the same card, then quarantine + reprogram + reload).
///
/// With **no** knob set ([`SdcConfig::armed`] is `false`, equivalently
/// `FleetConfig.sdc = None`), the simulation is byte-for-byte the
/// SDC-free one: no state is allocated, no RNG is consumed, reports and
/// snapshots are bit-identical — pinned by `tests/integrity.rs`.
#[derive(Debug, Clone, PartialEq)]
pub struct SdcConfig {
    /// Seed for the per-card [`SdcStream`](protea_core::SdcStream)s
    /// (decorrelated from the loud-fault seed by construction).
    pub seed: u64,
    /// Probability an executed batch suffers a silent bit flip.
    pub rate: f64,
    /// Fraction of hits that land in weight SRAM (persistent until
    /// reload) rather than the batch's activation datapath (transient).
    pub weight_fraction: f64,
    /// Explicitly scripted corruptions, routed to their target cards.
    pub events: Vec<SdcEvent>,
    /// Verify ABFT row/column checksums in every GEMM epilogue. Charges
    /// the checksum arithmetic on every batch's service time and
    /// detects activation-site hits whose locus falls in checksummed
    /// compute; weight-site hits are structurally invisible to ABFT and
    /// only the digest rungs catch them.
    pub abft: bool,
    /// Fire a weight-digest scrub over every idle resident card each
    /// interval (nanoseconds). `None` scrubs only at load/reprogram.
    pub scrub_every_ns: Option<u64>,
}

impl Default for SdcConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            rate: 0.0,
            weight_fraction: 0.25,
            events: Vec::new(),
            abft: false,
            scrub_every_ns: None,
        }
    }
}

impl SdcConfig {
    /// A seeded configuration injecting at `rate` with the full defense
    /// (ABFT on, scrubbing at `scrub_every_ns`).
    #[must_use]
    pub fn defended(seed: u64, rate: f64, scrub_every_ns: u64) -> Self {
        Self { seed, rate, abft: true, scrub_every_ns: Some(scrub_every_ns), ..Self::default() }
    }

    /// Whether any SDC knob is set — injection, scripted events, ABFT,
    /// or scrubbing. `false` means the config is inert: the fleet
    /// allocates no SDC state and the run is byte-identical to
    /// `sdc: None`.
    #[must_use]
    pub fn armed(&self) -> bool {
        self.rate > 0.0 || !self.events.is_empty() || self.abft || self.scrub_every_ns.is_some()
    }

    /// Validate the knobs.
    ///
    /// # Errors
    /// A human-readable description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.rate) {
            return Err(format!("sdc rate must be in [0, 1], got {}", self.rate));
        }
        if !(0.0..=1.0).contains(&self.weight_fraction) {
            return Err(format!(
                "sdc weight_fraction must be in [0, 1], got {}",
                self.weight_fraction
            ));
        }
        if self.scrub_every_ns == Some(0) {
            return Err("scrub_every_ns must be at least 1 when set".into());
        }
        Ok(())
    }
}

/// Why a request ultimately failed (or, for the overload reasons, was
/// deliberately not served).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailReason {
    /// Every dispatch attempt ended in an unrecoverable card fault.
    RetriesExhausted {
        /// The fault class of the last failed attempt.
        last: FaultKind,
    },
    /// No live card remained to serve it.
    AllCardsDead,
    /// Shed at admission under overload: its bucket queue was at the
    /// configured cap (possibly displaced by a higher-priority arrival)
    /// or the AIMD concurrency limit was reached.
    Shed,
    /// Its completion deadline passed while it was still queued, so it
    /// was dropped before dispatch rather than burned on a card.
    DeadlineExpired,
    /// A card fault would have requeued it, but the fleet's retry
    /// budget was empty — requeue storms must not amplify overload.
    RetryBudgetExhausted {
        /// The fault class of the attempt that wanted the retry.
        last: FaultKind,
    },
    /// Shed by the brownout ladder: live fleet capacity had dropped
    /// below the configured threshold and the request's service class
    /// fell under the raised admission floor. Brownout sheds recover on
    /// their own as cards rejoin — no retry storm required.
    Brownout,
}

impl fmt::Display for FailReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailReason::RetriesExhausted { last } => {
                write!(f, "retry budget exhausted (last fault: {last})")
            }
            FailReason::AllCardsDead => write!(f, "every card in the fleet is dead"),
            FailReason::Shed => write!(f, "shed at admission (queue full or over limit)"),
            FailReason::DeadlineExpired => write!(f, "deadline expired while queued"),
            FailReason::RetryBudgetExhausted { last } => {
                write!(f, "fleet retry budget empty (last fault: {last})")
            }
            FailReason::Brownout => {
                write!(f, "shed by brownout (admission floor above its class)")
            }
        }
    }
}

/// One request the fleet could not serve, with its typed reason.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailedRequest {
    /// The request id from the workload trace.
    pub id: u64,
    /// Why it failed.
    pub reason: FailReason,
}

impl fmt::Display for FailedRequest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "request {}: {}", self.id, self.reason)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_fault_free_but_armed() {
        let c = FaultConfig::default();
        assert!(c.rates.is_zero());
        assert!(c.max_request_attempts >= 1);
        assert!(c.rates.validate().is_ok());
    }

    #[test]
    fn seeded_scales_the_canonical_mix() {
        let c = FaultConfig::seeded(9, 0.2);
        assert_eq!(c.seed, 9);
        assert!(!c.rates.is_zero());
        assert!(c.rates.validate().is_ok());
    }

    #[test]
    fn sdc_default_is_inert_and_every_knob_arms() {
        use protea_core::SdcSite;
        let off = SdcConfig::default();
        assert!(!off.armed());
        assert!(off.validate().is_ok());
        assert!(SdcConfig { rate: 0.01, ..SdcConfig::default() }.armed());
        assert!(SdcConfig { abft: true, ..SdcConfig::default() }.armed());
        assert!(SdcConfig { scrub_every_ns: Some(1_000_000), ..SdcConfig::default() }.armed());
        let ev = SdcEvent { at_ns: 5, card: 0, site: SdcSite::Weights };
        assert!(SdcConfig { events: vec![ev], ..SdcConfig::default() }.armed());
        assert!(SdcConfig::defended(7, 0.01, 1_000_000).armed());
    }

    #[test]
    fn sdc_validate_rejects_bad_knobs() {
        assert!(SdcConfig { rate: 1.5, ..SdcConfig::default() }.validate().is_err());
        assert!(SdcConfig { rate: -0.1, ..SdcConfig::default() }.validate().is_err());
        assert!(SdcConfig { weight_fraction: 2.0, ..SdcConfig::default() }.validate().is_err());
        assert!(SdcConfig { scrub_every_ns: Some(0), ..SdcConfig::default() }.validate().is_err());
        assert!(SdcConfig::defended(7, 0.01, 1_000_000).validate().is_ok());
    }

    #[test]
    fn failure_displays_name_the_reason() {
        let a = FailedRequest {
            id: 3,
            reason: FailReason::RetriesExhausted { last: FaultKind::EccDouble },
        };
        assert!(a.to_string().contains("request 3"));
        assert!(a.to_string().contains("double-bit ECC"));
        let b = FailedRequest { id: 4, reason: FailReason::AllCardsDead };
        assert!(b.to_string().contains("dead"));
    }
}
