//! Per-card health tracking and the dispatch circuit breaker.
//!
//! The fleet watches every card's fault history and degrades
//! gracefully instead of hammering a failing card:
//!
//! * a card moves `Healthy → Degraded` on its first unrecoverable
//!   fault and `→ Dead` after [`CircuitBreaker::dead_threshold`] total
//!   failures (or immediately on a crash);
//! * [`CircuitBreaker::trip_threshold`] *consecutive* failures open the
//!   card's circuit: dispatch skips it for
//!   [`CircuitBreaker::cooldown_ns`], then probes it again;
//! * a success closes the circuit and restores `Healthy`.
//!
//! The monitor is pure bookkeeping — deterministic, no clocks of its
//! own — so fleet simulations containing it replay bit-identically.

use core::fmt;

/// A card's position on the degradation ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum CardHealth {
    /// Serving normally.
    Healthy,
    /// Has failed at least once since its last success; still dispatchable.
    Degraded,
    /// Crashed or exceeded the failure budget; never dispatched again.
    Dead,
}

impl fmt::Display for CardHealth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CardHealth::Healthy => "healthy",
            CardHealth::Degraded => "degraded",
            CardHealth::Dead => "dead",
        })
    }
}

/// Circuit-breaker thresholds governing when a failing card is rested
/// and when it is abandoned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CircuitBreaker {
    /// Consecutive unrecoverable failures that open the circuit.
    pub trip_threshold: u32,
    /// How long an open circuit blocks dispatch to the card (ns).
    pub cooldown_ns: u64,
    /// Total failures after which the card is declared dead.
    pub dead_threshold: u32,
}

impl Default for CircuitBreaker {
    fn default() -> Self {
        Self { trip_threshold: 2, cooldown_ns: 5_000_000, dead_threshold: 6 }
    }
}

/// The fleet's health record for one card.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CardMonitor {
    breaker: CircuitBreaker,
    health: CardHealth,
    consecutive_failures: u32,
    total_failures: u32,
    open_until_ns: Option<u64>,
}

impl CardMonitor {
    /// A fresh (healthy, circuit closed) monitor under `breaker`.
    #[must_use]
    pub fn new(breaker: CircuitBreaker) -> Self {
        Self {
            breaker,
            health: CardHealth::Healthy,
            consecutive_failures: 0,
            total_failures: 0,
            open_until_ns: None,
        }
    }

    /// Current health.
    #[must_use]
    pub fn health(&self) -> CardHealth {
        self.health
    }

    /// Total unrecoverable failures recorded.
    #[must_use]
    pub fn total_failures(&self) -> u32 {
        self.total_failures
    }

    /// Whether the card may receive a dispatch at `now_ns`: alive and
    /// its circuit (if open) has cooled down.
    #[must_use]
    pub fn available(&self, now_ns: u64) -> bool {
        self.health != CardHealth::Dead && self.open_until_ns.is_none_or(|t| now_ns >= t)
    }

    /// When the open circuit admits dispatch again, if it is currently
    /// blocking a live card.
    #[must_use]
    pub fn open_until_ns(&self) -> Option<u64> {
        if self.health == CardHealth::Dead {
            None
        } else {
            self.open_until_ns
        }
    }

    /// A batch completed: close the circuit and restore health.
    pub fn record_success(&mut self) {
        if self.health == CardHealth::Dead {
            return;
        }
        self.health = CardHealth::Healthy;
        self.consecutive_failures = 0;
        self.open_until_ns = None;
    }

    /// An unrecoverable fault ended a batch at `now_ns`: degrade, and
    /// trip the breaker or declare the card dead per the thresholds.
    pub fn record_failure(&mut self, now_ns: u64) {
        if self.health == CardHealth::Dead {
            return;
        }
        self.total_failures += 1;
        self.consecutive_failures += 1;
        if self.total_failures >= self.breaker.dead_threshold {
            self.health = CardHealth::Dead;
            return;
        }
        self.health = CardHealth::Degraded;
        if self.consecutive_failures >= self.breaker.trip_threshold {
            self.open_until_ns = Some(now_ns.saturating_add(self.breaker.cooldown_ns));
        }
    }

    /// The card dropped off the bus: dead, immediately and permanently.
    pub fn kill(&mut self) {
        self.health = CardHealth::Dead;
    }

    /// Raw snapshot form: `(health, consecutive, total, open_until)` —
    /// unlike [`open_until_ns`](Self::open_until_ns) this does not mask
    /// a dead card's stored cooldown, so a restore is field-exact.
    pub(crate) fn export_state(&self) -> (CardHealth, u32, u32, Option<u64>) {
        (self.health, self.consecutive_failures, self.total_failures, self.open_until_ns)
    }

    /// Restore from [`export_state`](Self::export_state)ed fields (the
    /// breaker itself comes from config, not the snapshot).
    pub(crate) fn restore_state(
        &mut self,
        health: CardHealth,
        consecutive: u32,
        total: u32,
        open_until_ns: Option<u64>,
    ) {
        self.health = health;
        self.consecutive_failures = consecutive;
        self.total_failures = total;
        self.open_until_ns = open_until_ns;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degradation_ladder() {
        let b = CircuitBreaker { trip_threshold: 2, cooldown_ns: 1_000, dead_threshold: 3 };
        let mut m = CardMonitor::new(b);
        assert_eq!(m.health(), CardHealth::Healthy);
        assert!(m.available(0));

        m.record_failure(100);
        assert_eq!(m.health(), CardHealth::Degraded);
        assert!(m.available(100), "one failure does not trip the breaker");

        m.record_failure(200);
        assert!(!m.available(200), "second consecutive failure opens the circuit");
        assert_eq!(m.open_until_ns(), Some(1_200));
        assert!(m.available(1_200), "cooldown elapsed");

        m.record_success();
        assert_eq!(m.health(), CardHealth::Healthy);
        assert!(m.available(1_300));

        // Success reset the consecutive counter, but total failures
        // accumulate toward death.
        m.record_failure(2_000);
        assert_eq!(m.health(), CardHealth::Dead, "third total failure is fatal");
        assert!(!m.available(u64::MAX));
        assert_eq!(m.open_until_ns(), None, "dead cards report no cooldown");
    }

    #[test]
    fn half_open_probe_failure_reopens_for_a_fresh_cooldown() {
        let b = CircuitBreaker { trip_threshold: 2, cooldown_ns: 1_000, dead_threshold: 100 };
        let mut m = CardMonitor::new(b);
        m.record_failure(0);
        m.record_failure(10);
        assert_eq!(m.open_until_ns(), Some(1_010));
        assert!(!m.available(500), "cooldown still running");
        assert!(m.available(1_010), "half-open: exactly one probe dispatch is admitted");

        // The probe fails: the circuit re-opens for a full fresh
        // cooldown window measured from the *probe's* failure time, not
        // the original trip.
        m.record_failure(1_500);
        assert!(!m.available(1_500));
        assert_eq!(m.open_until_ns(), Some(2_500));
        assert!(!m.available(2_499));
        assert!(m.available(2_500), "second probe window opens after the fresh cooldown");
    }

    #[test]
    fn half_open_probe_success_closes_the_circuit() {
        let b = CircuitBreaker { trip_threshold: 2, cooldown_ns: 1_000, dead_threshold: 100 };
        let mut m = CardMonitor::new(b);
        m.record_failure(0);
        m.record_failure(10);
        assert_eq!(m.health(), CardHealth::Degraded);
        assert!(m.available(1_010), "cooled down: probe admitted");

        // The probe succeeds: circuit closes, health restores, and the
        // consecutive counter resets — the next single failure degrades
        // but does NOT re-trip.
        m.record_success();
        assert_eq!(m.health(), CardHealth::Healthy);
        assert_eq!(m.open_until_ns(), None);
        assert!(m.available(1_011));
        m.record_failure(2_000);
        assert_eq!(m.health(), CardHealth::Degraded);
        assert!(m.available(2_000), "one failure after a probe success does not re-trip");
        m.record_failure(2_100);
        assert!(!m.available(2_100), "two consecutive failures re-trip as from scratch");
    }

    #[test]
    fn probe_failure_still_counts_toward_death() {
        let b = CircuitBreaker { trip_threshold: 2, cooldown_ns: 1_000, dead_threshold: 3 };
        let mut m = CardMonitor::new(b);
        m.record_failure(0);
        m.record_failure(10); // trips
        assert!(m.available(1_010));
        m.record_failure(1_010); // probe fails: third total failure
        assert_eq!(m.health(), CardHealth::Dead, "probe failures accumulate toward the budget");
        assert!(!m.available(u64::MAX));
    }

    #[test]
    fn kill_is_immediate_and_sticky() {
        let mut m = CardMonitor::new(CircuitBreaker::default());
        m.kill();
        assert_eq!(m.health(), CardHealth::Dead);
        m.record_success();
        assert_eq!(m.health(), CardHealth::Dead, "success cannot resurrect a crashed card");
        assert!(!m.available(0));
    }

    #[test]
    fn health_displays() {
        for h in [CardHealth::Healthy, CardHealth::Degraded, CardHealth::Dead] {
            assert!(!h.to_string().is_empty());
        }
    }
}
