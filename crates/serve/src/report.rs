//! Aggregate serving metrics: throughput, tail latency, and — under
//! fault injection — availability and failure accounting.

use crate::faults::FailedRequest;
use crate::health::CardHealth;
use crate::request::{Priority, ServeResponse};
use core::fmt;
use protea_core::FaultStats;

/// p50/p95/p99/max of a latency distribution, in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Percentiles {
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Worst case observed.
    pub max: f64,
}

impl Percentiles {
    /// Nearest-rank percentiles of `values` (empty input is all-zero).
    #[must_use]
    pub fn of(values: &[f64]) -> Self {
        if values.is_empty() {
            return Self { p50: 0.0, p95: 0.0, p99: 0.0, max: 0.0 };
        }
        let mut sorted: Vec<f64> = values.to_vec();
        sorted.sort_by(f64::total_cmp);
        let at = |q: f64| -> f64 {
            let rank = (q * sorted.len() as f64).ceil() as usize;
            sorted[rank.clamp(1, sorted.len()) - 1]
        };
        Self { p50: at(0.50), p95: at(0.95), p99: at(0.99), max: *sorted.last().unwrap_or(&0.0) }
    }
}

/// The outcome of one serving simulation.
///
/// Equality deliberately ignores the `memo_hits`/`memo_misses`
/// observability counters (see the manual [`PartialEq`] impl): the
/// timing memo is invisible in every number that describes the
/// schedule, and the `memo_is_invisible_*` tests compare whole reports
/// across memo-on/memo-off runs to pin exactly that.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Requests completed.
    pub completed: usize,
    /// Cards in the fleet.
    pub cards: usize,
    /// Batches dispatched.
    pub batches: u64,
    /// Weight reloads (card reprogrammed to a different capacity class).
    pub reprograms: u64,
    /// Simulated span from first arrival to last completion, seconds.
    pub makespan_s: f64,
    /// Sustained throughput, inferences per second.
    pub throughput_rps: f64,
    /// Useful (unpadded) throughput in GOPS across the fleet.
    pub gops: f64,
    /// End-to-end latency distribution (queueing + service), ms.
    pub latency_ms: Percentiles,
    /// Queueing-delay distribution (arrival → dispatch), ms.
    pub queue_ms: Percentiles,
    /// Mean requests per dispatched batch.
    pub mean_batch: f64,
    /// Per-card busy fraction over the makespan.
    pub card_utilization: Vec<f64>,
    /// Requests submitted (completed + failed; equals `completed` in a
    /// fault-free run).
    pub submitted: usize,
    /// Fraction of submitted requests served: `completed / submitted`
    /// (1.0 for an empty or fault-free run).
    pub availability: f64,
    /// Requests re-queued after a card failure (counted per requeue).
    pub retried: u64,
    /// Cards that crashed during the run.
    pub crashes: u64,
    /// Requests the fleet could not serve, each with a typed reason.
    pub failed: Vec<FailedRequest>,
    /// Fleet-wide fault accounting from the driver layer.
    pub faults: FaultStats,
    /// Each card's health at the end of the run.
    pub card_health: Vec<CardHealth>,
    /// Requests shed at admission under overload (queue cap or
    /// concurrency limit), each with a typed reason.
    pub shed: Vec<FailedRequest>,
    /// Requests dropped in queue at their deadline, each typed.
    pub expired: Vec<FailedRequest>,
    /// Completions that met their deadline (equals `completed` when no
    /// request carries one).
    pub completed_in_deadline: usize,
    /// *Goodput*: deadline-meeting completions per second. Equals
    /// `throughput_rps` when no request carries a deadline; under
    /// overload this is the number that matters — raw throughput stays
    /// flattering while every answer arrives too late.
    pub goodput_rps: f64,
    /// Hedge dispatches issued (straggling batch re-run on a second card).
    pub hedges: u64,
    /// Hedges whose second leg finished first.
    pub hedge_wins: u64,
    /// Hedge legs cancelled because the other leg completed first.
    pub hedge_cancels: u64,
    /// Per-priority SLO attainment, ascending priority. Empty for runs
    /// without the overload layer.
    pub slo: Vec<PrioritySlo>,
    /// Timing-memo cache hits (dispatches priced from cache). Zero when
    /// the memo is off. Excluded from report equality.
    pub memo_hits: u64,
    /// Timing-memo cache misses (distinct plan keys priced). Zero when
    /// the memo is off. Excluded from report equality.
    pub memo_misses: u64,
    /// Cards that (re)joined the fleet at runtime (scripted churn).
    pub joins: u64,
    /// Cards that drained out cleanly at runtime (scripted churn).
    pub drains: u64,
    /// Per-tenant SLO attainment and conservation rows, ascending
    /// tenant id. Empty for runs without a tenant policy or tagged
    /// traffic, so historical reports render unchanged.
    pub tenant_slo: Vec<TenantSlo>,
    /// Batches struck by an injected silent corruption. All five SDC
    /// counters are zero (and the integrity section silent) when no SDC
    /// knob is armed — pinned byte-identical by `tests/integrity.rs`.
    pub sdc_injected: u64,
    /// Corruption hits caught by a detection rung (ABFT epilogue
    /// checksums, the dispatch digest check, or a scrub sweep).
    pub sdc_detected: u64,
    /// Corruption hits served to completion undetected — silently
    /// wrong results, the number the defense exists to drive to zero.
    pub sdc_missed: u64,
    /// Batches re-executed after a detection (each counted once; the
    /// per-tenant conservation law still holds because responses are
    /// only ever recorded by the final clean completion).
    pub re_execs: u64,
    /// Weight-digest scrub sweeps performed.
    pub scrubs: u64,
    /// Decode tokens requested by admitted generation requests. All
    /// token counters are zero (and the generation section silent) for
    /// encoder-only runs, whose reports render unchanged.
    pub tokens_requested: u64,
    /// Decode tokens actually emitted.
    pub tokens_emitted: u64,
    /// Decode tokens never emitted — their session was shed, expired,
    /// failed, or crashed. `tokens_emitted + tokens_shed ==
    /// tokens_requested` at the end of every run (see
    /// [`tokens_accounted`](Self::tokens_accounted)).
    pub tokens_shed: u64,
    /// Emitted tokens that met their per-token deadline (tokens with no
    /// deadline count vacuously).
    pub tokens_on_time: u64,
    /// Sustained decode throughput: emitted tokens per second over the
    /// makespan.
    pub tokens_per_s: f64,
    /// Mean prefill window cost per prompt, milliseconds.
    pub prefill_ms_mean: f64,
    /// Mean decode window cost per emitted token, milliseconds.
    pub decode_ms_per_token: f64,
}

impl PartialEq for ServeReport {
    /// Field-by-field equality, **excluding** the memo counters: a
    /// memoized run and an unmemoized run of the same workload must
    /// compare equal, because the memo is pure observability. The
    /// exhaustive destructuring makes adding a field a compile error
    /// here, forcing a decision about its equality semantics.
    fn eq(&self, other: &Self) -> bool {
        let Self {
            completed,
            cards,
            batches,
            reprograms,
            makespan_s,
            throughput_rps,
            gops,
            latency_ms,
            queue_ms,
            mean_batch,
            card_utilization,
            submitted,
            availability,
            retried,
            crashes,
            failed,
            faults,
            card_health,
            shed,
            expired,
            completed_in_deadline,
            goodput_rps,
            hedges,
            hedge_wins,
            hedge_cancels,
            slo,
            memo_hits: _,
            memo_misses: _,
            joins,
            drains,
            tenant_slo,
            sdc_injected,
            sdc_detected,
            sdc_missed,
            re_execs,
            scrubs,
            tokens_requested,
            tokens_emitted,
            tokens_shed,
            tokens_on_time,
            tokens_per_s,
            prefill_ms_mean,
            decode_ms_per_token,
        } = self;
        *completed == other.completed
            && *cards == other.cards
            && *batches == other.batches
            && *reprograms == other.reprograms
            && *makespan_s == other.makespan_s
            && *throughput_rps == other.throughput_rps
            && *gops == other.gops
            && *latency_ms == other.latency_ms
            && *queue_ms == other.queue_ms
            && *mean_batch == other.mean_batch
            && *card_utilization == other.card_utilization
            && *submitted == other.submitted
            && *availability == other.availability
            && *retried == other.retried
            && *crashes == other.crashes
            && *failed == other.failed
            && *faults == other.faults
            && *card_health == other.card_health
            && *shed == other.shed
            && *expired == other.expired
            && *completed_in_deadline == other.completed_in_deadline
            && *goodput_rps == other.goodput_rps
            && *hedges == other.hedges
            && *hedge_wins == other.hedge_wins
            && *hedge_cancels == other.hedge_cancels
            && *slo == other.slo
            && *joins == other.joins
            && *drains == other.drains
            && *tenant_slo == other.tenant_slo
            && *sdc_injected == other.sdc_injected
            && *sdc_detected == other.sdc_detected
            && *sdc_missed == other.sdc_missed
            && *re_execs == other.re_execs
            && *scrubs == other.scrubs
            && *tokens_requested == other.tokens_requested
            && *tokens_emitted == other.tokens_emitted
            && *tokens_shed == other.tokens_shed
            && *tokens_on_time == other.tokens_on_time
            && *tokens_per_s == other.tokens_per_s
            && *prefill_ms_mean == other.prefill_ms_mean
            && *decode_ms_per_token == other.decode_ms_per_token
    }
}

/// SLO attainment and conservation accounting for one tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantSlo {
    /// The tenant id.
    pub tenant: u32,
    /// Requests this tenant submitted.
    pub submitted: usize,
    /// Of those, completed.
    pub completed: usize,
    /// Of those, shed at admission (overload or brownout).
    pub shed: usize,
    /// Of those, expired in queue.
    pub expired: usize,
    /// Of those, failed on hardware.
    pub failed: usize,
    /// Completions that met the tenant's deadline (every completion
    /// counts when the tenant carries no deadline).
    pub within_deadline: usize,
}

impl TenantSlo {
    /// Fraction of submitted requests served within deadline (1.0 when
    /// the tenant saw no traffic).
    #[must_use]
    pub fn attainment(&self) -> f64 {
        if self.submitted == 0 {
            1.0
        } else {
            self.within_deadline as f64 / self.submitted as f64
        }
    }

    /// Per-tenant conservation check: every submitted request counted
    /// exactly once across {completed, shed, expired, failed}.
    #[must_use]
    pub fn accounted(&self) -> bool {
        self.completed + self.shed + self.expired + self.failed == self.submitted
    }
}

/// SLO attainment for one priority class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrioritySlo {
    /// The class.
    pub priority: Priority,
    /// Requests of this class submitted.
    pub submitted: usize,
    /// Of those, completed at all.
    pub completed: usize,
    /// Of those, completed within their deadline.
    pub within_deadline: usize,
}

impl PrioritySlo {
    /// Fraction of submitted requests served within deadline (1.0 when
    /// the class saw no traffic).
    #[must_use]
    pub fn attainment(&self) -> f64 {
        if self.submitted == 0 {
            1.0
        } else {
            self.within_deadline as f64 / self.submitted as f64
        }
    }
}

/// The fault-side outcome of a serving simulation, folded into a
/// [`ServeReport`] via [`ServeReport::with_faults`].
#[derive(Debug, Clone, Default)]
pub struct FaultOutcome {
    /// Requests submitted over the run.
    pub submitted: usize,
    /// Requests that ultimately failed.
    pub failed: Vec<FailedRequest>,
    /// Requeue events (requests sent back to the scheduler).
    pub retried: u64,
    /// Card crashes.
    pub crashes: u64,
    /// Merged per-class fault counters.
    pub faults: FaultStats,
    /// Final per-card health.
    pub card_health: Vec<CardHealth>,
    /// Requests shed at admission.
    pub shed: Vec<FailedRequest>,
    /// Requests expired in queue.
    pub expired: Vec<FailedRequest>,
    /// Deadline-meeting completions, when the run tracked deadlines
    /// (`None` means every completion counts as good).
    pub completed_in_deadline: Option<usize>,
    /// Hedge dispatches issued.
    pub hedges: u64,
    /// Hedges won by the second leg.
    pub hedge_wins: u64,
    /// Hedge legs cancelled.
    pub hedge_cancels: u64,
    /// Per-priority SLO rows (empty without the overload layer).
    pub slo: Vec<PrioritySlo>,
    /// Runtime card joins (scripted churn).
    pub joins: u64,
    /// Runtime card drains (scripted churn).
    pub drains: u64,
    /// Per-tenant SLO/conservation rows (empty without tenancy).
    pub tenant_slo: Vec<TenantSlo>,
    /// Batches struck by an injected silent corruption.
    pub sdc_injected: u64,
    /// Corruption hits caught by a detection rung.
    pub sdc_detected: u64,
    /// Corruption hits that completed undetected.
    pub sdc_missed: u64,
    /// Batches re-executed after a detection.
    pub re_execs: u64,
    /// Weight-digest scrub sweeps performed.
    pub scrubs: u64,
}

impl ServeReport {
    /// Assemble a report from completion records.
    ///
    /// `ops_total` is the summed (unpadded) op count of all completed
    /// requests; `busy_ns[i]` is card *i*'s total service time.
    #[must_use]
    pub fn from_responses(
        responses: &[ServeResponse],
        ops_total: u64,
        batches: u64,
        reprograms: u64,
        busy_ns: &[u64],
    ) -> Self {
        let completed = responses.len();
        let makespan_ns = responses.iter().map(|r| r.finish_ns).max().unwrap_or(0);
        let makespan_s = makespan_ns as f64 / 1e9;
        let span = if makespan_s > 0.0 { makespan_s } else { f64::MIN_POSITIVE };
        let latency: Vec<f64> = responses.iter().map(ServeResponse::latency_ms).collect();
        let queue: Vec<f64> = responses.iter().map(ServeResponse::queue_ms).collect();
        Self {
            completed,
            cards: busy_ns.len(),
            batches,
            reprograms,
            makespan_s,
            throughput_rps: completed as f64 / span,
            gops: ops_total as f64 / 1e9 / span,
            latency_ms: Percentiles::of(&latency),
            queue_ms: Percentiles::of(&queue),
            mean_batch: if batches == 0 { 0.0 } else { completed as f64 / batches as f64 },
            card_utilization: busy_ns.iter().map(|&b| (b as f64 / 1e9 / span).min(1.0)).collect(),
            submitted: completed,
            availability: 1.0,
            retried: 0,
            crashes: 0,
            failed: Vec::new(),
            faults: FaultStats::default(),
            card_health: vec![CardHealth::Healthy; busy_ns.len()],
            shed: Vec::new(),
            expired: Vec::new(),
            completed_in_deadline: completed,
            goodput_rps: completed as f64 / span,
            hedges: 0,
            hedge_wins: 0,
            hedge_cancels: 0,
            slo: Vec::new(),
            memo_hits: 0,
            memo_misses: 0,
            joins: 0,
            drains: 0,
            tenant_slo: Vec::new(),
            sdc_injected: 0,
            sdc_detected: 0,
            sdc_missed: 0,
            re_execs: 0,
            scrubs: 0,
            tokens_requested: 0,
            tokens_emitted: 0,
            tokens_shed: 0,
            tokens_on_time: 0,
            tokens_per_s: 0.0,
            prefill_ms_mean: 0.0,
            decode_ms_per_token: 0.0,
        }
    }

    /// Assemble a report from streaming metrics, mirroring
    /// [`from_responses`](Self::from_responses) with sketched
    /// percentiles in place of exact nearest-rank ones. Everything else
    /// — throughput, GOPS, utilization, mean batch size — is computed
    /// from the same counters by the same formulas.
    #[must_use]
    pub fn from_stream(
        metrics: &crate::sketch::StreamMetrics,
        ops_total: u64,
        batches: u64,
        reprograms: u64,
        busy_ns: &[u64],
    ) -> Self {
        let completed = metrics.completed() as usize;
        let makespan_s = metrics.max_finish_ns() as f64 / 1e9;
        let span = if makespan_s > 0.0 { makespan_s } else { f64::MIN_POSITIVE };
        Self {
            completed,
            cards: busy_ns.len(),
            batches,
            reprograms,
            makespan_s,
            throughput_rps: completed as f64 / span,
            gops: ops_total as f64 / 1e9 / span,
            latency_ms: metrics.latency_percentiles(),
            queue_ms: metrics.queue_percentiles(),
            mean_batch: if batches == 0 { 0.0 } else { completed as f64 / batches as f64 },
            card_utilization: busy_ns.iter().map(|&b| (b as f64 / 1e9 / span).min(1.0)).collect(),
            submitted: completed,
            availability: 1.0,
            retried: 0,
            crashes: 0,
            failed: Vec::new(),
            faults: FaultStats::default(),
            card_health: vec![CardHealth::Healthy; busy_ns.len()],
            shed: Vec::new(),
            expired: Vec::new(),
            completed_in_deadline: completed,
            goodput_rps: completed as f64 / span,
            hedges: 0,
            hedge_wins: 0,
            hedge_cancels: 0,
            slo: Vec::new(),
            memo_hits: 0,
            memo_misses: 0,
            joins: 0,
            drains: 0,
            tenant_slo: Vec::new(),
            sdc_injected: 0,
            sdc_detected: 0,
            sdc_missed: 0,
            re_execs: 0,
            scrubs: 0,
            tokens_requested: 0,
            tokens_emitted: 0,
            tokens_shed: 0,
            tokens_on_time: 0,
            tokens_per_s: 0.0,
            prefill_ms_mean: 0.0,
            decode_ms_per_token: 0.0,
        }
    }

    /// Fold a fault-injected (or overload-controlled) run's outcome
    /// into the report, recomputing availability as
    /// `completed / submitted` (1.0 when nothing was submitted, so an
    /// empty run never divides by zero) and goodput from the
    /// deadline-meeting completion count when the run tracked one.
    #[must_use]
    pub fn with_faults(mut self, outcome: FaultOutcome) -> Self {
        self.submitted = outcome.submitted;
        self.availability = if outcome.submitted == 0 {
            1.0
        } else {
            self.completed as f64 / outcome.submitted as f64
        };
        self.retried = outcome.retried;
        self.crashes = outcome.crashes;
        self.failed = outcome.failed;
        self.faults = outcome.faults;
        if !outcome.card_health.is_empty() {
            self.card_health = outcome.card_health;
        }
        self.shed = outcome.shed;
        self.expired = outcome.expired;
        if let Some(good) = outcome.completed_in_deadline {
            let span = if self.makespan_s > 0.0 { self.makespan_s } else { f64::MIN_POSITIVE };
            self.completed_in_deadline = good;
            self.goodput_rps = good as f64 / span;
        }
        self.hedges = outcome.hedges;
        self.hedge_wins = outcome.hedge_wins;
        self.hedge_cancels = outcome.hedge_cancels;
        self.slo = outcome.slo;
        self.joins = outcome.joins;
        self.drains = outcome.drains;
        self.tenant_slo = outcome.tenant_slo;
        self.sdc_injected = outcome.sdc_injected;
        self.sdc_detected = outcome.sdc_detected;
        self.sdc_missed = outcome.sdc_missed;
        self.re_execs = outcome.re_execs;
        self.scrubs = outcome.scrubs;
        self
    }

    /// Whether the run saw any fault, failure, crash, or retry — i.e.
    /// whether the fault section of [`Display`](fmt::Display) prints.
    #[must_use]
    pub fn degraded(&self) -> bool {
        self.faults.any()
            || !self.failed.is_empty()
            || self.crashes > 0
            || self.retried > 0
            || self.submitted != self.completed
    }

    /// Whether the overload layer left any visible trace — sheds,
    /// deadline expiries, deadline-missing completions, or hedges —
    /// i.e. whether the overload section of [`Display`](fmt::Display)
    /// prints. Always false for pre-overload-era runs, so their
    /// rendered reports are unchanged.
    #[must_use]
    pub fn overloaded(&self) -> bool {
        !self.shed.is_empty()
            || !self.expired.is_empty()
            || self.completed_in_deadline != self.completed
            || self.hedges > 0
    }

    /// Conservation check: every submitted request counted exactly once
    /// across {completed, shed, expired, failed}.
    #[must_use]
    pub fn accounted(&self) -> bool {
        self.completed + self.shed.len() + self.expired.len() + self.failed.len() == self.submitted
    }

    /// Per-tenant conservation check: every tenant row individually
    /// accounted, and the rows summing to the fleet-wide `submitted`
    /// when any row exists. Vacuously true without tenancy.
    #[must_use]
    pub fn tenants_accounted(&self) -> bool {
        let rows_ok = self.tenant_slo.iter().all(TenantSlo::accounted);
        let total: usize = self.tenant_slo.iter().map(|t| t.submitted).sum();
        rows_ok && (self.tenant_slo.is_empty() || total == self.submitted)
    }

    /// Whether the SDC defense layer left any visible trace —
    /// injections, detections, misses, re-executions, or scrubs — i.e.
    /// whether the integrity section of [`Display`](fmt::Display)
    /// prints. Always false when no SDC knob was armed, so every
    /// pre-SDC report renders unchanged.
    #[must_use]
    pub fn sdc(&self) -> bool {
        self.sdc_injected > 0
            || self.sdc_detected > 0
            || self.sdc_missed > 0
            || self.re_execs > 0
            || self.scrubs > 0
    }

    /// Detection coverage: the fraction of *resolved* corruption hits a
    /// rung caught, `detected / (detected + missed)`. 1.0 when nothing
    /// resolved (vacuously perfect). Hits whose execution was abandoned
    /// (hedge-cancelled legs, crashed cards' in-flight batches) resolve
    /// as neither, so the denominator can trail `sdc_injected`.
    #[must_use]
    pub fn sdc_coverage(&self) -> f64 {
        let resolved = self.sdc_detected + self.sdc_missed;
        if resolved == 0 {
            1.0
        } else {
            self.sdc_detected as f64 / resolved as f64
        }
    }

    /// Whether the elastic layer left any visible trace — runtime joins,
    /// drains, or per-tenant rows — i.e. whether the elastic section of
    /// [`Display`](fmt::Display) prints. Always false for pre-elastic
    /// runs, so their rendered reports are unchanged.
    #[must_use]
    pub fn elastic(&self) -> bool {
        self.joins > 0 || self.drains > 0 || !self.tenant_slo.is_empty()
    }

    /// Whether the run served any generation traffic — i.e. whether the
    /// generation section of [`Display`](fmt::Display) prints. Always
    /// false for encoder-only runs, so their rendered reports are
    /// unchanged.
    #[must_use]
    pub fn decoded(&self) -> bool {
        self.tokens_requested > 0 || self.tokens_emitted > 0
    }

    /// Token conservation check: every requested decode token counted
    /// exactly once across {emitted, shed}. Vacuously true for
    /// encoder-only runs.
    #[must_use]
    pub fn tokens_accounted(&self) -> bool {
        self.tokens_emitted + self.tokens_shed == self.tokens_requested
    }

    /// Per-token SLO attainment: the fraction of emitted tokens that
    /// met their per-token deadline (1.0 when nothing was emitted, or
    /// when no token carried a deadline — those count vacuously).
    #[must_use]
    pub fn token_slo_attainment(&self) -> f64 {
        if self.tokens_emitted == 0 {
            1.0
        } else {
            self.tokens_on_time as f64 / self.tokens_emitted as f64
        }
    }
}

impl fmt::Display for ServeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "ServeReport: {} inferences on {} card(s) in {:.3} s",
            self.completed, self.cards, self.makespan_s
        )?;
        writeln!(
            f,
            "  throughput   {:>10.1} inf/s   {:>8.1} GOPS",
            self.throughput_rps, self.gops
        )?;
        writeln!(
            f,
            "  latency ms   p50 {:>8.3}  p95 {:>8.3}  p99 {:>8.3}  max {:>8.3}",
            self.latency_ms.p50, self.latency_ms.p95, self.latency_ms.p99, self.latency_ms.max
        )?;
        writeln!(
            f,
            "  queueing ms  p50 {:>8.3}  p95 {:>8.3}  p99 {:>8.3}  max {:>8.3}",
            self.queue_ms.p50, self.queue_ms.p95, self.queue_ms.p99, self.queue_ms.max
        )?;
        writeln!(
            f,
            "  batching     {} batches, mean size {:.2}, {} weight reloads",
            self.batches, self.mean_batch, self.reprograms
        )?;
        let util: Vec<String> =
            self.card_utilization.iter().map(|u| format!("{:.0}%", u * 100.0)).collect();
        writeln!(f, "  card busy    [{}]", util.join(", "))?;
        // The memo line prints only when the cache saw traffic, so
        // memo-off reports render exactly as before.
        if self.memo_hits + self.memo_misses > 0 {
            writeln!(f, "  timing memo  {} hits, {} misses", self.memo_hits, self.memo_misses)?;
        }
        // The overload section prints only when the overload layer did
        // something, so pre-overload reports render exactly as before.
        if self.overloaded() {
            writeln!(
                f,
                "  goodput      {:>10.1} good inf/s ({}/{} completions met their deadline)",
                self.goodput_rps, self.completed_in_deadline, self.completed
            )?;
            writeln!(
                f,
                "  overload     {} shed at admission, {} expired in queue",
                self.shed.len(),
                self.expired.len()
            )?;
            if self.hedges > 0 {
                writeln!(
                    f,
                    "  hedging      {} issued, {} won, {} cancelled",
                    self.hedges, self.hedge_wins, self.hedge_cancels
                )?;
            }
            if !self.slo.is_empty() {
                let rows: Vec<String> = self
                    .slo
                    .iter()
                    .filter(|s| s.submitted > 0)
                    .map(|s| {
                        format!("{} {:.1}% ({})", s.priority, 100.0 * s.attainment(), s.submitted)
                    })
                    .collect();
                writeln!(f, "  slo          [{}]", rows.join(", "))?;
            }
        }
        // The elastic section prints only when churn or tenancy was in
        // play, so pre-elastic reports render exactly as before.
        if self.elastic() {
            if self.joins + self.drains > 0 {
                writeln!(f, "  churn        {} join(s), {} drain(s)", self.joins, self.drains)?;
            }
            for t in &self.tenant_slo {
                writeln!(
                    f,
                    "  tenant {:>5} {:.1}% slo ({} submitted: {} completed, {} shed, \
                     {} expired, {} failed)",
                    t.tenant,
                    100.0 * t.attainment(),
                    t.submitted,
                    t.completed,
                    t.shed,
                    t.expired,
                    t.failed
                )?;
            }
        }
        // The generation section prints only when decode traffic ran,
        // so encoder-only reports render exactly as before.
        if self.decoded() {
            writeln!(
                f,
                "  generation   {}/{} tokens emitted ({} shed), {:.1} tok/s",
                self.tokens_emitted, self.tokens_requested, self.tokens_shed, self.tokens_per_s
            )?;
            writeln!(
                f,
                "  gen latency  prefill {:.3} ms/prompt, decode {:.3} ms/token",
                self.prefill_ms_mean, self.decode_ms_per_token
            )?;
            writeln!(
                f,
                "  token slo    {:.1}% of emitted tokens on time",
                100.0 * self.token_slo_attainment()
            )?;
        }
        // The integrity section prints only when the SDC layer saw
        // action, so SDC-off reports render exactly as before.
        if self.sdc() {
            writeln!(
                f,
                "  integrity    {} injected, {} detected, {} missed ({:.1}% coverage), \
                 {} re-exec(s), {} scrub(s)",
                self.sdc_injected,
                self.sdc_detected,
                self.sdc_missed,
                100.0 * self.sdc_coverage(),
                self.re_execs,
                self.scrubs
            )?;
        }
        // The fault section prints only when something actually went
        // wrong, so fault-free reports render exactly as before.
        if self.degraded() {
            writeln!(
                f,
                "  availability {:.2}%  ({}/{} served, {} failed, {} requeued, {} crash(es))",
                self.availability * 100.0,
                self.completed,
                self.submitted,
                self.failed.len(),
                self.retried,
                self.crashes
            )?;
            writeln!(f, "  faults       {}", self.faults)?;
            let health: Vec<String> = self.card_health.iter().map(CardHealth::to_string).collect();
            writeln!(f, "  card health  [{}]", health.join(", "))?;
            for fr in &self.failed {
                writeln!(f, "  failed       {fr}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn resp(id: u64, arrival: u64, start: u64, finish: u64) -> ServeResponse {
        ServeResponse {
            id,
            arrival_ns: arrival,
            start_ns: start,
            finish_ns: finish,
            card: 0,
            batch_size: 1,
            padded_seq_len: 16,
        }
    }

    #[test]
    fn percentiles_nearest_rank() {
        let v: Vec<f64> = (1..=100).map(f64::from).collect();
        let p = Percentiles::of(&v);
        assert_eq!(p.p50, 50.0);
        assert_eq!(p.p95, 95.0);
        assert_eq!(p.p99, 99.0);
        assert_eq!(p.max, 100.0);
        let single = Percentiles::of(&[7.0]);
        assert_eq!((single.p50, single.p99), (7.0, 7.0));
        let empty = Percentiles::of(&[]);
        assert_eq!(empty.max, 0.0);
    }

    #[test]
    fn percentiles_edge_cases() {
        // Empty input: every field is exactly zero, not NaN.
        let empty = Percentiles::of(&[]);
        assert_eq!((empty.p50, empty.p95, empty.p99, empty.max), (0.0, 0.0, 0.0, 0.0));

        // Single element: every percentile IS that element.
        let one = Percentiles::of(&[3.25]);
        assert_eq!((one.p50, one.p95, one.p99, one.max), (3.25, 3.25, 3.25, 3.25));

        // Two elements: nearest-rank p50 is the lower, p95/p99 the upper.
        let two = Percentiles::of(&[10.0, 2.0]);
        assert_eq!((two.p50, two.p95, two.p99, two.max), (2.0, 10.0, 10.0, 10.0));

        // Input order must not matter.
        let fwd = Percentiles::of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        let rev = Percentiles::of(&[5.0, 4.0, 3.0, 2.0, 1.0]);
        assert_eq!((fwd.p50, fwd.p95, fwd.p99, fwd.max), (rev.p50, rev.p95, rev.p99, rev.max));

        // Duplicates: ranks land inside the run of equal values.
        let dup = Percentiles::of(&[4.0; 9]);
        assert_eq!((dup.p50, dup.p99, dup.max), (4.0, 4.0, 4.0));

        // NaN poisons nothing: total_cmp sorts NaN to the end, and the
        // finite ranks still read finite values.
        let with_nan = Percentiles::of(&[1.0, 2.0, f64::NAN, 3.0]);
        assert_eq!(with_nan.p50, 2.0);
        assert!(with_nan.max.is_nan(), "max faithfully reports the NaN sorted last");

        // Negative and zero values survive (latencies never are, but
        // the helper must not assume it).
        let neg = Percentiles::of(&[-5.0, 0.0, 5.0]);
        assert_eq!((neg.p50, neg.max), (0.0, 5.0));
    }

    #[test]
    fn memo_counters_do_not_affect_equality() {
        let a = ServeReport::from_responses(&[resp(0, 0, 1, 2_000_000)], 1_000, 1, 0, &[1]);
        let mut b = a.clone();
        b.memo_hits = 99;
        b.memo_misses = 7;
        assert_eq!(a, b, "memo counters are observability, not schedule");
        assert!(b.to_string().contains("timing memo  99 hits, 7 misses"));
        assert!(!a.to_string().contains("timing memo"), "silent when the cache saw no traffic");
    }

    #[test]
    fn report_arithmetic() {
        // two requests, 1 s makespan
        let responses = [resp(0, 0, 100_000, 500_000_000), resp(1, 0, 200_000, 1_000_000_000)];
        let r = ServeReport::from_responses(&responses, 2_000_000_000, 2, 1, &[600_000_000]);
        assert_eq!(r.completed, 2);
        assert!((r.makespan_s - 1.0).abs() < 1e-9);
        assert!((r.throughput_rps - 2.0).abs() < 1e-9);
        assert!((r.gops - 2.0).abs() < 1e-9);
        assert!((r.mean_batch - 1.0).abs() < 1e-9);
        assert!((r.card_utilization[0] - 0.6).abs() < 1e-9);
    }

    #[test]
    fn display_mentions_all_sections() {
        let r = ServeReport::from_responses(&[resp(0, 0, 1, 2_000_000)], 1_000, 1, 1, &[2_000_000]);
        let text = r.to_string();
        for needle in ["throughput", "latency ms", "queueing ms", "p99", "card busy"] {
            assert!(text.contains(needle), "missing {needle} in {text}");
        }
    }

    #[test]
    fn empty_responses_do_not_divide_by_zero() {
        let r = ServeReport::from_responses(&[], 0, 0, 0, &[0]);
        assert_eq!(r.completed, 0);
        assert!(r.throughput_rps.is_finite());
        assert_eq!(r.availability, 1.0);
        assert!(!r.degraded());
    }

    #[test]
    fn fault_outcome_sets_availability_and_display_section() {
        use crate::faults::{FailReason, FailedRequest};
        let clean = ServeReport::from_responses(&[resp(0, 0, 1, 2_000_000)], 1_000, 1, 0, &[1]);
        assert!(!clean.to_string().contains("availability"), "fault-free text unchanged");
        let r = clean.with_faults(FaultOutcome {
            submitted: 2,
            failed: vec![FailedRequest { id: 1, reason: FailReason::AllCardsDead }],
            retried: 3,
            crashes: 1,
            faults: FaultStats { ecc_single: 2, ..FaultStats::default() },
            card_health: vec![CardHealth::Dead],
            ..FaultOutcome::default()
        });
        assert!((r.availability - 0.5).abs() < 1e-12);
        assert!(r.degraded());
        let text = r.to_string();
        for needle in ["availability", "faults", "card health", "dead", "request 1"] {
            assert!(text.contains(needle), "missing {needle} in {text}");
        }
        // zero submitted never divides by zero
        let empty =
            ServeReport::from_responses(&[], 0, 0, 0, &[0]).with_faults(FaultOutcome::default());
        assert_eq!(empty.availability, 1.0);
    }
}
