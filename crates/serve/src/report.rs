//! Aggregate serving metrics: throughput, tail latency, and — under
//! fault injection — availability and failure accounting.

use crate::faults::FailedRequest;
use crate::health::CardHealth;
use crate::request::ServeResponse;
use core::fmt;
use protea_core::FaultStats;

/// p50/p95/p99/max of a latency distribution, in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Percentiles {
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Worst case observed.
    pub max: f64,
}

impl Percentiles {
    /// Nearest-rank percentiles of `values` (empty input is all-zero).
    #[must_use]
    pub fn of(values: &[f64]) -> Self {
        if values.is_empty() {
            return Self { p50: 0.0, p95: 0.0, p99: 0.0, max: 0.0 };
        }
        let mut sorted: Vec<f64> = values.to_vec();
        sorted.sort_by(f64::total_cmp);
        let at = |q: f64| -> f64 {
            let rank = (q * sorted.len() as f64).ceil() as usize;
            sorted[rank.clamp(1, sorted.len()) - 1]
        };
        Self { p50: at(0.50), p95: at(0.95), p99: at(0.99), max: *sorted.last().unwrap_or(&0.0) }
    }
}

/// The outcome of one serving simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Requests completed.
    pub completed: usize,
    /// Cards in the fleet.
    pub cards: usize,
    /// Batches dispatched.
    pub batches: u64,
    /// Weight reloads (card reprogrammed to a different capacity class).
    pub reprograms: u64,
    /// Simulated span from first arrival to last completion, seconds.
    pub makespan_s: f64,
    /// Sustained throughput, inferences per second.
    pub throughput_rps: f64,
    /// Useful (unpadded) throughput in GOPS across the fleet.
    pub gops: f64,
    /// End-to-end latency distribution (queueing + service), ms.
    pub latency_ms: Percentiles,
    /// Queueing-delay distribution (arrival → dispatch), ms.
    pub queue_ms: Percentiles,
    /// Mean requests per dispatched batch.
    pub mean_batch: f64,
    /// Per-card busy fraction over the makespan.
    pub card_utilization: Vec<f64>,
    /// Requests submitted (completed + failed; equals `completed` in a
    /// fault-free run).
    pub submitted: usize,
    /// Fraction of submitted requests served: `completed / submitted`
    /// (1.0 for an empty or fault-free run).
    pub availability: f64,
    /// Requests re-queued after a card failure (counted per requeue).
    pub retried: u64,
    /// Cards that crashed during the run.
    pub crashes: u64,
    /// Requests the fleet could not serve, each with a typed reason.
    pub failed: Vec<FailedRequest>,
    /// Fleet-wide fault accounting from the driver layer.
    pub faults: FaultStats,
    /// Each card's health at the end of the run.
    pub card_health: Vec<CardHealth>,
}

/// The fault-side outcome of a serving simulation, folded into a
/// [`ServeReport`] via [`ServeReport::with_faults`].
#[derive(Debug, Clone, Default)]
pub struct FaultOutcome {
    /// Requests submitted over the run.
    pub submitted: usize,
    /// Requests that ultimately failed.
    pub failed: Vec<FailedRequest>,
    /// Requeue events (requests sent back to the scheduler).
    pub retried: u64,
    /// Card crashes.
    pub crashes: u64,
    /// Merged per-class fault counters.
    pub faults: FaultStats,
    /// Final per-card health.
    pub card_health: Vec<CardHealth>,
}

impl ServeReport {
    /// Assemble a report from completion records.
    ///
    /// `ops_total` is the summed (unpadded) op count of all completed
    /// requests; `busy_ns[i]` is card *i*'s total service time.
    #[must_use]
    pub fn from_responses(
        responses: &[ServeResponse],
        ops_total: u64,
        batches: u64,
        reprograms: u64,
        busy_ns: &[u64],
    ) -> Self {
        let completed = responses.len();
        let makespan_ns = responses.iter().map(|r| r.finish_ns).max().unwrap_or(0);
        let makespan_s = makespan_ns as f64 / 1e9;
        let span = if makespan_s > 0.0 { makespan_s } else { f64::MIN_POSITIVE };
        let latency: Vec<f64> = responses.iter().map(ServeResponse::latency_ms).collect();
        let queue: Vec<f64> = responses.iter().map(ServeResponse::queue_ms).collect();
        Self {
            completed,
            cards: busy_ns.len(),
            batches,
            reprograms,
            makespan_s,
            throughput_rps: completed as f64 / span,
            gops: ops_total as f64 / 1e9 / span,
            latency_ms: Percentiles::of(&latency),
            queue_ms: Percentiles::of(&queue),
            mean_batch: if batches == 0 { 0.0 } else { completed as f64 / batches as f64 },
            card_utilization: busy_ns.iter().map(|&b| (b as f64 / 1e9 / span).min(1.0)).collect(),
            submitted: completed,
            availability: 1.0,
            retried: 0,
            crashes: 0,
            failed: Vec::new(),
            faults: FaultStats::default(),
            card_health: vec![CardHealth::Healthy; busy_ns.len()],
        }
    }

    /// Fold a fault-injected run's outcome into the report, recomputing
    /// availability as `completed / submitted` (1.0 when nothing was
    /// submitted, so an empty run never divides by zero).
    #[must_use]
    pub fn with_faults(mut self, outcome: FaultOutcome) -> Self {
        self.submitted = outcome.submitted;
        self.availability = if outcome.submitted == 0 {
            1.0
        } else {
            self.completed as f64 / outcome.submitted as f64
        };
        self.retried = outcome.retried;
        self.crashes = outcome.crashes;
        self.failed = outcome.failed;
        self.faults = outcome.faults;
        if !outcome.card_health.is_empty() {
            self.card_health = outcome.card_health;
        }
        self
    }

    /// Whether the run saw any fault, failure, crash, or retry — i.e.
    /// whether the fault section of [`Display`](fmt::Display) prints.
    #[must_use]
    pub fn degraded(&self) -> bool {
        self.faults.any()
            || !self.failed.is_empty()
            || self.crashes > 0
            || self.retried > 0
            || self.submitted != self.completed
    }
}

impl fmt::Display for ServeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "ServeReport: {} inferences on {} card(s) in {:.3} s",
            self.completed, self.cards, self.makespan_s
        )?;
        writeln!(
            f,
            "  throughput   {:>10.1} inf/s   {:>8.1} GOPS",
            self.throughput_rps, self.gops
        )?;
        writeln!(
            f,
            "  latency ms   p50 {:>8.3}  p95 {:>8.3}  p99 {:>8.3}  max {:>8.3}",
            self.latency_ms.p50, self.latency_ms.p95, self.latency_ms.p99, self.latency_ms.max
        )?;
        writeln!(
            f,
            "  queueing ms  p50 {:>8.3}  p95 {:>8.3}  p99 {:>8.3}  max {:>8.3}",
            self.queue_ms.p50, self.queue_ms.p95, self.queue_ms.p99, self.queue_ms.max
        )?;
        writeln!(
            f,
            "  batching     {} batches, mean size {:.2}, {} weight reloads",
            self.batches, self.mean_batch, self.reprograms
        )?;
        let util: Vec<String> =
            self.card_utilization.iter().map(|u| format!("{:.0}%", u * 100.0)).collect();
        writeln!(f, "  card busy    [{}]", util.join(", "))?;
        // The fault section prints only when something actually went
        // wrong, so fault-free reports render exactly as before.
        if self.degraded() {
            writeln!(
                f,
                "  availability {:.2}%  ({}/{} served, {} failed, {} requeued, {} crash(es))",
                self.availability * 100.0,
                self.completed,
                self.submitted,
                self.failed.len(),
                self.retried,
                self.crashes
            )?;
            writeln!(f, "  faults       {}", self.faults)?;
            let health: Vec<String> = self.card_health.iter().map(CardHealth::to_string).collect();
            writeln!(f, "  card health  [{}]", health.join(", "))?;
            for fr in &self.failed {
                writeln!(f, "  failed       {fr}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn resp(id: u64, arrival: u64, start: u64, finish: u64) -> ServeResponse {
        ServeResponse {
            id,
            arrival_ns: arrival,
            start_ns: start,
            finish_ns: finish,
            card: 0,
            batch_size: 1,
            padded_seq_len: 16,
        }
    }

    #[test]
    fn percentiles_nearest_rank() {
        let v: Vec<f64> = (1..=100).map(f64::from).collect();
        let p = Percentiles::of(&v);
        assert_eq!(p.p50, 50.0);
        assert_eq!(p.p95, 95.0);
        assert_eq!(p.p99, 99.0);
        assert_eq!(p.max, 100.0);
        let single = Percentiles::of(&[7.0]);
        assert_eq!((single.p50, single.p99), (7.0, 7.0));
        let empty = Percentiles::of(&[]);
        assert_eq!(empty.max, 0.0);
    }

    #[test]
    fn report_arithmetic() {
        // two requests, 1 s makespan
        let responses = [resp(0, 0, 100_000, 500_000_000), resp(1, 0, 200_000, 1_000_000_000)];
        let r = ServeReport::from_responses(&responses, 2_000_000_000, 2, 1, &[600_000_000]);
        assert_eq!(r.completed, 2);
        assert!((r.makespan_s - 1.0).abs() < 1e-9);
        assert!((r.throughput_rps - 2.0).abs() < 1e-9);
        assert!((r.gops - 2.0).abs() < 1e-9);
        assert!((r.mean_batch - 1.0).abs() < 1e-9);
        assert!((r.card_utilization[0] - 0.6).abs() < 1e-9);
    }

    #[test]
    fn display_mentions_all_sections() {
        let r = ServeReport::from_responses(&[resp(0, 0, 1, 2_000_000)], 1_000, 1, 1, &[2_000_000]);
        let text = r.to_string();
        for needle in ["throughput", "latency ms", "queueing ms", "p99", "card busy"] {
            assert!(text.contains(needle), "missing {needle} in {text}");
        }
    }

    #[test]
    fn empty_responses_do_not_divide_by_zero() {
        let r = ServeReport::from_responses(&[], 0, 0, 0, &[0]);
        assert_eq!(r.completed, 0);
        assert!(r.throughput_rps.is_finite());
        assert_eq!(r.availability, 1.0);
        assert!(!r.degraded());
    }

    #[test]
    fn fault_outcome_sets_availability_and_display_section() {
        use crate::faults::{FailReason, FailedRequest};
        let clean = ServeReport::from_responses(&[resp(0, 0, 1, 2_000_000)], 1_000, 1, 0, &[1]);
        assert!(!clean.to_string().contains("availability"), "fault-free text unchanged");
        let r = clean.with_faults(FaultOutcome {
            submitted: 2,
            failed: vec![FailedRequest { id: 1, reason: FailReason::AllCardsDead }],
            retried: 3,
            crashes: 1,
            faults: FaultStats { ecc_single: 2, ..FaultStats::default() },
            card_health: vec![CardHealth::Dead],
        });
        assert!((r.availability - 0.5).abs() < 1e-12);
        assert!(r.degraded());
        let text = r.to_string();
        for needle in ["availability", "faults", "card health", "dead", "request 1"] {
            assert!(text.contains(needle), "missing {needle} in {text}");
        }
        // zero submitted never divides by zero
        let empty =
            ServeReport::from_responses(&[], 0, 0, 0, &[0]).with_faults(FaultOutcome::default());
        assert_eq!(empty.availability, 1.0);
    }
}
