//! Aggregate serving metrics: throughput and tail latency.

use crate::request::ServeResponse;
use core::fmt;

/// p50/p95/p99/max of a latency distribution, in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Percentiles {
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Worst case observed.
    pub max: f64,
}

impl Percentiles {
    /// Nearest-rank percentiles of `values` (empty input is all-zero).
    #[must_use]
    pub fn of(values: &[f64]) -> Self {
        if values.is_empty() {
            return Self { p50: 0.0, p95: 0.0, p99: 0.0, max: 0.0 };
        }
        let mut sorted: Vec<f64> = values.to_vec();
        sorted.sort_by(f64::total_cmp);
        let at = |q: f64| -> f64 {
            let rank = (q * sorted.len() as f64).ceil() as usize;
            sorted[rank.clamp(1, sorted.len()) - 1]
        };
        Self { p50: at(0.50), p95: at(0.95), p99: at(0.99), max: *sorted.last().unwrap_or(&0.0) }
    }
}

/// The outcome of one serving simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Requests completed.
    pub completed: usize,
    /// Cards in the fleet.
    pub cards: usize,
    /// Batches dispatched.
    pub batches: u64,
    /// Weight reloads (card reprogrammed to a different capacity class).
    pub reprograms: u64,
    /// Simulated span from first arrival to last completion, seconds.
    pub makespan_s: f64,
    /// Sustained throughput, inferences per second.
    pub throughput_rps: f64,
    /// Useful (unpadded) throughput in GOPS across the fleet.
    pub gops: f64,
    /// End-to-end latency distribution (queueing + service), ms.
    pub latency_ms: Percentiles,
    /// Queueing-delay distribution (arrival → dispatch), ms.
    pub queue_ms: Percentiles,
    /// Mean requests per dispatched batch.
    pub mean_batch: f64,
    /// Per-card busy fraction over the makespan.
    pub card_utilization: Vec<f64>,
}

impl ServeReport {
    /// Assemble a report from completion records.
    ///
    /// `ops_total` is the summed (unpadded) op count of all completed
    /// requests; `busy_ns[i]` is card *i*'s total service time.
    #[must_use]
    pub fn from_responses(
        responses: &[ServeResponse],
        ops_total: u64,
        batches: u64,
        reprograms: u64,
        busy_ns: &[u64],
    ) -> Self {
        let completed = responses.len();
        let makespan_ns = responses.iter().map(|r| r.finish_ns).max().unwrap_or(0);
        let makespan_s = makespan_ns as f64 / 1e9;
        let span = if makespan_s > 0.0 { makespan_s } else { f64::MIN_POSITIVE };
        let latency: Vec<f64> = responses.iter().map(ServeResponse::latency_ms).collect();
        let queue: Vec<f64> = responses.iter().map(ServeResponse::queue_ms).collect();
        Self {
            completed,
            cards: busy_ns.len(),
            batches,
            reprograms,
            makespan_s,
            throughput_rps: completed as f64 / span,
            gops: ops_total as f64 / 1e9 / span,
            latency_ms: Percentiles::of(&latency),
            queue_ms: Percentiles::of(&queue),
            mean_batch: if batches == 0 { 0.0 } else { completed as f64 / batches as f64 },
            card_utilization: busy_ns.iter().map(|&b| (b as f64 / 1e9 / span).min(1.0)).collect(),
        }
    }
}

impl fmt::Display for ServeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "ServeReport: {} inferences on {} card(s) in {:.3} s",
            self.completed, self.cards, self.makespan_s
        )?;
        writeln!(
            f,
            "  throughput   {:>10.1} inf/s   {:>8.1} GOPS",
            self.throughput_rps, self.gops
        )?;
        writeln!(
            f,
            "  latency ms   p50 {:>8.3}  p95 {:>8.3}  p99 {:>8.3}  max {:>8.3}",
            self.latency_ms.p50, self.latency_ms.p95, self.latency_ms.p99, self.latency_ms.max
        )?;
        writeln!(
            f,
            "  queueing ms  p50 {:>8.3}  p95 {:>8.3}  p99 {:>8.3}  max {:>8.3}",
            self.queue_ms.p50, self.queue_ms.p95, self.queue_ms.p99, self.queue_ms.max
        )?;
        writeln!(
            f,
            "  batching     {} batches, mean size {:.2}, {} weight reloads",
            self.batches, self.mean_batch, self.reprograms
        )?;
        let util: Vec<String> =
            self.card_utilization.iter().map(|u| format!("{:.0}%", u * 100.0)).collect();
        writeln!(f, "  card busy    [{}]", util.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn resp(id: u64, arrival: u64, start: u64, finish: u64) -> ServeResponse {
        ServeResponse {
            id,
            arrival_ns: arrival,
            start_ns: start,
            finish_ns: finish,
            card: 0,
            batch_size: 1,
            padded_seq_len: 16,
        }
    }

    #[test]
    fn percentiles_nearest_rank() {
        let v: Vec<f64> = (1..=100).map(f64::from).collect();
        let p = Percentiles::of(&v);
        assert_eq!(p.p50, 50.0);
        assert_eq!(p.p95, 95.0);
        assert_eq!(p.p99, 99.0);
        assert_eq!(p.max, 100.0);
        let single = Percentiles::of(&[7.0]);
        assert_eq!((single.p50, single.p99), (7.0, 7.0));
        let empty = Percentiles::of(&[]);
        assert_eq!(empty.max, 0.0);
    }

    #[test]
    fn report_arithmetic() {
        // two requests, 1 s makespan
        let responses = [resp(0, 0, 100_000, 500_000_000), resp(1, 0, 200_000, 1_000_000_000)];
        let r = ServeReport::from_responses(&responses, 2_000_000_000, 2, 1, &[600_000_000]);
        assert_eq!(r.completed, 2);
        assert!((r.makespan_s - 1.0).abs() < 1e-9);
        assert!((r.throughput_rps - 2.0).abs() < 1e-9);
        assert!((r.gops - 2.0).abs() < 1e-9);
        assert!((r.mean_batch - 1.0).abs() < 1e-9);
        assert!((r.card_utilization[0] - 0.6).abs() < 1e-9);
    }

    #[test]
    fn display_mentions_all_sections() {
        let r = ServeReport::from_responses(&[resp(0, 0, 1, 2_000_000)], 1_000, 1, 1, &[2_000_000]);
        let text = r.to_string();
        for needle in ["throughput", "latency ms", "queueing ms", "p99", "card busy"] {
            assert!(text.contains(needle), "missing {needle} in {text}");
        }
    }

    #[test]
    fn empty_responses_do_not_divide_by_zero() {
        let r = ServeReport::from_responses(&[], 0, 0, 0, &[0]);
        assert_eq!(r.completed, 0);
        assert!(r.throughput_rps.is_finite());
    }
}
