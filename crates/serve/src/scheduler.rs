//! Batching: group compatible requests so one card program serves many
//! inferences, amortizing weight loads and reprogramming.
//!
//! Two requests are batchable when their [`CapacityClass`]es match (the
//! register file would be identical apart from `SL`) and their sequence
//! lengths fall in the same bucket; the batch runs at the bucket's upper
//! bound, padding shorter sequences. A batch dispatches when it reaches
//! [`BatchPolicy::max_batch`] or its oldest request has waited
//! [`BatchPolicy::max_wait_ns`].

use crate::error::ServeError;
use crate::request::{CapacityClass, Priority, ServeRequest};
use protea_core::{RuntimeConfig, SynthesisConfig};
use std::collections::BTreeMap;
use std::collections::VecDeque;

/// Scheduler tuning knobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Largest batch a card accepts (weight-stationary sharing degree).
    pub max_batch: usize,
    /// Longest a request may sit unbatched before a partial batch is
    /// flushed (nanoseconds).
    pub max_wait_ns: u64,
    /// Sequence-length bucket upper bounds, ascending. A request with
    /// `seq_len` ≤ `buckets[i]` (and > `buckets[i-1]`) pads to
    /// `buckets[i]`.
    pub seq_buckets: Vec<usize>,
    /// Hard cap on requests queued per (class, bucket) queue. `None`
    /// keeps the historical unbounded behavior; `Some(n)` makes
    /// admission shed instead of growing without bound (see
    /// [`BatchScheduler::push`]).
    pub max_queue: Option<usize>,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        Self {
            max_batch: 8,
            max_wait_ns: 2_000_000,
            seq_buckets: vec![16, 32, 64, 128],
            max_queue: None,
        }
    }
}

impl BatchPolicy {
    /// The bucket a sequence length pads to, or `None` if it exceeds the
    /// largest bucket.
    #[must_use]
    pub fn bucket_for(&self, seq_len: usize) -> Option<usize> {
        self.seq_buckets.iter().copied().find(|&b| seq_len <= b)
    }
}

/// The key one pending queue forms under: capacity class + padded SL.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct BatchKey {
    class: CapacityClass,
    padded_seq_len: usize,
}

/// A dispatched group of compatible requests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Batch {
    /// The member requests (at most `max_batch`).
    pub requests: Vec<ServeRequest>,
    /// The register file the card runs the whole batch under.
    pub runtime: RuntimeConfig,
}

impl Batch {
    /// Number of member requests.
    #[must_use]
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether the batch is empty (never true for dispatched batches).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Earliest member arrival (ns).
    #[must_use]
    pub fn oldest_arrival_ns(&self) -> u64 {
        self.requests.iter().map(|r| r.arrival_ns).min().unwrap_or(0)
    }
}

/// Groups admitted requests into dispatchable batches.
///
/// Admission ([`push`](Self::push)) validates each request against the
/// fleet's synthesized capacity, so a request that no card could ever
/// serve is rejected up front as a [`ServeError::Unservable`] value
/// instead of failing (or panicking) deep in the dispatch path.
#[derive(Debug, Clone)]
pub struct BatchScheduler {
    policy: BatchPolicy,
    capacity: SynthesisConfig,
    queues: BTreeMap<BatchKey, VecDeque<ServeRequest>>,
    /// Generation requests wait here, keyed like the one-shot queues.
    /// They form their own batches — a session batch holds its card for
    /// many token steps, so mixing it with one-shot work would stall
    /// the latter behind an entire generation — and they are exempt
    /// from priority eviction: an admitted session is never displaced
    /// by a later arrival, only shed whole at admission or on faults.
    session_queues: BTreeMap<BatchKey, VecDeque<ServeRequest>>,
    pending: usize,
}

impl BatchScheduler {
    /// A scheduler for a fleet synthesized at `capacity`.
    #[must_use]
    pub fn new(policy: BatchPolicy, capacity: SynthesisConfig) -> Self {
        Self {
            policy,
            capacity,
            queues: BTreeMap::new(),
            session_queues: BTreeMap::new(),
            pending: 0,
        }
    }

    /// The policy in force.
    #[must_use]
    pub fn policy(&self) -> &BatchPolicy {
        &self.policy
    }

    /// Requests currently queued.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// Admit a request.
    ///
    /// With [`BatchPolicy::max_queue`] unset this always queues the
    /// request and returns `Ok(None)`. With a cap, a full target queue
    /// sheds by priority: if some queued request has *lower* priority
    /// than the newcomer, the youngest such request is evicted and
    /// returned as `Ok(Some(victim))` (the caller owns recording it as
    /// shed); otherwise the newcomer itself is rejected with
    /// [`ServeError::Overloaded`].
    ///
    /// # Errors
    /// [`ServeError::Unservable`] when the request's padded register
    /// file would be rejected by the synthesized capacity (too-long
    /// sequence, oversized `d_model`, indivisible heads, zero field);
    /// [`ServeError::Overloaded`] when the bucket queue is full and no
    /// lower-priority victim exists.
    pub fn push(&mut self, req: ServeRequest) -> Result<Option<ServeRequest>, ServeError> {
        if req.seq_len == 0 {
            return Err(ServeError::Unservable {
                id: req.id,
                why: "seq_len must be nonzero".into(),
            });
        }
        let padded = self.policy.bucket_for(req.seq_len).ok_or_else(|| ServeError::Unservable {
            id: req.id,
            why: format!(
                "seq_len {} exceeds largest bucket {}",
                req.seq_len,
                self.policy.seq_buckets.last().copied().unwrap_or(0)
            ),
        })?;
        let runtime = req.runtime_at(padded);
        runtime
            .validate(&self.capacity)
            .map_err(|e| ServeError::Unservable { id: req.id, why: e.to_string() })?;
        let key = BatchKey { class: req.class(), padded_seq_len: padded };
        let cap = self.policy.max_queue;
        if req.is_decode() {
            // The KV cache grows one position per emitted token; the
            // decode phase's kv_len register is capped at the
            // synthesized SL_MAX, so a generation that would outgrow it
            // can never be served by any card in this fleet.
            if req.decode_steps as usize > self.capacity.sl_max {
                return Err(ServeError::Unservable {
                    id: req.id,
                    why: format!(
                        "decode_steps {} exceeds synthesized sl_max {} (the KV length register)",
                        req.decode_steps, self.capacity.sl_max
                    ),
                });
            }
            let q = self.session_queues.entry(key).or_default();
            if cap.is_some_and(|cap| q.len() >= cap) {
                // Sessions never evict each other — an admitted
                // generation is a promise of decode_steps tokens, so the
                // newcomer bounces instead.
                let pending = q.len();
                if q.is_empty() {
                    self.session_queues.remove(&key);
                }
                return Err(ServeError::Overloaded {
                    id: req.id,
                    pending,
                    limit: cap.unwrap_or(usize::MAX),
                });
            }
            q.push_back(req);
            self.pending += 1;
            return Ok(None);
        }
        let q = self.queues.entry(key).or_default();
        let mut victim = None;
        if cap.is_some_and(|cap| q.len() >= cap) {
            // Shed the *youngest of the lowest-priority* queued request
            // strictly below the newcomer — it has waited least and
            // matters least — or, failing that, reject the newcomer.
            let evict = q
                .iter()
                .enumerate()
                .filter(|(_, r)| r.priority < req.priority)
                .min_by_key(|(i, r)| (r.priority, std::cmp::Reverse((r.arrival_ns, *i))))
                .map(|(i, _)| i);
            match evict {
                Some(i) => {
                    victim = q.remove(i);
                    self.pending -= 1;
                }
                None => {
                    let pending = q.len();
                    if q.is_empty() {
                        self.queues.remove(&key);
                    }
                    return Err(ServeError::Overloaded {
                        id: req.id,
                        pending,
                        limit: cap.unwrap_or(usize::MAX),
                    });
                }
            }
        }
        self.queues.entry(key).or_default().push_back(req);
        self.pending += 1;
        Ok(victim)
    }

    /// Earliest deadline at which a currently queued partial batch must
    /// flush, if any (session batches flush on the same clock).
    #[must_use]
    pub fn next_flush_deadline_ns(&self) -> Option<u64> {
        self.queues
            .values()
            .chain(self.session_queues.values())
            .filter_map(|q| q.front())
            .map(|r| r.arrival_ns.saturating_add(self.policy.max_wait_ns))
            .min()
    }

    /// Earliest per-request completion deadline among queued requests,
    /// if any carries one. The dispatcher arms a wake-up here so an
    /// expired request is shed promptly, not only at the next arrival
    /// or completion.
    #[must_use]
    pub fn next_request_deadline_ns(&self) -> Option<u64> {
        self.queues
            .values()
            .chain(self.session_queues.values())
            .flatten()
            .filter_map(|r| r.deadline_ns)
            .min()
    }

    /// Remove and return the queued request that matters least among
    /// those strictly below `than`: the youngest of the lowest priority
    /// class, searched across every bucket. Used by the admission
    /// limiter so that shedding under concurrency pressure is
    /// priority-ordered — an interactive arrival displaces queued
    /// best-effort work instead of being bounced itself. `None` when
    /// nothing queued ranks below `than`.
    pub fn evict_lower_priority(&mut self, than: Priority) -> Option<ServeRequest> {
        let (key, idx) = self
            .queues
            .iter()
            .flat_map(|(k, q)| q.iter().enumerate().map(move |(i, r)| (k, i, r)))
            .filter(|(_, _, r)| r.priority < than)
            .min_by_key(|(k, i, r)| (r.priority, std::cmp::Reverse((r.arrival_ns, **k, *i))))
            .map(|(k, i, _)| (*k, i))?;
        let q = self.queues.get_mut(&key).expect("key exists by construction");
        let victim = q.remove(idx).expect("index exists by construction");
        if q.is_empty() {
            self.queues.remove(&key);
        }
        self.pending -= 1;
        Some(victim)
    }

    /// When the dispatcher should next wake for deadline work: for each
    /// queued deadline'd request, at `deadline - headroom_ns` (to flush
    /// its batch early enough to have a chance of completing in time),
    /// or at the deadline itself when that urgent instant has already
    /// passed (to shed it promptly). `headroom_ns` is the caller's
    /// service-time estimate; `None` (no completions observed yet)
    /// falls back to [`BatchPolicy::max_wait_ns`]. Returns `None` when
    /// no queued request carries a deadline.
    #[must_use]
    pub fn next_deadline_wake_ns(&self, now_ns: u64, headroom_ns: Option<u64>) -> Option<u64> {
        let h = headroom_ns.unwrap_or(self.policy.max_wait_ns);
        self.queues
            .values()
            .chain(self.session_queues.values())
            .flatten()
            .filter_map(|r| r.deadline_ns)
            .map(|d| {
                let urgent = d.saturating_sub(h);
                if urgent > now_ns {
                    urgent
                } else {
                    d
                }
            })
            .min()
    }

    /// Remove and return every queued request whose deadline has passed
    /// at `now_ns`, preserving queue order among survivors. Expired
    /// requests are shed *before* dispatch — a card's time is never
    /// burned on an answer nobody is waiting for.
    pub fn take_expired(&mut self, now_ns: u64) -> Vec<ServeRequest> {
        let mut expired = Vec::new();
        for queues in [&mut self.queues, &mut self.session_queues] {
            queues.retain(|_, q| {
                q.retain(|r| {
                    let dead = r.expired_at(now_ns);
                    if dead {
                        expired.push(*r);
                    }
                    !dead
                });
                !q.is_empty()
            });
        }
        self.pending -= expired.len();
        expired.sort_by_key(|r| (r.arrival_ns, r.id));
        expired
    }

    /// Take the best dispatchable batch at time `now_ns`: a full batch
    /// if one exists (oldest head first among full queues), otherwise a
    /// partial batch whose head has exceeded `max_wait_ns`. Returns
    /// `None` when nothing should dispatch yet.
    pub fn pop_ready(&mut self, now_ns: u64) -> Option<Batch> {
        let full = self
            .queues
            .iter()
            .filter(|(_, q)| q.len() >= self.policy.max_batch)
            .min_by_key(|(k, q)| (q.front().map_or(u64::MAX, |r| r.arrival_ns), **k))
            .map(|(k, _)| *k);
        let key = full.or_else(|| {
            self.queues
                .iter()
                .filter(|(_, q)| {
                    q.front().is_some_and(|r| {
                        now_ns >= r.arrival_ns.saturating_add(self.policy.max_wait_ns)
                    })
                })
                .min_by_key(|(k, q)| (q.front().map_or(u64::MAX, |r| r.arrival_ns), **k))
                .map(|(k, _)| *k)
        })?;
        Some(self.take(key))
    }

    /// Deadline-aware flush: take a partial batch whose most imminent
    /// member deadline is within `headroom_ns` of `now_ns` — waiting for
    /// the generic [`BatchPolicy::max_wait_ns`] flush would let it
    /// expire in queue. `headroom_ns` is the caller's service-time
    /// estimate (`None` falls back to `max_wait_ns`, so before any
    /// completion statistics exist a deadline'd request flushes as soon
    /// as its deadline is within one batching window). Returns `None`
    /// when no queued deadline is that close.
    pub fn pop_urgent(&mut self, now_ns: u64, headroom_ns: Option<u64>) -> Option<Batch> {
        let h = headroom_ns.unwrap_or(self.policy.max_wait_ns);
        let key = self
            .queues
            .iter()
            .filter(|(_, q)| {
                q.iter().filter_map(|r| r.deadline_ns).any(|d| d.saturating_sub(h) <= now_ns)
            })
            .min_by_key(|(k, q)| {
                (q.iter().filter_map(|r| r.deadline_ns).min().unwrap_or(u64::MAX), **k)
            })
            .map(|(k, _)| *k)?;
        Some(self.take(key))
    }

    /// Take the oldest pending batch regardless of fill or age (used to
    /// drain the queue once arrivals stop). `None` when empty. Covers
    /// only the one-shot queues; drain sessions with
    /// [`pop_any_session`](Self::pop_any_session).
    pub fn pop_any(&mut self) -> Option<Batch> {
        let key = self
            .queues
            .iter()
            .filter(|(_, q)| !q.is_empty())
            .min_by_key(|(k, q)| (q.front().map_or(u64::MAX, |r| r.arrival_ns), **k))
            .map(|(k, _)| *k)?;
        Some(self.take(key))
    }

    /// Take the best dispatchable *session* batch at `now_ns`: the same
    /// fill-or-age rule as [`pop_ready`](Self::pop_ready), over the
    /// generation queues. Every member shares one capacity class and
    /// padded prompt length — the card prefills them together, then
    /// emits tokens step by step with the batch resident.
    pub fn pop_session_ready(&mut self, now_ns: u64) -> Option<Batch> {
        let full = self
            .session_queues
            .iter()
            .filter(|(_, q)| q.len() >= self.policy.max_batch)
            .min_by_key(|(k, q)| (q.front().map_or(u64::MAX, |r| r.arrival_ns), **k))
            .map(|(k, _)| *k);
        let key = full.or_else(|| {
            self.session_queues
                .iter()
                .filter(|(_, q)| {
                    q.front().is_some_and(|r| {
                        now_ns >= r.arrival_ns.saturating_add(self.policy.max_wait_ns)
                    })
                })
                .min_by_key(|(k, q)| (q.front().map_or(u64::MAX, |r| r.arrival_ns), **k))
                .map(|(k, _)| *k)
        })?;
        Some(self.take_session(key))
    }

    /// Take the oldest pending session batch regardless of fill or age
    /// (drain, or fail-everything when the fleet dies). `None` when no
    /// generation request is queued.
    pub fn pop_any_session(&mut self) -> Option<Batch> {
        let key = self
            .session_queues
            .iter()
            .filter(|(_, q)| !q.is_empty())
            .min_by_key(|(k, q)| (q.front().map_or(u64::MAX, |r| r.arrival_ns), **k))
            .map(|(k, _)| *k)?;
        Some(self.take_session(key))
    }

    /// Pop up to `slots` queued sessions compatible with a running
    /// session batch (same class, same padded prompt bucket) — the
    /// continuous-batching join: freed batch slots are refilled with
    /// new prefills between token steps instead of waiting for the
    /// whole batch to finish.
    pub fn take_session_joiners(
        &mut self,
        class: CapacityClass,
        padded_seq_len: usize,
        slots: usize,
    ) -> Vec<ServeRequest> {
        if slots == 0 {
            return Vec::new();
        }
        let key = BatchKey { class, padded_seq_len };
        let Some(q) = self.session_queues.get_mut(&key) else { return Vec::new() };
        let n = q.len().min(slots);
        let joiners: Vec<ServeRequest> = q.drain(..n).collect();
        if q.is_empty() {
            self.session_queues.remove(&key);
        }
        self.pending -= joiners.len();
        joiners
    }

    /// Generation requests currently queued (a subset of
    /// [`pending`](Self::pending)).
    #[must_use]
    pub fn session_pending(&self) -> usize {
        self.session_queues.values().map(VecDeque::len).sum()
    }

    /// Return a dispatched batch's requests to the **front** of their
    /// queue (the card failed or crashed mid-run). The requests were
    /// already admitted, so there is no re-validation — and the
    /// [`BatchPolicy::max_queue`] cap deliberately does not apply: a
    /// requeued request was already in the system, so bouncing it here
    /// would turn a card fault into a silent drop. Requeue *volume* is
    /// bounded one level up by the fleet's retry budget. FIFO order
    /// within the batch is preserved — a requeued request keeps its
    /// place ahead of later arrivals.
    pub fn requeue(&mut self, batch: &Batch) {
        if batch.requests.is_empty() {
            return;
        }
        let key =
            BatchKey { class: batch.requests[0].class(), padded_seq_len: batch.runtime.seq_len };
        let q = self.queues.entry(key).or_default();
        for r in batch.requests.iter().rev() {
            q.push_front(*r);
        }
        self.pending += batch.requests.len();
    }

    /// Canonical snapshot form of the queues: one
    /// `(class, padded_seq_len, requests)` row per non-empty queue, in
    /// `BatchKey` order. Pure data — no policy or capacity, which the
    /// restoring side already has from its config.
    pub(crate) fn export_queues(&self) -> Vec<(CapacityClass, usize, Vec<ServeRequest>)> {
        self.queues
            .iter()
            .map(|(k, q)| (k.class, k.padded_seq_len, q.iter().copied().collect()))
            .collect()
    }

    /// Replace the queues with [`export_queues`](Self::export_queues)ed
    /// rows (requests were validated at original admission, so none
    /// re-validates here).
    pub(crate) fn import_queues(&mut self, rows: Vec<(CapacityClass, usize, Vec<ServeRequest>)>) {
        self.pending -= self.queues.values().map(VecDeque::len).sum::<usize>();
        self.queues.clear();
        for (class, padded_seq_len, requests) in rows {
            if requests.is_empty() {
                continue;
            }
            self.pending += requests.len();
            self.queues.insert(BatchKey { class, padded_seq_len }, requests.into_iter().collect());
        }
    }

    /// Session-queue twin of [`export_queues`](Self::export_queues)
    /// (serialized only into v4 snapshots).
    pub(crate) fn export_session_queues(&self) -> Vec<(CapacityClass, usize, Vec<ServeRequest>)> {
        self.session_queues
            .iter()
            .map(|(k, q)| (k.class, k.padded_seq_len, q.iter().copied().collect()))
            .collect()
    }

    /// Session-queue twin of [`import_queues`](Self::import_queues).
    pub(crate) fn import_session_queues(
        &mut self,
        rows: Vec<(CapacityClass, usize, Vec<ServeRequest>)>,
    ) {
        self.pending -= self.session_queues.values().map(VecDeque::len).sum::<usize>();
        self.session_queues.clear();
        for (class, padded_seq_len, requests) in rows {
            if requests.is_empty() {
                continue;
            }
            self.pending += requests.len();
            self.session_queues
                .insert(BatchKey { class, padded_seq_len }, requests.into_iter().collect());
        }
    }

    fn take(&mut self, key: BatchKey) -> Batch {
        let q = self.queues.get_mut(&key).expect("key exists by construction");
        let n = q.len().min(self.policy.max_batch);
        let requests: Vec<ServeRequest> = q.drain(..n).collect();
        if q.is_empty() {
            self.queues.remove(&key);
        }
        self.pending -= requests.len();
        let runtime = requests[0].runtime_at(key.padded_seq_len);
        Batch { requests, runtime }
    }

    fn take_session(&mut self, key: BatchKey) -> Batch {
        let q = self.session_queues.get_mut(&key).expect("key exists by construction");
        let n = q.len().min(self.policy.max_batch);
        let requests: Vec<ServeRequest> = q.drain(..n).collect();
        if q.is_empty() {
            self.session_queues.remove(&key);
        }
        self.pending -= requests.len();
        let runtime = requests[0].runtime_at(key.padded_seq_len);
        Batch { requests, runtime }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::request::Priority;

    fn req(id: u64, arrival_ns: u64, seq_len: usize) -> ServeRequest {
        ServeRequest {
            id,
            arrival_ns,
            d_model: 96,
            heads: 4,
            layers: 2,
            seq_len,
            ..Default::default()
        }
    }

    fn sched() -> BatchScheduler {
        BatchScheduler::new(
            BatchPolicy {
                max_batch: 4,
                max_wait_ns: 1_000,
                seq_buckets: vec![16, 32, 64, 128],
                max_queue: None,
            },
            SynthesisConfig::paper_default(),
        )
    }

    fn capped(max_queue: usize) -> BatchScheduler {
        BatchScheduler::new(
            BatchPolicy {
                max_batch: 4,
                max_wait_ns: 1_000,
                seq_buckets: vec![16, 32, 64, 128],
                max_queue: Some(max_queue),
            },
            SynthesisConfig::paper_default(),
        )
    }

    #[test]
    fn full_batch_dispatches_immediately() {
        let mut s = sched();
        for i in 0..4 {
            s.push(req(i, i * 10, 12)).unwrap();
        }
        let b = s.pop_ready(35).expect("full batch ready");
        assert_eq!(b.len(), 4);
        assert_eq!(b.runtime.seq_len, 16, "padded to the bucket bound");
        assert_eq!(s.pending(), 0);
    }

    #[test]
    fn partial_batch_waits_for_deadline() {
        let mut s = sched();
        s.push(req(0, 100, 12)).unwrap();
        assert!(s.pop_ready(500).is_none(), "not full, not timed out");
        assert_eq!(s.next_flush_deadline_ns(), Some(1_100));
        let b = s.pop_ready(1_100).expect("flush after max_wait");
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn buckets_separate_and_pad() {
        let mut s = sched();
        s.push(req(0, 0, 12)).unwrap(); // bucket 16
        s.push(req(1, 0, 20)).unwrap(); // bucket 32
        s.push(req(2, 0, 16)).unwrap(); // bucket 16 (exact bound)
        let b = s.pop_ready(u64::MAX).unwrap();
        assert_eq!(b.runtime.seq_len, 16);
        assert_eq!(b.len(), 2, "12 and 16 share the 16-bucket");
        let b2 = s.pop_ready(u64::MAX).unwrap();
        assert_eq!(b2.runtime.seq_len, 32);
    }

    #[test]
    fn classes_never_mix() {
        let mut s = sched();
        s.push(req(0, 0, 12)).unwrap();
        s.push(ServeRequest {
            id: 1,
            arrival_ns: 0,
            d_model: 128,
            heads: 4,
            layers: 2,
            seq_len: 12,
            ..Default::default()
        })
        .unwrap();
        let b = s.pop_ready(u64::MAX).unwrap();
        assert_eq!(b.len(), 1);
        assert_eq!(s.pending(), 1);
    }

    #[test]
    fn unservable_requests_rejected_at_admission() {
        let mut s = sched();
        // over the largest bucket
        assert!(matches!(s.push(req(0, 0, 4_000)), Err(ServeError::Unservable { id: 0, .. })));
        // d_model over synthesized capacity
        let too_wide = ServeRequest { d_model: 4_096, ..req(1, 0, 8) };
        assert!(matches!(s.push(too_wide), Err(ServeError::Unservable { id: 1, .. })));
        // heads must divide d_model
        let ragged = ServeRequest { heads: 5, ..req(2, 0, 8) };
        assert!(s.push(ragged).is_err());
        // zero layers
        let zero = ServeRequest { layers: 0, ..req(3, 0, 8) };
        assert!(s.push(zero).is_err());
        assert_eq!(s.pending(), 0);
    }

    #[test]
    fn pop_any_drains_everything() {
        let mut s = sched();
        for i in 0..6 {
            s.push(req(i, i, 12)).unwrap();
        }
        let first = s.pop_any().unwrap();
        assert_eq!(first.len(), 4, "capped at max_batch");
        let rest = s.pop_any().unwrap();
        assert_eq!(rest.len(), 2);
        assert!(s.pop_any().is_none());
    }

    #[test]
    fn requeue_restores_requests_at_the_front() {
        let mut s = sched();
        for i in 0..4 {
            s.push(req(i, i * 7, 12)).unwrap();
        }
        let b = s.pop_ready(100).unwrap();
        assert_eq!(s.pending(), 0);
        // a later arrival lands behind the requeued batch
        s.push(req(9, 200, 12)).unwrap();
        s.requeue(&b);
        assert_eq!(s.pending(), 5);
        let again = s.pop_ready(u64::MAX).unwrap();
        let ids: Vec<u64> = again.requests.iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3], "requeued requests keep FIFO order at the front");
        let rest = s.pop_ready(u64::MAX).unwrap();
        assert_eq!(rest.requests[0].id, 9);
    }

    #[test]
    fn fifo_within_a_queue() {
        let mut s = sched();
        for i in 0..4 {
            s.push(req(i, i * 7, 12)).unwrap();
        }
        let b = s.pop_ready(100).unwrap();
        let ids: Vec<u64> = b.requests.iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn unbounded_by_default_bounded_when_capped() {
        // Historical behavior: no cap, any depth queues.
        let mut s = sched();
        for i in 0..100 {
            assert_eq!(s.push(req(i, i, 12)).unwrap(), None);
        }
        assert_eq!(s.pending(), 100);
        // With a cap, the queue holds exactly `max_queue`.
        let mut s = capped(3);
        for i in 0..3 {
            assert_eq!(s.push(req(i, i, 12)).unwrap(), None);
        }
        let err = s.push(req(3, 3, 12)).unwrap_err();
        assert!(
            matches!(err, ServeError::Overloaded { id: 3, pending: 3, limit: 3 }),
            "got {err:?}"
        );
        assert_eq!(s.pending(), 3, "a rejected push must not change the queue");
        // A different bucket has its own cap.
        assert_eq!(s.push(req(4, 4, 20)).unwrap(), None);
    }

    #[test]
    fn full_queue_evicts_lowest_priority_youngest_victim() {
        let mut s = capped(3);
        s.push(ServeRequest { priority: Priority::BestEffort, ..req(0, 0, 12) }).unwrap();
        s.push(ServeRequest { priority: Priority::BestEffort, ..req(1, 5, 12) }).unwrap();
        s.push(ServeRequest { priority: Priority::Normal, ..req(2, 6, 12) }).unwrap();
        // An interactive arrival displaces the *youngest best-effort*
        // request (id 1), not the older one and not the normal one.
        let victim = s
            .push(ServeRequest { priority: Priority::Interactive, ..req(3, 9, 12) })
            .unwrap()
            .expect("must evict");
        assert_eq!(victim.id, 1);
        assert_eq!(s.pending(), 3);
        // An equal-priority arrival cannot displace anyone.
        let err =
            s.push(ServeRequest { priority: Priority::BestEffort, ..req(4, 10, 12) }).unwrap_err();
        assert!(matches!(err, ServeError::Overloaded { id: 4, .. }));
        // The surviving queue keeps arrival order among survivors.
        let b = s.pop_ready(u64::MAX).unwrap();
        let ids: Vec<u64> = b.requests.iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![0, 2, 3]);
    }

    #[test]
    fn requeue_is_exempt_from_the_cap() {
        let mut s = capped(4);
        for i in 0..4 {
            s.push(req(i, i, 12)).unwrap();
        }
        let b = s.pop_ready(u64::MAX).unwrap();
        for i in 4..8 {
            s.push(req(i, i, 12)).unwrap();
        }
        // The queue is full again, yet the failed batch must re-enter:
        // bouncing it would turn a card fault into a silent drop.
        s.requeue(&b);
        assert_eq!(s.pending(), 8);
        let front = s.pop_ready(u64::MAX).unwrap();
        assert_eq!(front.requests[0].id, 0, "requeued batch keeps its place at the head");
    }

    #[test]
    fn decode_requests_form_their_own_session_queues() {
        let mut s = sched();
        s.push(ServeRequest { decode_steps: 4, ..req(0, 0, 12) }).unwrap();
        s.push(req(1, 0, 12)).unwrap();
        assert_eq!(s.pending(), 2);
        assert_eq!(s.session_pending(), 1);
        // One-shot pops never return sessions and vice versa.
        let b = s.pop_ready(u64::MAX).unwrap();
        assert_eq!(b.requests[0].id, 1);
        assert!(s.pop_ready(u64::MAX).is_none());
        let sb = s.pop_session_ready(u64::MAX).expect("session flushes after max_wait");
        assert_eq!(sb.requests[0].id, 0);
        assert_eq!(s.pending(), 0);
    }

    #[test]
    fn session_joiners_come_from_the_matching_bucket() {
        let mut s = sched();
        for i in 0..3 {
            s.push(ServeRequest { decode_steps: 4, ..req(i, i, 12) }).unwrap();
        }
        s.push(ServeRequest { decode_steps: 4, ..req(9, 3, 40) }).unwrap(); // other bucket
        let joiners = s.take_session_joiners(req(0, 0, 12).class(), 16, 2);
        assert_eq!(joiners.iter().map(|r| r.id).collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(s.session_pending(), 2);
        assert!(s.take_session_joiners(req(0, 0, 12).class(), 16, 0).is_empty());
        // Wrong bucket matches nothing.
        assert!(s.take_session_joiners(req(0, 0, 12).class(), 128, 4).is_empty());
        let drained = s.pop_any_session().unwrap();
        assert_eq!(drained.requests[0].id, 2);
        assert_eq!(s.pop_any_session().unwrap().requests[0].id, 9);
        assert!(s.pop_any_session().is_none());
    }

    #[test]
    fn oversized_decode_steps_are_unservable_and_sessions_never_evict() {
        let mut s = sched();
        let huge = ServeRequest { decode_steps: 100_000, ..req(0, 0, 12) };
        assert!(matches!(s.push(huge), Err(ServeError::Unservable { id: 0, .. })));
        // A capped session queue bounces the newcomer even at higher
        // priority — admitted sessions are never displaced.
        let mut s = capped(2);
        for i in 0..2 {
            s.push(ServeRequest { decode_steps: 4, ..req(i, i, 12) }).unwrap();
        }
        let vip =
            ServeRequest { decode_steps: 4, priority: Priority::Interactive, ..req(5, 5, 12) };
        assert!(matches!(s.push(vip), Err(ServeError::Overloaded { id: 5, .. })));
        assert!(s.evict_lower_priority(Priority::Interactive).is_none());
        assert_eq!(s.session_pending(), 2);
    }

    #[test]
    fn session_deadlines_expire_in_queue() {
        let mut s = sched();
        s.push(ServeRequest { decode_steps: 4, deadline_ns: Some(100), ..req(0, 0, 12) }).unwrap();
        assert_eq!(s.next_request_deadline_ns(), Some(100));
        assert_eq!(s.next_flush_deadline_ns(), Some(1_000));
        let dead = s.take_expired(100);
        assert_eq!(dead.iter().map(|r| r.id).collect::<Vec<_>>(), vec![0]);
        assert_eq!(s.pending(), 0);
    }

    #[test]
    fn take_expired_removes_only_dead_requests() {
        let mut s = sched();
        s.push(ServeRequest { deadline_ns: Some(100), ..req(0, 0, 12) }).unwrap();
        s.push(req(1, 1, 12)).unwrap(); // no deadline
        s.push(ServeRequest { deadline_ns: Some(500), ..req(2, 2, 40) }).unwrap();
        assert_eq!(s.next_request_deadline_ns(), Some(100));
        assert!(s.take_expired(99).is_empty(), "nothing dead yet");
        let dead = s.take_expired(100);
        assert_eq!(dead.iter().map(|r| r.id).collect::<Vec<_>>(), vec![0]);
        assert_eq!(s.pending(), 2);
        assert_eq!(s.next_request_deadline_ns(), Some(500));
        let dead = s.take_expired(u64::MAX);
        assert_eq!(dead.iter().map(|r| r.id).collect::<Vec<_>>(), vec![2]);
        assert_eq!(s.pending(), 1, "deadline-free requests are never expired");
        assert_eq!(s.next_request_deadline_ns(), None);
    }
}
