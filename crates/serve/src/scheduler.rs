//! Batching: group compatible requests so one card program serves many
//! inferences, amortizing weight loads and reprogramming.
//!
//! Two requests are batchable when their [`CapacityClass`]es match (the
//! register file would be identical apart from `SL`) and their sequence
//! lengths fall in the same bucket; the batch runs at the bucket's upper
//! bound, padding shorter sequences. A batch dispatches when it reaches
//! [`BatchPolicy::max_batch`] or its oldest request has waited
//! [`BatchPolicy::max_wait_ns`].

use crate::error::ServeError;
use crate::request::{CapacityClass, ServeRequest};
use protea_core::{RuntimeConfig, SynthesisConfig};
use std::collections::BTreeMap;
use std::collections::VecDeque;

/// Scheduler tuning knobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Largest batch a card accepts (weight-stationary sharing degree).
    pub max_batch: usize,
    /// Longest a request may sit unbatched before a partial batch is
    /// flushed (nanoseconds).
    pub max_wait_ns: u64,
    /// Sequence-length bucket upper bounds, ascending. A request with
    /// `seq_len` ≤ `buckets[i]` (and > `buckets[i-1]`) pads to
    /// `buckets[i]`.
    pub seq_buckets: Vec<usize>,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        Self { max_batch: 8, max_wait_ns: 2_000_000, seq_buckets: vec![16, 32, 64, 128] }
    }
}

impl BatchPolicy {
    /// The bucket a sequence length pads to, or `None` if it exceeds the
    /// largest bucket.
    #[must_use]
    pub fn bucket_for(&self, seq_len: usize) -> Option<usize> {
        self.seq_buckets.iter().copied().find(|&b| seq_len <= b)
    }
}

/// The key one pending queue forms under: capacity class + padded SL.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct BatchKey {
    class: CapacityClass,
    padded_seq_len: usize,
}

/// A dispatched group of compatible requests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Batch {
    /// The member requests (at most `max_batch`).
    pub requests: Vec<ServeRequest>,
    /// The register file the card runs the whole batch under.
    pub runtime: RuntimeConfig,
}

impl Batch {
    /// Number of member requests.
    #[must_use]
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether the batch is empty (never true for dispatched batches).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Earliest member arrival (ns).
    #[must_use]
    pub fn oldest_arrival_ns(&self) -> u64 {
        self.requests.iter().map(|r| r.arrival_ns).min().unwrap_or(0)
    }
}

/// Groups admitted requests into dispatchable batches.
///
/// Admission ([`push`](Self::push)) validates each request against the
/// fleet's synthesized capacity, so a request that no card could ever
/// serve is rejected up front as a [`ServeError::Unservable`] value
/// instead of failing (or panicking) deep in the dispatch path.
#[derive(Debug, Clone)]
pub struct BatchScheduler {
    policy: BatchPolicy,
    capacity: SynthesisConfig,
    queues: BTreeMap<BatchKey, VecDeque<ServeRequest>>,
    pending: usize,
}

impl BatchScheduler {
    /// A scheduler for a fleet synthesized at `capacity`.
    #[must_use]
    pub fn new(policy: BatchPolicy, capacity: SynthesisConfig) -> Self {
        Self { policy, capacity, queues: BTreeMap::new(), pending: 0 }
    }

    /// The policy in force.
    #[must_use]
    pub fn policy(&self) -> &BatchPolicy {
        &self.policy
    }

    /// Requests currently queued.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// Admit a request.
    ///
    /// # Errors
    /// [`ServeError::Unservable`] when the request's padded register
    /// file would be rejected by the synthesized capacity (too-long
    /// sequence, oversized `d_model`, indivisible heads, zero field).
    pub fn push(&mut self, req: ServeRequest) -> Result<(), ServeError> {
        if req.seq_len == 0 {
            return Err(ServeError::Unservable {
                id: req.id,
                why: "seq_len must be nonzero".into(),
            });
        }
        let padded = self.policy.bucket_for(req.seq_len).ok_or_else(|| ServeError::Unservable {
            id: req.id,
            why: format!(
                "seq_len {} exceeds largest bucket {}",
                req.seq_len,
                self.policy.seq_buckets.last().copied().unwrap_or(0)
            ),
        })?;
        let runtime = req.runtime_at(padded);
        runtime
            .validate(&self.capacity)
            .map_err(|e| ServeError::Unservable { id: req.id, why: e.to_string() })?;
        let key = BatchKey { class: req.class(), padded_seq_len: padded };
        self.queues.entry(key).or_default().push_back(req);
        self.pending += 1;
        Ok(())
    }

    /// Earliest deadline at which a currently queued partial batch must
    /// flush, if any.
    #[must_use]
    pub fn next_flush_deadline_ns(&self) -> Option<u64> {
        self.queues
            .values()
            .filter_map(|q| q.front())
            .map(|r| r.arrival_ns.saturating_add(self.policy.max_wait_ns))
            .min()
    }

    /// Take the best dispatchable batch at time `now_ns`: a full batch
    /// if one exists (oldest head first among full queues), otherwise a
    /// partial batch whose head has exceeded `max_wait_ns`. Returns
    /// `None` when nothing should dispatch yet.
    pub fn pop_ready(&mut self, now_ns: u64) -> Option<Batch> {
        let full = self
            .queues
            .iter()
            .filter(|(_, q)| q.len() >= self.policy.max_batch)
            .min_by_key(|(k, q)| (q.front().map_or(u64::MAX, |r| r.arrival_ns), **k))
            .map(|(k, _)| *k);
        let key = full.or_else(|| {
            self.queues
                .iter()
                .filter(|(_, q)| {
                    q.front().is_some_and(|r| {
                        now_ns >= r.arrival_ns.saturating_add(self.policy.max_wait_ns)
                    })
                })
                .min_by_key(|(k, q)| (q.front().map_or(u64::MAX, |r| r.arrival_ns), **k))
                .map(|(k, _)| *k)
        })?;
        Some(self.take(key))
    }

    /// Take the oldest pending batch regardless of fill or age (used to
    /// drain the queue once arrivals stop). `None` when empty.
    pub fn pop_any(&mut self) -> Option<Batch> {
        let key = self
            .queues
            .iter()
            .filter(|(_, q)| !q.is_empty())
            .min_by_key(|(k, q)| (q.front().map_or(u64::MAX, |r| r.arrival_ns), **k))
            .map(|(k, _)| *k)?;
        Some(self.take(key))
    }

    /// Return a dispatched batch's requests to the **front** of their
    /// queue (the card failed or crashed mid-run). The requests were
    /// already admitted, so there is no re-validation, and FIFO order
    /// within the batch is preserved — a requeued request keeps its
    /// place ahead of later arrivals.
    pub fn requeue(&mut self, batch: &Batch) {
        if batch.requests.is_empty() {
            return;
        }
        let key =
            BatchKey { class: batch.requests[0].class(), padded_seq_len: batch.runtime.seq_len };
        let q = self.queues.entry(key).or_default();
        for r in batch.requests.iter().rev() {
            q.push_front(*r);
        }
        self.pending += batch.requests.len();
    }

    fn take(&mut self, key: BatchKey) -> Batch {
        let q = self.queues.get_mut(&key).expect("key exists by construction");
        let n = q.len().min(self.policy.max_batch);
        let requests: Vec<ServeRequest> = q.drain(..n).collect();
        if q.is_empty() {
            self.queues.remove(&key);
        }
        self.pending -= requests.len();
        let runtime = requests[0].runtime_at(key.padded_seq_len);
        Batch { requests, runtime }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64, arrival_ns: u64, seq_len: usize) -> ServeRequest {
        ServeRequest { id, arrival_ns, d_model: 96, heads: 4, layers: 2, seq_len }
    }

    fn sched() -> BatchScheduler {
        BatchScheduler::new(
            BatchPolicy { max_batch: 4, max_wait_ns: 1_000, seq_buckets: vec![16, 32, 64, 128] },
            SynthesisConfig::paper_default(),
        )
    }

    #[test]
    fn full_batch_dispatches_immediately() {
        let mut s = sched();
        for i in 0..4 {
            s.push(req(i, i * 10, 12)).unwrap();
        }
        let b = s.pop_ready(35).expect("full batch ready");
        assert_eq!(b.len(), 4);
        assert_eq!(b.runtime.seq_len, 16, "padded to the bucket bound");
        assert_eq!(s.pending(), 0);
    }

    #[test]
    fn partial_batch_waits_for_deadline() {
        let mut s = sched();
        s.push(req(0, 100, 12)).unwrap();
        assert!(s.pop_ready(500).is_none(), "not full, not timed out");
        assert_eq!(s.next_flush_deadline_ns(), Some(1_100));
        let b = s.pop_ready(1_100).expect("flush after max_wait");
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn buckets_separate_and_pad() {
        let mut s = sched();
        s.push(req(0, 0, 12)).unwrap(); // bucket 16
        s.push(req(1, 0, 20)).unwrap(); // bucket 32
        s.push(req(2, 0, 16)).unwrap(); // bucket 16 (exact bound)
        let b = s.pop_ready(u64::MAX).unwrap();
        assert_eq!(b.runtime.seq_len, 16);
        assert_eq!(b.len(), 2, "12 and 16 share the 16-bucket");
        let b2 = s.pop_ready(u64::MAX).unwrap();
        assert_eq!(b2.runtime.seq_len, 32);
    }

    #[test]
    fn classes_never_mix() {
        let mut s = sched();
        s.push(req(0, 0, 12)).unwrap();
        s.push(ServeRequest {
            id: 1,
            arrival_ns: 0,
            d_model: 128,
            heads: 4,
            layers: 2,
            seq_len: 12,
        })
        .unwrap();
        let b = s.pop_ready(u64::MAX).unwrap();
        assert_eq!(b.len(), 1);
        assert_eq!(s.pending(), 1);
    }

    #[test]
    fn unservable_requests_rejected_at_admission() {
        let mut s = sched();
        // over the largest bucket
        assert!(matches!(s.push(req(0, 0, 4_000)), Err(ServeError::Unservable { id: 0, .. })));
        // d_model over synthesized capacity
        let too_wide =
            ServeRequest { id: 1, arrival_ns: 0, d_model: 4_096, heads: 4, layers: 2, seq_len: 8 };
        assert!(matches!(s.push(too_wide), Err(ServeError::Unservable { id: 1, .. })));
        // heads must divide d_model
        let ragged =
            ServeRequest { id: 2, arrival_ns: 0, d_model: 96, heads: 5, layers: 2, seq_len: 8 };
        assert!(s.push(ragged).is_err());
        // zero layers
        let zero =
            ServeRequest { id: 3, arrival_ns: 0, d_model: 96, heads: 4, layers: 0, seq_len: 8 };
        assert!(s.push(zero).is_err());
        assert_eq!(s.pending(), 0);
    }

    #[test]
    fn pop_any_drains_everything() {
        let mut s = sched();
        for i in 0..6 {
            s.push(req(i, i, 12)).unwrap();
        }
        let first = s.pop_any().unwrap();
        assert_eq!(first.len(), 4, "capped at max_batch");
        let rest = s.pop_any().unwrap();
        assert_eq!(rest.len(), 2);
        assert!(s.pop_any().is_none());
    }

    #[test]
    fn requeue_restores_requests_at_the_front() {
        let mut s = sched();
        for i in 0..4 {
            s.push(req(i, i * 7, 12)).unwrap();
        }
        let b = s.pop_ready(100).unwrap();
        assert_eq!(s.pending(), 0);
        // a later arrival lands behind the requeued batch
        s.push(req(9, 200, 12)).unwrap();
        s.requeue(&b);
        assert_eq!(s.pending(), 5);
        let again = s.pop_ready(u64::MAX).unwrap();
        let ids: Vec<u64> = again.requests.iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3], "requeued requests keep FIFO order at the front");
        let rest = s.pop_ready(u64::MAX).unwrap();
        assert_eq!(rest.requests[0].id, 9);
    }

    #[test]
    fn fifo_within_a_queue() {
        let mut s = sched();
        for i in 0..4 {
            s.push(req(i, i * 7, 12)).unwrap();
        }
        let b = s.pop_ready(100).unwrap();
        let ids: Vec<u64> = b.requests.iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }
}
