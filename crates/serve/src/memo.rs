//! Memoized batch timing for the fault-free serving path.
//!
//! The accelerator's `timing_report_batched` is deterministic: for a
//! fixed bitstream it depends only on the programmed register file and
//! the batch size. A serving sweep prices the same few
//! `(runtime, batch)` combinations thousands of times — once per
//! dispatched batch — so the fleet caches the report per combination
//! and replays the stored value on every later hit.
//!
//! Validity rests on two fleet invariants: every card is synthesized
//! from the **same** bitstream on the same device (`FleetConfig` has a
//! single `synthesis`/`device` pair), and the serving layer never
//! toggles a card's overlap ablation. Under those, the report is a pure
//! function of the key — the memo is *invisible* (byte-identical
//! `ServeReport`s with the cache on or off), which
//! `memo_is_invisible_*` tests pin. The fault-injected path draws from
//! a stateful fault stream and is never memoized.

use protea_core::{Accelerator, CycleReport};
use std::collections::BTreeMap;

/// Memo key: the four runtime registers plus the batch size.
type Key = (usize, usize, usize, usize, usize);

/// Cache of batched timing reports keyed by `(runtime, batch)`.
#[derive(Debug, Clone, Default)]
pub struct TimingMemo {
    map: BTreeMap<Key, CycleReport>,
    hits: u64,
    misses: u64,
}

impl TimingMemo {
    /// An empty memo.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The batched timing report for `accel`'s current register file,
    /// served from cache when the `(runtime, batch)` pair was priced
    /// before.
    #[must_use]
    pub fn report(&mut self, accel: &Accelerator, batch: usize) -> CycleReport {
        let rt = accel.runtime();
        let key = (rt.heads, rt.layers, rt.d_model, rt.seq_len, batch);
        if let Some(cached) = self.map.get(&key) {
            self.hits += 1;
            return cached.clone();
        }
        let report = accel.timing_report_batched(batch);
        self.misses += 1;
        self.map.insert(key, report.clone());
        report
    }

    /// Number of cache hits so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of cache misses (distinct keys priced) so far.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use protea_core::{RuntimeConfig, SynthesisConfig};
    use protea_platform::FpgaDevice;

    fn accel() -> Accelerator {
        Accelerator::try_new(SynthesisConfig::paper_default(), &FpgaDevice::alveo_u55c())
            .expect("paper default fits the U55C")
    }

    #[test]
    fn cached_report_is_identical() {
        let mut acc = accel();
        acc.program(RuntimeConfig { heads: 8, layers: 2, d_model: 768, seq_len: 32 }).unwrap();
        let mut memo = TimingMemo::new();
        let fresh = memo.report(&acc, 4);
        let direct = acc.timing_report_batched(4);
        assert_eq!(fresh.total, direct.total);
        let cached = memo.report(&acc, 4);
        assert_eq!(cached.total, direct.total);
        assert_eq!(cached.phases.len(), direct.phases.len());
        assert_eq!((memo.hits(), memo.misses()), (1, 1));
    }

    #[test]
    fn distinct_runtimes_and_batches_miss() {
        let mut acc = accel();
        acc.program(RuntimeConfig { heads: 8, layers: 2, d_model: 768, seq_len: 32 }).unwrap();
        let mut memo = TimingMemo::new();
        let _ = memo.report(&acc, 1);
        let _ = memo.report(&acc, 2);
        acc.program(RuntimeConfig { heads: 8, layers: 2, d_model: 768, seq_len: 64 }).unwrap();
        let _ = memo.report(&acc, 1);
        assert_eq!((memo.hits(), memo.misses()), (0, 3));
    }
}
