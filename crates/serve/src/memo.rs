//! Memoized batch timing for the fault-free serving path.
//!
//! A deterministic (fault-free) timing run is a pure function of its
//! [`PlanKey`] — the programmed registers, the batch size, and the
//! overlap knob, as derived by `RunPlan::memo_key`. A serving sweep
//! prices the same few keys thousands of times — once per dispatched
//! batch — so the fleet caches the report per key and replays the
//! stored value on every later hit.
//!
//! Validity rests on one fleet invariant: every card is synthesized
//! from the **same** bitstream on the same device (`FleetConfig` has a
//! single `synthesis`/`device` pair), so the key never needs to carry
//! the design. Under that, the report is a pure function of the key —
//! the memo is *invisible* (byte-identical `ServeReport`s with the
//! cache on or off), which `memo_is_invisible_*` tests pin; the memo
//! hit/miss counters surface on the report but are excluded from its
//! equality. Fault-armed plans have no key (`memo_key` returns `None`
//! for them) and are never memoized.

use protea_core::{Accelerator, CycleReport, PlanKey, RunPlan};
use std::collections::BTreeMap;

/// Cache of batched timing reports keyed by the deterministic-plan key.
#[derive(Debug, Clone, Default)]
pub struct TimingMemo {
    map: BTreeMap<PlanKey, CycleReport>,
    hits: u64,
    misses: u64,
}

impl TimingMemo {
    /// An empty memo.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The batched timing report for `accel`'s current register file,
    /// served from cache when the plan's key was priced before.
    #[must_use]
    pub fn report(&mut self, accel: &Accelerator, batch: usize) -> CycleReport {
        let plan = RunPlan::timing(batch);
        let key = plan.memo_key(accel).expect("timing plans are deterministic");
        if let Some(cached) = self.map.get(&key) {
            self.hits += 1;
            return cached.clone();
        }
        let (outcome, _) = accel.execute(plan);
        let report = outcome.expect("fault-free timing cannot fail").report;
        self.misses += 1;
        self.map.insert(key, report.clone());
        report
    }

    /// Number of cache hits so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of cache misses (distinct keys priced) so far.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// The cached plan keys, in `BTreeMap` order. Snapshots serialize
    /// keys only: a restored fleet reprices each key (the report is a
    /// pure function of the key) instead of serializing `CycleReport`s.
    pub(crate) fn keys(&self) -> impl Iterator<Item = &PlanKey> {
        self.map.keys()
    }

    /// Overwrite the observability counters (snapshot restore: repricing
    /// the keys counts as misses, which the true history may not have
    /// been).
    pub(crate) fn set_counters(&mut self, hits: u64, misses: u64) {
        self.hits = hits;
        self.misses = misses;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use protea_core::{RuntimeConfig, SynthesisConfig};
    use protea_platform::FpgaDevice;

    fn accel() -> Accelerator {
        Accelerator::try_new(SynthesisConfig::paper_default(), &FpgaDevice::alveo_u55c())
            .expect("paper default fits the U55C")
    }

    #[test]
    fn cached_report_is_identical() {
        let mut acc = accel();
        acc.program(RuntimeConfig { heads: 8, layers: 2, d_model: 768, seq_len: 32 }).unwrap();
        let mut memo = TimingMemo::new();
        let fresh = memo.report(&acc, 4);
        let direct = acc.timing_report_batched(4);
        assert_eq!(fresh.total, direct.total);
        let cached = memo.report(&acc, 4);
        assert_eq!(cached.total, direct.total);
        assert_eq!(cached.phases.len(), direct.phases.len());
        assert_eq!((memo.hits(), memo.misses()), (1, 1));
    }

    #[test]
    fn distinct_runtimes_and_batches_miss() {
        let mut acc = accel();
        acc.program(RuntimeConfig { heads: 8, layers: 2, d_model: 768, seq_len: 32 }).unwrap();
        let mut memo = TimingMemo::new();
        let _ = memo.report(&acc, 1);
        let _ = memo.report(&acc, 2);
        acc.program(RuntimeConfig { heads: 8, layers: 2, d_model: 768, seq_len: 64 }).unwrap();
        let _ = memo.report(&acc, 1);
        assert_eq!((memo.hits(), memo.misses()), (0, 3));
    }

    #[test]
    fn key_derives_from_the_plan() {
        let mut acc = accel();
        acc.program(RuntimeConfig { heads: 8, layers: 2, d_model: 768, seq_len: 32 }).unwrap();
        let key = RunPlan::timing(4).memo_key(&acc).unwrap();
        assert_eq!(
            (key.heads, key.layers, key.d_model, key.seq_len, key.batch),
            (8, 2, 768, 32, 4)
        );
        assert!(key.overlap, "paper-default designs overlap loads with compute");
    }
}
