//! Request and response types of the serving API.

use core::fmt;
use protea_core::RuntimeConfig;

/// A request's service class, ordered from most to least sheddable.
///
/// Priorities matter only under overload: when a bounded queue is full,
/// admission sheds the lowest-priority (then youngest) request first,
/// and the report breaks SLO attainment out per class. A trace that
/// never sets priorities runs entirely at [`Priority::Normal`] and
/// behaves exactly as before priorities existed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Background work: first to be shed.
    BestEffort,
    /// The default class.
    Normal,
    /// Latency-critical work: shed only when nothing lower remains.
    Interactive,
}

impl Priority {
    /// Every priority, ascending (shed order).
    pub const ALL: [Priority; 3] = [Priority::BestEffort, Priority::Normal, Priority::Interactive];

    /// Dense index for per-priority accounting tables.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            Priority::BestEffort => 0,
            Priority::Normal => 1,
            Priority::Interactive => 2,
        }
    }

    /// Parse the CLI/JSON spelling (`best-effort` | `normal` | `interactive`).
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "best-effort" => Some(Priority::BestEffort),
            "normal" => Some(Priority::Normal),
            "interactive" => Some(Priority::Interactive),
            _ => None,
        }
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Priority::BestEffort => "best-effort",
            Priority::Normal => "normal",
            Priority::Interactive => "interactive",
        })
    }
}

/// One inference request in a workload trace.
///
/// A request names the model shape it was issued against (the register
/// file a card must be programmed with) plus its actual sequence length,
/// which may be shorter than the shape's `seq_len` capacity — the
/// scheduler pads it up to a bucket boundary so compatible requests can
/// share a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeRequest {
    /// Caller-assigned id, echoed in the response.
    pub id: u64,
    /// Arrival time, nanoseconds from trace start.
    pub arrival_ns: u64,
    /// Embedding dimension of the requested model.
    pub d_model: usize,
    /// Attention heads of the requested model.
    pub heads: usize,
    /// Encoder layers of the requested model.
    pub layers: usize,
    /// Actual (unpadded) sequence length of this request.
    pub seq_len: usize,
    /// Service class; decides shed order under overload.
    pub priority: Priority,
    /// Absolute completion deadline (ns from trace start), or `None`
    /// for no deadline. A request still queued at its deadline is shed
    /// before dispatch rather than burned on a card; one that completes
    /// after it counts against goodput and SLO attainment.
    pub deadline_ns: Option<u64>,
    /// Which tenant issued the request. Tenant `0` is the default
    /// (single-tenant traces behave exactly as before tenancy existed);
    /// a [`TenantPolicy`](crate::TenantPolicy) maps ids to per-tenant
    /// priority/SLO classes, and the managed fleet keeps a per-tenant
    /// conservation ledger in the report.
    pub tenant: u32,
    /// Autoregressive decode steps to generate after the prefill. Zero
    /// (the default) is a plain one-shot encode — the request behaves
    /// exactly as before generation existed. Nonzero routes the request
    /// through the phase-aware decode path: its `seq_len` becomes the
    /// prompt length, the card prefills it, then emits `decode_steps`
    /// tokens with a resident KV cache.
    pub decode_steps: u32,
    /// Per-token deadline for decode requests (relative, nanoseconds):
    /// the first token is due `token_deadline_ns` after arrival, each
    /// later token that long after its predecessor. `None` means tokens
    /// are never late. Ignored for one-shot requests.
    pub token_deadline_ns: Option<u64>,
}

impl Default for ServeRequest {
    /// A zero-shaped placeholder, useful as a functional-update base in
    /// tests (`ServeRequest { id: 3, ..Default::default() }`). Not
    /// servable as-is (`seq_len` is zero).
    fn default() -> Self {
        Self {
            id: 0,
            arrival_ns: 0,
            d_model: 0,
            heads: 0,
            layers: 0,
            seq_len: 0,
            priority: Priority::Normal,
            deadline_ns: None,
            tenant: 0,
            decode_steps: 0,
            token_deadline_ns: None,
        }
    }
}

impl ServeRequest {
    /// The capacity class this request batches under: everything the
    /// register file freezes for a batch except the (padded) sequence
    /// length.
    #[must_use]
    pub fn class(&self) -> CapacityClass {
        CapacityClass { d_model: self.d_model, heads: self.heads, layers: self.layers }
    }

    /// The register file for this request at a padded sequence length.
    #[must_use]
    pub fn runtime_at(&self, padded_seq_len: usize) -> RuntimeConfig {
        RuntimeConfig {
            heads: self.heads,
            layers: self.layers,
            d_model: self.d_model,
            seq_len: padded_seq_len,
        }
    }

    /// Whether the request's deadline has already passed at `now_ns`
    /// (vacuously false without a deadline).
    #[must_use]
    pub fn expired_at(&self, now_ns: u64) -> bool {
        self.deadline_ns.is_some_and(|d| now_ns >= d)
    }

    /// Whether a completion at `finish_ns` meets the deadline
    /// (vacuously true without one).
    #[must_use]
    pub fn within_deadline(&self, finish_ns: u64) -> bool {
        self.deadline_ns.is_none_or(|d| finish_ns <= d)
    }

    /// Whether this is a generation request (prefill + decode phases)
    /// rather than a one-shot encode.
    #[must_use]
    pub fn is_decode(&self) -> bool {
        self.decode_steps > 0
    }
}

/// The batching-compatibility key: requests with equal classes can share
/// a card program (and therefore a batch) once padded to a common
/// sequence length.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CapacityClass {
    /// Embedding dimension.
    pub d_model: usize,
    /// Attention heads.
    pub heads: usize,
    /// Encoder layers.
    pub layers: usize,
}

/// The completion record for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeResponse {
    /// The request id.
    pub id: u64,
    /// When the request arrived (ns).
    pub arrival_ns: u64,
    /// When its batch started service on a card (ns).
    pub start_ns: u64,
    /// When its batch completed (ns).
    pub finish_ns: u64,
    /// Which card served it.
    pub card: usize,
    /// How many requests shared the batch.
    pub batch_size: usize,
    /// The sequence length the batch was padded to.
    pub padded_seq_len: usize,
}

impl ServeResponse {
    /// Time spent queued before service, in milliseconds.
    #[must_use]
    pub fn queue_ms(&self) -> f64 {
        (self.start_ns.saturating_sub(self.arrival_ns)) as f64 / 1e6
    }

    /// Total latency (queueing + service), in milliseconds.
    #[must_use]
    pub fn latency_ms(&self) -> f64 {
        (self.finish_ns.saturating_sub(self.arrival_ns)) as f64 / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shaped(id: u64, arrival_ns: u64, seq_len: usize) -> ServeRequest {
        ServeRequest {
            id,
            arrival_ns,
            d_model: 96,
            heads: 4,
            layers: 2,
            seq_len,
            ..Default::default()
        }
    }

    #[test]
    fn class_ignores_seq_len() {
        let a = shaped(0, 0, 7);
        let b = shaped(1, 9, 31);
        assert_eq!(a.class(), b.class());
        let c = ServeRequest { d_model: 128, ..a };
        assert_ne!(a.class(), c.class());
    }

    #[test]
    fn runtime_at_pads_seq_len() {
        let rt = shaped(0, 0, 7).runtime_at(16);
        assert_eq!(rt.seq_len, 16);
        assert_eq!(rt.d_model, 96);
    }

    #[test]
    fn priority_order_and_round_trip() {
        assert!(Priority::BestEffort < Priority::Normal);
        assert!(Priority::Normal < Priority::Interactive);
        for p in Priority::ALL {
            assert_eq!(Priority::parse(&p.to_string()), Some(p));
        }
        assert_eq!(Priority::parse("urgent"), None);
        let idx: Vec<usize> = Priority::ALL.iter().map(|p| p.index()).collect();
        assert_eq!(idx, vec![0, 1, 2]);
    }

    #[test]
    fn deadline_predicates() {
        let none = shaped(0, 0, 8);
        assert!(!none.expired_at(u64::MAX));
        assert!(none.within_deadline(u64::MAX));
        let tight = ServeRequest { deadline_ns: Some(1_000), ..shaped(1, 0, 8) };
        assert!(!tight.expired_at(999));
        assert!(tight.expired_at(1_000), "a deadline reached is a deadline missed");
        assert!(tight.within_deadline(1_000));
        assert!(!tight.within_deadline(1_001));
    }

    #[test]
    fn tenant_defaults_to_zero() {
        assert_eq!(ServeRequest::default().tenant, 0);
        let tagged = ServeRequest { tenant: 3, ..shaped(0, 0, 8) };
        assert_eq!(tagged.class(), shaped(1, 9, 8).class(), "tenancy never splits batches");
    }

    #[test]
    fn decode_steps_default_to_zero() {
        let r = ServeRequest::default();
        assert_eq!(r.decode_steps, 0);
        assert_eq!(r.token_deadline_ns, None);
        assert!(!r.is_decode(), "zero steps is a one-shot encode");
        let g = ServeRequest { decode_steps: 4, ..shaped(0, 0, 8) };
        assert!(g.is_decode());
        assert_eq!(g.class(), shaped(1, 9, 8).class(), "generation never splits batches");
    }

    #[test]
    fn latency_accounting() {
        let resp = ServeResponse {
            id: 0,
            arrival_ns: 1_000_000,
            start_ns: 3_000_000,
            finish_ns: 7_000_000,
            card: 0,
            batch_size: 4,
            padded_seq_len: 32,
        };
        assert!((resp.queue_ms() - 2.0).abs() < 1e-12);
        assert!((resp.latency_ms() - 6.0).abs() < 1e-12);
    }
}
