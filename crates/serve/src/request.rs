//! Request and response types of the serving API.

use protea_core::RuntimeConfig;

/// One inference request in a workload trace.
///
/// A request names the model shape it was issued against (the register
/// file a card must be programmed with) plus its actual sequence length,
/// which may be shorter than the shape's `seq_len` capacity — the
/// scheduler pads it up to a bucket boundary so compatible requests can
/// share a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeRequest {
    /// Caller-assigned id, echoed in the response.
    pub id: u64,
    /// Arrival time, nanoseconds from trace start.
    pub arrival_ns: u64,
    /// Embedding dimension of the requested model.
    pub d_model: usize,
    /// Attention heads of the requested model.
    pub heads: usize,
    /// Encoder layers of the requested model.
    pub layers: usize,
    /// Actual (unpadded) sequence length of this request.
    pub seq_len: usize,
}

impl ServeRequest {
    /// The capacity class this request batches under: everything the
    /// register file freezes for a batch except the (padded) sequence
    /// length.
    #[must_use]
    pub fn class(&self) -> CapacityClass {
        CapacityClass { d_model: self.d_model, heads: self.heads, layers: self.layers }
    }

    /// The register file for this request at a padded sequence length.
    #[must_use]
    pub fn runtime_at(&self, padded_seq_len: usize) -> RuntimeConfig {
        RuntimeConfig {
            heads: self.heads,
            layers: self.layers,
            d_model: self.d_model,
            seq_len: padded_seq_len,
        }
    }
}

/// The batching-compatibility key: requests with equal classes can share
/// a card program (and therefore a batch) once padded to a common
/// sequence length.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CapacityClass {
    /// Embedding dimension.
    pub d_model: usize,
    /// Attention heads.
    pub heads: usize,
    /// Encoder layers.
    pub layers: usize,
}

/// The completion record for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeResponse {
    /// The request id.
    pub id: u64,
    /// When the request arrived (ns).
    pub arrival_ns: u64,
    /// When its batch started service on a card (ns).
    pub start_ns: u64,
    /// When its batch completed (ns).
    pub finish_ns: u64,
    /// Which card served it.
    pub card: usize,
    /// How many requests shared the batch.
    pub batch_size: usize,
    /// The sequence length the batch was padded to.
    pub padded_seq_len: usize,
}

impl ServeResponse {
    /// Time spent queued before service, in milliseconds.
    #[must_use]
    pub fn queue_ms(&self) -> f64 {
        (self.start_ns.saturating_sub(self.arrival_ns)) as f64 / 1e6
    }

    /// Total latency (queueing + service), in milliseconds.
    #[must_use]
    pub fn latency_ms(&self) -> f64 {
        (self.finish_ns.saturating_sub(self.arrival_ns)) as f64 / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_ignores_seq_len() {
        let a = ServeRequest { id: 0, arrival_ns: 0, d_model: 96, heads: 4, layers: 2, seq_len: 7 };
        let b =
            ServeRequest { id: 1, arrival_ns: 9, d_model: 96, heads: 4, layers: 2, seq_len: 31 };
        assert_eq!(a.class(), b.class());
        let c = ServeRequest { d_model: 128, ..a };
        assert_ne!(a.class(), c.class());
    }

    #[test]
    fn runtime_at_pads_seq_len() {
        let r = ServeRequest { id: 0, arrival_ns: 0, d_model: 96, heads: 4, layers: 2, seq_len: 7 };
        let rt = r.runtime_at(16);
        assert_eq!(rt.seq_len, 16);
        assert_eq!(rt.d_model, 96);
    }

    #[test]
    fn latency_accounting() {
        let resp = ServeResponse {
            id: 0,
            arrival_ns: 1_000_000,
            start_ns: 3_000_000,
            finish_ns: 7_000_000,
            card: 0,
            batch_size: 4,
            padded_seq_len: 32,
        };
        assert!((resp.queue_ms() - 2.0).abs() < 1e-12);
        assert!((resp.latency_ms() - 6.0).abs() < 1e-12);
    }
}
