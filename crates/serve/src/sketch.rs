//! Online latency metrics: a fixed-bin log-histogram sketch.
//!
//! [`Percentiles::of`](crate::Percentiles::of) needs every sample in
//! memory — fine at 2,000 requests, impossible at 10M+. The
//! [`LatencySketch`] replaces it on the streaming path: a fixed array
//! of geometric buckets over `[MIN_MS, MIN_MS·γ^NBINS)` with one extra
//! bucket for zero/underflow. Recording is O(1), memory is O(1)
//! (independent of the sample count), and any nearest-rank percentile
//! query is answered by the geometric midpoint of the bucket holding
//! that rank.
//!
//! ## Error bound
//!
//! With ratio `γ = 1.02`, a value `v` in bucket `b` satisfies
//! `MIN·γ^b ≤ v < MIN·γ^(b+1)` and is reported as `MIN·γ^(b+0.5)`, so
//! the reported quantile is within a factor `√γ` of the exact
//! nearest-rank value: a **relative error of at most
//! [`LatencySketch::RELATIVE_ERROR_BOUND`] (≈ 1 %)** for values inside
//! the covered range (1 ns to ~11 simulated days of latency; zeros are
//! exact, the maximum is tracked exactly, and a query whose rank is the
//! last sample returns that exact maximum). The
//! `sketch_props` property tests pin this bound against adversarial
//! distributions.
//!
//! [`StreamMetrics`] bundles the two sketches a serving run needs
//! (end-to-end latency and queueing delay) with the completion count
//! and makespan tracking, so [`ServeReport::from_stream`]
//! (crate::ServeReport::from_stream) can assemble the full report
//! without ever materializing a response vector.

use crate::report::Percentiles;
use crate::request::ServeResponse;

/// Number of geometric buckets (covers 1 ns to ~11.6 days at γ=1.02).
const NBINS: usize = 1760;
/// Smallest representable nonzero latency, in milliseconds (= 1 ns).
const MIN_MS: f64 = 1e-6;
/// Geometric bucket ratio.
const GAMMA: f64 = 1.02;

/// A fixed-size log-histogram over non-negative latencies (ms).
#[derive(Debug, Clone, PartialEq)]
pub struct LatencySketch {
    /// Samples < [`MIN_MS`] (in particular exact zeros).
    zeros: u64,
    /// Geometric buckets; values beyond the top clamp into the last.
    bins: Vec<u64>,
    /// Total samples recorded.
    count: u64,
    /// Exact maximum observed.
    max: f64,
}

impl Default for LatencySketch {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencySketch {
    /// Worst-case relative error of a percentile query against the
    /// exact nearest-rank value, for in-range samples: `√γ − 1`,
    /// slightly padded for float round-off.
    pub const RELATIVE_ERROR_BOUND: f64 = 0.0101;

    /// An empty sketch.
    #[must_use]
    pub fn new() -> Self {
        Self { zeros: 0, bins: vec![0; NBINS], count: 0, max: 0.0 }
    }

    /// Record one sample (negative or NaN values count as zero —
    /// latencies are non-negative by construction, but the sketch must
    /// not misbehave on garbage).
    pub fn record(&mut self, value_ms: f64) {
        self.count += 1;
        if value_ms.is_finite() && value_ms > self.max {
            self.max = value_ms;
        }
        if value_ms.is_nan() || value_ms < MIN_MS {
            self.zeros += 1;
            return;
        }
        let bin = ((value_ms / MIN_MS).ln() / GAMMA.ln()) as usize;
        self.bins[bin.min(NBINS - 1)] += 1;
    }

    /// Samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact maximum observed (0.0 when empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Nearest-rank percentile estimate for quantile `q` in `(0, 1]`.
    /// Empty sketches answer 0.0; the top rank answers the exact max.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        if rank == self.count {
            return self.max;
        }
        if rank <= self.zeros {
            return 0.0;
        }
        let mut cum = self.zeros;
        for (b, &n) in self.bins.iter().enumerate() {
            cum += n;
            if cum >= rank {
                return MIN_MS * GAMMA.powf(b as f64 + 0.5);
            }
        }
        self.max
    }

    /// The four standard percentiles, mirroring
    /// [`Percentiles::of`](crate::Percentiles::of).
    #[must_use]
    pub fn percentiles(&self) -> Percentiles {
        Percentiles {
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
            max: self.max,
        }
    }

    /// Canonical snapshot form: `(zeros, non-empty (bin, count) pairs,
    /// total count, exact max)`.
    pub(crate) fn export(&self) -> (u64, Vec<(usize, u64)>, u64, f64) {
        let nonzero =
            self.bins.iter().enumerate().filter(|(_, &n)| n > 0).map(|(b, &n)| (b, n)).collect();
        (self.zeros, nonzero, self.count, self.max)
    }

    /// Rebuild from [`export`](Self::export)ed state.
    pub(crate) fn import(zeros: u64, nonzero: &[(usize, u64)], count: u64, max: f64) -> Self {
        let mut bins = vec![0; NBINS];
        for &(b, n) in nonzero {
            if b < NBINS {
                bins[b] = n;
            }
        }
        Self { zeros, bins, count, max }
    }
}

/// Everything the streaming metrics mode accumulates per completion:
/// the two latency sketches, the completion count, and the makespan.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StreamMetrics {
    completed: u64,
    max_finish_ns: u64,
    latency: LatencySketch,
    queue: LatencySketch,
}

impl StreamMetrics {
    /// An empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self {
            completed: 0,
            max_finish_ns: 0,
            latency: LatencySketch::new(),
            queue: LatencySketch::new(),
        }
    }

    /// Fold in one completion record.
    pub fn record(&mut self, resp: &ServeResponse) {
        self.completed += 1;
        self.max_finish_ns = self.max_finish_ns.max(resp.finish_ns);
        self.latency.record(resp.latency_ms());
        self.queue.record(resp.queue_ms());
    }

    /// Completions recorded.
    #[must_use]
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Latest completion timestamp (ns); 0 when empty.
    #[must_use]
    pub fn max_finish_ns(&self) -> u64 {
        self.max_finish_ns
    }

    /// End-to-end latency percentiles (sketched).
    #[must_use]
    pub fn latency_percentiles(&self) -> Percentiles {
        self.latency.percentiles()
    }

    /// Queueing-delay percentiles (sketched).
    #[must_use]
    pub fn queue_percentiles(&self) -> Percentiles {
        self.queue.percentiles()
    }

    pub(crate) fn sketches(&self) -> (&LatencySketch, &LatencySketch) {
        (&self.latency, &self.queue)
    }

    pub(crate) fn from_parts(
        completed: u64,
        max_finish_ns: u64,
        latency: LatencySketch,
        queue: LatencySketch,
    ) -> Self {
        Self { completed, max_finish_ns, latency, queue }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact(values: &[f64]) -> Percentiles {
        Percentiles::of(values)
    }

    fn within(sketched: f64, exact: f64) -> bool {
        if exact == 0.0 {
            return sketched == 0.0;
        }
        ((sketched - exact) / exact).abs() <= LatencySketch::RELATIVE_ERROR_BOUND
    }

    #[test]
    fn empty_sketch_is_all_zero() {
        let s = LatencySketch::new();
        let p = s.percentiles();
        assert_eq!((p.p50, p.p95, p.p99, p.max), (0.0, 0.0, 0.0, 0.0));
    }

    #[test]
    fn uniform_ramp_tracks_exact_percentiles() {
        let values: Vec<f64> = (1..=10_000).map(|i| i as f64 / 10.0).collect();
        let mut s = LatencySketch::new();
        for &v in &values {
            s.record(v);
        }
        let e = exact(&values);
        let p = s.percentiles();
        assert!(within(p.p50, e.p50), "{} vs {}", p.p50, e.p50);
        assert!(within(p.p95, e.p95), "{} vs {}", p.p95, e.p95);
        assert!(within(p.p99, e.p99), "{} vs {}", p.p99, e.p99);
        assert_eq!(p.max, e.max, "max is exact");
    }

    #[test]
    fn zeros_are_exact() {
        let mut s = LatencySketch::new();
        for _ in 0..100 {
            s.record(0.0);
        }
        s.record(5.0);
        assert_eq!(s.quantile(0.5), 0.0);
        assert_eq!(s.max(), 5.0);
    }

    #[test]
    fn export_import_round_trips() {
        let mut s = LatencySketch::new();
        for v in [0.0, 0.5, 1.7, 1.7, 9_000.0, 1e-9] {
            s.record(v);
        }
        let (z, bins, n, max) = s.export();
        let back = LatencySketch::import(z, &bins, n, max);
        assert_eq!(s, back);
    }

    #[test]
    fn stream_metrics_accumulate() {
        let mut m = StreamMetrics::new();
        m.record(&ServeResponse {
            id: 0,
            arrival_ns: 1_000_000,
            start_ns: 2_000_000,
            finish_ns: 4_000_000,
            card: 0,
            batch_size: 1,
            padded_seq_len: 16,
        });
        assert_eq!(m.completed(), 1);
        assert_eq!(m.max_finish_ns(), 4_000_000);
        assert_eq!(m.latency_percentiles().max, 3.0);
        assert_eq!(m.queue_percentiles().max, 1.0);
    }
}
