//! Overload control: bounded admission, retry budgets, and hedging.
//!
//! A fleet that admits every arrival into unbounded queues models a
//! system that silently melts down under a traffic spike: queues (and
//! queueing delay) grow without bound, every request eventually misses
//! its deadline, and *goodput* — completions that still matter —
//! collapses to zero even though raw throughput looks healthy. The
//! controls here keep the simulated fleet on the goodput plateau
//! instead:
//!
//! * **bounded admission** — a per-bucket queue cap (on
//!   [`BatchPolicy`](crate::BatchPolicy)) plus an optional [`AimdLimiter`]
//!   capping requests in the system; excess arrivals are *shed* with a
//!   typed reason instead of queued forever;
//! * **retry budgets** — a [`RetryBudget`] token bucket bounds how much
//!   extra load requeue storms (after card faults/crashes) may inject;
//! * **hedged dispatch** — a [`HedgeConfig`] re-issues a straggling
//!   batch on a second healthy card after a p99-derived delay, first
//!   completion wins, the loser is cancelled.
//!
//! Every knob defaults to *off*: a [`FleetConfig`](crate::FleetConfig)
//! without an [`OverloadConfig`] (or with `OverloadConfig::default()`)
//! reproduces the unbounded, deadline-free schedule bit-exactly. All
//! state here is pure bookkeeping — integer token arithmetic, no clocks
//! or RNG of its own — so overloaded runs replay deterministically.

/// Everything the overload-control layer needs beyond the base
/// [`FleetConfig`](crate::FleetConfig) fields. All fields default off.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OverloadConfig {
    /// Adaptive concurrency limit on requests in the system (queued +
    /// in flight). `None` disables the limiter.
    pub aimd: Option<AimdConfig>,
    /// Fleet-wide retry budget for post-fault requeues. `None` leaves
    /// retries bounded only by the per-request attempt cap.
    pub retry_budget: Option<RetryBudgetConfig>,
    /// Hedged dispatch of straggling batches. `None` disables hedging.
    pub hedge: Option<HedgeConfig>,
}

impl OverloadConfig {
    /// Whether any control is actually armed.
    #[must_use]
    pub fn any(&self) -> bool {
        self.aimd.is_some() || self.retry_budget.is_some() || self.hedge.is_some()
    }

    /// Validate every armed sub-config.
    ///
    /// # Errors
    /// A human-readable message naming the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if let Some(a) = &self.aimd {
            a.validate()?;
        }
        if let Some(r) = &self.retry_budget {
            r.validate()?;
        }
        if let Some(h) = &self.hedge {
            h.validate()?;
        }
        Ok(())
    }
}

/// Tuning for the additive-increase / multiplicative-decrease
/// concurrency limiter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AimdConfig {
    /// Starting limit on requests in the system.
    pub initial: usize,
    /// Floor the limit never decreases below (≥ 1).
    pub min: usize,
    /// Ceiling the limit never increases above.
    pub max: usize,
    /// Added to the limit on every successfully completed batch.
    pub increase: f64,
    /// The limit is multiplied by this on every overload signal
    /// (deadline expiry in queue, batch failure). In `(0, 1)`.
    pub decrease: f64,
}

impl Default for AimdConfig {
    fn default() -> Self {
        Self { initial: 64, min: 4, max: 4_096, increase: 1.0, decrease: 0.7 }
    }
}

impl AimdConfig {
    fn validate(&self) -> Result<(), String> {
        if self.min == 0 {
            return Err("aimd.min must be at least 1".into());
        }
        if self.min > self.max || self.initial < self.min || self.initial > self.max {
            return Err(format!(
                "aimd limits must satisfy min <= initial <= max, got {} <= {} <= {}",
                self.min, self.initial, self.max
            ));
        }
        if !self.increase.is_finite() || self.increase < 0.0 {
            return Err("aimd.increase must be finite and >= 0".into());
        }
        if !(self.decrease > 0.0 && self.decrease < 1.0) {
            return Err("aimd.decrease must be in (0, 1)".into());
        }
        Ok(())
    }
}

/// The AIMD limiter's live state: a fractional limit that creeps up on
/// success and backs off multiplicatively on overload, exactly as TCP
/// congestion control treats its window.
#[derive(Debug, Clone, PartialEq)]
pub struct AimdLimiter {
    config: AimdConfig,
    limit: f64,
}

impl AimdLimiter {
    /// A limiter starting at `config.initial`.
    #[must_use]
    pub fn new(config: AimdConfig) -> Self {
        Self { config, limit: config.initial as f64 }
    }

    /// The current integer admission limit.
    #[must_use]
    pub fn limit(&self) -> usize {
        self.limit as usize
    }

    /// Whether one more request may enter with `in_system` already
    /// queued or in flight.
    #[must_use]
    pub fn admits(&self, in_system: usize) -> bool {
        in_system < self.limit()
    }

    /// A batch completed cleanly: additive increase.
    pub fn on_success(&mut self) {
        self.limit = (self.limit + self.config.increase).min(self.config.max as f64);
    }

    /// An overload signal (expiry, failure): multiplicative decrease.
    pub fn on_overload(&mut self) {
        self.limit = (self.limit * self.config.decrease).max(self.config.min as f64);
    }

    /// The fractional limit, bit-exact, for snapshots.
    pub(crate) fn raw_limit(&self) -> f64 {
        self.limit
    }

    /// Restore the fractional limit from a snapshot.
    pub(crate) fn set_raw_limit(&mut self, limit: f64) {
        self.limit = limit;
    }
}

/// Tuning for the fleet-wide retry token bucket (the classic
/// retry-budget design: retries may only ever be a bounded fraction of
/// admitted work, so a requeue storm cannot amplify an overload).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryBudgetConfig {
    /// Tokens in the bucket at the start of the run.
    pub initial: u32,
    /// Tokens deposited per *admitted* request (fractional: 0.1 lets
    /// roughly one request in ten be retried in steady state).
    pub per_admission: f64,
    /// Bucket capacity.
    pub cap: u32,
}

impl Default for RetryBudgetConfig {
    fn default() -> Self {
        Self { initial: 10, per_admission: 0.2, cap: 100 }
    }
}

impl RetryBudgetConfig {
    fn validate(&self) -> Result<(), String> {
        if !self.per_admission.is_finite() || self.per_admission < 0.0 {
            return Err("retry_budget.per_admission must be finite and >= 0".into());
        }
        if self.cap == 0 {
            return Err("retry_budget.cap must be at least 1".into());
        }
        if self.initial > self.cap {
            return Err("retry_budget.initial must not exceed cap".into());
        }
        Ok(())
    }
}

/// The retry bucket's live state. Token arithmetic is in integer
/// milli-tokens so replays are bit-exact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryBudget {
    milli: u64,
    cap_milli: u64,
    deposit_milli: u64,
}

impl RetryBudget {
    /// A bucket holding `config.initial` tokens.
    #[must_use]
    pub fn new(config: RetryBudgetConfig) -> Self {
        Self {
            milli: u64::from(config.initial).saturating_mul(1_000),
            cap_milli: u64::from(config.cap).saturating_mul(1_000),
            deposit_milli: (config.per_admission * 1_000.0) as u64,
        }
    }

    /// Whole tokens currently available.
    #[must_use]
    pub fn tokens(&self) -> u64 {
        self.milli / 1_000
    }

    /// One request was admitted: deposit the fractional earn.
    pub fn on_admission(&mut self) {
        self.milli = self.milli.saturating_add(self.deposit_milli).min(self.cap_milli);
    }

    /// Try to spend one token for one requeued request. Returns whether
    /// the retry is within budget.
    pub fn try_withdraw(&mut self) -> bool {
        if self.milli >= 1_000 {
            self.milli -= 1_000;
            true
        } else {
            false
        }
    }

    /// Current balance in milli-tokens, for snapshots (cap and deposit
    /// rate are config-derived and not serialized).
    pub(crate) fn milli(&self) -> u64 {
        self.milli
    }

    /// Restore the balance from a snapshot.
    pub(crate) fn set_milli(&mut self, milli: u64) {
        self.milli = milli;
    }
}

/// Tuning for hedged dispatch: when a dispatched batch has been running
/// longer than `factor ×` the observed p99 batch service time, re-issue
/// it on a second healthy idle card; the first completion wins and the
/// loser is cancelled.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HedgeConfig {
    /// Multiple of the observed p99 batch service time after which a
    /// still-running batch is hedged.
    pub factor: f64,
    /// Hedge delay used before `min_samples` completions exist, and the
    /// floor below which the derived delay never drops (ns).
    pub min_delay_ns: u64,
    /// Completed batches required before the p99 estimate is trusted.
    pub min_samples: usize,
}

impl Default for HedgeConfig {
    fn default() -> Self {
        Self { factor: 1.0, min_delay_ns: 2_000_000, min_samples: 8 }
    }
}

impl HedgeConfig {
    fn validate(&self) -> Result<(), String> {
        if !self.factor.is_finite() || self.factor <= 0.0 {
            return Err("hedge.factor must be finite and > 0".into());
        }
        if self.min_delay_ns == 0 {
            return Err("hedge.min_delay_ns must be nonzero".into());
        }
        Ok(())
    }
}

/// Streaming nearest-rank p99 tracker over observed batch service
/// times, feeding the hedge delay. Keeps a sorted history; insertion is
/// O(n) which is fine at simulation scale (one entry per batch).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServiceTimeTracker {
    sorted_ns: Vec<u64>,
}

impl ServiceTimeTracker {
    /// Record one completed batch's service time.
    pub fn record(&mut self, service_ns: u64) {
        let at = self.sorted_ns.partition_point(|&x| x <= service_ns);
        self.sorted_ns.insert(at, service_ns);
    }

    /// Completions observed so far.
    #[must_use]
    pub fn samples(&self) -> usize {
        self.sorted_ns.len()
    }

    /// Nearest-rank p99 of the recorded service times, if any.
    #[must_use]
    pub fn p99_ns(&self) -> Option<u64> {
        if self.sorted_ns.is_empty() {
            return None;
        }
        let rank =
            ((0.99 * self.sorted_ns.len() as f64).ceil() as usize).clamp(1, self.sorted_ns.len());
        Some(self.sorted_ns[rank - 1])
    }

    /// The sorted history, for snapshots.
    pub(crate) fn export(&self) -> &[u64] {
        &self.sorted_ns
    }

    /// Restore the history from a snapshot (already sorted).
    pub(crate) fn import(&mut self, sorted_ns: Vec<u64>) {
        self.sorted_ns = sorted_ns;
    }

    /// The hedge delay `config` derives from the history: `factor × p99`
    /// once `min_samples` completions exist, else (and never below)
    /// `min_delay_ns`.
    #[must_use]
    pub fn hedge_delay_ns(&self, config: &HedgeConfig) -> u64 {
        match self.p99_ns() {
            Some(p99) if self.samples() >= config.min_samples => {
                ((p99 as f64 * config.factor) as u64).max(config.min_delay_ns)
            }
            _ => config.min_delay_ns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_fully_off_and_valid() {
        let c = OverloadConfig::default();
        assert!(!c.any());
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_rejects_degenerate_knobs() {
        let bad_aimd = OverloadConfig {
            aimd: Some(AimdConfig { min: 0, ..AimdConfig::default() }),
            ..OverloadConfig::default()
        };
        assert!(bad_aimd.validate().is_err());
        let inverted = OverloadConfig {
            aimd: Some(AimdConfig { min: 10, max: 5, initial: 7, ..AimdConfig::default() }),
            ..OverloadConfig::default()
        };
        assert!(inverted.validate().is_err());
        let bad_decrease = OverloadConfig {
            aimd: Some(AimdConfig { decrease: 1.0, ..AimdConfig::default() }),
            ..OverloadConfig::default()
        };
        assert!(bad_decrease.validate().is_err());
        let bad_budget = OverloadConfig {
            retry_budget: Some(RetryBudgetConfig {
                per_admission: f64::NAN,
                ..RetryBudgetConfig::default()
            }),
            ..OverloadConfig::default()
        };
        assert!(bad_budget.validate().is_err());
        let bad_hedge = OverloadConfig {
            hedge: Some(HedgeConfig { factor: 0.0, ..HedgeConfig::default() }),
            ..OverloadConfig::default()
        };
        assert!(bad_hedge.validate().is_err());
    }

    #[test]
    fn aimd_rises_additively_and_falls_multiplicatively() {
        let mut l = AimdLimiter::new(AimdConfig {
            initial: 10,
            min: 2,
            max: 12,
            increase: 1.0,
            decrease: 0.5,
        });
        assert!(l.admits(9));
        assert!(!l.admits(10));
        l.on_success();
        l.on_success();
        l.on_success();
        assert_eq!(l.limit(), 12, "additive increase saturates at max");
        l.on_overload();
        assert_eq!(l.limit(), 6);
        for _ in 0..10 {
            l.on_overload();
        }
        assert_eq!(l.limit(), 2, "multiplicative decrease floors at min");
    }

    #[test]
    fn retry_budget_earns_fractionally_and_spends_whole_tokens() {
        let mut b = RetryBudget::new(RetryBudgetConfig { initial: 1, per_admission: 0.5, cap: 2 });
        assert_eq!(b.tokens(), 1);
        assert!(b.try_withdraw());
        assert!(!b.try_withdraw(), "bucket empty");
        b.on_admission();
        assert!(!b.try_withdraw(), "half a token is not a token");
        b.on_admission();
        assert!(b.try_withdraw());
        for _ in 0..100 {
            b.on_admission();
        }
        assert_eq!(b.tokens(), 2, "deposits cap at the bucket size");
    }

    #[test]
    fn hedge_delay_tracks_p99_with_floor_and_warmup() {
        let cfg = HedgeConfig { factor: 2.0, min_delay_ns: 1_000, min_samples: 3 };
        let mut t = ServiceTimeTracker::default();
        assert_eq!(t.hedge_delay_ns(&cfg), 1_000, "no samples: fallback");
        t.record(5_000);
        t.record(2_000);
        assert_eq!(t.hedge_delay_ns(&cfg), 1_000, "below min_samples: fallback");
        t.record(3_000);
        assert_eq!(t.p99_ns(), Some(5_000));
        assert_eq!(t.hedge_delay_ns(&cfg), 10_000, "factor x p99");
        let tiny = HedgeConfig { factor: 0.01, ..cfg };
        assert_eq!(t.hedge_delay_ns(&tiny), 1_000, "floor applies to derived delay");
    }

    #[test]
    fn tracker_keeps_history_sorted() {
        let mut t = ServiceTimeTracker::default();
        for v in [9u64, 1, 5, 5, 2, 8] {
            t.record(v);
        }
        assert_eq!(t.samples(), 6);
        assert_eq!(t.sorted_ns, vec![1, 2, 5, 5, 8, 9]);
        assert_eq!(t.p99_ns(), Some(9));
    }
}
