//! The card fleet and the discrete-event queueing simulation.
//!
//! A [`Fleet`] models N identical ProTEA cards, each one a
//! `protea_core::Accelerator` synthesized from the same bitstream. The
//! serving loop is a discrete-event simulation on `protea_hwsim`'s
//! kernel with **nanoseconds** as the tick unit:
//!
//! * an *arrival* event admits a request to the [`BatchScheduler`];
//! * a *dispatch* programs a free card (register writes, plus a weight
//!   reload when the card was last serving a different capacity class),
//!   runs the batch through the fallible request path
//!   (`program → try_load_weights → try_run_batch`), and converts the
//!   resulting report latency to a service interval;
//! * a *completion* frees the card and greedily re-dispatches.
//!
//! With a [`FaultConfig`] attached, the same simulation runs under
//! deterministic fault injection: per-card seeded [`FaultStream`]s feed
//! the driver's fault-aware timing path, unrecoverable faults and card
//! crashes requeue the in-flight batch onto surviving cards (bounded by
//! a per-request attempt budget), and a per-card circuit breaker rests
//! failing cards. Every submitted request ends in exactly one of
//! `completed` or `failed` — none is ever silently dropped. Without a
//! `FaultConfig` the code path is byte-for-byte the fault-free one, so
//! fault-free reports are bit-identical to earlier releases.
//!
//! The overload-control layer rides the same managed simulation: a
//! bounded [`BatchPolicy::max_queue`] plus an optional
//! [`OverloadConfig`] (AIMD concurrency limit, retry budget, hedged
//! dispatch) and per-request deadlines/priorities turn unbounded
//! queueing into *load shedding* with typed accounting — every
//! submitted request ends in exactly one of `completed`, `shed`,
//! `expired`, or `failed`. With none of those knobs set (and no
//! deadlines in the trace) the fault-free fast path is untouched.
//!
//! Everything user-supplied (trace shapes, arrival times) flows through
//! `Result` — a hostile trace can be rejected, never panic.

use crate::error::ServeError;
use crate::faults::{FailReason, FailedRequest, FaultConfig};
use crate::health::CardMonitor;
use crate::memo::TimingMemo;
use crate::overload::{AimdLimiter, HedgeConfig, OverloadConfig, RetryBudget, ServiceTimeTracker};
use crate::report::{FaultOutcome, PrioritySlo, ServeReport};
use crate::request::{CapacityClass, Priority, ServeRequest, ServeResponse};
use crate::scheduler::{Batch, BatchPolicy, BatchScheduler};
use crate::trace::Workload;
use protea_core::{Accelerator, CoreError, FaultKind, FaultStats, FaultStream, SynthesisConfig};
use protea_hwsim::{Cycles, Simulator};
use protea_model::{EncoderConfig, EncoderWeights, OpCount, QuantSchedule, QuantizedEncoder};
use protea_platform::FpgaDevice;
use protea_tensor::Matrix;
use std::collections::BTreeMap;

/// Fleet construction parameters.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of cards (each gets the same bitstream).
    pub cards: usize,
    /// The bitstream all cards are synthesized from.
    pub synthesis: SynthesisConfig,
    /// The device every card is built on.
    pub device: FpgaDevice,
    /// Batching policy.
    pub policy: BatchPolicy,
    /// When `true`, every batch also executes the bit-exact functional
    /// datapath (slow; service time is identical either way because the
    /// timing model is deterministic).
    pub functional: bool,
    /// Host→card weight-reload bandwidth in GB/s (1 GB/s = 1 byte/ns),
    /// pricing the reprogram penalty a batch pays when its card was
    /// serving a different capacity class.
    pub reload_gbps: f64,
    /// Fault injection and graceful-degradation policy. `None` (the
    /// default) is the exact fault-free simulation of earlier releases.
    pub faults: Option<FaultConfig>,
    /// Overload controls (AIMD admission, retry budget, hedging).
    /// `None` — or a config with every knob off — changes nothing.
    pub overload: Option<OverloadConfig>,
    /// Memoize fault-free batch timing per `(runtime, batch)` key
    /// (see [`TimingMemo`](crate::memo::TimingMemo)). Byte-identical
    /// reports either way; `true` (the default) makes large serving
    /// sweeps dramatically cheaper to simulate.
    pub timing_memo: bool,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            cards: 2,
            synthesis: SynthesisConfig::paper_default(),
            device: FpgaDevice::alveo_u55c(),
            policy: BatchPolicy::default(),
            functional: false,
            reload_gbps: 12.0,
            faults: None,
            overload: None,
            timing_memo: true,
        }
    }
}

/// A fleet of simulated ProTEA cards behind one batch scheduler.
#[derive(Debug, Clone)]
pub struct Fleet {
    config: FleetConfig,
}

impl Fleet {
    /// Validate the configuration and build the fleet.
    ///
    /// # Errors
    /// [`ServeError::NoCards`] for an empty fleet;
    /// [`ServeError::Core`] (`Infeasible`) when the bitstream does not
    /// fit the device.
    pub fn try_new(config: FleetConfig) -> Result<Self, ServeError> {
        if config.cards == 0 {
            return Err(ServeError::NoCards);
        }
        if config.reload_gbps.is_nan() || config.reload_gbps <= 0.0 {
            return Err(ServeError::Core(CoreError::InvalidConfig(
                "reload_gbps must be positive".into(),
            )));
        }
        if let Some(f) = &config.faults {
            f.rates.validate().map_err(|m| ServeError::Core(CoreError::InvalidConfig(m)))?;
            if f.max_request_attempts == 0 {
                return Err(ServeError::Core(CoreError::InvalidConfig(
                    "max_request_attempts must be at least 1".into(),
                )));
            }
        }
        if let Some(o) = &config.overload {
            o.validate().map_err(|m| ServeError::Core(CoreError::InvalidConfig(m)))?;
        }
        if config.policy.max_queue == Some(0) {
            return Err(ServeError::Core(CoreError::InvalidConfig(
                "policy.max_queue must be at least 1 when set".into(),
            )));
        }
        // Fail now, not at dispatch time, if the design cannot exist.
        Accelerator::try_new(config.synthesis, &config.device)?;
        Ok(Self { config })
    }

    /// The configuration in force.
    #[must_use]
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Serve `workload` with batching across all cards. Returns the
    /// aggregate report.
    ///
    /// # Errors
    /// [`ServeError::EmptyTrace`] for an empty workload;
    /// [`ServeError::Unservable`] when a request exceeds the synthesized
    /// capacity; [`ServeError::Core`] if the hardware layer rejects a
    /// dispatch (unreachable for admitted requests, but surfaced rather
    /// than unwrapped).
    pub fn serve(&self, workload: &Workload) -> Result<ServeReport, ServeError> {
        Ok(self.run_sim(workload)?.into_report())
    }

    /// Like [`serve`](Self::serve), but also returns the individual
    /// completion records, so callers (property tests, traces) can audit
    /// per-request outcomes — e.g. that hedging never records a request
    /// twice.
    ///
    /// # Errors
    /// Same conditions as [`serve`](Self::serve).
    pub fn serve_with_responses(
        &self,
        workload: &Workload,
    ) -> Result<(ServeReport, Vec<ServeResponse>), ServeError> {
        let model = self.run_sim(workload)?;
        let responses = model.responses.clone();
        Ok((model.into_report(), responses))
    }

    fn run_sim(&self, workload: &Workload) -> Result<SimModel, ServeError> {
        if workload.requests.is_empty() {
            return Err(ServeError::EmptyTrace);
        }
        // The managed path carries fault *and* overload machinery; it is
        // entered only when some knob needs it, so a plain fleet keeps
        // the historical fault-free fast path byte-for-byte.
        let managed = self.config.faults.is_some()
            || self.config.overload.as_ref().is_some_and(OverloadConfig::any)
            || self.config.policy.max_queue.is_some()
            || workload.requests.iter().any(|r| r.deadline_ns.is_some());
        let mut model = SimModel::build(&self.config, managed)?;
        let mut sim = Simulator::<SimModel>::new();
        for req in workload.requests.iter().copied() {
            sim.schedule_at(Cycles(req.arrival_ns), move |sim, m: &mut SimModel| {
                if m.error.is_some() {
                    return;
                }
                if m.faulty.is_some() {
                    m.admit(req, sim.now().get());
                } else if let Err(e) = m.scheduler.push(req) {
                    m.error = Some(e);
                    return;
                }
                dispatch_all(sim, m);
            });
        }
        // Card-crash events: each card's crash timestamp is drawn once,
        // up front, so the draw order (and thus the whole run) is
        // deterministic in the seed.
        if let Some(f) = model.faulty.as_mut() {
            f.submitted = workload.requests.len();
            f.track_deadlines = workload.requests.iter().any(|r| r.deadline_ns.is_some());
            let crashes: Vec<(usize, u64)> = f
                .streams
                .iter_mut()
                .enumerate()
                .filter_map(|(card, s)| s.crash_at_ns().map(|at| (card, at)))
                .collect();
            for (card, at) in crashes {
                sim.schedule_at(Cycles(at), move |sim, m: &mut SimModel| {
                    if m.error.is_some() {
                        return;
                    }
                    m.crash_card(card, sim.now().get());
                    dispatch_all(sim, m);
                });
            }
        }
        sim.run(&mut model);
        if let Some(e) = model.error {
            return Err(e);
        }
        Ok(model)
    }

    /// The baseline the batched fleet is judged against: one card, no
    /// batching — every request runs alone (still padded to its bucket),
    /// in arrival order.
    ///
    /// # Errors
    /// Same conditions as [`serve`](Self::serve).
    pub fn serve_serial_baseline(&self, workload: &Workload) -> Result<ServeReport, ServeError> {
        if workload.requests.is_empty() {
            return Err(ServeError::EmptyTrace);
        }
        let single = FleetConfig { cards: 1, ..self.config.clone() };
        let mut m = SimModel::build(&single, false)?;
        let mut free_at = 0u64;
        for req in &workload.requests {
            // admission check through the same scheduler validation
            let mut probe = BatchScheduler::new(single.policy.clone(), single.synthesis);
            probe.push(*req)?;
            let batch = probe.pop_any().ok_or(ServeError::EmptyTrace)?;
            let start = free_at.max(req.arrival_ns);
            let finish = m.dispatch(0, &batch, start)?;
            free_at = finish;
        }
        Ok(m.into_report())
    }
}

/// All mutable simulation state (the DES model type).
struct SimModel {
    scheduler: BatchScheduler,
    cards: Vec<Card>,
    responses: Vec<ServeResponse>,
    weights: BTreeMap<CapacityClass, QuantizedEncoder>,
    functional: bool,
    reload_gbps: f64,
    ops_total: u64,
    batches: u64,
    reprograms: u64,
    next_flush: Option<u64>,
    error: Option<ServeError>,
    /// Fault-injection state; `None` keeps the exact fault-free path.
    faulty: Option<FaultState>,
    /// Timing cache for the fault-free dispatch path (`None` = off).
    memo: Option<TimingMemo>,
}

struct Card {
    accel: Accelerator,
    loaded_class: Option<CapacityClass>,
    busy: bool,
    busy_ns: u64,
}

/// Everything the fault-injected simulation tracks on top of the
/// fault-free model.
struct FaultState {
    watchdog: protea_core::Watchdog,
    retry: protea_core::RetryPolicy,
    max_request_attempts: u32,
    /// One seeded fault source per card.
    streams: Vec<FaultStream>,
    /// Per-card health + circuit breaker.
    monitors: Vec<CardMonitor>,
    /// Per-card dispatch epoch. The DES kernel cannot cancel scheduled
    /// events, so a crash bumps the card's epoch and any in-flight
    /// completion/failure event that captured the old epoch no-ops.
    epochs: Vec<u64>,
    /// The batch currently running on each card, held so a crash or
    /// failure can requeue it.
    inflight: Vec<Option<Inflight>>,
    /// Failed dispatch attempts per request id (bounds requeues).
    attempts: BTreeMap<u64, u32>,
    failed: Vec<FailedRequest>,
    retried: u64,
    crashes: u64,
    stats: FaultStats,
    submitted: usize,
    /// Dedup for scheduled circuit-breaker cooldown wake-ups.
    breaker_wake: Option<u64>,
    // --- overload control (all optional; defaults change nothing) ---
    /// AIMD concurrency limiter over requests in the system.
    limiter: Option<AimdLimiter>,
    /// Fleet-wide token bucket bounding post-fault requeues.
    retry_budget: Option<RetryBudget>,
    /// Hedged-dispatch policy.
    hedge: Option<HedgeConfig>,
    /// Observed batch service times, feeding the p99 hedge delay.
    svc: ServiceTimeTracker,
    /// Requests shed at admission (queue cap / concurrency limit).
    shed: Vec<FailedRequest>,
    /// Requests dropped in queue at their deadline.
    expired: Vec<FailedRequest>,
    /// Per-priority submitted/completed/deadline-met counters, indexed
    /// by [`Priority::index`].
    prio_submitted: [usize; 3],
    prio_completed: [usize; 3],
    prio_good: [usize; 3],
    /// Completions that met their deadline.
    good_completions: usize,
    /// Whether any request in the workload carries a deadline (gates
    /// expiry sweeps and goodput-vs-throughput reporting).
    track_deadlines: bool,
    /// Monotone dispatch id; a hedge leg shares its primary's seq.
    batch_seq: u64,
    hedges: u64,
    hedge_wins: u64,
    hedge_cancels: u64,
    /// Dedup for scheduled request-deadline wake-ups.
    deadline_wake: Option<u64>,
}

struct Inflight {
    batch: Batch,
    /// Dispatch id, shared by the two legs of a hedged pair.
    seq: u64,
    /// When the scheduled completion/failure event will fire — the
    /// busy time refunded if this leg is cancelled by a hedge win.
    resolve_ns: u64,
    /// Whether this leg is the hedge (second) dispatch of its seq.
    is_hedge: bool,
    /// The card running the other leg of this seq, if hedged.
    partner: Option<usize>,
}

/// How a fault-injected dispatch resolved at dispatch time.
enum FaultyDispatch {
    /// The batch will complete cleanly at `finish_ns`.
    Done { finish_ns: u64 },
    /// An unrecoverable fault will be detected at `at_ns`.
    Failed { at_ns: u64, kind: FaultKind },
}

impl SimModel {
    fn build(config: &FleetConfig, managed: bool) -> Result<Self, ServeError> {
        let mut cards = Vec::with_capacity(config.cards);
        for _ in 0..config.cards {
            cards.push(Card {
                accel: Accelerator::try_new(config.synthesis, &config.device)?,
                loaded_class: None,
                busy: false,
                busy_ns: 0,
            });
        }
        // A managed run without an explicit `FaultConfig` uses the
        // zero-rate default, which is proven to reproduce the fault-free
        // schedule bit-exactly — overload control never perturbs timing.
        let fault_default = FaultConfig::default();
        let f = config.faults.as_ref().unwrap_or(&fault_default);
        let ov = config.overload.unwrap_or_default();
        let faulty = managed.then(|| FaultState {
            watchdog: f.watchdog,
            retry: f.retry,
            max_request_attempts: f.max_request_attempts,
            streams: (0..config.cards)
                .map(|card| {
                    FaultStream::seeded(f.seed, card, f.rates).with_events(
                        f.events.iter().filter(|e| e.card == card).map(|e| (e.at_ns, e.kind)),
                    )
                })
                .collect(),
            monitors: vec![CardMonitor::new(f.breaker); config.cards],
            epochs: vec![0; config.cards],
            inflight: (0..config.cards).map(|_| None).collect(),
            attempts: BTreeMap::new(),
            failed: Vec::new(),
            retried: 0,
            crashes: 0,
            stats: FaultStats::default(),
            submitted: 0,
            breaker_wake: None,
            limiter: ov.aimd.map(AimdLimiter::new),
            retry_budget: ov.retry_budget.map(RetryBudget::new),
            hedge: ov.hedge,
            svc: ServiceTimeTracker::default(),
            shed: Vec::new(),
            expired: Vec::new(),
            prio_submitted: [0; 3],
            prio_completed: [0; 3],
            prio_good: [0; 3],
            good_completions: 0,
            track_deadlines: false,
            batch_seq: 0,
            hedges: 0,
            hedge_wins: 0,
            hedge_cancels: 0,
            deadline_wake: None,
        });
        Ok(Self {
            scheduler: BatchScheduler::new(config.policy.clone(), config.synthesis),
            cards,
            responses: Vec::new(),
            weights: BTreeMap::new(),
            functional: config.functional,
            reload_gbps: config.reload_gbps,
            ops_total: 0,
            batches: 0,
            reprograms: 0,
            next_flush: None,
            error: None,
            faulty,
            memo: config.timing_memo.then(TimingMemo::new),
        })
    }

    /// Whether every card in the fleet is dead (vacuously false without
    /// fault injection).
    fn all_cards_dead(&self) -> bool {
        self.faulty.as_ref().is_some_and(|f| {
            f.monitors.iter().all(|m| m.health() == crate::health::CardHealth::Dead)
        })
    }

    /// First card that is idle and (under fault injection) alive with a
    /// closed or cooled-down circuit.
    fn free_card(&self, now_ns: u64) -> Option<usize> {
        self.cards.iter().enumerate().position(|(i, c)| {
            !c.busy && self.faulty.as_ref().is_none_or(|f| f.monitors[i].available(now_ns))
        })
    }

    /// Deterministic per-class weight image (cached; the simulation
    /// models weight *movement*, so contents only matter for the
    /// functional mode's bit-exactness).
    fn weights_for(&mut self, class: CapacityClass) -> &QuantizedEncoder {
        self.weights.entry(class).or_insert_with(|| {
            let cfg = EncoderConfig::new(class.d_model, class.heads, class.layers, 8);
            let seed = 0x5eed
                ^ (class.d_model as u64) << 32
                ^ (class.heads as u64) << 16
                ^ class.layers as u64;
            QuantizedEncoder::from_float(&EncoderWeights::random(cfg, seed), QuantSchedule::paper())
        })
    }

    /// DMA time to re-image a card with `class`'s weights.
    fn reload_ns(&self, class: CapacityClass) -> u64 {
        let d = class.d_model as u64;
        let f = 4 * d; // ffn_mult = 4 throughout the serving model
        let per_layer = 4 * d * d + 2 * d * f + (3 * d + d + f + d) * 4;
        let bytes = per_layer * class.layers as u64;
        (bytes as f64 / self.reload_gbps) as u64
    }

    /// Program `card` for `batch`, pay any reload, run, and record the
    /// member responses. Returns the completion time.
    fn dispatch(&mut self, card: usize, batch: &Batch, now_ns: u64) -> Result<u64, ServeError> {
        let class = batch.requests[0].class();
        let reload_ns = if self.cards[card].loaded_class == Some(class) {
            0
        } else {
            self.reprograms += 1;
            self.reload_ns(class)
        };
        let weights = if self.cards[card].loaded_class == Some(class) {
            None
        } else {
            Some(self.weights_for(class).clone())
        };
        {
            let c = &mut self.cards[card];
            c.accel.program(batch.runtime).map_err(CoreError::from)?;
            if let Some(w) = weights {
                c.accel.try_load_weights(w)?;
                c.loaded_class = Some(class);
            }
        }
        let report = if self.functional {
            let inputs: Vec<Matrix<i8>> = batch
                .requests
                .iter()
                .map(|r| {
                    let live_rows = r.seq_len;
                    Matrix::from_fn(
                        batch.runtime.seq_len,
                        batch.runtime.d_model,
                        move |row, col| {
                            if row < live_rows {
                                (((r.id as usize).wrapping_mul(31) + row * 17 + col * 7) % 199)
                                    as i8
                            } else {
                                0 // padding
                            }
                        },
                    )
                })
                .collect();
            let (_outputs, report) = self.cards[card].accel.try_run_batch(&inputs)?;
            report
        } else if let Some(memo) = self.memo.as_mut() {
            // Fault-free timing is a pure function of (runtime, batch):
            // identical bytes to the direct call, priced once per key.
            memo.report(&self.cards[card].accel, batch.len())
        } else {
            self.cards[card].accel.timing_report_batched(batch.len())
        };
        let service_ns = (report.latency_ms() * 1e6).ceil() as u64;
        let finish_ns = now_ns.saturating_add(reload_ns).saturating_add(service_ns);
        let c = &mut self.cards[card];
        c.busy = true;
        c.busy_ns = c.busy_ns.saturating_add(reload_ns + service_ns);
        self.batches += 1;
        for r in &batch.requests {
            // useful work is counted at the *actual* request shape
            let cfg = EncoderConfig::new(r.d_model, r.heads, r.layers, r.seq_len);
            self.ops_total = self.ops_total.saturating_add(OpCount::for_config(&cfg).total());
            self.responses.push(ServeResponse {
                id: r.id,
                arrival_ns: r.arrival_ns,
                start_ns: now_ns,
                finish_ns,
                card,
                batch_size: batch.len(),
                padded_seq_len: batch.runtime.seq_len,
            });
        }
        Ok(finish_ns)
    }

    /// Count of requests queued or in flight (hedge legs are duplicate
    /// work, not extra requests, so they do not count).
    fn in_system(&self) -> usize {
        let inflight: usize = self.faulty.as_ref().map_or(0, |f| {
            f.inflight.iter().flatten().filter(|i| !i.is_hedge).map(|i| i.batch.len()).sum()
        });
        self.scheduler.pending() + inflight
    }

    /// Managed admission: per-priority accounting, dead-fleet and
    /// arrival-past-deadline checks, the AIMD concurrency gate, then the
    /// (possibly bounded) scheduler push. Every rejected request is
    /// recorded with a typed reason — nothing is silently dropped.
    fn admit(&mut self, req: ServeRequest, now_ns: u64) {
        let prio = req.priority.index();
        self.faulty.as_mut().expect("managed admission requires fault state").prio_submitted
            [prio] += 1;
        if self.all_cards_dead() {
            // Nothing can ever serve this request — fail it with a
            // typed reason rather than queueing it forever.
            let f = self.faulty.as_mut().expect("fault state");
            f.failed.push(FailedRequest { id: req.id, reason: FailReason::AllCardsDead });
            return;
        }
        if req.expired_at(now_ns) {
            // Already dead on arrival: never let it touch a queue.
            let f = self.faulty.as_mut().expect("fault state");
            f.expired.push(FailedRequest { id: req.id, reason: FailReason::DeadlineExpired });
            return;
        }
        let in_system = self.in_system();
        let f = self.faulty.as_mut().expect("fault state");
        if f.limiter.as_ref().is_some_and(|l| !l.admits(in_system)) {
            // Priority-ordered shedding: before bouncing the newcomer,
            // displace a queued request of strictly lower priority (the
            // youngest of the lowest class) — net requests in system
            // stays within the limit either way.
            match self.scheduler.evict_lower_priority(req.priority) {
                Some(victim) => {
                    let f = self.faulty.as_mut().expect("fault state");
                    f.shed.push(FailedRequest { id: victim.id, reason: FailReason::Shed });
                }
                None => {
                    f.shed.push(FailedRequest { id: req.id, reason: FailReason::Shed });
                    return;
                }
            }
        }
        match self.scheduler.push(req) {
            Ok(victim) => {
                let f = self.faulty.as_mut().expect("fault state");
                if let Some(b) = f.retry_budget.as_mut() {
                    b.on_admission();
                }
                if let Some(v) = victim {
                    f.shed.push(FailedRequest { id: v.id, reason: FailReason::Shed });
                }
            }
            Err(ServeError::Overloaded { id, .. }) => {
                let f = self.faulty.as_mut().expect("fault state");
                f.shed.push(FailedRequest { id, reason: FailReason::Shed });
            }
            Err(e) => self.error = Some(e),
        }
    }

    /// Drop every queued request whose deadline has passed, recording
    /// each as expired. Expiries are the queue-congestion signal the
    /// AIMD limiter backs off on (once per sweep that shed anything).
    fn shed_expired(&mut self, now_ns: u64) {
        if self.faulty.as_ref().is_none_or(|f| !f.track_deadlines) {
            return;
        }
        let expired = self.scheduler.take_expired(now_ns);
        if expired.is_empty() {
            return;
        }
        let f = self.faulty.as_mut().expect("fault state");
        for r in &expired {
            f.expired.push(FailedRequest { id: r.id, reason: FailReason::DeadlineExpired });
        }
        if let Some(l) = f.limiter.as_mut() {
            l.on_overload();
        }
    }

    /// Program `card` for `batch` under fault injection. Unlike the
    /// fault-free [`dispatch`](Self::dispatch), responses are **not**
    /// recorded here — the batch is parked in `inflight` and either the
    /// completion event records it or a failure/crash requeues it.
    fn dispatch_faulty(
        &mut self,
        card: usize,
        batch: &Batch,
        now_ns: u64,
        seq: u64,
        is_hedge: bool,
    ) -> Result<FaultyDispatch, ServeError> {
        let class = batch.requests[0].class();
        let reload_ns = if self.cards[card].loaded_class == Some(class) {
            0
        } else {
            self.reprograms += 1;
            self.reload_ns(class)
        };
        let weights = if self.cards[card].loaded_class == Some(class) {
            None
        } else {
            Some(self.weights_for(class).clone())
        };
        let f = self.faulty.as_mut().expect("dispatch_faulty requires fault state");
        let c = &mut self.cards[card];
        c.accel.program(batch.runtime).map_err(CoreError::from)?;
        if let Some(w) = weights {
            c.accel.try_load_weights(w)?;
            c.loaded_class = Some(class);
        }
        let fmax_mhz = c.accel.design().fmax_mhz;
        let cycles_to_ns = |cycles: u64| (cycles as f64 * 1e3 / fmax_mhz).ceil() as u64;
        let (outcome, stats) = c.accel.timing_report_faulty(
            batch.len(),
            &mut f.streams[card],
            f.watchdog,
            f.retry,
            now_ns,
        );
        f.stats.merge(&stats);
        let dispatched = match outcome {
            Ok(report) => {
                let service_ns = (report.latency_ms() * 1e6).ceil() as u64;
                let finish_ns = now_ns.saturating_add(reload_ns).saturating_add(service_ns);
                c.busy_ns = c.busy_ns.saturating_add(reload_ns + service_ns);
                FaultyDispatch::Done { finish_ns }
            }
            Err(CoreError::Fault { kind, .. }) => {
                // The card is occupied until the driver detects the
                // fatal fault and gives up.
                let abort_ns = cycles_to_ns(stats.abort_cycles);
                let at_ns = now_ns.saturating_add(reload_ns).saturating_add(abort_ns);
                c.busy_ns = c.busy_ns.saturating_add(reload_ns + abort_ns);
                FaultyDispatch::Failed { at_ns, kind }
            }
            Err(other) => return Err(other.into()),
        };
        let resolve_ns = match &dispatched {
            FaultyDispatch::Done { finish_ns } => *finish_ns,
            FaultyDispatch::Failed { at_ns, .. } => *at_ns,
        };
        c.busy = true;
        f.inflight[card] =
            Some(Inflight { batch: batch.clone(), seq, resolve_ns, is_hedge, partner: None });
        Ok(dispatched)
    }

    /// A fault-injected batch completed: free the card, record the
    /// member responses, and credit the card's health. No-op if the
    /// card crashed while the batch was in flight (stale epoch).
    fn complete_faulty(&mut self, card: usize, epoch: u64, start_ns: u64, finish_ns: u64) {
        let f = self.faulty.as_mut().expect("fault state");
        if f.epochs[card] != epoch {
            return;
        }
        let Some(inflight) = f.inflight[card].take() else { return };
        // First completion of a hedged pair wins: cancel the loser by
        // bumping its epoch (its pending completion/failure event goes
        // stale) and refund the busy time it will no longer spend. The
        // responses below are recorded exactly once, by this winner.
        if let Some(p) = inflight.partner {
            if f.inflight[p].as_ref().is_some_and(|l| l.seq == inflight.seq) {
                let loser = f.inflight[p].take().expect("pair checked above");
                f.epochs[p] += 1;
                f.hedge_cancels += 1;
                if inflight.is_hedge {
                    f.hedge_wins += 1;
                }
                self.cards[p].busy = false;
                self.cards[p].busy_ns = self.cards[p]
                    .busy_ns
                    .saturating_sub(loser.resolve_ns.saturating_sub(finish_ns));
            }
        }
        f.monitors[card].record_success();
        f.svc.record(finish_ns.saturating_sub(start_ns));
        if let Some(l) = f.limiter.as_mut() {
            l.on_success();
        }
        self.cards[card].busy = false;
        self.batches += 1;
        let batch = inflight.batch;
        for r in &batch.requests {
            f.prio_completed[r.priority.index()] += 1;
            if r.within_deadline(finish_ns) {
                f.good_completions += 1;
                f.prio_good[r.priority.index()] += 1;
            }
            let cfg = EncoderConfig::new(r.d_model, r.heads, r.layers, r.seq_len);
            self.ops_total = self.ops_total.saturating_add(OpCount::for_config(&cfg).total());
            self.responses.push(ServeResponse {
                id: r.id,
                arrival_ns: r.arrival_ns,
                start_ns,
                finish_ns,
                card,
                batch_size: batch.len(),
                padded_seq_len: batch.runtime.seq_len,
            });
        }
    }

    /// The driver gave up on a batch at `now_ns`: free the card, trip
    /// its breaker, and requeue the batch onto survivors. No-op on a
    /// stale epoch (the card crashed first and already requeued it).
    fn fail_faulty(&mut self, card: usize, epoch: u64, now_ns: u64, kind: FaultKind) {
        let f = self.faulty.as_mut().expect("fault state");
        if f.epochs[card] != epoch {
            return;
        }
        let Some(inflight) = f.inflight[card].take() else { return };
        f.monitors[card].record_failure(now_ns);
        if let Some(l) = f.limiter.as_mut() {
            l.on_overload();
        }
        self.cards[card].busy = false;
        // A leg of a hedged pair that fails while its partner still runs
        // dissolves the pair: the survivor keeps sole responsibility,
        // nothing requeues, nothing is double-counted.
        if let Some(p) = inflight.partner {
            if let Some(other) = f.inflight[p].as_mut() {
                if other.seq == inflight.seq {
                    other.partner = None;
                    return;
                }
            }
        }
        self.requeue_or_fail(inflight.batch, kind);
        self.fail_all_pending_if_dead();
    }

    /// Card `card` dropped off the bus at `now_ns`: kill it, invalidate
    /// any in-flight completion/failure events, and requeue its batch.
    fn crash_card(&mut self, card: usize, _now_ns: u64) {
        let f = self.faulty.as_mut().expect("fault state");
        if f.monitors[card].health() == crate::health::CardHealth::Dead {
            return;
        }
        f.crashes += 1;
        f.epochs[card] += 1;
        f.monitors[card].kill();
        self.cards[card].busy = false;
        if let Some(inflight) = f.inflight[card].take() {
            // If the crashed card was one leg of a hedged pair and the
            // other leg is still running, that survivor owns the batch —
            // requeueing here would serve it twice.
            let partner_alive = inflight.partner.is_some_and(|p| {
                f.inflight[p].as_ref().is_some_and(|other| other.seq == inflight.seq)
            });
            if partner_alive {
                let p = inflight.partner.expect("checked above");
                f.inflight[p].as_mut().expect("checked above").partner = None;
            } else {
                self.requeue_or_fail(inflight.batch, FaultKind::CardCrash);
            }
        }
        self.fail_all_pending_if_dead();
    }

    /// Requeue a failed batch's requests, failing any whose attempt
    /// budget is spent or (with a retry budget armed) for which the
    /// fleet-wide token bucket is empty — a requeue storm after mass
    /// card death must not amplify an overload. Counted per request so
    /// no request retries unboundedly.
    fn requeue_or_fail(&mut self, batch: Batch, kind: FaultKind) {
        let f = self.faulty.as_mut().expect("fault state");
        let mut survivors = Vec::with_capacity(batch.requests.len());
        for r in batch.requests {
            let attempts = f.attempts.entry(r.id).or_insert(0);
            *attempts += 1;
            if *attempts >= f.max_request_attempts {
                f.failed.push(FailedRequest {
                    id: r.id,
                    reason: FailReason::RetriesExhausted { last: kind },
                });
            } else if f.retry_budget.as_mut().is_some_and(|b| !b.try_withdraw()) {
                f.failed.push(FailedRequest {
                    id: r.id,
                    reason: FailReason::RetryBudgetExhausted { last: kind },
                });
            } else {
                survivors.push(r);
            }
        }
        f.retried += survivors.len() as u64;
        if !survivors.is_empty() {
            self.scheduler.requeue(&Batch { requests: survivors, runtime: batch.runtime });
        }
    }

    /// Hedge the batch dispatched as `seq` on `card`, if it is still in
    /// flight, un-hedged, and a second healthy card sits idle: re-issue
    /// it there and link the two legs. Returns the new leg's
    /// `(card, epoch, outcome)` for event scheduling, or `None` when
    /// hedging is moot (already resolved, already hedged, no free card).
    fn start_hedge(
        &mut self,
        card: usize,
        seq: u64,
        now_ns: u64,
    ) -> Result<Option<(usize, u64, FaultyDispatch)>, ServeError> {
        let f = self.faulty.as_ref().expect("fault state");
        let still_running =
            f.inflight[card].as_ref().is_some_and(|i| i.seq == seq && i.partner.is_none());
        if !still_running {
            return Ok(None);
        }
        let Some(hedge_card) = self.free_card(now_ns) else { return Ok(None) };
        let batch = self.faulty.as_ref().expect("fault state").inflight[card]
            .as_ref()
            .expect("still running")
            .batch
            .clone();
        let outcome = self.dispatch_faulty(hedge_card, &batch, now_ns, seq, true)?;
        let f = self.faulty.as_mut().expect("fault state");
        f.hedges += 1;
        f.inflight[hedge_card].as_mut().expect("just dispatched").partner = Some(card);
        f.inflight[card].as_mut().expect("still running").partner = Some(hedge_card);
        Ok(Some((hedge_card, f.epochs[hedge_card], outcome)))
    }

    /// Once the last card dies, drain everything still queued into
    /// typed failures — queued requests must never be stranded.
    fn fail_all_pending_if_dead(&mut self) {
        if !self.all_cards_dead() {
            return;
        }
        while let Some(batch) = self.scheduler.pop_any() {
            let f = self.faulty.as_mut().expect("fault state");
            for r in batch.requests {
                f.failed.push(FailedRequest { id: r.id, reason: FailReason::AllCardsDead });
            }
        }
    }

    fn into_report(self) -> ServeReport {
        let busy: Vec<u64> = self.cards.iter().map(|c| c.busy_ns).collect();
        let report = ServeReport::from_responses(
            &self.responses,
            self.ops_total,
            self.batches,
            self.reprograms,
            &busy,
        );
        match self.faulty {
            None => report,
            Some(f) => {
                let slo: Vec<PrioritySlo> = Priority::ALL
                    .iter()
                    .map(|&p| PrioritySlo {
                        priority: p,
                        submitted: f.prio_submitted[p.index()],
                        completed: f.prio_completed[p.index()],
                        within_deadline: f.prio_good[p.index()],
                    })
                    .filter(|s| s.submitted > 0)
                    .collect();
                report.with_faults(FaultOutcome {
                    submitted: f.submitted,
                    failed: f.failed,
                    retried: f.retried,
                    crashes: f.crashes,
                    faults: f.stats,
                    card_health: f.monitors.iter().map(CardMonitor::health).collect(),
                    shed: f.shed,
                    expired: f.expired,
                    completed_in_deadline: f.track_deadlines.then_some(f.good_completions),
                    hedges: f.hedges,
                    hedge_wins: f.hedge_wins,
                    hedge_cancels: f.hedge_cancels,
                    slo,
                })
            }
        }
    }
}

/// Greedy dispatch: while a card is free (and, under fault injection,
/// alive with a closed circuit) and a batch is ready, pair them; then
/// arm wake-ups for the earliest waiting partial batch and the earliest
/// circuit cooldown.
fn dispatch_all(sim: &mut Simulator<SimModel>, m: &mut SimModel) {
    if m.error.is_some() {
        return;
    }
    let now = sim.now().get();
    // Deadline-aware flush: expired requests are shed *before* the
    // dispatch loop below can pair them with a card.
    m.shed_expired(now);
    while let Some(card) = m.free_card(now) {
        let mut ready = m.scheduler.pop_ready(now);
        if ready.is_none() {
            // Deadline-aware flush, part two: a partial batch whose
            // deadline is closer than the observed p99 service time
            // dispatches now — waiting out the generic batching window
            // would guarantee it expires in queue.
            if let Some(f) = m.faulty.as_ref().filter(|f| f.track_deadlines) {
                ready = m.scheduler.pop_urgent(now, f.svc.p99_ns());
            }
        }
        let Some(batch) = ready else { break };
        if m.faulty.is_some() {
            let seq = {
                let f = m.faulty.as_mut().expect("fault state");
                f.batch_seq += 1;
                f.batch_seq
            };
            match m.dispatch_faulty(card, &batch, now, seq, false) {
                Ok(outcome) => {
                    let epoch = m.faulty.as_ref().expect("fault state").epochs[card];
                    schedule_leg(sim, card, epoch, now, outcome);
                    arm_hedge(sim, m, card, seq, now);
                }
                Err(e) => {
                    m.error = Some(e);
                    return;
                }
            }
        } else {
            match m.dispatch(card, &batch, now) {
                Ok(finish_ns) => {
                    sim.schedule_at(Cycles(finish_ns), move |sim, m: &mut SimModel| {
                        m.cards[card].busy = false;
                        dispatch_all(sim, m);
                    });
                }
                Err(e) => {
                    m.error = Some(e);
                    return;
                }
            }
        }
    }
    // A partial batch left waiting needs a wake-up at its deadline; one
    // already overdue (deadline ≤ now with every card busy) is picked up
    // by the next completion's dispatch_all.
    if let Some(deadline) = m.scheduler.next_flush_deadline_ns() {
        let stale = m.next_flush.is_none_or(|t| t <= now || deadline < t);
        if deadline > now && stale {
            m.next_flush = Some(deadline);
            sim.schedule_at(Cycles(deadline), |sim, m: &mut SimModel| dispatch_all(sim, m));
        }
    }
    // A queued request with a deadline needs a wake-up: early enough to
    // flush its batch while it can still complete in time (deadline
    // minus the p99 service estimate), or at the deadline itself so it
    // is shed promptly rather than only at the next arrival or
    // completion event.
    if m.faulty.as_ref().is_some_and(|f| f.track_deadlines) {
        let headroom = m.faulty.as_ref().and_then(|f| f.svc.p99_ns());
        if let Some(d) = m.scheduler.next_deadline_wake_ns(now, headroom) {
            let f = m.faulty.as_mut().expect("fault state");
            let stale = f.deadline_wake.is_none_or(|t| t <= now || d < t);
            if d > now && stale {
                f.deadline_wake = Some(d);
                sim.schedule_at(Cycles(d), |sim, m: &mut SimModel| dispatch_all(sim, m));
            }
        }
    }
    // If work is pending and some idle card is only blocked by an open
    // circuit, wake up when the earliest cooldown expires — otherwise a
    // fleet of tripped-but-alive cards would hang.
    if m.scheduler.pending() > 0 {
        if let Some(f) = m.faulty.as_ref() {
            let wake = m
                .cards
                .iter()
                .enumerate()
                .filter(|(_, c)| !c.busy)
                .filter_map(|(i, _)| f.monitors[i].open_until_ns())
                .filter(|&t| t > now)
                .min();
            if let Some(t) = wake {
                let stale = f.breaker_wake.is_none_or(|w| w <= now || t < w);
                if stale {
                    m.faulty.as_mut().expect("fault state").breaker_wake = Some(t);
                    sim.schedule_at(Cycles(t), |sim, m: &mut SimModel| dispatch_all(sim, m));
                }
            }
        }
    }
}

/// Schedule the completion or failure event for one dispatched leg
/// (primary or hedge). The captured epoch makes the event a no-op if the
/// card crashed — or the leg was cancelled by a hedge win — first.
fn schedule_leg(
    sim: &mut Simulator<SimModel>,
    card: usize,
    epoch: u64,
    start_ns: u64,
    outcome: FaultyDispatch,
) {
    match outcome {
        FaultyDispatch::Done { finish_ns } => {
            sim.schedule_at(Cycles(finish_ns), move |sim, m: &mut SimModel| {
                if m.error.is_some() {
                    return;
                }
                m.complete_faulty(card, epoch, start_ns, finish_ns);
                dispatch_all(sim, m);
            });
        }
        FaultyDispatch::Failed { at_ns, kind } => {
            sim.schedule_at(Cycles(at_ns), move |sim, m: &mut SimModel| {
                if m.error.is_some() {
                    return;
                }
                m.fail_faulty(card, epoch, at_ns, kind);
                dispatch_all(sim, m);
            });
        }
    }
}

/// Arm a hedge check for the batch just dispatched as `seq` on `card`:
/// after the p99-derived delay, if the leg is still in flight, re-issue
/// it on a second healthy idle card (the check itself decides — the
/// batch may long since have completed, failed, or crashed away).
fn arm_hedge(sim: &mut Simulator<SimModel>, m: &mut SimModel, card: usize, seq: u64, now: u64) {
    if m.cards.len() < 2 {
        return;
    }
    let f = m.faulty.as_ref().expect("fault state");
    let Some(h) = f.hedge else { return };
    let hedge_at = now.saturating_add(f.svc.hedge_delay_ns(&h));
    let resolve_ns = f.inflight[card].as_ref().map_or(0, |i| i.resolve_ns);
    // The simulation already knows when this leg resolves; a hedge that
    // could only fire afterwards is pointless, so skip the event. (A
    // real fleet schedules the timer unconditionally and finds the work
    // gone — same outcome, fewer events.)
    if hedge_at >= resolve_ns {
        return;
    }
    sim.schedule_at(Cycles(hedge_at), move |sim, m: &mut SimModel| {
        if m.error.is_some() {
            return;
        }
        match m.start_hedge(card, seq, hedge_at) {
            Ok(Some((hedge_card, epoch, outcome))) => {
                schedule_leg(sim, hedge_card, epoch, hedge_at, outcome);
            }
            Ok(None) => {}
            Err(e) => m.error = Some(e),
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::overload::{AimdConfig, RetryBudgetConfig};

    fn small_fleet(cards: usize) -> Fleet {
        Fleet::try_new(FleetConfig {
            cards,
            policy: BatchPolicy {
                max_batch: 4,
                max_wait_ns: 100_000,
                seq_buckets: vec![16, 32, 64, 128],
                max_queue: None,
            },
            ..FleetConfig::default()
        })
        .unwrap()
    }

    fn dense_workload(n: usize) -> Workload {
        Workload::poisson(n, 100_000.0, &[(96, 4, 2)], (8, 16), 11)
    }

    #[test]
    fn zero_cards_rejected() {
        let err = Fleet::try_new(FleetConfig { cards: 0, ..FleetConfig::default() }).unwrap_err();
        assert_eq!(err, ServeError::NoCards);
    }

    #[test]
    fn infeasible_bitstream_rejected() {
        let err =
            Fleet::try_new(FleetConfig { device: FpgaDevice::zcu102(), ..FleetConfig::default() })
                .unwrap_err();
        assert!(matches!(err, ServeError::Core(CoreError::Infeasible { .. })));
    }

    #[test]
    fn empty_trace_rejected() {
        let fleet = small_fleet(2);
        assert_eq!(fleet.serve(&Workload::default()).unwrap_err(), ServeError::EmptyTrace);
    }

    #[test]
    fn serves_every_request_exactly_once() {
        let fleet = small_fleet(2);
        let w = dense_workload(32);
        let report = fleet.serve(&w).unwrap();
        assert_eq!(report.completed, 32);
        assert!(report.mean_batch > 1.0, "dense arrivals must batch: {}", report.mean_batch);
        assert!(report.latency_ms.p50 > 0.0);
        assert!(report.latency_ms.p99 >= report.latency_ms.p95);
        assert!(report.latency_ms.p95 >= report.latency_ms.p50);
    }

    #[test]
    fn deterministic_replay() {
        let fleet = small_fleet(3);
        let w = dense_workload(24);
        assert_eq!(fleet.serve(&w).unwrap(), fleet.serve(&w).unwrap());
    }

    #[test]
    fn unservable_request_surfaces_as_error() {
        let fleet = small_fleet(1);
        let w = Workload {
            requests: vec![ServeRequest {
                id: 0,
                arrival_ns: 0,
                d_model: 4_096,
                heads: 4,
                layers: 2,
                seq_len: 8,
                ..ServeRequest::default()
            }],
        };
        assert!(matches!(fleet.serve(&w).unwrap_err(), ServeError::Unservable { id: 0, .. }));
    }

    #[test]
    fn functional_mode_matches_timing_mode_schedule() {
        let base = small_fleet(2);
        let functional =
            Fleet::try_new(FleetConfig { functional: true, ..base.config().clone() }).unwrap();
        let w = dense_workload(8);
        let a = base.serve(&w).unwrap();
        let b = functional.serve(&w).unwrap();
        assert_eq!(a, b, "functional execution must not change the timing");
    }

    #[test]
    fn reprograms_counted_across_classes() {
        let fleet = small_fleet(1);
        let w = Workload::poisson(12, 50_000.0, &[(96, 4, 2), (128, 4, 2)], (8, 16), 3);
        let report = fleet.serve(&w).unwrap();
        assert!(report.reprograms >= 2, "two classes on one card must reload: {report:?}");
    }

    #[test]
    fn zero_rate_fault_config_reproduces_the_fault_free_schedule() {
        let base = small_fleet(2);
        let faulty = Fleet::try_new(FleetConfig {
            faults: Some(FaultConfig::default()),
            ..base.config().clone()
        })
        .unwrap();
        let w = dense_workload(24);
        let a = base.serve(&w).unwrap();
        let b = faulty.serve(&w).unwrap();
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.latency_ms, b.latency_ms, "zero-rate injection must not perturb timing");
        assert_eq!(a.throughput_rps, b.throughput_rps);
        assert_eq!(b.availability, 1.0);
        assert!(b.failed.is_empty());
        assert!(!b.degraded());
    }

    #[test]
    fn faulty_replay_is_deterministic() {
        let fleet = Fleet::try_new(FleetConfig {
            faults: Some(FaultConfig::seeded(42, 0.05)),
            ..small_fleet(3).config().clone()
        })
        .unwrap();
        let w = dense_workload(24);
        assert_eq!(fleet.serve(&w).unwrap(), fleet.serve(&w).unwrap());
    }

    #[test]
    fn no_request_is_ever_dropped_under_faults() {
        for seed in [1u64, 7, 42] {
            let fleet = Fleet::try_new(FleetConfig {
                faults: Some(FaultConfig::seeded(seed, 0.08)),
                ..small_fleet(2).config().clone()
            })
            .unwrap();
            let w = dense_workload(32);
            let r = fleet.serve(&w).unwrap();
            assert_eq!(r.submitted, 32);
            assert_eq!(
                r.completed + r.failed.len(),
                32,
                "seed {seed}: every request must complete or fail with a reason: {r:?}"
            );
            assert!((0.0..=1.0).contains(&r.availability) && r.availability.is_finite());
        }
    }

    #[test]
    fn unrecoverable_faults_fail_over_to_the_surviving_card() {
        use protea_core::{FaultEvent, FaultKind};
        let fleet = Fleet::try_new(FleetConfig {
            faults: Some(FaultConfig {
                events: vec![
                    FaultEvent { at_ns: 0, card: 0, kind: FaultKind::EccDouble },
                    FaultEvent { at_ns: 1, card: 0, kind: FaultKind::EccDouble },
                ],
                ..FaultConfig::default()
            }),
            ..small_fleet(2).config().clone()
        })
        .unwrap();
        let w = dense_workload(8);
        let r = fleet.serve(&w).unwrap();
        assert_eq!(r.completed, 8, "all requests must survive via requeue: {r:?}");
        assert!(r.failed.is_empty());
        assert!(r.retried > 0, "the failed batch must have been requeued");
        assert_eq!(r.faults.ecc_double, 2);
        assert_eq!(r.availability, 1.0);
        // Card 0 took both hits but may have recovered (circuit cooled
        // down, later batch succeeded) — it must not be dead.
        assert_ne!(r.card_health[0], crate::health::CardHealth::Dead);
        assert_eq!(r.card_health[1], crate::health::CardHealth::Healthy);
    }

    #[test]
    fn single_card_fleet_with_dead_card_fails_typed_not_hangs() {
        use protea_core::{FaultEvent, FaultKind};
        let fleet = Fleet::try_new(FleetConfig {
            cards: 1,
            faults: Some(FaultConfig {
                events: vec![FaultEvent { at_ns: 0, card: 0, kind: FaultKind::CardCrash }],
                ..FaultConfig::default()
            }),
            ..small_fleet(1).config().clone()
        })
        .unwrap();
        let w = dense_workload(6);
        let r = fleet.serve(&w).unwrap();
        assert_eq!(r.completed, 0);
        assert_eq!(r.failed.len(), 6, "every request fails with a typed reason: {r:?}");
        assert!(r
            .failed
            .iter()
            .all(|fr| matches!(fr.reason, crate::faults::FailReason::AllCardsDead)));
        assert_eq!(r.availability, 0.0);
        assert_eq!(r.crashes, 1);
        assert_eq!(r.card_health[0], crate::health::CardHealth::Dead);
        assert!(r.throughput_rps.is_finite(), "no degenerate division: {r:?}");
    }

    #[test]
    fn crash_mid_run_requeues_inflight_onto_survivor() {
        use protea_core::{FaultEvent, FaultKind};
        // Crash card 0 shortly after serving begins: whatever it was
        // running must finish elsewhere.
        let fleet = Fleet::try_new(FleetConfig {
            faults: Some(FaultConfig {
                events: vec![FaultEvent { at_ns: 150_000, card: 0, kind: FaultKind::CardCrash }],
                ..FaultConfig::default()
            }),
            ..small_fleet(2).config().clone()
        })
        .unwrap();
        let w = dense_workload(24);
        let r = fleet.serve(&w).unwrap();
        assert_eq!(r.completed + r.failed.len(), 24, "no drops: {r:?}");
        assert_eq!(r.crashes, 1);
        assert_eq!(r.card_health[0], crate::health::CardHealth::Dead);
        assert_eq!(r.completed, 24, "one surviving card must absorb the work");
    }

    #[test]
    fn invalid_fault_config_rejected_up_front() {
        use protea_core::FaultRates;
        let bad_rates = FleetConfig {
            faults: Some(FaultConfig {
                rates: FaultRates { stall: 1.5, ..FaultRates::ZERO },
                ..FaultConfig::default()
            }),
            ..FleetConfig::default()
        };
        assert!(matches!(
            Fleet::try_new(bad_rates).unwrap_err(),
            ServeError::Core(CoreError::InvalidConfig(_))
        ));
        let zero_attempts = FleetConfig {
            faults: Some(FaultConfig { max_request_attempts: 0, ..FaultConfig::default() }),
            ..FleetConfig::default()
        };
        assert!(Fleet::try_new(zero_attempts).is_err());
    }

    #[test]
    fn serial_baseline_is_slower_than_batched_fleet() {
        let fleet = small_fleet(4);
        let w = dense_workload(40);
        let batched = fleet.serve(&w).unwrap();
        let serial = fleet.serve_serial_baseline(&w).unwrap();
        assert_eq!(serial.completed, batched.completed);
        assert!(
            batched.throughput_rps > serial.throughput_rps,
            "batched {} vs serial {}",
            batched.throughput_rps,
            serial.throughput_rps
        );
    }

    // ------------------------- overload layer -------------------------

    /// `dense_workload` with a relative deadline stamped on every
    /// request.
    fn deadline_workload(n: usize, rel_ns: u64) -> Workload {
        let mut w = dense_workload(n);
        for r in &mut w.requests {
            r.deadline_ns = Some(r.arrival_ns + rel_ns);
        }
        w
    }

    #[test]
    fn unarmed_overload_config_changes_nothing() {
        // Zero-overhead-when-off: an OverloadConfig with every knob off
        // (and no caps/deadlines anywhere) must yield a bit-identical
        // report through the untouched fault-free path.
        let base = small_fleet(2);
        let off = Fleet::try_new(FleetConfig {
            overload: Some(OverloadConfig::default()),
            ..base.config().clone()
        })
        .unwrap();
        let w = dense_workload(24);
        assert_eq!(base.serve(&w).unwrap(), off.serve(&w).unwrap());
    }

    #[test]
    fn managed_path_without_pressure_keeps_fault_free_timing() {
        // Arm a limiter far above the offered load: the managed path is
        // taken, but timing must match the fault-free schedule exactly.
        let base = small_fleet(2);
        let armed = Fleet::try_new(FleetConfig {
            overload: Some(OverloadConfig {
                aimd: Some(AimdConfig { initial: 4_096, ..AimdConfig::default() }),
                ..OverloadConfig::default()
            }),
            ..base.config().clone()
        })
        .unwrap();
        let w = dense_workload(24);
        let a = base.serve(&w).unwrap();
        let b = armed.serve(&w).unwrap();
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.latency_ms, b.latency_ms, "idle overload controls must not perturb timing");
        assert_eq!(a.throughput_rps, b.throughput_rps);
        assert!(b.shed.is_empty() && b.expired.is_empty());
        assert!(b.accounted(), "{b:?}");
    }

    #[test]
    fn bounded_queue_sheds_with_exact_accounting() {
        let fleet = Fleet::try_new(FleetConfig {
            cards: 1,
            policy: BatchPolicy {
                max_batch: 4,
                max_wait_ns: 100_000,
                seq_buckets: vec![16, 32, 64, 128],
                max_queue: Some(2),
            },
            ..FleetConfig::default()
        })
        .unwrap();
        // Arrival rate far above one card's service rate forces the cap.
        let w = Workload::poisson(64, 1_000_000.0, &[(96, 4, 2)], (8, 16), 5);
        let r = fleet.serve(&w).unwrap();
        assert!(!r.shed.is_empty(), "a 2-deep queue under this burst must shed: {r:?}");
        assert!(r.shed.iter().all(|s| s.reason == FailReason::Shed));
        assert_eq!(r.submitted, 64);
        assert!(r.accounted(), "conservation must hold: {r:?}");
        assert!(r.overloaded());
        // Determinism under shedding.
        assert_eq!(fleet.serve(&w).unwrap(), r);
    }

    #[test]
    fn expired_requests_are_shed_before_dispatch() {
        let fleet = small_fleet(1);
        // Deadlines shorter than the queueing delay this burst builds up.
        let w = deadline_workload(48, 400_000);
        let r = fleet.serve(&w).unwrap();
        assert!(!r.expired.is_empty(), "tight deadlines under a burst must expire: {r:?}");
        assert!(r.expired.iter().all(|e| e.reason == FailReason::DeadlineExpired));
        assert!(r.accounted(), "{r:?}");
        assert!(r.completed_in_deadline <= r.completed);
        assert!(r.goodput_rps <= r.throughput_rps);
        // Expired requests were never burned on a card: every completion
        // belongs to a non-expired request.
        assert_eq!(r.completed + r.expired.len() + r.failed.len() + r.shed.len(), 48);
        // Per-priority SLO rows exist and cover all submissions.
        let slo_submitted: usize = r.slo.iter().map(|s| s.submitted).sum();
        assert_eq!(slo_submitted, 48);
    }

    #[test]
    fn priority_displaces_best_effort_under_full_queue() {
        let fleet = Fleet::try_new(FleetConfig {
            cards: 1,
            policy: BatchPolicy {
                max_batch: 4,
                max_wait_ns: 100_000,
                seq_buckets: vec![16, 32, 64, 128],
                max_queue: Some(2),
            },
            ..FleetConfig::default()
        })
        .unwrap();
        let mut w = Workload::poisson(60, 1_500_000.0, &[(96, 4, 2)], (8, 16), 9);
        for (i, r) in w.requests.iter_mut().enumerate() {
            r.priority = if i % 2 == 0 { Priority::BestEffort } else { Priority::Interactive };
        }
        let r = fleet.serve(&w).unwrap();
        assert!(r.accounted(), "{r:?}");
        let shed_ids: std::collections::BTreeSet<u64> = r.shed.iter().map(|s| s.id).collect();
        let best_effort_shed = w
            .requests
            .iter()
            .filter(|q| q.priority == Priority::BestEffort && shed_ids.contains(&q.id))
            .count();
        let interactive_shed = shed_ids.len() - best_effort_shed;
        assert!(
            best_effort_shed >= interactive_shed,
            "shedding must prefer best-effort: {best_effort_shed} vs {interactive_shed}"
        );
    }

    #[test]
    fn hedging_completes_every_request_exactly_once() {
        let fleet = Fleet::try_new(FleetConfig {
            overload: Some(OverloadConfig {
                // An aggressive hedge: fire almost immediately.
                hedge: Some(HedgeConfig { factor: 0.5, min_delay_ns: 10_000, min_samples: 4 }),
                ..OverloadConfig::default()
            }),
            ..small_fleet(3).config().clone()
        })
        .unwrap();
        let w = dense_workload(32);
        let (r, responses) = fleet.serve_with_responses(&w).unwrap();
        assert_eq!(r.completed, 32);
        assert!(r.hedges > 0, "an aggressive hedge policy must fire: {r:?}");
        assert!(r.hedge_wins <= r.hedges && r.hedge_cancels <= r.hedges);
        let mut ids: Vec<u64> = responses.iter().map(|resp| resp.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 32, "no request may complete twice under hedging");
        assert!(r.accounted(), "{r:?}");
        // Deterministic replay with hedging on.
        assert_eq!(fleet.serve(&w).unwrap(), r);
    }

    #[test]
    fn retry_budget_bounds_requeue_storms() {
        use protea_core::{FaultEvent, FaultKind};
        // Endless ECC faults on card 0 of 1: without a budget every
        // request would burn its full attempt cap; with an empty budget
        // each failed batch dies on its first fault.
        let events: Vec<FaultEvent> = (0..200)
            .map(|i| FaultEvent { at_ns: i, card: 0, kind: FaultKind::EccDouble })
            .collect();
        let fleet = Fleet::try_new(FleetConfig {
            cards: 1,
            faults: Some(FaultConfig { events, ..FaultConfig::default() }),
            overload: Some(OverloadConfig {
                retry_budget: Some(RetryBudgetConfig { initial: 0, per_admission: 0.0, cap: 1 }),
                ..OverloadConfig::default()
            }),
            ..small_fleet(1).config().clone()
        })
        .unwrap();
        let w = dense_workload(8);
        let r = fleet.serve(&w).unwrap();
        assert_eq!(r.retried, 0, "an empty budget must forbid every requeue: {r:?}");
        assert!(r
            .failed
            .iter()
            .any(|fr| matches!(fr.reason, FailReason::RetryBudgetExhausted { .. })));
        assert!(r.accounted(), "{r:?}");
    }

    #[test]
    fn aimd_limiter_sheds_past_its_limit() {
        let fleet = Fleet::try_new(FleetConfig {
            cards: 1,
            overload: Some(OverloadConfig {
                aimd: Some(AimdConfig { initial: 4, min: 2, max: 8, increase: 1.0, decrease: 0.5 }),
                ..OverloadConfig::default()
            }),
            ..small_fleet(1).config().clone()
        })
        .unwrap();
        let w = Workload::poisson(64, 2_000_000.0, &[(96, 4, 2)], (8, 16), 13);
        let r = fleet.serve(&w).unwrap();
        assert!(!r.shed.is_empty(), "a limit of ~4-8 under 64 rushed arrivals must shed: {r:?}");
        assert!(r.accounted(), "{r:?}");
        assert_eq!(fleet.serve(&w).unwrap(), r, "AIMD state must replay deterministically");
    }

    #[test]
    fn invalid_overload_config_rejected_up_front() {
        let bad = FleetConfig {
            overload: Some(OverloadConfig {
                aimd: Some(AimdConfig { min: 0, ..AimdConfig::default() }),
                ..OverloadConfig::default()
            }),
            ..FleetConfig::default()
        };
        assert!(matches!(
            Fleet::try_new(bad).unwrap_err(),
            ServeError::Core(CoreError::InvalidConfig(_))
        ));
        let zero_cap = FleetConfig {
            policy: BatchPolicy { max_queue: Some(0), ..BatchPolicy::default() },
            ..FleetConfig::default()
        };
        assert!(Fleet::try_new(zero_cap).is_err());
    }
}
