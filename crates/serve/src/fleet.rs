//! The card fleet and the discrete-event queueing simulation.
//!
//! A [`Fleet`] models N identical ProTEA cards, each one a
//! `protea_core::Accelerator` synthesized from the same bitstream. The
//! serving loop is a discrete-event simulation on `protea_hwsim`'s
//! kernel with **nanoseconds** as the tick unit:
//!
//! * an *arrival* event admits a request to the [`BatchScheduler`];
//! * a *dispatch* programs a free card (register writes, plus a weight
//!   reload when the card was last serving a different capacity class),
//!   runs the batch through the fallible request path
//!   (`program → try_load_weights → try_run_batch`), and converts the
//!   resulting report latency to a service interval;
//! * a *completion* frees the card and greedily re-dispatches.
//!
//! Everything user-supplied (trace shapes, arrival times) flows through
//! `Result` — a hostile trace can be rejected, never panic.

use crate::error::ServeError;
use crate::report::ServeReport;
use crate::request::{CapacityClass, ServeResponse};
use crate::scheduler::{Batch, BatchPolicy, BatchScheduler};
use crate::trace::Workload;
use protea_core::{Accelerator, CoreError, SynthesisConfig};
use protea_hwsim::{Cycles, Simulator};
use protea_model::{EncoderConfig, EncoderWeights, OpCount, QuantSchedule, QuantizedEncoder};
use protea_platform::FpgaDevice;
use protea_tensor::Matrix;
use std::collections::BTreeMap;

/// Fleet construction parameters.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of cards (each gets the same bitstream).
    pub cards: usize,
    /// The bitstream all cards are synthesized from.
    pub synthesis: SynthesisConfig,
    /// The device every card is built on.
    pub device: FpgaDevice,
    /// Batching policy.
    pub policy: BatchPolicy,
    /// When `true`, every batch also executes the bit-exact functional
    /// datapath (slow; service time is identical either way because the
    /// timing model is deterministic).
    pub functional: bool,
    /// Host→card weight-reload bandwidth in GB/s (1 GB/s = 1 byte/ns),
    /// pricing the reprogram penalty a batch pays when its card was
    /// serving a different capacity class.
    pub reload_gbps: f64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            cards: 2,
            synthesis: SynthesisConfig::paper_default(),
            device: FpgaDevice::alveo_u55c(),
            policy: BatchPolicy::default(),
            functional: false,
            reload_gbps: 12.0,
        }
    }
}

/// A fleet of simulated ProTEA cards behind one batch scheduler.
#[derive(Debug, Clone)]
pub struct Fleet {
    config: FleetConfig,
}

impl Fleet {
    /// Validate the configuration and build the fleet.
    ///
    /// # Errors
    /// [`ServeError::NoCards`] for an empty fleet;
    /// [`ServeError::Core`] (`Infeasible`) when the bitstream does not
    /// fit the device.
    pub fn try_new(config: FleetConfig) -> Result<Self, ServeError> {
        if config.cards == 0 {
            return Err(ServeError::NoCards);
        }
        if config.reload_gbps.is_nan() || config.reload_gbps <= 0.0 {
            return Err(ServeError::Core(CoreError::InvalidConfig(
                "reload_gbps must be positive".into(),
            )));
        }
        // Fail now, not at dispatch time, if the design cannot exist.
        Accelerator::try_new(config.synthesis, &config.device)?;
        Ok(Self { config })
    }

    /// The configuration in force.
    #[must_use]
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Serve `workload` with batching across all cards. Returns the
    /// aggregate report.
    ///
    /// # Errors
    /// [`ServeError::EmptyTrace`] for an empty workload;
    /// [`ServeError::Unservable`] when a request exceeds the synthesized
    /// capacity; [`ServeError::Core`] if the hardware layer rejects a
    /// dispatch (unreachable for admitted requests, but surfaced rather
    /// than unwrapped).
    pub fn serve(&self, workload: &Workload) -> Result<ServeReport, ServeError> {
        if workload.requests.is_empty() {
            return Err(ServeError::EmptyTrace);
        }
        let mut model = SimModel::build(&self.config)?;
        let mut sim = Simulator::<SimModel>::new();
        for req in workload.requests.iter().copied() {
            sim.schedule_at(Cycles(req.arrival_ns), move |sim, m: &mut SimModel| {
                if m.error.is_some() {
                    return;
                }
                if let Err(e) = m.scheduler.push(req) {
                    m.error = Some(e);
                    return;
                }
                dispatch_all(sim, m);
            });
        }
        sim.run(&mut model);
        if let Some(e) = model.error {
            return Err(e);
        }
        Ok(model.into_report())
    }

    /// The baseline the batched fleet is judged against: one card, no
    /// batching — every request runs alone (still padded to its bucket),
    /// in arrival order.
    ///
    /// # Errors
    /// Same conditions as [`serve`](Self::serve).
    pub fn serve_serial_baseline(&self, workload: &Workload) -> Result<ServeReport, ServeError> {
        if workload.requests.is_empty() {
            return Err(ServeError::EmptyTrace);
        }
        let single = FleetConfig { cards: 1, ..self.config.clone() };
        let mut m = SimModel::build(&single)?;
        let mut free_at = 0u64;
        for req in &workload.requests {
            // admission check through the same scheduler validation
            let mut probe = BatchScheduler::new(single.policy.clone(), single.synthesis);
            probe.push(*req)?;
            let batch = probe.pop_any().ok_or(ServeError::EmptyTrace)?;
            let start = free_at.max(req.arrival_ns);
            let finish = m.dispatch(0, &batch, start)?;
            free_at = finish;
        }
        Ok(m.into_report())
    }
}

/// All mutable simulation state (the DES model type).
struct SimModel {
    scheduler: BatchScheduler,
    cards: Vec<Card>,
    responses: Vec<ServeResponse>,
    weights: BTreeMap<CapacityClass, QuantizedEncoder>,
    functional: bool,
    reload_gbps: f64,
    ops_total: u64,
    batches: u64,
    reprograms: u64,
    next_flush: Option<u64>,
    error: Option<ServeError>,
}

struct Card {
    accel: Accelerator,
    loaded_class: Option<CapacityClass>,
    busy: bool,
    busy_ns: u64,
}

impl SimModel {
    fn build(config: &FleetConfig) -> Result<Self, ServeError> {
        let mut cards = Vec::with_capacity(config.cards);
        for _ in 0..config.cards {
            cards.push(Card {
                accel: Accelerator::try_new(config.synthesis, &config.device)?,
                loaded_class: None,
                busy: false,
                busy_ns: 0,
            });
        }
        Ok(Self {
            scheduler: BatchScheduler::new(config.policy.clone(), config.synthesis),
            cards,
            responses: Vec::new(),
            weights: BTreeMap::new(),
            functional: config.functional,
            reload_gbps: config.reload_gbps,
            ops_total: 0,
            batches: 0,
            reprograms: 0,
            next_flush: None,
            error: None,
        })
    }

    /// Deterministic per-class weight image (cached; the simulation
    /// models weight *movement*, so contents only matter for the
    /// functional mode's bit-exactness).
    fn weights_for(&mut self, class: CapacityClass) -> &QuantizedEncoder {
        self.weights.entry(class).or_insert_with(|| {
            let cfg = EncoderConfig::new(class.d_model, class.heads, class.layers, 8);
            let seed = 0x5eed
                ^ (class.d_model as u64) << 32
                ^ (class.heads as u64) << 16
                ^ class.layers as u64;
            QuantizedEncoder::from_float(&EncoderWeights::random(cfg, seed), QuantSchedule::paper())
        })
    }

    /// DMA time to re-image a card with `class`'s weights.
    fn reload_ns(&self, class: CapacityClass) -> u64 {
        let d = class.d_model as u64;
        let f = 4 * d; // ffn_mult = 4 throughout the serving model
        let per_layer = 4 * d * d + 2 * d * f + (3 * d + d + f + d) * 4;
        let bytes = per_layer * class.layers as u64;
        (bytes as f64 / self.reload_gbps) as u64
    }

    /// Program `card` for `batch`, pay any reload, run, and record the
    /// member responses. Returns the completion time.
    fn dispatch(&mut self, card: usize, batch: &Batch, now_ns: u64) -> Result<u64, ServeError> {
        let class = batch.requests[0].class();
        let reload_ns = if self.cards[card].loaded_class == Some(class) {
            0
        } else {
            self.reprograms += 1;
            self.reload_ns(class)
        };
        let weights = if self.cards[card].loaded_class == Some(class) {
            None
        } else {
            Some(self.weights_for(class).clone())
        };
        let c = &mut self.cards[card];
        c.accel.program(batch.runtime).map_err(CoreError::from)?;
        if let Some(w) = weights {
            c.accel.try_load_weights(w)?;
            c.loaded_class = Some(class);
        }
        let report = if self.functional {
            let inputs: Vec<Matrix<i8>> = batch
                .requests
                .iter()
                .map(|r| {
                    let live_rows = r.seq_len;
                    Matrix::from_fn(
                        batch.runtime.seq_len,
                        batch.runtime.d_model,
                        move |row, col| {
                            if row < live_rows {
                                (((r.id as usize).wrapping_mul(31) + row * 17 + col * 7) % 199)
                                    as i8
                            } else {
                                0 // padding
                            }
                        },
                    )
                })
                .collect();
            let (_outputs, report) = c.accel.try_run_batch(&inputs)?;
            report
        } else {
            c.accel.timing_report_batched(batch.len())
        };
        let service_ns = (report.latency_ms() * 1e6).ceil() as u64;
        let finish_ns = now_ns.saturating_add(reload_ns).saturating_add(service_ns);
        c.busy = true;
        c.busy_ns = c.busy_ns.saturating_add(reload_ns + service_ns);
        self.batches += 1;
        for r in &batch.requests {
            // useful work is counted at the *actual* request shape
            let cfg = EncoderConfig::new(r.d_model, r.heads, r.layers, r.seq_len);
            self.ops_total = self.ops_total.saturating_add(OpCount::for_config(&cfg).total());
            self.responses.push(ServeResponse {
                id: r.id,
                arrival_ns: r.arrival_ns,
                start_ns: now_ns,
                finish_ns,
                card,
                batch_size: batch.len(),
                padded_seq_len: batch.runtime.seq_len,
            });
        }
        Ok(finish_ns)
    }

    fn into_report(self) -> ServeReport {
        let busy: Vec<u64> = self.cards.iter().map(|c| c.busy_ns).collect();
        ServeReport::from_responses(
            &self.responses,
            self.ops_total,
            self.batches,
            self.reprograms,
            &busy,
        )
    }
}

/// Greedy dispatch: while a card is free and a batch is ready, pair
/// them; then arm the flush timer for the earliest waiting partial.
fn dispatch_all(sim: &mut Simulator<SimModel>, m: &mut SimModel) {
    if m.error.is_some() {
        return;
    }
    let now = sim.now().get();
    while let Some(card) = m.cards.iter().position(|c| !c.busy) {
        let Some(batch) = m.scheduler.pop_ready(now) else { break };
        match m.dispatch(card, &batch, now) {
            Ok(finish_ns) => {
                sim.schedule_at(Cycles(finish_ns), move |sim, m: &mut SimModel| {
                    m.cards[card].busy = false;
                    dispatch_all(sim, m);
                });
            }
            Err(e) => {
                m.error = Some(e);
                return;
            }
        }
    }
    // A partial batch left waiting needs a wake-up at its deadline; one
    // already overdue (deadline ≤ now with every card busy) is picked up
    // by the next completion's dispatch_all.
    if let Some(deadline) = m.scheduler.next_flush_deadline_ns() {
        let stale = m.next_flush.is_none_or(|t| t <= now || deadline < t);
        if deadline > now && stale {
            m.next_flush = Some(deadline);
            sim.schedule_at(Cycles(deadline), |sim, m: &mut SimModel| dispatch_all(sim, m));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::ServeRequest;

    fn small_fleet(cards: usize) -> Fleet {
        Fleet::try_new(FleetConfig {
            cards,
            policy: BatchPolicy {
                max_batch: 4,
                max_wait_ns: 100_000,
                seq_buckets: vec![16, 32, 64, 128],
            },
            ..FleetConfig::default()
        })
        .unwrap()
    }

    fn dense_workload(n: usize) -> Workload {
        Workload::poisson(n, 100_000.0, &[(96, 4, 2)], (8, 16), 11)
    }

    #[test]
    fn zero_cards_rejected() {
        let err = Fleet::try_new(FleetConfig { cards: 0, ..FleetConfig::default() }).unwrap_err();
        assert_eq!(err, ServeError::NoCards);
    }

    #[test]
    fn infeasible_bitstream_rejected() {
        let err =
            Fleet::try_new(FleetConfig { device: FpgaDevice::zcu102(), ..FleetConfig::default() })
                .unwrap_err();
        assert!(matches!(err, ServeError::Core(CoreError::Infeasible { .. })));
    }

    #[test]
    fn empty_trace_rejected() {
        let fleet = small_fleet(2);
        assert_eq!(fleet.serve(&Workload::default()).unwrap_err(), ServeError::EmptyTrace);
    }

    #[test]
    fn serves_every_request_exactly_once() {
        let fleet = small_fleet(2);
        let w = dense_workload(32);
        let report = fleet.serve(&w).unwrap();
        assert_eq!(report.completed, 32);
        assert!(report.mean_batch > 1.0, "dense arrivals must batch: {}", report.mean_batch);
        assert!(report.latency_ms.p50 > 0.0);
        assert!(report.latency_ms.p99 >= report.latency_ms.p95);
        assert!(report.latency_ms.p95 >= report.latency_ms.p50);
    }

    #[test]
    fn deterministic_replay() {
        let fleet = small_fleet(3);
        let w = dense_workload(24);
        assert_eq!(fleet.serve(&w).unwrap(), fleet.serve(&w).unwrap());
    }

    #[test]
    fn unservable_request_surfaces_as_error() {
        let fleet = small_fleet(1);
        let w = Workload {
            requests: vec![ServeRequest {
                id: 0,
                arrival_ns: 0,
                d_model: 4_096,
                heads: 4,
                layers: 2,
                seq_len: 8,
            }],
        };
        assert!(matches!(fleet.serve(&w).unwrap_err(), ServeError::Unservable { id: 0, .. }));
    }

    #[test]
    fn functional_mode_matches_timing_mode_schedule() {
        let base = small_fleet(2);
        let functional =
            Fleet::try_new(FleetConfig { functional: true, ..base.config().clone() }).unwrap();
        let w = dense_workload(8);
        let a = base.serve(&w).unwrap();
        let b = functional.serve(&w).unwrap();
        assert_eq!(a, b, "functional execution must not change the timing");
    }

    #[test]
    fn reprograms_counted_across_classes() {
        let fleet = small_fleet(1);
        let w = Workload::poisson(12, 50_000.0, &[(96, 4, 2), (128, 4, 2)], (8, 16), 3);
        let report = fleet.serve(&w).unwrap();
        assert!(report.reprograms >= 2, "two classes on one card must reload: {report:?}");
    }

    #[test]
    fn serial_baseline_is_slower_than_batched_fleet() {
        let fleet = small_fleet(4);
        let w = dense_workload(40);
        let batched = fleet.serve(&w).unwrap();
        let serial = fleet.serve_serial_baseline(&w).unwrap();
        assert_eq!(serial.completed, batched.completed);
        assert!(
            batched.throughput_rps > serial.throughput_rps,
            "batched {} vs serial {}",
            batched.throughput_rps,
            serial.throughput_rps
        );
    }
}
