//! The card fleet and the discrete-event queueing simulation.
//!
//! A [`Fleet`] models N identical ProTEA cards, each one a
//! `protea_core::Accelerator` synthesized from the same bitstream. The
//! serving loop is a discrete-event simulation on `protea_hwsim`'s
//! kernel with **nanoseconds** as the tick unit:
//!
//! * an *arrival* event admits a request to the [`BatchScheduler`];
//! * a *dispatch* programs a free card (register writes, plus a weight
//!   reload when the card was last serving a different capacity class),
//!   runs the batch through the fallible request path
//!   (`program → try_load_weights → try_run_batch`), and converts the
//!   resulting report latency to a service interval;
//! * a *completion* frees the card and greedily re-dispatches.
//!
//! With a [`FaultConfig`] attached, the same simulation runs under
//! deterministic fault injection: per-card seeded [`FaultStream`]s feed
//! the driver's fault-aware timing path, unrecoverable faults and card
//! crashes requeue the in-flight batch onto surviving cards (bounded by
//! a per-request attempt budget), and a per-card circuit breaker rests
//! failing cards. Every submitted request ends in exactly one of
//! `completed` or `failed` — none is ever silently dropped. Without a
//! `FaultConfig` the code path is byte-for-byte the fault-free one, so
//! fault-free reports are bit-identical to earlier releases.
//!
//! Everything user-supplied (trace shapes, arrival times) flows through
//! `Result` — a hostile trace can be rejected, never panic.

use crate::error::ServeError;
use crate::faults::{FailReason, FailedRequest, FaultConfig};
use crate::health::CardMonitor;
use crate::report::{FaultOutcome, ServeReport};
use crate::request::{CapacityClass, ServeResponse};
use crate::scheduler::{Batch, BatchPolicy, BatchScheduler};
use crate::trace::Workload;
use protea_core::{Accelerator, CoreError, FaultKind, FaultStats, FaultStream, SynthesisConfig};
use protea_hwsim::{Cycles, Simulator};
use protea_model::{EncoderConfig, EncoderWeights, OpCount, QuantSchedule, QuantizedEncoder};
use protea_platform::FpgaDevice;
use protea_tensor::Matrix;
use std::collections::BTreeMap;

/// Fleet construction parameters.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of cards (each gets the same bitstream).
    pub cards: usize,
    /// The bitstream all cards are synthesized from.
    pub synthesis: SynthesisConfig,
    /// The device every card is built on.
    pub device: FpgaDevice,
    /// Batching policy.
    pub policy: BatchPolicy,
    /// When `true`, every batch also executes the bit-exact functional
    /// datapath (slow; service time is identical either way because the
    /// timing model is deterministic).
    pub functional: bool,
    /// Host→card weight-reload bandwidth in GB/s (1 GB/s = 1 byte/ns),
    /// pricing the reprogram penalty a batch pays when its card was
    /// serving a different capacity class.
    pub reload_gbps: f64,
    /// Fault injection and graceful-degradation policy. `None` (the
    /// default) is the exact fault-free simulation of earlier releases.
    pub faults: Option<FaultConfig>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            cards: 2,
            synthesis: SynthesisConfig::paper_default(),
            device: FpgaDevice::alveo_u55c(),
            policy: BatchPolicy::default(),
            functional: false,
            reload_gbps: 12.0,
            faults: None,
        }
    }
}

/// A fleet of simulated ProTEA cards behind one batch scheduler.
#[derive(Debug, Clone)]
pub struct Fleet {
    config: FleetConfig,
}

impl Fleet {
    /// Validate the configuration and build the fleet.
    ///
    /// # Errors
    /// [`ServeError::NoCards`] for an empty fleet;
    /// [`ServeError::Core`] (`Infeasible`) when the bitstream does not
    /// fit the device.
    pub fn try_new(config: FleetConfig) -> Result<Self, ServeError> {
        if config.cards == 0 {
            return Err(ServeError::NoCards);
        }
        if config.reload_gbps.is_nan() || config.reload_gbps <= 0.0 {
            return Err(ServeError::Core(CoreError::InvalidConfig(
                "reload_gbps must be positive".into(),
            )));
        }
        if let Some(f) = &config.faults {
            f.rates.validate().map_err(|m| ServeError::Core(CoreError::InvalidConfig(m)))?;
            if f.max_request_attempts == 0 {
                return Err(ServeError::Core(CoreError::InvalidConfig(
                    "max_request_attempts must be at least 1".into(),
                )));
            }
        }
        // Fail now, not at dispatch time, if the design cannot exist.
        Accelerator::try_new(config.synthesis, &config.device)?;
        Ok(Self { config })
    }

    /// The configuration in force.
    #[must_use]
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Serve `workload` with batching across all cards. Returns the
    /// aggregate report.
    ///
    /// # Errors
    /// [`ServeError::EmptyTrace`] for an empty workload;
    /// [`ServeError::Unservable`] when a request exceeds the synthesized
    /// capacity; [`ServeError::Core`] if the hardware layer rejects a
    /// dispatch (unreachable for admitted requests, but surfaced rather
    /// than unwrapped).
    pub fn serve(&self, workload: &Workload) -> Result<ServeReport, ServeError> {
        if workload.requests.is_empty() {
            return Err(ServeError::EmptyTrace);
        }
        let mut model = SimModel::build(&self.config)?;
        let mut sim = Simulator::<SimModel>::new();
        for req in workload.requests.iter().copied() {
            sim.schedule_at(Cycles(req.arrival_ns), move |sim, m: &mut SimModel| {
                if m.error.is_some() {
                    return;
                }
                if m.all_cards_dead() {
                    // Nothing can ever serve this request — fail it with
                    // a typed reason rather than queueing it forever.
                    if let Some(f) = m.faulty.as_mut() {
                        f.failed
                            .push(FailedRequest { id: req.id, reason: FailReason::AllCardsDead });
                    }
                    return;
                }
                if let Err(e) = m.scheduler.push(req) {
                    m.error = Some(e);
                    return;
                }
                dispatch_all(sim, m);
            });
        }
        // Card-crash events: each card's crash timestamp is drawn once,
        // up front, so the draw order (and thus the whole run) is
        // deterministic in the seed.
        if let Some(f) = model.faulty.as_mut() {
            f.submitted = workload.requests.len();
            let crashes: Vec<(usize, u64)> = f
                .streams
                .iter_mut()
                .enumerate()
                .filter_map(|(card, s)| s.crash_at_ns().map(|at| (card, at)))
                .collect();
            for (card, at) in crashes {
                sim.schedule_at(Cycles(at), move |sim, m: &mut SimModel| {
                    if m.error.is_some() {
                        return;
                    }
                    m.crash_card(card, sim.now().get());
                    dispatch_all(sim, m);
                });
            }
        }
        sim.run(&mut model);
        if let Some(e) = model.error {
            return Err(e);
        }
        Ok(model.into_report())
    }

    /// The baseline the batched fleet is judged against: one card, no
    /// batching — every request runs alone (still padded to its bucket),
    /// in arrival order.
    ///
    /// # Errors
    /// Same conditions as [`serve`](Self::serve).
    pub fn serve_serial_baseline(&self, workload: &Workload) -> Result<ServeReport, ServeError> {
        if workload.requests.is_empty() {
            return Err(ServeError::EmptyTrace);
        }
        let single = FleetConfig { cards: 1, ..self.config.clone() };
        let mut m = SimModel::build(&single)?;
        let mut free_at = 0u64;
        for req in &workload.requests {
            // admission check through the same scheduler validation
            let mut probe = BatchScheduler::new(single.policy.clone(), single.synthesis);
            probe.push(*req)?;
            let batch = probe.pop_any().ok_or(ServeError::EmptyTrace)?;
            let start = free_at.max(req.arrival_ns);
            let finish = m.dispatch(0, &batch, start)?;
            free_at = finish;
        }
        Ok(m.into_report())
    }
}

/// All mutable simulation state (the DES model type).
struct SimModel {
    scheduler: BatchScheduler,
    cards: Vec<Card>,
    responses: Vec<ServeResponse>,
    weights: BTreeMap<CapacityClass, QuantizedEncoder>,
    functional: bool,
    reload_gbps: f64,
    ops_total: u64,
    batches: u64,
    reprograms: u64,
    next_flush: Option<u64>,
    error: Option<ServeError>,
    /// Fault-injection state; `None` keeps the exact fault-free path.
    faulty: Option<FaultState>,
}

struct Card {
    accel: Accelerator,
    loaded_class: Option<CapacityClass>,
    busy: bool,
    busy_ns: u64,
}

/// Everything the fault-injected simulation tracks on top of the
/// fault-free model.
struct FaultState {
    watchdog: protea_core::Watchdog,
    retry: protea_core::RetryPolicy,
    max_request_attempts: u32,
    /// One seeded fault source per card.
    streams: Vec<FaultStream>,
    /// Per-card health + circuit breaker.
    monitors: Vec<CardMonitor>,
    /// Per-card dispatch epoch. The DES kernel cannot cancel scheduled
    /// events, so a crash bumps the card's epoch and any in-flight
    /// completion/failure event that captured the old epoch no-ops.
    epochs: Vec<u64>,
    /// The batch currently running on each card, held so a crash or
    /// failure can requeue it.
    inflight: Vec<Option<Inflight>>,
    /// Failed dispatch attempts per request id (bounds requeues).
    attempts: BTreeMap<u64, u32>,
    failed: Vec<FailedRequest>,
    retried: u64,
    crashes: u64,
    stats: FaultStats,
    submitted: usize,
    /// Dedup for scheduled circuit-breaker cooldown wake-ups.
    breaker_wake: Option<u64>,
}

struct Inflight {
    batch: Batch,
}

/// How a fault-injected dispatch resolved at dispatch time.
enum FaultyDispatch {
    /// The batch will complete cleanly at `finish_ns`.
    Done { finish_ns: u64 },
    /// An unrecoverable fault will be detected at `at_ns`.
    Failed { at_ns: u64, kind: FaultKind },
}

impl SimModel {
    fn build(config: &FleetConfig) -> Result<Self, ServeError> {
        let mut cards = Vec::with_capacity(config.cards);
        for _ in 0..config.cards {
            cards.push(Card {
                accel: Accelerator::try_new(config.synthesis, &config.device)?,
                loaded_class: None,
                busy: false,
                busy_ns: 0,
            });
        }
        let faulty = config.faults.as_ref().map(|f| FaultState {
            watchdog: f.watchdog,
            retry: f.retry,
            max_request_attempts: f.max_request_attempts,
            streams: (0..config.cards)
                .map(|card| {
                    FaultStream::seeded(f.seed, card, f.rates).with_events(
                        f.events.iter().filter(|e| e.card == card).map(|e| (e.at_ns, e.kind)),
                    )
                })
                .collect(),
            monitors: vec![CardMonitor::new(f.breaker); config.cards],
            epochs: vec![0; config.cards],
            inflight: (0..config.cards).map(|_| None).collect(),
            attempts: BTreeMap::new(),
            failed: Vec::new(),
            retried: 0,
            crashes: 0,
            stats: FaultStats::default(),
            submitted: 0,
            breaker_wake: None,
        });
        Ok(Self {
            scheduler: BatchScheduler::new(config.policy.clone(), config.synthesis),
            cards,
            responses: Vec::new(),
            weights: BTreeMap::new(),
            functional: config.functional,
            reload_gbps: config.reload_gbps,
            ops_total: 0,
            batches: 0,
            reprograms: 0,
            next_flush: None,
            error: None,
            faulty,
        })
    }

    /// Whether every card in the fleet is dead (vacuously false without
    /// fault injection).
    fn all_cards_dead(&self) -> bool {
        self.faulty.as_ref().is_some_and(|f| {
            f.monitors.iter().all(|m| m.health() == crate::health::CardHealth::Dead)
        })
    }

    /// First card that is idle and (under fault injection) alive with a
    /// closed or cooled-down circuit.
    fn free_card(&self, now_ns: u64) -> Option<usize> {
        self.cards.iter().enumerate().position(|(i, c)| {
            !c.busy && self.faulty.as_ref().is_none_or(|f| f.monitors[i].available(now_ns))
        })
    }

    /// Deterministic per-class weight image (cached; the simulation
    /// models weight *movement*, so contents only matter for the
    /// functional mode's bit-exactness).
    fn weights_for(&mut self, class: CapacityClass) -> &QuantizedEncoder {
        self.weights.entry(class).or_insert_with(|| {
            let cfg = EncoderConfig::new(class.d_model, class.heads, class.layers, 8);
            let seed = 0x5eed
                ^ (class.d_model as u64) << 32
                ^ (class.heads as u64) << 16
                ^ class.layers as u64;
            QuantizedEncoder::from_float(&EncoderWeights::random(cfg, seed), QuantSchedule::paper())
        })
    }

    /// DMA time to re-image a card with `class`'s weights.
    fn reload_ns(&self, class: CapacityClass) -> u64 {
        let d = class.d_model as u64;
        let f = 4 * d; // ffn_mult = 4 throughout the serving model
        let per_layer = 4 * d * d + 2 * d * f + (3 * d + d + f + d) * 4;
        let bytes = per_layer * class.layers as u64;
        (bytes as f64 / self.reload_gbps) as u64
    }

    /// Program `card` for `batch`, pay any reload, run, and record the
    /// member responses. Returns the completion time.
    fn dispatch(&mut self, card: usize, batch: &Batch, now_ns: u64) -> Result<u64, ServeError> {
        let class = batch.requests[0].class();
        let reload_ns = if self.cards[card].loaded_class == Some(class) {
            0
        } else {
            self.reprograms += 1;
            self.reload_ns(class)
        };
        let weights = if self.cards[card].loaded_class == Some(class) {
            None
        } else {
            Some(self.weights_for(class).clone())
        };
        let c = &mut self.cards[card];
        c.accel.program(batch.runtime).map_err(CoreError::from)?;
        if let Some(w) = weights {
            c.accel.try_load_weights(w)?;
            c.loaded_class = Some(class);
        }
        let report = if self.functional {
            let inputs: Vec<Matrix<i8>> = batch
                .requests
                .iter()
                .map(|r| {
                    let live_rows = r.seq_len;
                    Matrix::from_fn(
                        batch.runtime.seq_len,
                        batch.runtime.d_model,
                        move |row, col| {
                            if row < live_rows {
                                (((r.id as usize).wrapping_mul(31) + row * 17 + col * 7) % 199)
                                    as i8
                            } else {
                                0 // padding
                            }
                        },
                    )
                })
                .collect();
            let (_outputs, report) = c.accel.try_run_batch(&inputs)?;
            report
        } else {
            c.accel.timing_report_batched(batch.len())
        };
        let service_ns = (report.latency_ms() * 1e6).ceil() as u64;
        let finish_ns = now_ns.saturating_add(reload_ns).saturating_add(service_ns);
        c.busy = true;
        c.busy_ns = c.busy_ns.saturating_add(reload_ns + service_ns);
        self.batches += 1;
        for r in &batch.requests {
            // useful work is counted at the *actual* request shape
            let cfg = EncoderConfig::new(r.d_model, r.heads, r.layers, r.seq_len);
            self.ops_total = self.ops_total.saturating_add(OpCount::for_config(&cfg).total());
            self.responses.push(ServeResponse {
                id: r.id,
                arrival_ns: r.arrival_ns,
                start_ns: now_ns,
                finish_ns,
                card,
                batch_size: batch.len(),
                padded_seq_len: batch.runtime.seq_len,
            });
        }
        Ok(finish_ns)
    }

    /// Program `card` for `batch` under fault injection. Unlike the
    /// fault-free [`dispatch`](Self::dispatch), responses are **not**
    /// recorded here — the batch is parked in `inflight` and either the
    /// completion event records it or a failure/crash requeues it.
    fn dispatch_faulty(
        &mut self,
        card: usize,
        batch: &Batch,
        now_ns: u64,
    ) -> Result<FaultyDispatch, ServeError> {
        let class = batch.requests[0].class();
        let reload_ns = if self.cards[card].loaded_class == Some(class) {
            0
        } else {
            self.reprograms += 1;
            self.reload_ns(class)
        };
        let weights = if self.cards[card].loaded_class == Some(class) {
            None
        } else {
            Some(self.weights_for(class).clone())
        };
        let f = self.faulty.as_mut().expect("dispatch_faulty requires fault state");
        let c = &mut self.cards[card];
        c.accel.program(batch.runtime).map_err(CoreError::from)?;
        if let Some(w) = weights {
            c.accel.try_load_weights(w)?;
            c.loaded_class = Some(class);
        }
        let fmax_mhz = c.accel.design().fmax_mhz;
        let cycles_to_ns = |cycles: u64| (cycles as f64 * 1e3 / fmax_mhz).ceil() as u64;
        let (outcome, stats) = c.accel.timing_report_faulty(
            batch.len(),
            &mut f.streams[card],
            f.watchdog,
            f.retry,
            now_ns,
        );
        f.stats.merge(&stats);
        let dispatched = match outcome {
            Ok(report) => {
                let service_ns = (report.latency_ms() * 1e6).ceil() as u64;
                let finish_ns = now_ns.saturating_add(reload_ns).saturating_add(service_ns);
                c.busy_ns = c.busy_ns.saturating_add(reload_ns + service_ns);
                FaultyDispatch::Done { finish_ns }
            }
            Err(CoreError::Fault { kind, .. }) => {
                // The card is occupied until the driver detects the
                // fatal fault and gives up.
                let abort_ns = cycles_to_ns(stats.abort_cycles);
                let at_ns = now_ns.saturating_add(reload_ns).saturating_add(abort_ns);
                c.busy_ns = c.busy_ns.saturating_add(reload_ns + abort_ns);
                FaultyDispatch::Failed { at_ns, kind }
            }
            Err(other) => return Err(other.into()),
        };
        c.busy = true;
        f.inflight[card] = Some(Inflight { batch: batch.clone() });
        Ok(dispatched)
    }

    /// A fault-injected batch completed: free the card, record the
    /// member responses, and credit the card's health. No-op if the
    /// card crashed while the batch was in flight (stale epoch).
    fn complete_faulty(&mut self, card: usize, epoch: u64, start_ns: u64, finish_ns: u64) {
        let f = self.faulty.as_mut().expect("fault state");
        if f.epochs[card] != epoch {
            return;
        }
        let Some(inflight) = f.inflight[card].take() else { return };
        f.monitors[card].record_success();
        self.cards[card].busy = false;
        self.batches += 1;
        let batch = inflight.batch;
        for r in &batch.requests {
            let cfg = EncoderConfig::new(r.d_model, r.heads, r.layers, r.seq_len);
            self.ops_total = self.ops_total.saturating_add(OpCount::for_config(&cfg).total());
            self.responses.push(ServeResponse {
                id: r.id,
                arrival_ns: r.arrival_ns,
                start_ns,
                finish_ns,
                card,
                batch_size: batch.len(),
                padded_seq_len: batch.runtime.seq_len,
            });
        }
    }

    /// The driver gave up on a batch at `now_ns`: free the card, trip
    /// its breaker, and requeue the batch onto survivors. No-op on a
    /// stale epoch (the card crashed first and already requeued it).
    fn fail_faulty(&mut self, card: usize, epoch: u64, now_ns: u64, kind: FaultKind) {
        let f = self.faulty.as_mut().expect("fault state");
        if f.epochs[card] != epoch {
            return;
        }
        let Some(inflight) = f.inflight[card].take() else { return };
        f.monitors[card].record_failure(now_ns);
        self.cards[card].busy = false;
        self.requeue_or_fail(inflight.batch, kind);
        self.fail_all_pending_if_dead();
    }

    /// Card `card` dropped off the bus at `now_ns`: kill it, invalidate
    /// any in-flight completion/failure events, and requeue its batch.
    fn crash_card(&mut self, card: usize, _now_ns: u64) {
        let f = self.faulty.as_mut().expect("fault state");
        if f.monitors[card].health() == crate::health::CardHealth::Dead {
            return;
        }
        f.crashes += 1;
        f.epochs[card] += 1;
        f.monitors[card].kill();
        self.cards[card].busy = false;
        if let Some(inflight) = f.inflight[card].take() {
            self.requeue_or_fail(inflight.batch, FaultKind::CardCrash);
        }
        self.fail_all_pending_if_dead();
    }

    /// Requeue a failed batch's requests, failing any whose attempt
    /// budget is spent. Counted per request so no request retries
    /// unboundedly.
    fn requeue_or_fail(&mut self, batch: Batch, kind: FaultKind) {
        let f = self.faulty.as_mut().expect("fault state");
        let mut survivors = Vec::with_capacity(batch.requests.len());
        for r in batch.requests {
            let attempts = f.attempts.entry(r.id).or_insert(0);
            *attempts += 1;
            if *attempts >= f.max_request_attempts {
                f.failed.push(FailedRequest {
                    id: r.id,
                    reason: FailReason::RetriesExhausted { last: kind },
                });
            } else {
                survivors.push(r);
            }
        }
        f.retried += survivors.len() as u64;
        if !survivors.is_empty() {
            self.scheduler.requeue(&Batch { requests: survivors, runtime: batch.runtime });
        }
    }

    /// Once the last card dies, drain everything still queued into
    /// typed failures — queued requests must never be stranded.
    fn fail_all_pending_if_dead(&mut self) {
        if !self.all_cards_dead() {
            return;
        }
        while let Some(batch) = self.scheduler.pop_any() {
            let f = self.faulty.as_mut().expect("fault state");
            for r in batch.requests {
                f.failed.push(FailedRequest { id: r.id, reason: FailReason::AllCardsDead });
            }
        }
    }

    fn into_report(self) -> ServeReport {
        let busy: Vec<u64> = self.cards.iter().map(|c| c.busy_ns).collect();
        let report = ServeReport::from_responses(
            &self.responses,
            self.ops_total,
            self.batches,
            self.reprograms,
            &busy,
        );
        match self.faulty {
            None => report,
            Some(f) => report.with_faults(FaultOutcome {
                submitted: f.submitted,
                failed: f.failed,
                retried: f.retried,
                crashes: f.crashes,
                faults: f.stats,
                card_health: f.monitors.iter().map(CardMonitor::health).collect(),
            }),
        }
    }
}

/// Greedy dispatch: while a card is free (and, under fault injection,
/// alive with a closed circuit) and a batch is ready, pair them; then
/// arm wake-ups for the earliest waiting partial batch and the earliest
/// circuit cooldown.
fn dispatch_all(sim: &mut Simulator<SimModel>, m: &mut SimModel) {
    if m.error.is_some() {
        return;
    }
    let now = sim.now().get();
    while let Some(card) = m.free_card(now) {
        let Some(batch) = m.scheduler.pop_ready(now) else { break };
        if m.faulty.is_some() {
            match m.dispatch_faulty(card, &batch, now) {
                Ok(FaultyDispatch::Done { finish_ns }) => {
                    let epoch = m.faulty.as_ref().expect("fault state").epochs[card];
                    sim.schedule_at(Cycles(finish_ns), move |sim, m: &mut SimModel| {
                        if m.error.is_some() {
                            return;
                        }
                        m.complete_faulty(card, epoch, now, finish_ns);
                        dispatch_all(sim, m);
                    });
                }
                Ok(FaultyDispatch::Failed { at_ns, kind }) => {
                    let epoch = m.faulty.as_ref().expect("fault state").epochs[card];
                    sim.schedule_at(Cycles(at_ns), move |sim, m: &mut SimModel| {
                        if m.error.is_some() {
                            return;
                        }
                        m.fail_faulty(card, epoch, at_ns, kind);
                        dispatch_all(sim, m);
                    });
                }
                Err(e) => {
                    m.error = Some(e);
                    return;
                }
            }
        } else {
            match m.dispatch(card, &batch, now) {
                Ok(finish_ns) => {
                    sim.schedule_at(Cycles(finish_ns), move |sim, m: &mut SimModel| {
                        m.cards[card].busy = false;
                        dispatch_all(sim, m);
                    });
                }
                Err(e) => {
                    m.error = Some(e);
                    return;
                }
            }
        }
    }
    // A partial batch left waiting needs a wake-up at its deadline; one
    // already overdue (deadline ≤ now with every card busy) is picked up
    // by the next completion's dispatch_all.
    if let Some(deadline) = m.scheduler.next_flush_deadline_ns() {
        let stale = m.next_flush.is_none_or(|t| t <= now || deadline < t);
        if deadline > now && stale {
            m.next_flush = Some(deadline);
            sim.schedule_at(Cycles(deadline), |sim, m: &mut SimModel| dispatch_all(sim, m));
        }
    }
    // If work is pending and some idle card is only blocked by an open
    // circuit, wake up when the earliest cooldown expires — otherwise a
    // fleet of tripped-but-alive cards would hang.
    if m.scheduler.pending() > 0 {
        if let Some(f) = m.faulty.as_ref() {
            let wake = m
                .cards
                .iter()
                .enumerate()
                .filter(|(_, c)| !c.busy)
                .filter_map(|(i, _)| f.monitors[i].open_until_ns())
                .filter(|&t| t > now)
                .min();
            if let Some(t) = wake {
                let stale = f.breaker_wake.is_none_or(|w| w <= now || t < w);
                if stale {
                    m.faulty.as_mut().expect("fault state").breaker_wake = Some(t);
                    sim.schedule_at(Cycles(t), |sim, m: &mut SimModel| dispatch_all(sim, m));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::ServeRequest;

    fn small_fleet(cards: usize) -> Fleet {
        Fleet::try_new(FleetConfig {
            cards,
            policy: BatchPolicy {
                max_batch: 4,
                max_wait_ns: 100_000,
                seq_buckets: vec![16, 32, 64, 128],
            },
            ..FleetConfig::default()
        })
        .unwrap()
    }

    fn dense_workload(n: usize) -> Workload {
        Workload::poisson(n, 100_000.0, &[(96, 4, 2)], (8, 16), 11)
    }

    #[test]
    fn zero_cards_rejected() {
        let err = Fleet::try_new(FleetConfig { cards: 0, ..FleetConfig::default() }).unwrap_err();
        assert_eq!(err, ServeError::NoCards);
    }

    #[test]
    fn infeasible_bitstream_rejected() {
        let err =
            Fleet::try_new(FleetConfig { device: FpgaDevice::zcu102(), ..FleetConfig::default() })
                .unwrap_err();
        assert!(matches!(err, ServeError::Core(CoreError::Infeasible { .. })));
    }

    #[test]
    fn empty_trace_rejected() {
        let fleet = small_fleet(2);
        assert_eq!(fleet.serve(&Workload::default()).unwrap_err(), ServeError::EmptyTrace);
    }

    #[test]
    fn serves_every_request_exactly_once() {
        let fleet = small_fleet(2);
        let w = dense_workload(32);
        let report = fleet.serve(&w).unwrap();
        assert_eq!(report.completed, 32);
        assert!(report.mean_batch > 1.0, "dense arrivals must batch: {}", report.mean_batch);
        assert!(report.latency_ms.p50 > 0.0);
        assert!(report.latency_ms.p99 >= report.latency_ms.p95);
        assert!(report.latency_ms.p95 >= report.latency_ms.p50);
    }

    #[test]
    fn deterministic_replay() {
        let fleet = small_fleet(3);
        let w = dense_workload(24);
        assert_eq!(fleet.serve(&w).unwrap(), fleet.serve(&w).unwrap());
    }

    #[test]
    fn unservable_request_surfaces_as_error() {
        let fleet = small_fleet(1);
        let w = Workload {
            requests: vec![ServeRequest {
                id: 0,
                arrival_ns: 0,
                d_model: 4_096,
                heads: 4,
                layers: 2,
                seq_len: 8,
            }],
        };
        assert!(matches!(fleet.serve(&w).unwrap_err(), ServeError::Unservable { id: 0, .. }));
    }

    #[test]
    fn functional_mode_matches_timing_mode_schedule() {
        let base = small_fleet(2);
        let functional =
            Fleet::try_new(FleetConfig { functional: true, ..base.config().clone() }).unwrap();
        let w = dense_workload(8);
        let a = base.serve(&w).unwrap();
        let b = functional.serve(&w).unwrap();
        assert_eq!(a, b, "functional execution must not change the timing");
    }

    #[test]
    fn reprograms_counted_across_classes() {
        let fleet = small_fleet(1);
        let w = Workload::poisson(12, 50_000.0, &[(96, 4, 2), (128, 4, 2)], (8, 16), 3);
        let report = fleet.serve(&w).unwrap();
        assert!(report.reprograms >= 2, "two classes on one card must reload: {report:?}");
    }

    #[test]
    fn zero_rate_fault_config_reproduces_the_fault_free_schedule() {
        let base = small_fleet(2);
        let faulty = Fleet::try_new(FleetConfig {
            faults: Some(FaultConfig::default()),
            ..base.config().clone()
        })
        .unwrap();
        let w = dense_workload(24);
        let a = base.serve(&w).unwrap();
        let b = faulty.serve(&w).unwrap();
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.latency_ms, b.latency_ms, "zero-rate injection must not perturb timing");
        assert_eq!(a.throughput_rps, b.throughput_rps);
        assert_eq!(b.availability, 1.0);
        assert!(b.failed.is_empty());
        assert!(!b.degraded());
    }

    #[test]
    fn faulty_replay_is_deterministic() {
        let fleet = Fleet::try_new(FleetConfig {
            faults: Some(FaultConfig::seeded(42, 0.05)),
            ..small_fleet(3).config().clone()
        })
        .unwrap();
        let w = dense_workload(24);
        assert_eq!(fleet.serve(&w).unwrap(), fleet.serve(&w).unwrap());
    }

    #[test]
    fn no_request_is_ever_dropped_under_faults() {
        for seed in [1u64, 7, 42] {
            let fleet = Fleet::try_new(FleetConfig {
                faults: Some(FaultConfig::seeded(seed, 0.08)),
                ..small_fleet(2).config().clone()
            })
            .unwrap();
            let w = dense_workload(32);
            let r = fleet.serve(&w).unwrap();
            assert_eq!(r.submitted, 32);
            assert_eq!(
                r.completed + r.failed.len(),
                32,
                "seed {seed}: every request must complete or fail with a reason: {r:?}"
            );
            assert!((0.0..=1.0).contains(&r.availability) && r.availability.is_finite());
        }
    }

    #[test]
    fn unrecoverable_faults_fail_over_to_the_surviving_card() {
        use protea_core::{FaultEvent, FaultKind};
        let fleet = Fleet::try_new(FleetConfig {
            faults: Some(FaultConfig {
                events: vec![
                    FaultEvent { at_ns: 0, card: 0, kind: FaultKind::EccDouble },
                    FaultEvent { at_ns: 1, card: 0, kind: FaultKind::EccDouble },
                ],
                ..FaultConfig::default()
            }),
            ..small_fleet(2).config().clone()
        })
        .unwrap();
        let w = dense_workload(8);
        let r = fleet.serve(&w).unwrap();
        assert_eq!(r.completed, 8, "all requests must survive via requeue: {r:?}");
        assert!(r.failed.is_empty());
        assert!(r.retried > 0, "the failed batch must have been requeued");
        assert_eq!(r.faults.ecc_double, 2);
        assert_eq!(r.availability, 1.0);
        // Card 0 took both hits but may have recovered (circuit cooled
        // down, later batch succeeded) — it must not be dead.
        assert_ne!(r.card_health[0], crate::health::CardHealth::Dead);
        assert_eq!(r.card_health[1], crate::health::CardHealth::Healthy);
    }

    #[test]
    fn single_card_fleet_with_dead_card_fails_typed_not_hangs() {
        use protea_core::{FaultEvent, FaultKind};
        let fleet = Fleet::try_new(FleetConfig {
            cards: 1,
            faults: Some(FaultConfig {
                events: vec![FaultEvent { at_ns: 0, card: 0, kind: FaultKind::CardCrash }],
                ..FaultConfig::default()
            }),
            ..small_fleet(1).config().clone()
        })
        .unwrap();
        let w = dense_workload(6);
        let r = fleet.serve(&w).unwrap();
        assert_eq!(r.completed, 0);
        assert_eq!(r.failed.len(), 6, "every request fails with a typed reason: {r:?}");
        assert!(r
            .failed
            .iter()
            .all(|fr| matches!(fr.reason, crate::faults::FailReason::AllCardsDead)));
        assert_eq!(r.availability, 0.0);
        assert_eq!(r.crashes, 1);
        assert_eq!(r.card_health[0], crate::health::CardHealth::Dead);
        assert!(r.throughput_rps.is_finite(), "no degenerate division: {r:?}");
    }

    #[test]
    fn crash_mid_run_requeues_inflight_onto_survivor() {
        use protea_core::{FaultEvent, FaultKind};
        // Crash card 0 shortly after serving begins: whatever it was
        // running must finish elsewhere.
        let fleet = Fleet::try_new(FleetConfig {
            faults: Some(FaultConfig {
                events: vec![FaultEvent { at_ns: 150_000, card: 0, kind: FaultKind::CardCrash }],
                ..FaultConfig::default()
            }),
            ..small_fleet(2).config().clone()
        })
        .unwrap();
        let w = dense_workload(24);
        let r = fleet.serve(&w).unwrap();
        assert_eq!(r.completed + r.failed.len(), 24, "no drops: {r:?}");
        assert_eq!(r.crashes, 1);
        assert_eq!(r.card_health[0], crate::health::CardHealth::Dead);
        assert_eq!(r.completed, 24, "one surviving card must absorb the work");
    }

    #[test]
    fn invalid_fault_config_rejected_up_front() {
        use protea_core::FaultRates;
        let bad_rates = FleetConfig {
            faults: Some(FaultConfig {
                rates: FaultRates { stall: 1.5, ..FaultRates::ZERO },
                ..FaultConfig::default()
            }),
            ..FleetConfig::default()
        };
        assert!(matches!(
            Fleet::try_new(bad_rates).unwrap_err(),
            ServeError::Core(CoreError::InvalidConfig(_))
        ));
        let zero_attempts = FleetConfig {
            faults: Some(FaultConfig { max_request_attempts: 0, ..FaultConfig::default() }),
            ..FleetConfig::default()
        };
        assert!(Fleet::try_new(zero_attempts).is_err());
    }

    #[test]
    fn serial_baseline_is_slower_than_batched_fleet() {
        let fleet = small_fleet(4);
        let w = dense_workload(40);
        let batched = fleet.serve(&w).unwrap();
        let serial = fleet.serve_serial_baseline(&w).unwrap();
        assert_eq!(serial.completed, batched.completed);
        assert!(
            batched.throughput_rps > serial.throughput_rps,
            "batched {} vs serial {}",
            batched.throughput_rps,
            serial.throughput_rps
        );
    }
}
