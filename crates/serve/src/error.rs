//! Serving-layer errors.
//!
//! Everything a caller can trigger — a malformed trace file, a request
//! no synthesized card can serve, a hardware-layer rejection — comes
//! back as a [`ServeError`] value. The simulation never panics on user
//! input; `CoreError`s from the accelerator lift in via `From`.

use core::fmt;
use protea_core::CoreError;

/// Any error surfaced by the serving subsystem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The accelerator layer rejected a configuration, weight image, or
    /// input on the request path.
    Core(CoreError),
    /// A workload trace failed to parse; `at` is a byte offset into the
    /// input.
    Trace {
        /// Byte offset of the failure.
        at: usize,
        /// What went wrong.
        msg: String,
    },
    /// A request's shape cannot be served by the fleet's synthesized
    /// capacity (caught at admission, before any card is touched).
    Unservable {
        /// The request id.
        id: u64,
        /// Why the capacity check failed.
        why: String,
    },
    /// The workload contains no requests.
    EmptyTrace,
    /// The fleet was built with zero cards.
    NoCards,
    /// Admission refused under overload: the request's bucket queue is
    /// at its configured cap and no lower-priority request could be
    /// shed in its place. Inside the fleet simulation this becomes a
    /// *shed* record in the report; callers driving a
    /// [`BatchScheduler`](crate::BatchScheduler) directly see it as a
    /// typed backpressure signal.
    Overloaded {
        /// The rejected request's id.
        id: u64,
        /// Requests queued in the target bucket at rejection time.
        pending: usize,
        /// The configured per-bucket queue cap.
        limit: usize,
    },
    /// A [`ServePlan`](crate::ServePlan) asked for an impossible
    /// combination (e.g. execution tracing together with snapshots).
    Plan {
        /// Why the plan was rejected.
        msg: String,
    },
    /// A fleet snapshot could not be written, parsed, or applied — or a
    /// resumed simulation failed its state-hash self-check.
    Snapshot {
        /// What went wrong.
        msg: String,
    },
    /// Snapshot version negotiation or seal verification failed: the
    /// header names an unknown grammar version, or the `hash` trailer
    /// does not match the body (tampering / bit-rot). Distinct from
    /// [`ServeError::Snapshot`] because the file itself is untrusted —
    /// retrying, migrating, or resuming from it would be unsound — so
    /// CLI surfaces map it to its own exit code.
    SnapshotIntegrity {
        /// What the negotiation or seal check found.
        msg: String,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Core(e) => write!(f, "accelerator error: {e}"),
            ServeError::Trace { at, msg } => write!(f, "trace parse error at byte {at}: {msg}"),
            ServeError::Unservable { id, why } => {
                write!(f, "request {id} cannot be served by this fleet: {why}")
            }
            ServeError::EmptyTrace => write!(f, "workload trace contains no requests"),
            ServeError::NoCards => write!(f, "fleet must have at least one card"),
            ServeError::Overloaded { id, pending, limit } => {
                write!(f, "request {id} rejected: queue full ({pending} pending, limit {limit})")
            }
            ServeError::Plan { msg } => write!(f, "invalid serve plan: {msg}"),
            ServeError::Snapshot { msg } => write!(f, "snapshot error: {msg}"),
            ServeError::SnapshotIntegrity { msg } => {
                write!(f, "snapshot integrity error: {msg}")
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for ServeError {
    fn from(e: CoreError) -> Self {
        ServeError::Core(e)
    }
}

/// The reverse lift, so CLI front ends can funnel every failure —
/// accelerator- or serving-layer — through one [`CoreError`] and its
/// uniform [`exit_code`](CoreError::exit_code) table. A wrapped core
/// error unwraps losslessly; an admission rejection keeps its identity
/// as [`CoreError::Overloaded`] (its exit code tells a load balancer
/// "retry elsewhere/later", unlike a hard serving failure); an
/// integrity failure keeps its identity as
/// [`CoreError::SnapshotIntegrity`] (the input file is untrusted —
/// neither retryable nor migratable); every other serving-specific
/// variant becomes [`CoreError::Serving`] with its full rendered
/// message.
impl From<ServeError> for CoreError {
    fn from(e: ServeError) -> Self {
        match e {
            ServeError::Core(c) => c,
            overloaded @ ServeError::Overloaded { .. } => {
                CoreError::Overloaded(overloaded.to_string())
            }
            sealed @ ServeError::SnapshotIntegrity { .. } => {
                CoreError::SnapshotIntegrity(sealed.to_string())
            }
            other => CoreError::Serving(other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_error_lifts() {
        let e: ServeError = CoreError::EmptyBatch.into();
        assert_eq!(e, ServeError::Core(CoreError::EmptyBatch));
        assert!(e.to_string().contains("accelerator error"));
    }

    #[test]
    fn trace_error_reports_offset() {
        let e = ServeError::Trace { at: 17, msg: "expected ','".into() };
        assert!(e.to_string().contains("byte 17"));
    }

    /// One value of every variant, for the audit tests below.
    fn every_variant() -> Vec<ServeError> {
        vec![
            ServeError::Core(CoreError::EmptyBatch),
            ServeError::Trace { at: 3, msg: "bad".into() },
            ServeError::Unservable { id: 7, why: "too wide".into() },
            ServeError::EmptyTrace,
            ServeError::NoCards,
            ServeError::Overloaded { id: 9, pending: 32, limit: 32 },
            ServeError::Plan { msg: "tracing with snapshots".into() },
            ServeError::Snapshot { msg: "hash mismatch".into() },
            ServeError::SnapshotIntegrity { msg: "unknown snapshot version v9".into() },
        ]
    }

    #[test]
    fn every_variant_has_a_nonempty_display() {
        for e in every_variant() {
            assert!(!e.to_string().trim().is_empty(), "{e:?} renders empty");
        }
    }

    #[test]
    fn lifts_to_core_error_for_uniform_exit_codes() {
        // a wrapped CoreError round-trips losslessly
        let c: CoreError = ServeError::Core(CoreError::EmptyBatch).into();
        assert_eq!(c, CoreError::EmptyBatch);
        // serving-specific variants keep their message and land on the
        // serving exit code
        for e in every_variant() {
            let msg = e.to_string();
            let c: CoreError = e.into();
            assert!(c.exit_code() >= 2);
            if let CoreError::Serving(m) = &c {
                assert_eq!(*m, msg, "message must survive the lift");
                assert_eq!(c.exit_code(), 7);
            }
        }
    }

    #[test]
    fn snapshot_integrity_lifts_to_its_own_exit_code() {
        let e = ServeError::SnapshotIntegrity { msg: "seal mismatch".into() };
        let msg = e.to_string();
        assert!(msg.contains("integrity") && msg.contains("seal mismatch"));
        let c: CoreError = e.into();
        match &c {
            CoreError::SnapshotIntegrity(m) => assert_eq!(*m, msg),
            other => panic!("expected SnapshotIntegrity, got {other:?}"),
        }
        assert_eq!(c.exit_code(), 9);
    }

    #[test]
    fn overloaded_lifts_to_its_own_exit_code() {
        let e = ServeError::Overloaded { id: 5, pending: 16, limit: 16 };
        let msg = e.to_string();
        assert!(msg.contains("queue full") && msg.contains("16"));
        let c: CoreError = e.into();
        match &c {
            CoreError::Overloaded(m) => assert_eq!(*m, msg),
            other => panic!("expected Overloaded, got {other:?}"),
        }
        assert_eq!(c.exit_code(), 8);
    }
}
