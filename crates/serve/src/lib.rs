//! # protea-serve — batched multi-accelerator serving simulation
//!
//! This crate answers the deployment question the single-request
//! co-simulation in `protea-core` cannot: *what throughput and tail
//! latency does a fleet of ProTEA cards sustain under a live request
//! stream?* It layers a queueing simulation on top of the cycle-level
//! model:
//!
//! 1. a [`Workload`] — a trace of [`ServeRequest`]s (parsed from JSON or
//!    synthesized as a Poisson process);
//! 2. a [`BatchScheduler`] grouping compatible requests (same
//!    [`CapacityClass`], same padded sequence-length bucket) so one card
//!    program amortizes register writes and weight loads across a batch;
//! 3. a [`Fleet`] of N simulated cards dispatching batches in a
//!    discrete-event simulation (nanosecond ticks on `protea-hwsim`'s
//!    kernel), with per-class weight-reload costs charged when a card
//!    switches classes;
//! 4. a [`ServeReport`] with throughput (inferences/s and useful GOPS)
//!    plus p50/p95/p99 queueing and end-to-end latency.
//!
//! The entire request path is fallible: hostile traces, oversized
//! shapes, and infeasible fleet configurations come back as
//! [`ServeError`] values — no panic is reachable from user input.
//!
//! Attaching a [`FaultConfig`] to the [`FleetConfig`] runs the same
//! simulation under deterministic fault injection: seeded per-card
//! fault streams (ECC flips, AXI stalls/timeouts, card crashes) drive
//! the driver's watchdog/retry machinery, per-card health tracking and
//! a circuit breaker steer dispatch away from failing cards, and
//! in-flight batches are requeued onto survivors. Every submitted
//! request ends in exactly one of `completed` or [`FailedRequest`] —
//! none is ever silently dropped — and the whole run replays
//! bit-identically from its seed.
//!
//! The overload-control layer keeps the fleet useful when offered load
//! exceeds capacity: a bounded [`BatchPolicy::max_queue`] plus an
//! [`OverloadConfig`] (AIMD concurrency limiting, a fleet-wide
//! [`RetryBudget`] against requeue storms, hedged dispatch of
//! stragglers) and per-request deadlines/priorities turn unbounded
//! queueing into priority-aware load shedding. The report then
//! separates *goodput* (deadline-meeting completions) from raw
//! throughput and accounts every request into exactly one of
//! `completed`, `shed`, `expired`, or `failed`. Every knob defaults to
//! off, reproducing the historical schedule bit-exactly.
//!
//! Every run goes through one entry point: build a [`ServePlan`]
//! (which workload source, which metrics mode, whether to trace,
//! snapshot, or resume) and hand it to [`Fleet::run`]:
//!
//! ```
//! use protea_serve::{Fleet, FleetConfig, ServePlan, Workload};
//!
//! let workload = Workload::poisson(16, 50_000.0, &[(96, 4, 2)], (8, 16), 7);
//! let fleet = Fleet::try_new(FleetConfig { cards: 2, ..FleetConfig::default() })?;
//! let report = fleet.run(ServePlan::workload(&workload))?.report;
//! assert_eq!(report.completed, 16);
//! println!("{report}");
//! # Ok::<(), protea_serve::ServeError>(())
//! ```
//!
//! Million-request runs stream instead: a [`WorkloadSource`] (lazy
//! Poisson generation or a JSON-lines trace file) yields one request at
//! a time, [`MetricsMode::Sketch`] folds completions into an O(1)
//! log-histogram [`StreamMetrics`], and `snapshot_every` captures
//! versioned [`FleetSnapshot`]s a later process resumes bit-identically.
//!
//! The elastic layer makes the fleet a moving target: a heterogeneous
//! device roster with a [`PlacementPolicy`], a scripted [`ChurnPlan`]
//! (joins that pay the paper's full reprogramming charge, drains that
//! finish in-flight work, crashes through the health ladder), a
//! [`TenantPolicy`] mapping tenant ids to priority/deadline classes,
//! and a [`BrownoutLadder`] that sheds the lowest classes first as live
//! capacity drops — with per-tenant accounting ([`TenantSlo`]) obeying
//! the same conservation law under arbitrary churn.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod elastic;
mod error;
mod faults;
mod fleet;
mod health;
mod memo;
mod overload;
mod plan;
mod report;
mod request;
mod scheduler;
mod sketch;
mod source;
mod trace;

pub use elastic::{
    BrownoutLadder, ChurnAction, ChurnEvent, ChurnPlan, PlacementPolicy, TenantClass, TenantPolicy,
};
pub use error::ServeError;
pub use faults::{FailReason, FailedRequest, FaultConfig, SdcConfig};
pub use fleet::snapshot::FleetSnapshot;
pub use fleet::{Fleet, FleetConfig};
pub use health::{CardHealth, CardMonitor, CircuitBreaker};
pub use memo::TimingMemo;
pub use overload::{
    AimdConfig, AimdLimiter, HedgeConfig, OverloadConfig, RetryBudget, RetryBudgetConfig,
    ServiceTimeTracker,
};
pub use plan::{MetricsMode, ServeOutcome, ServePlan};
pub use report::{FaultOutcome, Percentiles, PrioritySlo, ServeReport, TenantSlo};
pub use request::{CapacityClass, Priority, ServeRequest, ServeResponse};
pub use scheduler::{Batch, BatchPolicy, BatchScheduler};
pub use sketch::{LatencySketch, StreamMetrics};
pub use source::{JsonLinesSource, PoissonSource, SourceState, WorkloadSource, WorkloadStream};
pub use trace::Workload;
