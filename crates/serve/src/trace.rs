//! Workload traces: a timestamped request stream, loadable from a small
//! JSON dialect or generated synthetically (Poisson arrivals).
//!
//! The parser is hand-rolled and total: any byte sequence either yields
//! a [`Workload`] or a [`ServeError::Trace`] with an offset — corrupt or
//! adversarial input cannot panic the process (nesting is depth-capped,
//! numbers are range-checked, duplicate keys take the last value).
//!
//! Format:
//!
//! ```json
//! { "requests": [
//!   { "arrival_us": 0,  "d_model": 96, "heads": 4, "layers": 2, "seq_len": 17 },
//!   { "arrival_us": 40, "d_model": 96, "heads": 4, "layers": 2, "seq_len": 61 }
//! ] }
//! ```
//!
//! Each request may optionally carry `"deadline_us"` (absolute, from
//! trace start), `"priority"` (`"best-effort"` | `"normal"` |
//! `"interactive"`), `"tenant"` (a non-negative tenant id),
//! `"decode_steps"` (tokens to generate after the prefill), and
//! `"token_deadline_us"` (per-token deadline, relative); all default to
//! the pre-overload behavior (no deadline, normal priority, tenant `0`,
//! one-shot encode).

use crate::error::ServeError;
use crate::request::{Priority, ServeRequest};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A finite request stream, sorted by arrival time.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Workload {
    /// The requests, ascending by `arrival_ns`.
    pub requests: Vec<ServeRequest>,
}

impl Workload {
    /// Parse the JSON trace dialect documented at the module level.
    ///
    /// # Errors
    /// [`ServeError::Trace`] with a byte offset on any malformed input;
    /// [`ServeError::EmptyTrace`] when the file parses but holds no
    /// requests.
    pub fn from_json(text: &str) -> Result<Self, ServeError> {
        let value = json::parse(text)?;
        let top = value.as_object(0, "top level")?;
        let requests_val = top
            .iter()
            .rev()
            .find(|(k, _)| k == "requests")
            .map(|(_, v)| v)
            .ok_or_else(|| trace_err(0, "missing \"requests\" key"))?;
        let items = requests_val.as_array(0, "\"requests\"")?;
        let mut requests = Vec::with_capacity(items.len());
        for (i, item) in items.iter().enumerate() {
            requests.push(request_from_value(item, i as u64)?);
        }
        if requests.is_empty() {
            return Err(ServeError::EmptyTrace);
        }
        requests.sort_by_key(|r| (r.arrival_ns, r.id));
        Ok(Self { requests })
    }

    /// Render back to the JSON trace dialect (round-trips through
    /// [`from_json`](Self::from_json) up to request ids).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{ \"requests\": [\n");
        for (i, r) in self.requests.iter().enumerate() {
            let mut extra = String::new();
            if let Some(d) = r.deadline_ns {
                extra.push_str(&format!(", \"deadline_us\": {}", d / 1_000));
            }
            if r.priority != Priority::Normal {
                extra.push_str(&format!(", \"priority\": \"{}\"", r.priority));
            }
            if r.tenant != 0 {
                extra.push_str(&format!(", \"tenant\": {}", r.tenant));
            }
            if r.decode_steps != 0 {
                extra.push_str(&format!(", \"decode_steps\": {}", r.decode_steps));
            }
            if let Some(t) = r.token_deadline_ns {
                extra.push_str(&format!(", \"token_deadline_us\": {}", t / 1_000));
            }
            out.push_str(&format!(
                "  {{ \"arrival_us\": {}, \"d_model\": {}, \"heads\": {}, \"layers\": {}, \"seq_len\": {}{} }}{}\n",
                r.arrival_ns / 1_000,
                r.d_model,
                r.heads,
                r.layers,
                r.seq_len,
                extra,
                if i + 1 == self.requests.len() { "" } else { "," }
            ));
        }
        out.push_str("] }\n");
        out
    }

    /// Generate a Poisson-arrival workload: `n` requests at `rate_per_s`
    /// mean arrival rate, shapes drawn uniformly from `classes` (each a
    /// `(d_model, heads, layers)` triple) with sequence lengths uniform
    /// in `seq_range`. Deterministic in `seed`.
    #[must_use]
    pub fn poisson(
        n: usize,
        rate_per_s: f64,
        classes: &[(usize, usize, usize)],
        seq_range: (usize, usize),
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let rate = if rate_per_s > 0.0 { rate_per_s } else { 1.0 };
        let classes: &[(usize, usize, usize)] =
            if classes.is_empty() { &[(96, 4, 2)] } else { classes };
        let (lo, hi) = (seq_range.0.max(1), seq_range.1.max(seq_range.0.max(1)));
        let mut t_ns = 0u64;
        let mut requests = Vec::with_capacity(n);
        for id in 0..n as u64 {
            // exponential interarrival via inverse transform
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            let gap_s = -u.ln() / rate;
            t_ns = t_ns.saturating_add((gap_s * 1e9) as u64);
            let (d_model, heads, layers) = classes[rng.gen_range(0..classes.len())];
            let seq_len = rng.gen_range(lo..=hi);
            requests.push(ServeRequest {
                id,
                arrival_ns: t_ns,
                d_model,
                heads,
                layers,
                seq_len,
                ..ServeRequest::default()
            });
        }
        Self { requests }
    }

    /// Stamp every request with a completion deadline `rel_ns` after its
    /// arrival (builder-style, for overload experiments).
    #[must_use]
    pub fn with_deadline(mut self, rel_ns: u64) -> Self {
        for r in &mut self.requests {
            r.deadline_ns = Some(r.arrival_ns.saturating_add(rel_ns));
        }
        self
    }

    /// Assign priorities round-robin from `cycle` (builder-style;
    /// deterministic, so seeded workloads stay replayable). An empty
    /// cycle leaves priorities untouched.
    #[must_use]
    pub fn with_priorities(mut self, cycle: &[Priority]) -> Self {
        if cycle.is_empty() {
            return self;
        }
        for (i, r) in self.requests.iter_mut().enumerate() {
            r.priority = cycle[i % cycle.len()];
        }
        self
    }

    /// Assign tenant ids round-robin across `tenants` tenants
    /// (builder-style, deterministic). `tenants == 0` leaves the trace
    /// single-tenant.
    #[must_use]
    pub fn with_tenants(mut self, tenants: u32) -> Self {
        if tenants == 0 {
            return self;
        }
        for (i, r) in self.requests.iter_mut().enumerate() {
            r.tenant = (i as u32) % tenants;
        }
        self
    }

    /// Turn every request into a generation request emitting `steps`
    /// tokens after its prefill, with an optional per-token deadline
    /// `token_deadline_ns` after the previous token (builder-style,
    /// deterministic). `steps == 0` leaves the trace one-shot.
    #[must_use]
    pub fn with_decode(mut self, steps: u32, token_deadline_ns: Option<u64>) -> Self {
        if steps == 0 {
            return self;
        }
        for r in &mut self.requests {
            r.decode_steps = steps;
            r.token_deadline_ns = token_deadline_ns;
        }
        self
    }

    /// Total trace span in seconds (first arrival is relative to zero).
    #[must_use]
    pub fn span_s(&self) -> f64 {
        self.requests.last().map_or(0.0, |r| r.arrival_ns as f64 / 1e9)
    }

    /// Iterate the requests in arrival order without copying them —
    /// the streaming face of an eager workload. For a source that can
    /// be handed to [`Fleet::run`](crate::Fleet::run) see
    /// [`WorkloadStream`](crate::WorkloadStream) (borrowing) or the
    /// [`WorkloadSource`](crate::WorkloadSource) impl on `Workload`
    /// itself (consuming).
    pub fn iter(&self) -> impl Iterator<Item = &ServeRequest> {
        self.requests.iter()
    }
}

impl<'a> IntoIterator for &'a Workload {
    type Item = &'a ServeRequest;
    type IntoIter = std::slice::Iter<'a, ServeRequest>;

    fn into_iter(self) -> Self::IntoIter {
        self.requests.iter()
    }
}

/// Parse one request object from the trace dialect (shared by the eager
/// array parser above and the lazy JSON-lines reader in
/// [`crate::source`]). `id` is the request's index in its container —
/// array position or line ordinal.
pub(crate) fn request_from_value(item: &json::Value, id: u64) -> Result<ServeRequest, ServeError> {
    let obj = item.as_object(0, "request")?;
    let field = |name: &str| -> Result<u64, ServeError> {
        obj.iter()
            .rev()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_u64(0, name))
            .ok_or_else(|| trace_err(0, format!("request {id} missing \"{name}\"")))?
    };
    let opt_field = |name: &str| -> Option<&json::Value> {
        obj.iter().rev().find(|(k, _)| k == name).map(|(_, v)| v)
    };
    let deadline_ns = match opt_field("deadline_us") {
        Some(v) => Some(v.as_u64(0, "deadline_us")?.saturating_mul(1_000)),
        None => None,
    };
    let priority = match opt_field("priority") {
        Some(v) => {
            let s = v.as_str(0, "priority")?;
            Priority::parse(s).ok_or_else(|| {
                trace_err(
                    0,
                    format!(
                        "request {id}: unknown priority {s:?} \
                         (want best-effort | normal | interactive)"
                    ),
                )
            })?
        }
        None => Priority::Normal,
    };
    let tenant = match opt_field("tenant") {
        Some(v) => {
            let raw = v.as_u64(0, "tenant")?;
            u32::try_from(raw)
                .map_err(|_| trace_err(0, format!("request {id}: tenant {raw} out of range")))?
        }
        None => 0,
    };
    let decode_steps = match opt_field("decode_steps") {
        Some(v) => {
            let raw = v.as_u64(0, "decode_steps")?;
            u32::try_from(raw).map_err(|_| {
                trace_err(0, format!("request {id}: decode_steps {raw} out of range"))
            })?
        }
        None => 0,
    };
    let token_deadline_ns = match opt_field("token_deadline_us") {
        Some(v) => Some(v.as_u64(0, "token_deadline_us")?.saturating_mul(1_000)),
        None => None,
    };
    Ok(ServeRequest {
        id,
        arrival_ns: field("arrival_us")?.saturating_mul(1_000),
        d_model: field("d_model")? as usize,
        heads: field("heads")? as usize,
        layers: field("layers")? as usize,
        seq_len: field("seq_len")? as usize,
        priority,
        deadline_ns,
        tenant,
        decode_steps,
        token_deadline_ns,
    })
}

fn trace_err(at: usize, msg: impl Into<String>) -> ServeError {
    ServeError::Trace { at, msg: msg.into() }
}

/// A minimal total JSON reader: just enough for the trace dialect, with
/// a nesting cap so deeply nested adversarial input errors out instead
/// of overflowing the stack. Crate-visible so the lazy JSON-lines
/// source can parse one request object per line through the same
/// grammar.
pub(crate) mod json {
    use super::{trace_err, ServeError};

    const MAX_DEPTH: usize = 32;

    /// A parsed JSON value (numbers restricted to unsigned integers —
    /// all the trace format needs).
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// Unsigned integer.
        UInt(u64),
        /// String.
        Str(String),
        /// `true` / `false`.
        Bool(bool),
        /// `null`.
        Null,
        /// Array.
        Array(Vec<Value>),
        /// Object as an ordered key-value list.
        Object(Vec<(String, Value)>),
    }

    impl Value {
        pub fn as_object(&self, at: usize, what: &str) -> Result<&[(String, Value)], ServeError> {
            match self {
                Value::Object(kv) => Ok(kv),
                other => Err(trace_err(at, format!("{what} must be an object, got {other:?}"))),
            }
        }

        pub fn as_array(&self, at: usize, what: &str) -> Result<&[Value], ServeError> {
            match self {
                Value::Array(v) => Ok(v),
                other => Err(trace_err(at, format!("{what} must be an array, got {other:?}"))),
            }
        }

        pub fn as_u64(&self, at: usize, what: &str) -> Result<u64, ServeError> {
            match self {
                Value::UInt(n) => Ok(*n),
                other => Err(trace_err(
                    at,
                    format!("{what} must be a non-negative integer, got {other:?}"),
                )),
            }
        }

        pub fn as_str(&self, at: usize, what: &str) -> Result<&str, ServeError> {
            match self {
                Value::Str(s) => Ok(s),
                other => Err(trace_err(at, format!("{what} must be a string, got {other:?}"))),
            }
        }
    }

    pub fn parse(text: &str) -> Result<Value, ServeError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(trace_err(p.pos, "trailing data after JSON value"));
        }
        Ok(v)
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl Parser<'_> {
        fn peek(&self) -> Option<u8> {
            self.bytes.get(self.pos).copied()
        }

        fn skip_ws(&mut self) {
            while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
                self.pos += 1;
            }
        }

        fn expect(&mut self, b: u8) -> Result<(), ServeError> {
            if self.peek() == Some(b) {
                self.pos += 1;
                Ok(())
            } else {
                Err(trace_err(self.pos, format!("expected '{}'", b as char)))
            }
        }

        fn value(&mut self, depth: usize) -> Result<Value, ServeError> {
            if depth > MAX_DEPTH {
                return Err(trace_err(self.pos, "nesting too deep"));
            }
            match self.peek() {
                Some(b'{') => self.object(depth),
                Some(b'[') => self.array(depth),
                Some(b'"') => Ok(Value::Str(self.string()?)),
                Some(b'0'..=b'9') => self.number(),
                Some(b't') => self.keyword("true", Value::Bool(true)),
                Some(b'f') => self.keyword("false", Value::Bool(false)),
                Some(b'n') => self.keyword("null", Value::Null),
                Some(c) => Err(trace_err(self.pos, format!("unexpected byte '{}'", c as char))),
                None => Err(trace_err(self.pos, "unexpected end of input")),
            }
        }

        fn keyword(&mut self, word: &str, v: Value) -> Result<Value, ServeError> {
            if self.bytes[self.pos..].starts_with(word.as_bytes()) {
                self.pos += word.len();
                Ok(v)
            } else {
                Err(trace_err(self.pos, format!("expected '{word}'")))
            }
        }

        fn number(&mut self) -> Result<Value, ServeError> {
            let start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if matches!(self.peek(), Some(b'.' | b'e' | b'E' | b'-' | b'+')) {
                return Err(trace_err(self.pos, "only unsigned integers are supported"));
            }
            let text = core::str::from_utf8(&self.bytes[start..self.pos])
                .map_err(|_| trace_err(start, "invalid number"))?;
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| trace_err(start, "integer out of range"))
        }

        fn string(&mut self) -> Result<String, ServeError> {
            self.expect(b'"')?;
            let mut out = String::new();
            loop {
                match self.peek() {
                    Some(b'"') => {
                        self.pos += 1;
                        return Ok(out);
                    }
                    Some(b'\\') => {
                        self.pos += 1;
                        match self.peek() {
                            Some(c @ (b'"' | b'\\' | b'/')) => {
                                out.push(c as char);
                                self.pos += 1;
                            }
                            Some(b'n') => {
                                out.push('\n');
                                self.pos += 1;
                            }
                            Some(b't') => {
                                out.push('\t');
                                self.pos += 1;
                            }
                            _ => return Err(trace_err(self.pos, "unsupported escape")),
                        }
                    }
                    Some(_) => {
                        // consume one UTF-8 scalar, not one byte
                        let rest = core::str::from_utf8(&self.bytes[self.pos..])
                            .map_err(|_| trace_err(self.pos, "invalid UTF-8 in string"))?;
                        let ch = rest
                            .chars()
                            .next()
                            .ok_or_else(|| trace_err(self.pos, "unterminated string"))?;
                        out.push(ch);
                        self.pos += ch.len_utf8();
                    }
                    None => return Err(trace_err(self.pos, "unterminated string")),
                }
            }
        }

        fn array(&mut self, depth: usize) -> Result<Value, ServeError> {
            self.expect(b'[')?;
            let mut items = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b']') {
                self.pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                self.skip_ws();
                items.push(self.value(depth + 1)?);
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b']') => {
                        self.pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(trace_err(self.pos, "expected ',' or ']'")),
                }
            }
        }

        fn object(&mut self, depth: usize) -> Result<Value, ServeError> {
            self.expect(b'{')?;
            let mut kv = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return Ok(Value::Object(kv));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.skip_ws();
                self.expect(b':')?;
                self.skip_ws();
                let value = self.value(depth + 1)?;
                kv.push((key, value));
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b'}') => {
                        self.pos += 1;
                        return Ok(Value::Object(kv));
                    }
                    _ => return Err(trace_err(self.pos, "expected ',' or '}'")),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_through_json() {
        let w = Workload::poisson(20, 5_000.0, &[(96, 4, 2), (128, 4, 2)], (8, 64), 7);
        let back = Workload::from_json(&w.to_json()).unwrap();
        assert_eq!(back.requests.len(), 20);
        for (a, b) in w.requests.iter().zip(&back.requests) {
            assert_eq!(
                (a.d_model, a.heads, a.layers, a.seq_len),
                (b.d_model, b.heads, b.layers, b.seq_len)
            );
            // to_json rounds to whole microseconds
            assert_eq!(a.arrival_ns / 1_000, b.arrival_ns / 1_000);
        }
    }

    #[test]
    fn poisson_is_deterministic_and_sorted() {
        let a = Workload::poisson(50, 1_000.0, &[(96, 4, 2)], (8, 32), 42);
        let b = Workload::poisson(50, 1_000.0, &[(96, 4, 2)], (8, 32), 42);
        assert_eq!(a, b);
        assert!(a.requests.windows(2).all(|w| w[0].arrival_ns <= w[1].arrival_ns));
        assert!(a.requests.iter().all(|r| (8..=32).contains(&r.seq_len)));
    }

    #[test]
    fn parse_rejects_garbage_without_panicking() {
        for bad in [
            "",
            "garbage",
            "{",
            "{ \"requests\": }",
            "{ \"requests\": [ { \"arrival_us\": -4 } ] }",
            "{ \"requests\": [ { \"arrival_us\": 1e9 } ] }",
            "{ \"requests\": [ {} ] }",
            "{ \"requests\": [] }",
            "{ \"requests\": [ 3 ] }",
            "{\"requests\":[{\"arrival_us\":0,\"d_model\":96,\"heads\":4,\"layers\":2,\"seq_len\":8}]} x",
            &("[".repeat(100) + &"]".repeat(100)),
            "{ \"requests\": [ { \"arrival_us\": 99999999999999999999 } ] }",
        ] {
            let r = Workload::from_json(bad);
            assert!(r.is_err(), "{bad:?} should be rejected, got {r:?}");
        }
    }

    #[test]
    fn parse_accepts_whitespace_and_extra_keys() {
        let text = r#"
        {
          "comment": "extra keys are ignored",
          "requests": [
            { "seq_len": 8, "layers": 2, "heads": 4, "d_model": 96, "arrival_us": 10 }
          ]
        }"#;
        let w = Workload::from_json(text).unwrap();
        assert_eq!(w.requests.len(), 1);
        assert_eq!(w.requests[0].arrival_ns, 10_000);
        assert_eq!(w.requests[0].seq_len, 8);
    }

    #[test]
    fn deadline_and_priority_round_trip() {
        let w = Workload::poisson(6, 5_000.0, &[(96, 4, 2)], (8, 16), 3)
            .with_deadline(2_000_000)
            .with_priorities(&[Priority::BestEffort, Priority::Normal, Priority::Interactive]);
        let back = Workload::from_json(&w.to_json()).unwrap();
        for (a, b) in w.requests.iter().zip(&back.requests) {
            assert_eq!(a.priority, b.priority);
            assert_eq!(a.deadline_ns.map(|d| d / 1_000), b.deadline_ns.map(|d| d / 1_000));
        }
    }

    #[test]
    fn overload_fields_are_optional_and_validated() {
        let plain = r#"{ "requests": [
            { "arrival_us": 1, "d_model": 96, "heads": 4, "layers": 2, "seq_len": 8 }
        ] }"#;
        let w = Workload::from_json(plain).unwrap();
        assert_eq!(w.requests[0].priority, Priority::Normal);
        assert_eq!(w.requests[0].deadline_ns, None);
        let tagged = r#"{ "requests": [
            { "arrival_us": 1, "d_model": 96, "heads": 4, "layers": 2, "seq_len": 8,
              "deadline_us": 500, "priority": "interactive" }
        ] }"#;
        let w = Workload::from_json(tagged).unwrap();
        assert_eq!(w.requests[0].priority, Priority::Interactive);
        assert_eq!(w.requests[0].deadline_ns, Some(500_000));
        for bad in [
            r#"{ "requests": [ { "arrival_us": 1, "d_model": 96, "heads": 4, "layers": 2,
                 "seq_len": 8, "priority": "urgent" } ] }"#,
            r#"{ "requests": [ { "arrival_us": 1, "d_model": 96, "heads": 4, "layers": 2,
                 "seq_len": 8, "priority": 3 } ] }"#,
            r#"{ "requests": [ { "arrival_us": 1, "d_model": 96, "heads": 4, "layers": 2,
                 "seq_len": 8, "deadline_us": "soon" } ] }"#,
        ] {
            assert!(Workload::from_json(bad).is_err(), "{bad} must be rejected");
        }
    }

    #[test]
    fn tenant_field_is_optional_round_trips_and_is_validated() {
        let plain = r#"{ "requests": [
            { "arrival_us": 1, "d_model": 96, "heads": 4, "layers": 2, "seq_len": 8 }
        ] }"#;
        assert_eq!(Workload::from_json(plain).unwrap().requests[0].tenant, 0);
        let tagged = r#"{ "requests": [
            { "arrival_us": 1, "d_model": 96, "heads": 4, "layers": 2, "seq_len": 8, "tenant": 2 }
        ] }"#;
        assert_eq!(Workload::from_json(tagged).unwrap().requests[0].tenant, 2);
        let w = Workload::poisson(9, 5_000.0, &[(96, 4, 2)], (8, 16), 3).with_tenants(3);
        assert_eq!(w.requests.iter().map(|r| r.tenant).collect::<Vec<_>>().len(), 9);
        let back = Workload::from_json(&w.to_json()).unwrap();
        for (a, b) in w.requests.iter().zip(&back.requests) {
            assert_eq!(a.tenant, b.tenant);
        }
        for bad in [
            r#"{ "requests": [ { "arrival_us": 1, "d_model": 96, "heads": 4, "layers": 2,
                 "seq_len": 8, "tenant": "gold" } ] }"#,
            r#"{ "requests": [ { "arrival_us": 1, "d_model": 96, "heads": 4, "layers": 2,
                 "seq_len": 8, "tenant": 4294967296 } ] }"#,
        ] {
            assert!(Workload::from_json(bad).is_err(), "{bad} must be rejected");
        }
    }

    #[test]
    fn decode_fields_are_optional_round_trip_and_are_validated() {
        let plain = r#"{ "requests": [
            { "arrival_us": 1, "d_model": 96, "heads": 4, "layers": 2, "seq_len": 8 }
        ] }"#;
        let r = Workload::from_json(plain).unwrap().requests[0];
        assert_eq!((r.decode_steps, r.token_deadline_ns), (0, None));
        let tagged = r#"{ "requests": [
            { "arrival_us": 1, "d_model": 96, "heads": 4, "layers": 2, "seq_len": 8,
              "decode_steps": 6, "token_deadline_us": 250 }
        ] }"#;
        let r = Workload::from_json(tagged).unwrap().requests[0];
        assert_eq!(r.decode_steps, 6);
        assert_eq!(r.token_deadline_ns, Some(250_000));
        let w =
            Workload::poisson(5, 5_000.0, &[(96, 4, 2)], (8, 16), 3).with_decode(4, Some(300_000));
        let back = Workload::from_json(&w.to_json()).unwrap();
        for (a, b) in w.requests.iter().zip(&back.requests) {
            assert_eq!(a.decode_steps, b.decode_steps);
            assert_eq!(a.token_deadline_ns, b.token_deadline_ns);
        }
        for bad in [
            r#"{ "requests": [ { "arrival_us": 1, "d_model": 96, "heads": 4, "layers": 2,
                 "seq_len": 8, "decode_steps": "many" } ] }"#,
            r#"{ "requests": [ { "arrival_us": 1, "d_model": 96, "heads": 4, "layers": 2,
                 "seq_len": 8, "decode_steps": 4294967296 } ] }"#,
            r#"{ "requests": [ { "arrival_us": 1, "d_model": 96, "heads": 4, "layers": 2,
                 "seq_len": 8, "token_deadline_us": "soon" } ] }"#,
        ] {
            assert!(Workload::from_json(bad).is_err(), "{bad} must be rejected");
        }
    }

    #[test]
    fn unsorted_arrivals_get_sorted() {
        let text = r#"{ "requests": [
            { "arrival_us": 50, "d_model": 96, "heads": 4, "layers": 2, "seq_len": 8 },
            { "arrival_us": 10, "d_model": 96, "heads": 4, "layers": 2, "seq_len": 9 }
        ] }"#;
        let w = Workload::from_json(text).unwrap();
        assert_eq!(w.requests[0].seq_len, 9);
        assert!(w.requests[0].arrival_ns < w.requests[1].arrival_ns);
    }
}
