//! The unified run description: one [`ServePlan`] in, one
//! [`ServeOutcome`] out.
//!
//! PR 5 grew four parallel `Fleet` entry points (`serve`,
//! `serve_with_responses`, `serve_traced`, `serve_serial_baseline`),
//! each hard-wired to an eager [`Workload`](crate::Workload) and each
//! returning a different tuple. A plan collapses them into data: *what*
//! to serve (any [`WorkloadSource`]), *how* to account it
//! ([`MetricsMode`]), and *which* extras to produce (per-request
//! responses, an execution trace, periodic [`FleetSnapshot`]s, or a
//! resume from one). The legacy methods survive as deprecated shims
//! over [`Fleet::run`](crate::Fleet::run), pinned byte-exact by the
//! `serve_equiv` tests.
//!
//! Invalid combinations are rejected up front by
//! [`Fleet::run`](crate::Fleet::run) as [`ServeError::Plan`] — e.g.
//! tracing a snapshotting run (the trace ring buffer is not
//! checkpointable) or collecting responses under sketch metrics (the
//! sketch's whole point is not retaining them).

use crate::error::ServeError;
use crate::fleet::snapshot::FleetSnapshot;
use crate::report::ServeReport;
use crate::request::ServeResponse;
use crate::source::{WorkloadSource, WorkloadStream};
use crate::trace::Workload;
use protea_hwsim::ExecTrace;

/// How completions are aggregated into the report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MetricsMode {
    /// Keep every [`ServeResponse`]; percentiles are exact
    /// nearest-rank. Memory grows with the number of completions.
    #[default]
    Exact,
    /// Fold each completion into the O(1) [`StreamMetrics`]
    /// log-histogram sketch (see
    /// [`LatencySketch`](crate::LatencySketch) for the error bound).
    Sketch,
}

/// Where a plan's requests come from.
pub(crate) enum PlanSource<'a> {
    /// Borrowed eager workload (the legacy entry points' path).
    Workload(WorkloadStream<'a>),
    /// Any caller-supplied streaming source.
    Dyn(&'a mut dyn WorkloadSource),
}

/// A declarative description of one serving run.
///
/// Build with [`ServePlan::workload`] (borrow an eager
/// [`Workload`]) or [`ServePlan::stream`] (any [`WorkloadSource`]),
/// chain the builder methods, and execute with
/// [`Fleet::run`](crate::Fleet::run).
pub struct ServePlan<'a> {
    pub(crate) source: PlanSource<'a>,
    pub(crate) metrics: MetricsMode,
    pub(crate) collect_responses: bool,
    pub(crate) traced: bool,
    pub(crate) serial: bool,
    pub(crate) snapshot_every: Option<u64>,
    pub(crate) resume: Option<FleetSnapshot>,
}

impl<'a> ServePlan<'a> {
    fn from_source(source: PlanSource<'a>) -> Self {
        Self {
            source,
            metrics: MetricsMode::Exact,
            collect_responses: false,
            traced: false,
            serial: false,
            snapshot_every: None,
            resume: None,
        }
    }

    /// Serve a borrowed eager [`Workload`].
    #[must_use]
    pub fn workload(workload: &'a Workload) -> Self {
        Self::from_source(PlanSource::Workload(WorkloadStream::new(workload)))
    }

    /// Serve from any streaming [`WorkloadSource`] — the O(1)-memory
    /// path for traces that never fit in RAM.
    #[must_use]
    pub fn stream(source: &'a mut dyn WorkloadSource) -> Self {
        Self::from_source(PlanSource::Dyn(source))
    }

    /// Select the metrics accumulation mode (default
    /// [`MetricsMode::Exact`]).
    #[must_use]
    pub fn metrics(mut self, mode: MetricsMode) -> Self {
        self.metrics = mode;
        self
    }

    /// Also return the individual completion records in
    /// [`ServeOutcome::responses`]. Requires [`MetricsMode::Exact`].
    #[must_use]
    pub fn collect_responses(mut self) -> Self {
        self.collect_responses = true;
        self
    }

    /// Arm the fleet-level span recorder; the trace lands in
    /// [`ServeOutcome::trace`]. Tracing is observational — the report
    /// is byte-identical to the untraced run. Incompatible with
    /// snapshotting and resuming (the ring buffer is not
    /// checkpointable).
    #[must_use]
    pub fn traced(mut self) -> Self {
        self.traced = true;
        self
    }

    /// Run the serial baseline instead of the batched fleet: one card,
    /// no batching, every request alone (still padded to its bucket) in
    /// arrival order.
    #[must_use]
    pub fn serial_baseline(mut self) -> Self {
        self.serial = true;
        self
    }

    /// Capture a [`FleetSnapshot`] every `every` arrivals; they land in
    /// [`ServeOutcome::snapshots`] and the run's final state hash in
    /// [`ServeOutcome::state_hash`].
    #[must_use]
    pub fn snapshot_every(mut self, every: u64) -> Self {
        self.snapshot_every = Some(every);
        self
    }

    /// Resume from a previously captured snapshot instead of starting
    /// fresh. The fleet config and source must match what the snapshot
    /// recorded; the source is seeked to the captured cursor.
    #[must_use]
    pub fn resume(mut self, snapshot: FleetSnapshot) -> Self {
        self.resume = Some(snapshot);
        self
    }

    /// Reject contradictory flag combinations before any card is built.
    pub(crate) fn validate(&self) -> Result<(), ServeError> {
        let plan_err = |msg: &str| Err(ServeError::Plan { msg: msg.into() });
        if self.snapshot_every == Some(0) {
            return plan_err("snapshot_every must be at least 1");
        }
        if self.traced && (self.snapshot_every.is_some() || self.resume.is_some()) {
            return plan_err(
                "execution tracing cannot be combined with snapshot capture or resume",
            );
        }
        if self.serial && (self.snapshot_every.is_some() || self.resume.is_some()) {
            return plan_err("the serial baseline cannot snapshot or resume");
        }
        if self.collect_responses && self.metrics == MetricsMode::Sketch {
            return plan_err(
                "collect_responses requires exact metrics (the sketch does not retain responses)",
            );
        }
        Ok(())
    }

    /// The plan's source as a trait object (either variant).
    pub(crate) fn source_mut(&mut self) -> &mut dyn WorkloadSource {
        match &mut self.source {
            PlanSource::Workload(ws) => ws,
            PlanSource::Dyn(d) => &mut **d,
        }
    }
}

/// Everything a run produced. Which fields are populated follows the
/// plan: `responses` iff [`ServePlan::collect_responses`], `trace` iff
/// [`ServePlan::traced`], `snapshots`/`state_hash` iff snapshotting or
/// resuming was requested.
pub struct ServeOutcome {
    /// The aggregate report (always produced).
    pub report: ServeReport,
    /// Individual completion records, when collected.
    pub responses: Option<Vec<ServeResponse>>,
    /// The fleet-level execution trace, when armed.
    pub trace: Option<ExecTrace>,
    /// Periodic snapshots, in capture order.
    pub snapshots: Vec<FleetSnapshot>,
    /// FNV-1a hash of the fleet's final state — equal across an
    /// uninterrupted run and a snapshot/resume of the same run.
    pub state_hash: Option<u64>,
}
