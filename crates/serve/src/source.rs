//! Streaming workload sources: requests on demand, O(1) memory.
//!
//! PR 5's fleet walked a fully materialized [`Workload`] — every request
//! resident before the simulation started, which caps a trace at what
//! fits in RAM. [`WorkloadSource`] inverts that: the fleet *pulls* one
//! request at a time, so a 10M-request soak holds exactly one pending
//! arrival in memory, and a trace file streams line by line instead of
//! being slurped.
//!
//! A source is also a *resumable cursor*: [`WorkloadSource::state`]
//! captures its position as a few plain words and
//! [`WorkloadSource::restore`] seeks back, which is what lets a fleet
//! snapshot record "where the workload was" without recording the
//! workload itself.
//!
//! Implementations:
//!
//! * [`PoissonSource`] — generates the exact request sequence of
//!   [`Workload::poisson`] lazily (bit-identical draws, property
//!   tested), resumable from `(emitted, rng state, clock)`;
//! * [`JsonLinesSource`] — streams the **JSON-lines trace dialect**
//!   (below) from a file, one parsed line in memory at a time;
//! * [`WorkloadStream`] — borrows an eager [`Workload`] as a source
//!   (the adapter [`Fleet::run`](crate::Fleet::run) uses for the legacy
//!   entry points);
//! * [`Workload`] itself — a consuming source, for callers that want to
//!   hand the whole workload off.
//!
//! ## The JSON-lines trace dialect
//!
//! One request object per line, same fields as the array dialect in
//! [`crate::trace`] (`arrival_us`, `d_model`, `heads`, `layers`,
//! `seq_len`, optional `deadline_us`, `priority`, and `tenant` — the
//! tenant id defaults to `0`, the single-tenant class); blank lines are
//! ignored; request ids are assigned from the request's ordinal (0-based
//! count of non-blank lines before it):
//!
//! ```text
//! { "arrival_us": 0,  "d_model": 96, "heads": 4, "layers": 2, "seq_len": 17 }
//! { "arrival_us": 40, "d_model": 96, "heads": 4, "layers": 2, "seq_len": 61 }
//! ```
//!
//! Unlike the array dialect — which sorts after parsing — a lazy reader
//! cannot sort, so **arrivals must already be non-decreasing**;
//! out-of-order lines are rejected at open. (Sort offline or load
//! eagerly via [`Workload::from_json`] if your trace is unsorted.)

use crate::error::ServeError;
use crate::request::ServeRequest;
use crate::trace::{json, request_from_value, Workload};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fs::File;
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};

/// A resumable cursor position, as opaque words. The layout is owned by
/// the source that produced it; fleet snapshots store the words
/// verbatim and hand them back on resume.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SourceState {
    /// Source-defined words (e.g. requests emitted, RNG state, clock).
    pub words: Vec<u64>,
}

/// A pull-based request stream with checkpointable position.
///
/// The contract mirrors an iterator, with three additions the fleet
/// needs: errors are first-class (a corrupt trace line surfaces as
/// `Err`, not a panic mid-simulation), deadline presence is knowable
/// up front (it selects the managed scheduling path before the first
/// arrival), and the cursor can be captured/restored for
/// snapshot/replay.
///
/// Requests must be yielded in non-decreasing `arrival_ns` order — the
/// fleet schedules lazily and cannot travel back in time.
pub trait WorkloadSource {
    /// A short tag identifying the source family (recorded in
    /// snapshots; resuming with a different kind of source is an
    /// error).
    fn kind(&self) -> &'static str;

    /// The next request, `Ok(None)` when exhausted.
    ///
    /// # Errors
    /// Source-defined; e.g. a malformed trace line.
    fn next_request(&mut self) -> Result<Option<ServeRequest>, ServeError>;

    /// Whether any request this source will ever yield carries a
    /// deadline. Decided before the run starts — it selects the
    /// managed scheduling path, which cannot change mid-simulation.
    fn has_deadlines(&self) -> bool;

    /// Whether any request this source will ever yield asks for
    /// autoregressive decode steps. Like deadline presence, decided
    /// before the run starts: generation always rides the managed
    /// event-driven path (token emission is scheduled as fleet events).
    /// Defaults to `false`, so every pre-generation source is unchanged.
    fn has_decode(&self) -> bool {
        false
    }

    /// Capture the cursor.
    fn state(&self) -> SourceState;

    /// Seek back to a captured cursor.
    ///
    /// # Errors
    /// [`ServeError::Snapshot`] when the state does not fit this
    /// source (wrong word count, position beyond the end, …).
    fn restore(&mut self, state: &SourceState) -> Result<(), ServeError>;
}

fn state_err(msg: impl Into<String>) -> ServeError {
    ServeError::Snapshot { msg: msg.into() }
}

/// Expect exactly `n` state words.
fn words<const N: usize>(state: &SourceState, kind: &str) -> Result<[u64; N], ServeError> {
    <[u64; N]>::try_from(state.words.as_slice()).map_err(|_| {
        state_err(format!("{kind} source state wants {N} words, got {}", state.words.len()))
    })
}

// ---------------------------------------------------------------------
// Poisson generation
// ---------------------------------------------------------------------

/// Lazy twin of [`Workload::poisson`]: yields the *bit-identical*
/// request sequence (same RNG draw order, same arithmetic) without ever
/// materializing it. Resume state is three words — requests emitted,
/// RNG position, arrival clock — so a 10M-request soak can checkpoint
/// in constant space.
#[derive(Debug, Clone)]
pub struct PoissonSource {
    n: u64,
    emitted: u64,
    rate: f64,
    classes: Vec<(usize, usize, usize)>,
    lo: usize,
    hi: usize,
    rng: StdRng,
    t_ns: u64,
    deadline_rel_ns: Option<u64>,
    tenants: u32,
    decode_steps: u32,
    token_deadline_rel_ns: Option<u64>,
}

impl PoissonSource {
    /// Mirror of [`Workload::poisson`]'s signature and fallback rules:
    /// non-positive rates become 1/s, an empty class list becomes
    /// `[(96, 4, 2)]`, and the sequence range is clamped to `1..`.
    #[must_use]
    pub fn new(
        n: usize,
        rate_per_s: f64,
        classes: &[(usize, usize, usize)],
        seq_range: (usize, usize),
        seed: u64,
    ) -> Self {
        let rate = if rate_per_s > 0.0 { rate_per_s } else { 1.0 };
        let classes: Vec<(usize, usize, usize)> =
            if classes.is_empty() { vec![(96, 4, 2)] } else { classes.to_vec() };
        let lo = seq_range.0.max(1);
        let hi = seq_range.1.max(lo);
        Self {
            n: n as u64,
            emitted: 0,
            rate,
            classes,
            lo,
            hi,
            rng: StdRng::seed_from_u64(seed),
            t_ns: 0,
            deadline_rel_ns: None,
            tenants: 0,
            decode_steps: 0,
            token_deadline_rel_ns: None,
        }
    }

    /// Stamp every generated request with a deadline `rel_ns` after its
    /// arrival (the streaming analogue of [`Workload::with_deadline`]).
    #[must_use]
    pub fn with_deadline(mut self, rel_ns: u64) -> Self {
        self.deadline_rel_ns = Some(rel_ns);
        self
    }

    /// Assign tenant ids round-robin across `tenants` tenants (the
    /// streaming analogue of [`Workload::with_tenants`]; `0` leaves the
    /// stream single-tenant).
    #[must_use]
    pub fn with_tenants(mut self, tenants: u32) -> Self {
        self.tenants = tenants;
        self
    }

    /// Turn every generated request into a generation request emitting
    /// `steps` tokens with an optional per-token deadline (the streaming
    /// analogue of [`Workload::with_decode`]; `0` leaves the stream
    /// one-shot).
    #[must_use]
    pub fn with_decode(mut self, steps: u32, token_deadline_ns: Option<u64>) -> Self {
        self.decode_steps = steps;
        self.token_deadline_rel_ns = if steps == 0 { None } else { token_deadline_ns };
        self
    }

    /// Requests this source will yield in total.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.n
    }
}

impl WorkloadSource for PoissonSource {
    fn kind(&self) -> &'static str {
        "poisson"
    }

    fn next_request(&mut self) -> Result<Option<ServeRequest>, ServeError> {
        if self.emitted >= self.n {
            return Ok(None);
        }
        // Exactly Workload::poisson's per-request draw order.
        let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        let gap_s = -u.ln() / self.rate;
        self.t_ns = self.t_ns.saturating_add((gap_s * 1e9) as u64);
        let (d_model, heads, layers) = self.classes[self.rng.gen_range(0..self.classes.len())];
        let seq_len = self.rng.gen_range(self.lo..=self.hi);
        let id = self.emitted;
        self.emitted += 1;
        Ok(Some(ServeRequest {
            id,
            arrival_ns: self.t_ns,
            d_model,
            heads,
            layers,
            seq_len,
            deadline_ns: self.deadline_rel_ns.map(|rel| self.t_ns.saturating_add(rel)),
            tenant: if self.tenants == 0 { 0 } else { (id % u64::from(self.tenants)) as u32 },
            decode_steps: self.decode_steps,
            token_deadline_ns: self.token_deadline_rel_ns,
            ..ServeRequest::default()
        }))
    }

    fn has_deadlines(&self) -> bool {
        self.deadline_rel_ns.is_some()
    }

    fn has_decode(&self) -> bool {
        self.decode_steps > 0
    }

    fn state(&self) -> SourceState {
        SourceState { words: vec![self.emitted, self.rng.state(), self.t_ns] }
    }

    fn restore(&mut self, state: &SourceState) -> Result<(), ServeError> {
        let [emitted, rng_state, t_ns] = words::<3>(state, "poisson")?;
        if emitted > self.n {
            return Err(state_err(format!("poisson cursor {emitted} beyond total {}", self.n)));
        }
        self.emitted = emitted;
        self.rng = StdRng::seed_from_u64(rng_state);
        self.t_ns = t_ns;
        Ok(())
    }
}

// ---------------------------------------------------------------------
// JSON-lines trace files
// ---------------------------------------------------------------------

/// Streams the JSON-lines trace dialect (module docs) from a file.
///
/// Opening performs one full validation pass — every line parsed, the
/// non-decreasing-arrival rule enforced, deadline presence recorded —
/// in constant memory, then rewinds; serving re-parses lazily. Two
/// passes over the file buy exact up-front errors (a corrupt line 9
/// million fails at open, not mid-soak) and an exact
/// [`has_deadlines`](WorkloadSource::has_deadlines) answer, while the
/// resident set stays one line.
#[derive(Debug)]
pub struct JsonLinesSource {
    path: PathBuf,
    reader: BufReader<File>,
    /// Requests (non-blank lines) emitted so far.
    emitted: u64,
    last_arrival_ns: u64,
    total: u64,
    deadlines: bool,
    decode: bool,
}

impl JsonLinesSource {
    /// Open and validate `path`.
    ///
    /// # Errors
    /// [`ServeError::Trace`] for I/O failures, malformed lines, or
    /// out-of-order arrivals (the error names the offending line);
    /// [`ServeError::EmptyTrace`] when no line holds a request.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, ServeError> {
        let path = path.as_ref().to_path_buf();
        let mut reader = buf_open(&path)?;
        let mut line = String::new();
        let mut lineno = 0usize;
        let (mut total, mut deadlines, mut last_arrival) = (0u64, false, 0u64);
        let mut decode = false;
        loop {
            line.clear();
            let n = reader
                .read_line(&mut line)
                .map_err(|e| trace_line_err(lineno + 1, format!("read failed: {e}")))?;
            if n == 0 {
                break;
            }
            lineno += 1;
            if line.trim().is_empty() {
                continue;
            }
            let req = parse_line(&line, total, lineno)?;
            if req.arrival_ns < last_arrival {
                return Err(trace_line_err(
                    lineno,
                    format!(
                        "arrival_us went backwards ({} < {}); the JSON-lines dialect \
                         requires non-decreasing arrivals (sort the trace, or load it \
                         eagerly with the array dialect)",
                        req.arrival_ns / 1_000,
                        last_arrival / 1_000
                    ),
                ));
            }
            last_arrival = req.arrival_ns;
            deadlines |= req.deadline_ns.is_some();
            decode |= req.is_decode();
            total += 1;
        }
        if total == 0 {
            return Err(ServeError::EmptyTrace);
        }
        Ok(Self {
            reader: buf_open(&path)?,
            path,
            emitted: 0,
            last_arrival_ns: 0,
            total,
            deadlines,
            decode,
        })
    }

    /// Requests in the file (counted during the validation pass).
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }
}

fn buf_open(path: &Path) -> Result<BufReader<File>, ServeError> {
    File::open(path)
        .map(BufReader::new)
        .map_err(|e| trace_line_err(0, format!("cannot open {}: {e}", path.display())))
}

fn trace_line_err(line: usize, msg: String) -> ServeError {
    ServeError::Trace { at: line, msg }
}

fn parse_line(line: &str, id: u64, lineno: usize) -> Result<ServeRequest, ServeError> {
    let value =
        json::parse(line.trim()).and_then(|v| request_from_value(&v, id)).map_err(|e| match e {
            ServeError::Trace { msg, .. } => {
                trace_line_err(lineno, format!("line {lineno}: {msg}"))
            }
            other => other,
        })?;
    Ok(value)
}

impl WorkloadSource for JsonLinesSource {
    fn kind(&self) -> &'static str {
        "json-lines"
    }

    fn next_request(&mut self) -> Result<Option<ServeRequest>, ServeError> {
        let mut line = String::new();
        loop {
            line.clear();
            let n = self
                .reader
                .read_line(&mut line)
                .map_err(|e| trace_line_err(0, format!("read failed: {e}")))?;
            if n == 0 {
                return Ok(None);
            }
            if line.trim().is_empty() {
                continue;
            }
            let req = parse_line(&line, self.emitted, 0)?;
            // Already enforced at open; re-checked so a file mutated
            // between passes cannot smuggle in time travel.
            if req.arrival_ns < self.last_arrival_ns {
                return Err(trace_line_err(
                    0,
                    "trace changed since open: arrivals out of order".into(),
                ));
            }
            self.last_arrival_ns = req.arrival_ns;
            self.emitted += 1;
            return Ok(Some(req));
        }
    }

    fn has_deadlines(&self) -> bool {
        self.deadlines
    }

    fn has_decode(&self) -> bool {
        self.decode
    }

    fn state(&self) -> SourceState {
        SourceState { words: vec![self.emitted, self.last_arrival_ns] }
    }

    fn restore(&mut self, state: &SourceState) -> Result<(), ServeError> {
        let [emitted, last_arrival_ns] = words::<2>(state, "json-lines")?;
        if emitted > self.total {
            return Err(state_err(format!(
                "json-lines cursor {emitted} beyond total {}",
                self.total
            )));
        }
        self.reader = buf_open(&self.path)?;
        let mut skipped = 0u64;
        let mut line = String::new();
        while skipped < emitted {
            line.clear();
            let n = self
                .reader
                .read_line(&mut line)
                .map_err(|e| trace_line_err(0, format!("read failed: {e}")))?;
            if n == 0 {
                return Err(state_err("trace file shrank since the snapshot was taken"));
            }
            if !line.trim().is_empty() {
                skipped += 1;
            }
        }
        self.emitted = emitted;
        self.last_arrival_ns = last_arrival_ns;
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Eager workloads as sources
// ---------------------------------------------------------------------

/// Borrows an eager [`Workload`] as a [`WorkloadSource`] — zero copies,
/// cursor is just an index. This is the adapter the legacy `Fleet`
/// entry points ride through [`Fleet::run`](crate::Fleet::run).
#[derive(Debug, Clone)]
pub struct WorkloadStream<'a> {
    requests: &'a [ServeRequest],
    pos: usize,
    deadlines: bool,
    decode: bool,
}

impl<'a> WorkloadStream<'a> {
    /// Wrap `workload` (which must already be sorted by arrival, as
    /// [`Workload`] guarantees).
    #[must_use]
    pub fn new(workload: &'a Workload) -> Self {
        Self {
            requests: &workload.requests,
            pos: 0,
            deadlines: workload.requests.iter().any(|r| r.deadline_ns.is_some()),
            decode: workload.requests.iter().any(ServeRequest::is_decode),
        }
    }
}

impl WorkloadSource for WorkloadStream<'_> {
    fn kind(&self) -> &'static str {
        "workload-stream"
    }

    fn next_request(&mut self) -> Result<Option<ServeRequest>, ServeError> {
        let r = self.requests.get(self.pos).copied();
        if r.is_some() {
            self.pos += 1;
        }
        Ok(r)
    }

    fn has_deadlines(&self) -> bool {
        self.deadlines
    }

    fn has_decode(&self) -> bool {
        self.decode
    }

    fn state(&self) -> SourceState {
        SourceState { words: vec![self.pos as u64] }
    }

    fn restore(&mut self, state: &SourceState) -> Result<(), ServeError> {
        let [pos] = words::<1>(state, "workload-stream")?;
        if pos as usize > self.requests.len() {
            return Err(state_err(format!(
                "workload cursor {pos} beyond {} requests",
                self.requests.len()
            )));
        }
        self.pos = pos as usize;
        Ok(())
    }
}

/// A [`Workload`] is itself a (consuming) source: requests pop off the
/// front. Note each pop is O(remaining) — for long workloads prefer
/// [`WorkloadStream`], which cursors without shifting. Resume state is
/// the remaining-request count, so restoring assumes the same original
/// workload.
impl WorkloadSource for Workload {
    fn kind(&self) -> &'static str {
        "workload"
    }

    fn next_request(&mut self) -> Result<Option<ServeRequest>, ServeError> {
        if self.requests.is_empty() {
            Ok(None)
        } else {
            Ok(Some(self.requests.remove(0)))
        }
    }

    fn has_deadlines(&self) -> bool {
        self.requests.iter().any(|r| r.deadline_ns.is_some())
    }

    fn has_decode(&self) -> bool {
        self.requests.iter().any(ServeRequest::is_decode)
    }

    fn state(&self) -> SourceState {
        SourceState { words: vec![self.requests.len() as u64] }
    }

    fn restore(&mut self, state: &SourceState) -> Result<(), ServeError> {
        let [remaining] = words::<1>(state, "workload")?;
        let have = self.requests.len() as u64;
        if remaining > have {
            return Err(state_err(format!(
                "workload has {have} requests, cursor wants {remaining} left"
            )));
        }
        self.requests.drain(..(have - remaining) as usize);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(src: &mut dyn WorkloadSource) -> Vec<ServeRequest> {
        std::iter::from_fn(|| src.next_request().unwrap()).collect()
    }

    #[test]
    fn poisson_source_matches_eager_poisson_bit_for_bit() {
        let classes = [(96, 4, 2), (128, 4, 2), (64, 2, 1)];
        let eager = Workload::poisson(500, 20_000.0, &classes, (8, 128), 1234);
        let mut lazy = PoissonSource::new(500, 20_000.0, &classes, (8, 128), 1234);
        assert_eq!(drain(&mut lazy), eager.requests);
    }

    #[test]
    fn poisson_source_honors_eager_fallbacks() {
        let eager = Workload::poisson(40, -3.0, &[], (0, 0), 9);
        let mut lazy = PoissonSource::new(40, -3.0, &[], (0, 0), 9);
        assert_eq!(drain(&mut lazy), eager.requests);
    }

    #[test]
    fn poisson_state_round_trips_mid_stream() {
        let mut a = PoissonSource::new(100, 5_000.0, &[(96, 4, 2)], (8, 64), 7);
        for _ in 0..37 {
            a.next_request().unwrap();
        }
        let state = a.state();
        let rest_a = drain(&mut a);
        let mut b = PoissonSource::new(100, 5_000.0, &[(96, 4, 2)], (8, 64), 7);
        b.restore(&state).unwrap();
        assert_eq!(drain(&mut b), rest_a, "restored source continues the exact sequence");
    }

    #[test]
    fn poisson_deadline_mirrors_with_deadline() {
        let eager =
            Workload::poisson(30, 10_000.0, &[(96, 4, 2)], (8, 16), 5).with_deadline(750_000);
        let mut lazy =
            PoissonSource::new(30, 10_000.0, &[(96, 4, 2)], (8, 16), 5).with_deadline(750_000);
        assert!(lazy.has_deadlines());
        assert_eq!(drain(&mut lazy), eager.requests);
    }

    #[test]
    fn workload_stream_yields_all_and_restores() {
        let w = Workload::poisson(25, 5_000.0, &[(96, 4, 2)], (8, 16), 3);
        let mut s = WorkloadStream::new(&w);
        for _ in 0..10 {
            s.next_request().unwrap();
        }
        let state = s.state();
        let rest: Vec<_> = drain(&mut s);
        let mut s2 = WorkloadStream::new(&w);
        s2.restore(&state).unwrap();
        assert_eq!(drain(&mut s2), rest);
        assert_eq!(rest.len(), 15);
    }

    #[test]
    fn consuming_workload_source_pops_front() {
        let w = Workload::poisson(5, 5_000.0, &[(96, 4, 2)], (8, 16), 3);
        let reference = w.requests.clone();
        let mut consuming = w;
        assert_eq!(drain(&mut consuming), reference);
        assert!(consuming.next_request().unwrap().is_none());
    }

    #[test]
    fn workload_iter_borrows() {
        let w = Workload::poisson(5, 5_000.0, &[(96, 4, 2)], (8, 16), 3);
        assert_eq!(w.iter().count(), 5);
        assert_eq!((&w).into_iter().count(), 5);
        assert_eq!(w.requests.len(), 5, "iter must not consume");
    }

    fn temp_trace(name: &str, body: &str) -> PathBuf {
        let path = std::env::temp_dir().join(format!("protea-{}-{name}", std::process::id()));
        std::fs::write(&path, body).unwrap();
        path
    }

    #[test]
    fn json_lines_round_trip_and_resume() {
        let w = Workload::poisson(20, 5_000.0, &[(96, 4, 2), (128, 4, 2)], (8, 64), 11);
        let body: String =
            w.requests.iter().map(single_line).collect::<Vec<_>>().join("\n") + "\n\n";
        let path = temp_trace("jsonl-rt.jsonl", &body);
        let mut src = JsonLinesSource::open(&path).unwrap();
        assert_eq!(src.total(), 20);
        assert!(!src.has_deadlines());
        for _ in 0..8 {
            src.next_request().unwrap();
        }
        let state = src.state();
        let rest = drain(&mut src);
        assert_eq!(rest.len(), 12);
        src.restore(&state).unwrap();
        assert_eq!(drain(&mut src), rest);
        std::fs::remove_file(path).ok();
    }

    fn single_line(r: &ServeRequest) -> String {
        format!(
            "{{ \"arrival_us\": {}, \"d_model\": {}, \"heads\": {}, \"layers\": {}, \"seq_len\": {} }}",
            r.arrival_ns / 1_000,
            r.d_model,
            r.heads,
            r.layers,
            r.seq_len
        )
    }

    #[test]
    fn json_lines_detects_deadlines_and_assigns_line_ids() {
        let body = concat!(
            "{ \"arrival_us\": 1, \"d_model\": 96, \"heads\": 4, \"layers\": 2, \"seq_len\": 8 }\n",
            "\n",
            "{ \"arrival_us\": 2, \"d_model\": 96, \"heads\": 4, \"layers\": 2, \"seq_len\": 8, ",
            "\"deadline_us\": 900, \"priority\": \"interactive\" }\n",
        );
        let path = temp_trace("jsonl-dl.jsonl", body);
        let mut src = JsonLinesSource::open(&path).unwrap();
        assert!(src.has_deadlines());
        let reqs = drain(&mut src);
        assert_eq!(reqs.len(), 2);
        assert_eq!((reqs[0].id, reqs[1].id), (0, 1));
        assert_eq!(reqs[1].deadline_ns, Some(900_000));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn json_lines_malformed_line_is_a_typed_error_naming_the_line() {
        let body = concat!(
            "{ \"arrival_us\": 1, \"d_model\": 96, \"heads\": 4, \"layers\": 2, \"seq_len\": 8 }\n",
            "\n",
            "{ \"arrival_us\": 2, \"d_model\": 96, \"heads\": 4 }\n",
        );
        let path = temp_trace("jsonl-malformed.jsonl", body);
        // The validation pass catches it at open — typed, no panic.
        let err = JsonLinesSource::open(&path).unwrap_err();
        match &err {
            ServeError::Trace { at, msg } => {
                assert_eq!(*at, 3, "the error must carry the 1-based line number");
                assert!(msg.contains("line 3"), "message must name the line: {msg}");
                assert!(msg.contains("layers"), "message must name the missing field: {msg}");
            }
            other => panic!("expected a Trace error, got {other:?}"),
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn json_lines_truncated_file_is_a_typed_error_not_a_panic() {
        // A trace cut off mid-object (e.g. a partial upload): the last
        // line is unterminated JSON and must fail with the line number.
        let body = concat!(
            "{ \"arrival_us\": 1, \"d_model\": 96, \"heads\": 4, \"layers\": 2, \"seq_len\": 8 }\n",
            "{ \"arrival_us\": 2, \"d_model\": 96, \"hea",
        );
        let path = temp_trace("jsonl-truncated.jsonl", body);
        let err = JsonLinesSource::open(&path).unwrap_err();
        match &err {
            ServeError::Trace { at, msg } => {
                assert_eq!(*at, 2);
                assert!(msg.contains("line 2"), "message must name the line: {msg}");
            }
            other => panic!("expected a Trace error, got {other:?}"),
        }
        // A file truncated to nothing after a trailing newline is empty.
        std::fs::write(&path, "").unwrap();
        assert!(matches!(JsonLinesSource::open(&path), Err(ServeError::EmptyTrace)));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn json_lines_accepts_tenant_with_zero_default() {
        let body = concat!(
            "{ \"arrival_us\": 1, \"d_model\": 96, \"heads\": 4, \"layers\": 2, \"seq_len\": 8 }\n",
            "{ \"arrival_us\": 2, \"d_model\": 96, \"heads\": 4, \"layers\": 2, \"seq_len\": 8, ",
            "\"tenant\": 7 }\n",
        );
        let path = temp_trace("jsonl-tenant.jsonl", body);
        let mut src = JsonLinesSource::open(&path).unwrap();
        let reqs = drain(&mut src);
        assert_eq!((reqs[0].tenant, reqs[1].tenant), (0, 7));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn poisson_tenants_mirror_the_eager_builder() {
        let eager = Workload::poisson(30, 10_000.0, &[(96, 4, 2)], (8, 16), 5).with_tenants(3);
        let mut lazy = PoissonSource::new(30, 10_000.0, &[(96, 4, 2)], (8, 16), 5).with_tenants(3);
        assert_eq!(drain(&mut lazy), eager.requests);
    }

    #[test]
    fn poisson_decode_mirrors_the_eager_builder_and_flips_has_decode() {
        let eager = Workload::poisson(20, 10_000.0, &[(96, 4, 2)], (8, 16), 5)
            .with_decode(6, Some(400_000));
        let mut lazy = PoissonSource::new(20, 10_000.0, &[(96, 4, 2)], (8, 16), 5)
            .with_decode(6, Some(400_000));
        assert!(lazy.has_decode());
        assert_eq!(drain(&mut lazy), eager.requests);
        let plain = PoissonSource::new(5, 10_000.0, &[(96, 4, 2)], (8, 16), 5);
        assert!(!plain.has_decode(), "one-shot sources stay one-shot");
    }

    #[test]
    fn json_lines_detects_decode_requests() {
        let body = concat!(
            "{ \"arrival_us\": 1, \"d_model\": 96, \"heads\": 4, \"layers\": 2, \"seq_len\": 8 }\n",
            "{ \"arrival_us\": 2, \"d_model\": 96, \"heads\": 4, \"layers\": 2, \"seq_len\": 8, ",
            "\"decode_steps\": 3 }\n",
        );
        let path = temp_trace("jsonl-decode.jsonl", body);
        let mut src = JsonLinesSource::open(&path).unwrap();
        assert!(src.has_decode());
        let reqs = drain(&mut src);
        assert_eq!((reqs[0].decode_steps, reqs[1].decode_steps), (0, 3));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn json_lines_rejects_out_of_order_and_garbage() {
        let unsorted = concat!(
            "{ \"arrival_us\": 9, \"d_model\": 96, \"heads\": 4, \"layers\": 2, \"seq_len\": 8 }\n",
            "{ \"arrival_us\": 3, \"d_model\": 96, \"heads\": 4, \"layers\": 2, \"seq_len\": 8 }\n",
        );
        let path = temp_trace("jsonl-bad.jsonl", unsorted);
        let err = JsonLinesSource::open(&path).unwrap_err();
        assert!(format!("{err}").contains("non-decreasing"), "got: {err}");
        std::fs::write(&path, "not json\n").unwrap();
        assert!(JsonLinesSource::open(&path).is_err());
        std::fs::write(&path, "\n\n").unwrap();
        assert!(matches!(JsonLinesSource::open(&path), Err(ServeError::EmptyTrace)));
        std::fs::remove_file(path).ok();
    }
}
