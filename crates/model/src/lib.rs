//! # protea-model — the transformer encoder reference
//!
//! The paper's workload: a BERT-variant transformer **encoder** stack
//! (Fig. 1) with multi-head self-attention (Fig. 2) and a position-wise
//! feed-forward network, residual connections and layer normalization.
//! ProTEA executes it quantized to 8-bit fixed point. This crate is the
//! software-side truth the accelerator is checked against:
//!
//! * [`EncoderConfig`] — the four runtime-programmable hyperparameters
//!   (`d_model`, heads, layers, sequence length) plus presets for every
//!   model configuration the paper's tables exercise.
//! * [`EncoderWeights`] — per-layer weight matrices with seeded random
//!   initialization and a self-contained binary serialization (the role
//!   of the `.pth` files in the paper's flow).
//! * [`float`] — the f32 reference forward pass.
//! * [`quantized`] — the int8 fixed-point golden model: identical
//!   requantization points to the hardware, so the accelerator's tiled
//!   datapath must agree **bit-for-bit** (integer accumulation is
//!   order-independent). Integration tests enforce exactly that.
//! * [`opcount`] — operation counting (the GOPS denominators of Tables
//!   I–III).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod config;
pub mod decoder;
pub mod embedding;
pub mod float;
pub mod opcount;
pub mod pruning;
pub mod quantized;
pub mod serialize;
pub mod weights;
pub mod workload;

pub use analysis::{error_profile, ErrorProfile, LayerError};
pub use config::{AttnScaling, EncoderConfig};
pub use decoder::{
    DecoderKvCache, DecoderWeights, FloatDecoder, KvCacheError, PackedDecoder, QuantizedDecoder,
    QuantizedTransformer,
};
pub use embedding::{Embedding, GeneratorHead};
pub use float::FloatEncoder;
pub use opcount::OpCount;
pub use pruning::{sparsity_of, PruningScheme};
pub use quantized::{QuantSchedule, QuantizedEncoder, QuantizedWeights};
pub use weights::{EncoderWeights, LayerWeights};
