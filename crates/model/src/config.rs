//! Encoder hyperparameters and the paper's model configurations.

use protea_fixed::Activation;

/// How attention logits are scaled before softmax.
///
/// The background section describes the standard `1/√d_k`; the hardware
/// (Algorithm 2, line 9) divides by the **embedding dimension** — a
/// stronger normalization that is cheap in fixed point. Both are
/// supported so the float reference can match either convention.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AttnScaling {
    /// `QKᵀ / √d_k` (Vaswani et al.).
    InvSqrtDk,
    /// `QKᵀ / d_model` (ProTEA Algorithm 2). Default, to mirror hardware.
    #[default]
    InvDmodel,
}

/// Transformer encoder hyperparameters.
///
/// These are exactly the four runtime-programmable quantities of the
/// paper plus the structural constants (FFN expansion ×4, activation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EncoderConfig {
    /// Embedding dimension `d_model`.
    pub d_model: usize,
    /// Number of attention heads `h` (must divide `d_model`).
    pub heads: usize,
    /// Number of encoder layers `N`.
    pub layers: usize,
    /// Sequence length `SL`.
    pub seq_len: usize,
    /// FFN hidden expansion (4 in the paper: `4·d_model`).
    pub ffn_mult: usize,
    /// First-FFN activation.
    pub activation: Activation,
    /// Attention logit scaling convention.
    pub scaling: AttnScaling,
}

impl EncoderConfig {
    /// Construct and validate.
    ///
    /// # Panics
    /// Panics unless `heads` divides `d_model` and all dims are nonzero.
    #[must_use]
    pub fn new(d_model: usize, heads: usize, layers: usize, seq_len: usize) -> Self {
        let cfg = Self {
            d_model,
            heads,
            layers,
            seq_len,
            ffn_mult: 4,
            activation: Activation::Relu,
            scaling: AttnScaling::InvDmodel,
        };
        cfg.validate();
        cfg
    }

    /// Check the invariants (also used when driver registers change).
    pub fn validate(&self) {
        assert!(self.d_model > 0 && self.heads > 0 && self.layers > 0 && self.seq_len > 0);
        assert!(
            self.d_model.is_multiple_of(self.heads),
            "heads ({}) must divide d_model ({})",
            self.heads,
            self.d_model
        );
        assert!(self.ffn_mult > 0);
    }

    /// Per-head dimension `d_k = d_model / h`.
    #[must_use]
    pub fn d_k(&self) -> usize {
        self.d_model / self.heads
    }

    /// FFN hidden dimension (`4·d_model` in the paper).
    #[must_use]
    pub fn d_ffn(&self) -> usize {
        self.ffn_mult * self.d_model
    }

    /// Builder: set activation.
    #[must_use]
    pub fn with_activation(mut self, a: Activation) -> Self {
        self.activation = a;
        self
    }

    /// Builder: set scaling convention.
    #[must_use]
    pub fn with_scaling(mut self, s: AttnScaling) -> Self {
        self.scaling = s;
        self
    }

    /// Builder: set FFN expansion.
    #[must_use]
    pub fn with_ffn_mult(mut self, m: usize) -> Self {
        assert!(m > 0);
        self.ffn_mult = m;
        self.validate();
        self
    }

    // ----- Table I test configurations (1–9) ------------------------------

    /// Table I test #1: SL=64, d=768, h=8, N=12 — the headline config.
    #[must_use]
    pub fn paper_test1() -> Self {
        Self::new(768, 8, 12, 64)
    }

    /// All nine Table I test configurations, in order.
    #[must_use]
    pub fn table1_tests() -> Vec<(&'static str, Self)> {
        vec![
            ("#1", Self::new(768, 8, 12, 64)),
            ("#2", Self::new(768, 4, 12, 64)),
            ("#3", Self::new(768, 2, 12, 64)),
            ("#4", Self::new(768, 8, 8, 64)),
            ("#5", Self::new(768, 8, 4, 64)),
            ("#6", Self::new(512, 8, 12, 64)),
            ("#7", Self::new(256, 8, 12, 64)),
            ("#8", Self::new(768, 8, 12, 128)),
            ("#9", Self::new(768, 8, 12, 32)),
        ]
    }

    /// BERT-base proper (for comparison studies): d=768, h=12, N=12.
    #[must_use]
    pub fn bert_base(seq_len: usize) -> Self {
        Self::new(768, 12, 12, seq_len)
    }

    /// A tiny high-energy-physics style encoder in the spirit of
    /// Wojcicki et al. [23] (their LHC trigger model is far below
    /// BERT scale).
    #[must_use]
    pub fn tiny_hep() -> Self {
        Self::new(64, 2, 1, 20).with_ffn_mult(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn d_k_divides() {
        let c = EncoderConfig::paper_test1();
        assert_eq!(c.d_k(), 96);
        assert_eq!(c.d_ffn(), 3072);
    }

    #[test]
    fn table1_has_nine_tests() {
        let t = EncoderConfig::table1_tests();
        assert_eq!(t.len(), 9);
        assert_eq!(t[0].1, EncoderConfig::paper_test1());
        // tests 2,3 vary heads; 4,5 layers; 6,7 d_model; 8,9 seq_len
        assert_eq!(t[1].1.heads, 4);
        assert_eq!(t[2].1.heads, 2);
        assert_eq!(t[3].1.layers, 8);
        assert_eq!(t[4].1.layers, 4);
        assert_eq!(t[5].1.d_model, 512);
        assert_eq!(t[6].1.d_model, 256);
        assert_eq!(t[7].1.seq_len, 128);
        assert_eq!(t[8].1.seq_len, 32);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn heads_must_divide_d_model() {
        let _ = EncoderConfig::new(768, 7, 1, 8);
    }

    #[test]
    #[should_panic]
    fn zero_dims_rejected() {
        let _ = EncoderConfig::new(0, 1, 1, 1);
    }

    #[test]
    fn builders_compose() {
        let c = EncoderConfig::new(128, 4, 2, 16)
            .with_activation(Activation::Gelu)
            .with_scaling(AttnScaling::InvSqrtDk)
            .with_ffn_mult(2);
        assert_eq!(c.activation, Activation::Gelu);
        assert_eq!(c.d_ffn(), 256);
    }
}
