//! Encoder weights: layout, random initialization.

use crate::config::EncoderConfig;
use protea_tensor::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Weights of one encoder layer.
///
/// Projections are stored full-width (`d × d`); the per-head slices the
/// hardware loads are column ranges `[i·d_k, (i+1)·d_k)`.
#[derive(Debug, Clone)]
pub struct LayerWeights {
    /// Query projection `W_q` (`d × d`).
    pub wq: Matrix<f32>,
    /// Key projection `W_k` (`d × d`).
    pub wk: Matrix<f32>,
    /// Value projection `W_v` (`d × d`).
    pub wv: Matrix<f32>,
    /// Query bias (`d`).
    pub bq: Vec<f32>,
    /// Key bias (`d`).
    pub bk: Vec<f32>,
    /// Value bias (`d`).
    pub bv: Vec<f32>,
    /// Attention output projection (`d × d`) — computed by `FFN1_CE`.
    pub wo: Matrix<f32>,
    /// Output projection bias (`d`).
    pub bo: Vec<f32>,
    /// First FFN transformation (`d × d_ffn`) — `FFN2_CE`.
    pub w1: Matrix<f32>,
    /// First FFN bias (`d_ffn`).
    pub b1: Vec<f32>,
    /// Second FFN transformation (`d_ffn × d`) — `FFN3_CE`.
    pub w2: Matrix<f32>,
    /// Second FFN bias (`d`).
    pub b2: Vec<f32>,
    /// Post-attention LayerNorm gain (`d`).
    pub ln1_gamma: Vec<f32>,
    /// Post-attention LayerNorm bias (`d`).
    pub ln1_beta: Vec<f32>,
    /// Post-FFN LayerNorm gain (`d`).
    pub ln2_gamma: Vec<f32>,
    /// Post-FFN LayerNorm bias (`d`).
    pub ln2_beta: Vec<f32>,
}

impl LayerWeights {
    /// Randomly initialized layer (uniform ±1/√d, the usual fan-in
    /// scaling, with γ=1 and β=0) from a seeded RNG.
    #[must_use]
    pub fn random(cfg: &EncoderConfig, rng: &mut StdRng) -> Self {
        let d = cfg.d_model;
        let f = cfg.d_ffn();
        let bound = 1.0 / (d as f32).sqrt();
        let mat = |rows: usize, cols: usize, rng: &mut StdRng| {
            Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-bound..bound))
        };
        let vect = |n: usize, rng: &mut StdRng| -> Vec<f32> {
            (0..n).map(|_| rng.gen_range(-bound..bound)).collect()
        };
        Self {
            wq: mat(d, d, rng),
            wk: mat(d, d, rng),
            wv: mat(d, d, rng),
            bq: vect(d, rng),
            bk: vect(d, rng),
            bv: vect(d, rng),
            wo: mat(d, d, rng),
            bo: vect(d, rng),
            w1: mat(d, f, rng),
            b1: vect(f, rng),
            w2: mat(f, d, rng),
            b2: vect(d, rng),
            ln1_gamma: vec![1.0; d],
            ln1_beta: vec![0.0; d],
            ln2_gamma: vec![1.0; d],
            ln2_beta: vec![0.0; d],
        }
    }

    /// Total parameter count of this layer.
    #[must_use]
    pub fn param_count(&self) -> usize {
        self.wq.len()
            + self.wk.len()
            + self.wv.len()
            + self.wo.len()
            + self.w1.len()
            + self.w2.len()
            + self.bq.len()
            + self.bk.len()
            + self.bv.len()
            + self.bo.len()
            + self.b1.len()
            + self.b2.len()
            + self.ln1_gamma.len()
            + self.ln1_beta.len()
            + self.ln2_gamma.len()
            + self.ln2_beta.len()
    }
}

/// The whole encoder stack's weights.
#[derive(Debug, Clone)]
pub struct EncoderWeights {
    /// The configuration these weights were built for.
    pub config: EncoderConfig,
    /// One entry per layer.
    pub layers: Vec<LayerWeights>,
}

impl EncoderWeights {
    /// Seeded random initialization (deterministic across runs/platforms
    /// — `StdRng` is a portable PRNG).
    #[must_use]
    pub fn random(cfg: EncoderConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let layers = (0..cfg.layers).map(|_| LayerWeights::random(&cfg, &mut rng)).collect();
        Self { config: cfg, layers }
    }

    /// Total parameter count.
    #[must_use]
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(LayerWeights::param_count).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_follow_config() {
        let cfg = EncoderConfig::new(64, 4, 2, 8);
        let w = EncoderWeights::random(cfg, 7);
        assert_eq!(w.layers.len(), 2);
        let l = &w.layers[0];
        assert_eq!(l.wq.shape(), (64, 64));
        assert_eq!(l.w1.shape(), (64, 256));
        assert_eq!(l.w2.shape(), (256, 64));
        assert_eq!(l.b1.len(), 256);
    }

    #[test]
    fn seeded_init_is_deterministic() {
        let cfg = EncoderConfig::new(32, 2, 1, 4);
        let a = EncoderWeights::random(cfg, 42);
        let b = EncoderWeights::random(cfg, 42);
        assert_eq!(a.layers[0].wq.as_slice(), b.layers[0].wq.as_slice());
        let c = EncoderWeights::random(cfg, 43);
        assert_ne!(a.layers[0].wq.as_slice(), c.layers[0].wq.as_slice());
    }

    #[test]
    fn bert_base_param_count_plausible() {
        // BERT-base encoder stack ≈ 85 M parameters (without embeddings).
        let w = EncoderWeights::random(EncoderConfig::bert_base(64), 1);
        let m = w.param_count() as f64 / 1e6;
        assert!((84.0..87.0).contains(&m), "params = {m} M");
    }

    #[test]
    fn init_is_bounded() {
        let cfg = EncoderConfig::new(64, 4, 1, 4);
        let w = EncoderWeights::random(cfg, 3);
        let bound = 1.0 / 8.0;
        assert!(w.layers[0].wq.as_slice().iter().all(|&x| x.abs() <= bound));
        assert!(w.layers[0].ln1_gamma.iter().all(|&g| g == 1.0));
    }
}
