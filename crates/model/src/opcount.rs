//! Operation counting — the GOPS denominators.
//!
//! Throughput tables report "giga operations per second"; the op count is
//! a convention. We use the standard one (a MAC is two operations:
//! multiply + add) over every arithmetic stage of the encoder, with a
//! full breakdown so alternative conventions can be recomputed from the
//! parts. EXPERIMENTS.md discusses how this compares with the paper's
//! (unstated) convention.

use crate::config::EncoderConfig;

/// Operation-count breakdown for one forward pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpCount {
    /// Q/K/V projections (`3 · 2 · SL · d²` per layer) + bias adds.
    pub qkv: u64,
    /// `Q·Kᵀ` across heads (`2 · SL² · d` per layer), incl. scaling.
    pub qk: u64,
    /// Softmax (exp + sum + normalize per element).
    pub softmax: u64,
    /// `S·V` across heads (`2 · SL² · d` per layer).
    pub sv: u64,
    /// Attention output projection (`2 · SL · d²` per layer).
    pub out_proj: u64,
    /// FFN both transformations (`2 · 2 · SL · d · d_ffn` per layer).
    pub ffn: u64,
    /// Residual adds and layer norms.
    pub norm_residual: u64,
}

impl OpCount {
    /// Count operations for `cfg` (all layers).
    #[must_use]
    pub fn for_config(cfg: &EncoderConfig) -> Self {
        let sl = cfg.seq_len as u64;
        let d = cfg.d_model as u64;
        let df = cfg.d_ffn() as u64;
        let n = cfg.layers as u64;
        let qkv = n * (3 * 2 * sl * d * d + 3 * sl * d);
        let qk = n * (2 * sl * sl * d + sl * sl); // + scaling divides
        let softmax = n * (cfg.heads as u64) * sl * sl * 5;
        let sv = n * 2 * sl * sl * d;
        let out_proj = n * (2 * sl * d * d + sl * d);
        let ffn = n * (2 * sl * d * df + sl * df + 2 * sl * df * d + sl * d + sl * df);
        let norm_residual = n * (2 * sl * d + 2 * 8 * sl * d);
        Self { qkv, qk, softmax, sv, out_proj, ffn, norm_residual }
    }

    /// Total operations.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.qkv + self.qk + self.softmax + self.sv + self.out_proj + self.ffn + self.norm_residual
    }

    /// Only the matrix-multiply operations (the convention that excludes
    /// softmax/LN bookkeeping).
    #[must_use]
    pub fn matmul_only(&self) -> u64 {
        self.qkv + self.qk + self.sv + self.out_proj + self.ffn
    }

    /// Throughput in GOPS given a latency in milliseconds.
    #[must_use]
    pub fn gops(&self, latency_ms: f64) -> f64 {
        assert!(latency_ms > 0.0);
        self.total() as f64 / (latency_ms * 1e-3) / 1e9
    }

    /// The paper's (reverse-engineered) op-count convention.
    ///
    /// Working backwards from Table I (`GOPS × latency`), the published
    /// numbers are consistent — to within 2 % on every test — with a
    /// convention that (a) counts the attention output projection
    /// (`FFN1`) at `4·d²` MACs like the other FFN matrices (matching the
    /// paper's description of the `W_o` array as `d/TS × 4d/TS`), and
    /// (b) for the layer-count tests (#4, #5) keeps the *full 12-layer*
    /// op total while dividing by the shorter measured latency. This
    /// function reproduces (a); (b) is applied by the Table I harness.
    #[must_use]
    pub fn paper_convention(cfg: &EncoderConfig) -> u64 {
        let sl = cfg.seq_len as u64;
        let d = cfg.d_model as u64;
        let n = cfg.layers as u64;
        // 3 (QKV) + 1 (output projection) + 3 × 4 (three FFN engines each
        // counted at 4·d², matching the paper's description of the FFN
        // weight array as d/TS × 4d/TS) = 16 dense d² blocks. This fits
        // every Table I GOPS·latency product within 2 %.
        let dense = 2 * sl * d * d * 16;
        let attn = 2 * 2 * sl * sl * d;
        n * (dense + attn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_test1_magnitude() {
        // Table I #1 reports 53 GOPS at 279 ms → ~14.8 G "paper ops".
        // The standard convention counts ~11.5 G for the same config; the
        // tables report both (EXPERIMENTS.md discusses the gap).
        let ops = OpCount::for_config(&EncoderConfig::paper_test1());
        let g = ops.total() as f64 / 1e9;
        assert!((10.0..13.0).contains(&g), "total = {g} Gops");
    }

    #[test]
    fn ffn_dominates_at_small_sl() {
        // SL ≪ d: the FFN (and projections) dwarf the attention maps —
        // the structural fact behind Table I's weak h-dependence.
        let ops = OpCount::for_config(&EncoderConfig::paper_test1());
        assert!(ops.ffn > 10 * (ops.qk + ops.sv + ops.softmax));
    }

    #[test]
    fn scaling_in_each_dimension() {
        let base = OpCount::for_config(&EncoderConfig::new(256, 4, 4, 32)).total();
        let more_layers = OpCount::for_config(&EncoderConfig::new(256, 4, 8, 32)).total();
        assert_eq!(more_layers, 2 * base);
        let longer = OpCount::for_config(&EncoderConfig::new(256, 4, 4, 64)).total();
        assert!(longer > 2 * base / 10 * 19 / 2); // ≥ ~1.9× (quadratic terms grow faster)
        assert!(longer >= 2 * base - base / 10);
    }

    #[test]
    fn head_count_does_not_change_matmul_ops() {
        let a = OpCount::for_config(&EncoderConfig::new(256, 4, 2, 32));
        let b = OpCount::for_config(&EncoderConfig::new(256, 8, 2, 32));
        assert_eq!(a.matmul_only(), b.matmul_only());
        assert_ne!(a.softmax, b.softmax);
    }

    #[test]
    fn gops_arithmetic() {
        let ops = OpCount::for_config(&EncoderConfig::new(256, 4, 2, 32));
        // gops = total / (10 ms) / 1e9 = total / 1e7
        let g = ops.gops(10.0);
        let expect = ops.total() as f64 / 1e7;
        assert!((g - expect).abs() < expect * 1e-12);
    }

    #[test]
    #[should_panic]
    fn zero_latency_rejected() {
        let _ = OpCount::for_config(&EncoderConfig::new(256, 4, 2, 32)).gops(0.0);
    }

    #[test]
    fn paper_convention_matches_table1_products() {
        // Test #1: 53 GOPS × 279 ms ⇒ ≈ 14.8 Gop.
        let g = OpCount::paper_convention(&EncoderConfig::paper_test1()) as f64 / 1e9;
        assert!((14.0..15.5).contains(&g), "paper-convention total = {g} Gop");
        // Test #8 (SL=128): 54 × 560 ms ⇒ ≈ 30.2 Gop.
        let g8 = OpCount::paper_convention(&EncoderConfig::new(768, 8, 12, 128)) as f64 / 1e9;
        assert!((29.0..31.5).contains(&g8), "SL=128 total = {g8} Gop");
        // Test #6 (d=512): 36 × 186 ms ⇒ ≈ 6.7 Gop.
        let g6 = OpCount::paper_convention(&EncoderConfig::new(512, 8, 12, 64)) as f64 / 1e9;
        assert!((6.2..7.2).contains(&g6), "d=512 total = {g6} Gop");
    }
}
