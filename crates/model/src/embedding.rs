//! Embeddings, positional encoding, and the output head — the parts of
//! Fig. 1 that surround the encoder/decoder stacks.
//!
//! The paper's accelerator consumes pre-embedded sequences ("an input
//! sequence of tokens is first converted into embeddings; the positional
//! encoder adds positional information"), with the embedding done on the
//! host. This module is that host-side stage plus the generator head
//! (`Linear + Softmax` in Fig. 1), so the repository runs true
//! token-in/token-out pipelines.

use crate::config::EncoderConfig;
use protea_tensor::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A token-embedding table with sinusoidal positional encoding.
#[derive(Debug, Clone)]
pub struct Embedding {
    table: Matrix<f32>,
    d_model: usize,
}

impl Embedding {
    /// Random-initialized table for `vocab` tokens (fan-in scaled).
    #[must_use]
    pub fn random(vocab: usize, d_model: usize, seed: u64) -> Self {
        assert!(vocab > 0 && d_model > 0);
        let mut rng = StdRng::seed_from_u64(seed);
        let bound = 1.0 / (d_model as f32).sqrt();
        Self {
            table: Matrix::from_fn(vocab, d_model, |_, _| rng.gen_range(-bound..bound)),
            d_model,
        }
    }

    /// Vocabulary size.
    #[must_use]
    pub fn vocab(&self) -> usize {
        self.table.rows()
    }

    /// The classic sinusoidal positional encoding value for `(pos, i)`.
    #[must_use]
    pub fn positional(pos: usize, i: usize, d_model: usize) -> f32 {
        let exponent = (2 * (i / 2)) as f32 / d_model as f32;
        let angle = pos as f32 / 10_000f32.powf(exponent);
        if i.is_multiple_of(2) {
            angle.sin()
        } else {
            angle.cos()
        }
    }

    /// Embed a token sequence: table lookup + positional encoding.
    ///
    /// # Panics
    /// Panics on out-of-vocabulary token ids.
    #[must_use]
    pub fn embed(&self, tokens: &[u32]) -> Matrix<f32> {
        Matrix::from_fn(tokens.len(), self.d_model, |r, c| {
            let id = tokens[r] as usize;
            assert!(id < self.table.rows(), "token {id} out of vocabulary");
            self.table[(id, c)] + Self::positional(r, c, self.d_model)
        })
    }
}

/// Patch embedding for vision transformers (the paper's intro motivates
/// CV workloads; ViT-style models are encoders over image patches).
/// Non-overlapping `patch × patch` windows of a single-channel image are
/// flattened and linearly projected to `d_model`, with the positional
/// encoding added.
#[derive(Debug, Clone)]
pub struct PatchEmbedding {
    proj: Matrix<f32>,
    patch: usize,
    d_model: usize,
}

impl PatchEmbedding {
    /// Random-initialized projection from `patch²` pixels to `d_model`.
    #[must_use]
    pub fn random(patch: usize, d_model: usize, seed: u64) -> Self {
        assert!(patch > 0 && d_model > 0);
        let mut rng = StdRng::seed_from_u64(seed);
        let bound = 1.0 / (patch as f32);
        Self {
            proj: Matrix::from_fn(patch * patch, d_model, |_, _| rng.gen_range(-bound..bound)),
            patch,
            d_model,
        }
    }

    /// Patch side length.
    #[must_use]
    pub fn patch(&self) -> usize {
        self.patch
    }

    /// Number of patches (sequence length) an `h × w` image produces.
    ///
    /// # Panics
    /// Panics unless `patch` divides both dimensions.
    #[must_use]
    pub fn seq_len(&self, h: usize, w: usize) -> usize {
        assert!(
            h.is_multiple_of(self.patch) && w.is_multiple_of(self.patch),
            "image {h}x{w} not divisible into {}-pixel patches",
            self.patch
        );
        (h / self.patch) * (w / self.patch)
    }

    /// Embed a row-major `h × w` single-channel image into a
    /// `(num_patches × d_model)` sequence.
    #[must_use]
    pub fn embed(&self, image: &Matrix<f32>) -> Matrix<f32> {
        let (h, w) = image.shape();
        let n = self.seq_len(h, w);
        let p = self.patch;
        let cols_of_patches = w / p;
        let mut out = Matrix::<f32>::zeros(n, self.d_model);
        for idx in 0..n {
            let pr = (idx / cols_of_patches) * p;
            let pc = (idx % cols_of_patches) * p;
            // flatten the patch and project
            for d in 0..self.d_model {
                let mut acc = 0f32;
                for dy in 0..p {
                    for dx in 0..p {
                        acc += image[(pr + dy, pc + dx)] * self.proj[(dy * p + dx, d)];
                    }
                }
                out[(idx, d)] = acc + Embedding::positional(idx, d, self.d_model);
            }
        }
        out
    }
}

/// The generator head: project hidden states onto the vocabulary and
/// pick tokens (greedy argmax — sufficient for pipeline exercises).
#[derive(Debug, Clone)]
pub struct GeneratorHead {
    w: Matrix<f32>,
    vocab: usize,
}

impl GeneratorHead {
    /// Random-initialized head.
    #[must_use]
    pub fn random(cfg: &EncoderConfig, vocab: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let bound = 1.0 / (cfg.d_model as f32).sqrt();
        Self { w: Matrix::from_fn(cfg.d_model, vocab, |_, _| rng.gen_range(-bound..bound)), vocab }
    }

    /// Vocabulary size.
    #[must_use]
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Logits over the vocabulary for each position.
    #[must_use]
    pub fn logits(&self, hidden: &Matrix<f32>) -> Matrix<f32> {
        protea_tensor::matmul_naive(hidden, &self.w)
    }

    /// Greedy decode: the argmax token per position (ties → lowest id).
    #[must_use]
    pub fn greedy(&self, hidden: &Matrix<f32>) -> Vec<u32> {
        let l = self.logits(hidden);
        (0..l.rows())
            .map(|r| {
                let row = l.row(r);
                let mut best = 0usize;
                for (i, &v) in row.iter().enumerate() {
                    if v > row[best] {
                        best = i;
                    }
                }
                best as u32
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn embedding_shapes_and_determinism() {
        let e = Embedding::random(100, 32, 9);
        let a = e.embed(&[1, 5, 99]);
        let b = e.embed(&[1, 5, 99]);
        assert_eq!(a.shape(), (3, 32));
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn positions_distinguish_repeated_tokens() {
        let e = Embedding::random(10, 16, 1);
        let m = e.embed(&[3, 3, 3]);
        assert_ne!(m.row(0), m.row(1), "positional encoding must differ by position");
    }

    #[test]
    fn positional_encoding_reference_values() {
        // pos 0: sin(0)=0 on even dims, cos(0)=1 on odd dims.
        assert_eq!(Embedding::positional(0, 0, 64), 0.0);
        assert_eq!(Embedding::positional(0, 1, 64), 1.0);
        // bounded in [-1, 1]
        for pos in 0..50 {
            for i in 0..16 {
                let v = Embedding::positional(pos, i, 16);
                assert!((-1.0..=1.0).contains(&v));
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of vocabulary")]
    fn oov_token_panics() {
        let e = Embedding::random(10, 8, 1);
        let _ = e.embed(&[10]);
    }

    #[test]
    fn greedy_picks_argmax() {
        let cfg = EncoderConfig::new(8, 2, 1, 2);
        let head = GeneratorHead {
            w: Matrix::from_fn(8, 4, |r, c| if r == 0 && c == 2 { 5.0 } else { 0.1 }),
            vocab: 4,
        };
        // hidden row with large first component → token 2 wins
        let hidden = Matrix::from_fn(1, 8, |_, c| if c == 0 { 3.0 } else { 0.0 });
        assert_eq!(head.greedy(&hidden), vec![2]);
        let _ = cfg;
    }

    #[test]
    fn patch_embedding_geometry() {
        let pe = PatchEmbedding::random(4, 32, 5);
        assert_eq!(pe.seq_len(16, 16), 16);
        let img = Matrix::from_fn(16, 16, |r, c| (r * 16 + c) as f32 / 256.0);
        let seq = pe.embed(&img);
        assert_eq!(seq.shape(), (16, 32));
        assert!(seq.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn distinct_patches_embed_distinctly() {
        let pe = PatchEmbedding::random(2, 16, 7);
        let img = Matrix::from_fn(4, 4, |r, c| if r < 2 && c < 2 { 1.0 } else { 0.0 });
        let seq = pe.embed(&img);
        // patch 0 carries signal; patch 3 is all-zero pixels + positional
        assert_ne!(seq.row(0), seq.row(3));
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn indivisible_image_rejected() {
        let pe = PatchEmbedding::random(4, 8, 1);
        let _ = pe.seq_len(10, 16);
    }

    #[test]
    fn head_logits_shape() {
        let cfg = EncoderConfig::new(16, 2, 1, 4);
        let head = GeneratorHead::random(&cfg, 50, 3);
        let hidden = Matrix::from_fn(4, 16, |r, c| (r + c) as f32 * 0.1);
        assert_eq!(head.logits(&hidden).shape(), (4, 50));
        assert_eq!(head.greedy(&hidden).len(), 4);
        assert!(head.greedy(&hidden).iter().all(|&t| t < 50));
    }
}
