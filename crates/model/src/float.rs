//! The f32 reference forward pass (Fig. 1 encoder, Fig. 2 attention).

use crate::config::{AttnScaling, EncoderConfig};
use crate::weights::{EncoderWeights, LayerWeights};
use protea_fixed::Activation;
use protea_tensor::{add_bias_row, matmul_naive, residual_add, transpose, Matrix};

/// The floating-point encoder: the numerical ground truth quantized paths
/// are judged against.
#[derive(Debug, Clone)]
pub struct FloatEncoder {
    weights: EncoderWeights,
}

impl FloatEncoder {
    /// Wrap a weight set.
    #[must_use]
    pub fn new(weights: EncoderWeights) -> Self {
        Self { weights }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &EncoderConfig {
        &self.weights.config
    }

    /// Borrow the weights.
    #[must_use]
    pub fn weights(&self) -> &EncoderWeights {
        &self.weights
    }

    /// Run the full stack on an `SL × d_model` input.
    #[must_use]
    pub fn forward(&self, x: &Matrix<f32>) -> Matrix<f32> {
        let cfg = self.weights.config;
        assert_eq!(x.shape(), (cfg.seq_len, cfg.d_model), "input must be SL × d_model");
        let mut h = x.clone();
        for layer in &self.weights.layers {
            h = self.forward_layer(&h, layer);
        }
        h
    }

    /// One encoder layer: MHA → add&norm → FFN → add&norm.
    #[must_use]
    pub fn forward_layer(&self, x: &Matrix<f32>, w: &LayerWeights) -> Matrix<f32> {
        let attn = self.multi_head_attention(x, w);
        let x1 = layer_norm(&residual_add(x, &attn), &w.ln1_gamma, &w.ln1_beta);
        let ffn = self.feed_forward(&x1, w);
        layer_norm(&residual_add(&x1, &ffn), &w.ln2_gamma, &w.ln2_beta)
    }

    /// Multi-head self-attention including the output projection
    /// (equations (1) and (2)).
    #[must_use]
    pub fn multi_head_attention(&self, x: &Matrix<f32>, w: &LayerWeights) -> Matrix<f32> {
        let cfg = self.weights.config;
        let dk = cfg.d_k();
        let sl = cfg.seq_len;

        // Full projections, then head-sliced views.
        let mut q = matmul_naive(x, &w.wq);
        let mut k = matmul_naive(x, &w.wk);
        let mut v = matmul_naive(x, &w.wv);
        add_bias_row(&mut q, &w.bq);
        add_bias_row(&mut k, &w.bk);
        add_bias_row(&mut v, &w.bv);

        let scale = match cfg.scaling {
            AttnScaling::InvSqrtDk => 1.0 / (dk as f32).sqrt(),
            AttnScaling::InvDmodel => 1.0 / cfg.d_model as f32,
        };

        let mut concat = Matrix::<f32>::zeros(sl, cfg.d_model);
        for head in 0..cfg.heads {
            let c0 = head * dk;
            let qi = q.submatrix(0, c0, sl, dk);
            let ki = k.submatrix(0, c0, sl, dk);
            let vi = v.submatrix(0, c0, sl, dk);
            // S = scale · Q Kᵀ, row-softmax, SV.
            let mut s = matmul_naive(&qi, &transpose(&ki));
            for val in s.as_mut_slice() {
                *val *= scale;
            }
            let p = softmax_rows(&s);
            let sv = matmul_naive(&p, &vi);
            concat.write_submatrix(0, c0, &sv);
        }

        // Output projection (the paper's FFN1_CE).
        let mut out = matmul_naive(&concat, &w.wo);
        add_bias_row(&mut out, &w.bo);
        out
    }

    /// Position-wise FFN: `act(x·W1 + b1)·W2 + b2`.
    #[must_use]
    pub fn feed_forward(&self, x: &Matrix<f32>, w: &LayerWeights) -> Matrix<f32> {
        let cfg = self.weights.config;
        let mut hidden = matmul_naive(x, &w.w1);
        add_bias_row(&mut hidden, &w.b1);
        for val in hidden.as_mut_slice() {
            *val = match cfg.activation {
                Activation::Relu => val.max(0.0),
                Activation::Gelu => gelu_f32(*val),
                Activation::Identity => *val,
            };
        }
        let mut out = matmul_naive(&hidden, &w.w2);
        add_bias_row(&mut out, &w.b2);
        out
    }
}

/// Row-wise softmax.
#[must_use]
pub fn softmax_rows(m: &Matrix<f32>) -> Matrix<f32> {
    let mut out = Matrix::<f32>::zeros(m.rows(), m.cols());
    for r in 0..m.rows() {
        let row = m.row(r);
        let max = row.iter().cloned().fold(f32::MIN, f32::max);
        let exps: Vec<f32> = row.iter().map(|&x| (x - max).exp()).collect();
        let sum: f32 = exps.iter().sum();
        for (c, e) in exps.iter().enumerate() {
            out[(r, c)] = e / sum;
        }
    }
    out
}

/// Row-wise layer normalization with affine parameters.
#[must_use]
pub fn layer_norm(m: &Matrix<f32>, gamma: &[f32], beta: &[f32]) -> Matrix<f32> {
    assert_eq!(m.cols(), gamma.len());
    assert_eq!(m.cols(), beta.len());
    let n = m.cols() as f32;
    let mut out = Matrix::<f32>::zeros(m.rows(), m.cols());
    for r in 0..m.rows() {
        let row = m.row(r);
        let mean = row.iter().sum::<f32>() / n;
        let var = row.iter().map(|&x| (x - mean) * (x - mean)).sum::<f32>() / n;
        let inv = 1.0 / (var + 1e-5).sqrt();
        for c in 0..m.cols() {
            out[(r, c)] = (row[c] - mean) * inv * gamma[c] + beta[c];
        }
    }
    out
}

fn gelu_f32(x: f32) -> f32 {
    // tanh approximation (difference from erf-GELU is < 1e-3, far below
    // the 8-bit quantization the accelerator applies downstream).
    let c = (2.0 / core::f32::consts::PI).sqrt();
    0.5 * x * (1.0 + (c * (x + 0.044715 * x * x * x)).tanh())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weights::EncoderWeights;

    fn tiny() -> FloatEncoder {
        FloatEncoder::new(EncoderWeights::random(EncoderConfig::new(16, 2, 2, 4), 11))
    }

    fn input(sl: usize, d: usize) -> Matrix<f32> {
        Matrix::from_fn(sl, d, |r, c| ((r * 13 + c * 7) % 17) as f32 / 17.0 - 0.5)
    }

    #[test]
    fn forward_shape_preserved() {
        let enc = tiny();
        let x = input(4, 16);
        let y = enc.forward(&x);
        assert_eq!(y.shape(), (4, 16));
        assert!(y.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let m = input(3, 5);
        let p = softmax_rows(&m);
        for r in 0..3 {
            let s: f32 = p.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
            assert!(p.row(r).iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn layer_norm_zero_mean_unit_var() {
        let m = input(3, 16);
        let g = vec![1.0f32; 16];
        let b = vec![0.0f32; 16];
        let y = layer_norm(&m, &g, &b);
        for r in 0..3 {
            let mean: f32 = y.row(r).iter().sum::<f32>() / 16.0;
            let var: f32 = y.row(r).iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / 16.0;
            assert!(mean.abs() < 1e-5);
            assert!((var - 1.0).abs() < 1e-3);
        }
    }

    #[test]
    fn attention_output_rows_are_mixtures_of_values() {
        // With a single layer and uniform attention, output before the
        // projection is bounded by the value range; sanity: finite and
        // bounded by ~d·max|w|·max|x| through the projection.
        let enc = tiny();
        let x = input(4, 16);
        let a = enc.multi_head_attention(&x, &enc.weights().layers[0]);
        assert_eq!(a.shape(), (4, 16));
        assert!(a.as_slice().iter().all(|v| v.abs() < 100.0));
    }

    #[test]
    fn scaling_conventions_differ() {
        let w = EncoderWeights::random(
            EncoderConfig::new(16, 2, 1, 4).with_scaling(AttnScaling::InvSqrtDk),
            11,
        );
        let enc_sqrt = FloatEncoder::new(w.clone());
        let mut w2 = w;
        w2.config = w2.config.with_scaling(AttnScaling::InvDmodel);
        let enc_d = FloatEncoder::new(w2);
        let x = input(4, 16);
        let a = enc_sqrt.forward(&x);
        let b = enc_d.forward(&x);
        assert_ne!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn deeper_stack_applies_each_layer() {
        // 2-layer forward != single-layer forward of same weights.
        let enc = tiny();
        let x = input(4, 16);
        let full = enc.forward(&x);
        let one = enc.forward_layer(&x, &enc.weights().layers[0]);
        assert_ne!(full.as_slice(), one.as_slice());
    }

    #[test]
    fn gelu_reference_points() {
        assert!(gelu_f32(0.0).abs() < 1e-6);
        assert!((gelu_f32(3.0) - 2.9964).abs() < 1e-3);
        assert!(gelu_f32(-3.0).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "SL × d_model")]
    fn wrong_input_shape_panics() {
        let enc = tiny();
        let _ = enc.forward(&input(5, 16));
    }
}
