//! The transformer **decoder** — the paper's stated future work.
//!
//! "Although this paper focuses solely on encoder layers, future work
//! will extend the architecture to support both encoder and decoder
//! layers of the transformer, using the same design principles." This
//! module is that extension: a decoder layer (Fig. 1, right) has three
//! sub-layers —
//!
//! 1. **masked self-attention** (causal: position *i* may attend only to
//!    positions ≤ *i*),
//! 2. **cross-attention** over the encoder's output memory (queries from
//!    the decoder state, keys/values from the memory),
//! 3. the position-wise FFN,
//!
//! each followed by residual + layer norm. Both the f32 reference and
//! the bit-exact int8 path reuse the encoder's stages; the quantized
//! cross/self attention goes through the identical requantization points
//! as the encoder's (`project`, `requant_logits`, LUT softmax with the
//! causal mask, SV requantize), so the accelerator-side decoder must
//! again agree byte-for-byte.

use crate::config::{AttnScaling, EncoderConfig};
use crate::float::{layer_norm, softmax_rows};
use crate::quantized::{add_norm, project, requant_logits, QuantMatrix, QuantSchedule};
use crate::weights::EncoderWeights;
use core::fmt;
use protea_fixed::activation::ActivationLut;
use protea_fixed::layernorm::LayerNormUnit;
use protea_fixed::{Activation, QFormat, Quantizer, Requantizer, SoftmaxUnit};
use protea_tensor::{
    add_bias_row, matmul_i8_i32, matmul_i8_i32_packed, matmul_naive, residual_add, transpose,
    Matrix, PackedWeights,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Weights of one decoder layer (float).
#[derive(Debug, Clone)]
pub struct DecoderLayerWeights {
    /// Masked self-attention projections (`d × d` each) and biases.
    pub self_wq: Matrix<f32>,
    /// See [`DecoderLayerWeights::self_wq`].
    pub self_wk: Matrix<f32>,
    /// See [`DecoderLayerWeights::self_wq`].
    pub self_wv: Matrix<f32>,
    /// Self-attention biases (`d` each).
    pub self_bq: Vec<f32>,
    /// See [`DecoderLayerWeights::self_bq`].
    pub self_bk: Vec<f32>,
    /// See [`DecoderLayerWeights::self_bq`].
    pub self_bv: Vec<f32>,
    /// Self-attention output projection.
    pub self_wo: Matrix<f32>,
    /// Self-attention output bias.
    pub self_bo: Vec<f32>,
    /// Cross-attention projections: queries from the decoder state…
    pub cross_wq: Matrix<f32>,
    /// …keys from the encoder memory…
    pub cross_wk: Matrix<f32>,
    /// …values from the encoder memory.
    pub cross_wv: Matrix<f32>,
    /// Cross-attention biases.
    pub cross_bq: Vec<f32>,
    /// See [`DecoderLayerWeights::cross_bq`].
    pub cross_bk: Vec<f32>,
    /// See [`DecoderLayerWeights::cross_bq`].
    pub cross_bv: Vec<f32>,
    /// Cross-attention output projection.
    pub cross_wo: Matrix<f32>,
    /// Cross-attention output bias.
    pub cross_bo: Vec<f32>,
    /// FFN first transformation (`d × 4d`).
    pub w1: Matrix<f32>,
    /// FFN first bias.
    pub b1: Vec<f32>,
    /// FFN second transformation (`4d × d`).
    pub w2: Matrix<f32>,
    /// FFN second bias.
    pub b2: Vec<f32>,
    /// LayerNorm affine parameters after each of the three sub-layers.
    pub ln: [(Vec<f32>, Vec<f32>); 3],
}

impl DecoderLayerWeights {
    /// Random initialization from a seeded RNG.
    #[must_use]
    pub fn random(cfg: &EncoderConfig, rng: &mut StdRng) -> Self {
        let d = cfg.d_model;
        let f = cfg.d_ffn();
        let bound = 1.0 / (d as f32).sqrt();
        let mat = |rows: usize, cols: usize, rng: &mut StdRng| {
            Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-bound..bound))
        };
        let vect = |n: usize, rng: &mut StdRng| -> Vec<f32> {
            (0..n).map(|_| rng.gen_range(-bound..bound)).collect()
        };
        Self {
            self_wq: mat(d, d, rng),
            self_wk: mat(d, d, rng),
            self_wv: mat(d, d, rng),
            self_bq: vect(d, rng),
            self_bk: vect(d, rng),
            self_bv: vect(d, rng),
            self_wo: mat(d, d, rng),
            self_bo: vect(d, rng),
            cross_wq: mat(d, d, rng),
            cross_wk: mat(d, d, rng),
            cross_wv: mat(d, d, rng),
            cross_bq: vect(d, rng),
            cross_bk: vect(d, rng),
            cross_bv: vect(d, rng),
            cross_wo: mat(d, d, rng),
            cross_bo: vect(d, rng),
            w1: mat(d, f, rng),
            b1: vect(f, rng),
            w2: mat(f, d, rng),
            b2: vect(d, rng),
            ln: core::array::from_fn(|_| (vec![1.0; d], vec![0.0; d])),
        }
    }
}

/// The decoder stack's weights.
#[derive(Debug, Clone)]
pub struct DecoderWeights {
    /// Shared hyperparameters (the decoder uses the same `d_model`,
    /// heads, FFN expansion as its encoder; `seq_len` is the *target*
    /// length).
    pub config: EncoderConfig,
    /// One entry per decoder layer.
    pub layers: Vec<DecoderLayerWeights>,
}

impl DecoderWeights {
    /// Seeded random initialization.
    #[must_use]
    pub fn random(cfg: EncoderConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let layers = (0..cfg.layers).map(|_| DecoderLayerWeights::random(&cfg, &mut rng)).collect();
        Self { config: cfg, layers }
    }
}

/// Float reference decoder.
#[derive(Debug, Clone)]
pub struct FloatDecoder {
    weights: DecoderWeights,
}

impl FloatDecoder {
    /// Wrap a weight set.
    #[must_use]
    pub fn new(weights: DecoderWeights) -> Self {
        Self { weights }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &EncoderConfig {
        &self.weights.config
    }

    /// Borrow the weights.
    #[must_use]
    pub fn weights(&self) -> &DecoderWeights {
        &self.weights
    }

    /// Run the stack: `x` is the target-side input (`SL_tgt × d`),
    /// `memory` the encoder output (`SL_src × d`).
    #[must_use]
    pub fn forward(&self, x: &Matrix<f32>, memory: &Matrix<f32>) -> Matrix<f32> {
        let cfg = self.weights.config;
        assert_eq!(x.cols(), cfg.d_model);
        assert_eq!(memory.cols(), cfg.d_model);
        let mut h = x.clone();
        for layer in &self.weights.layers {
            h = self.forward_layer(&h, memory, layer);
        }
        h
    }

    // The argument list mirrors the per-matrix weight layout on purpose.
    #[allow(clippy::too_many_arguments)]
    fn attention(
        &self,
        q_src: &Matrix<f32>,
        kv_src: &Matrix<f32>,
        wq: &Matrix<f32>,
        wk: &Matrix<f32>,
        wv: &Matrix<f32>,
        bq: &[f32],
        bk: &[f32],
        bv: &[f32],
        wo: &Matrix<f32>,
        bo: &[f32],
        causal: bool,
    ) -> Matrix<f32> {
        let cfg = self.weights.config;
        let dk = cfg.d_k();
        let sl_q = q_src.rows();
        let sl_kv = kv_src.rows();
        let mut q = matmul_naive(q_src, wq);
        let mut k = matmul_naive(kv_src, wk);
        let mut v = matmul_naive(kv_src, wv);
        add_bias_row(&mut q, bq);
        add_bias_row(&mut k, bk);
        add_bias_row(&mut v, bv);
        let scale = match cfg.scaling {
            AttnScaling::InvSqrtDk => 1.0 / (dk as f32).sqrt(),
            AttnScaling::InvDmodel => 1.0 / cfg.d_model as f32,
        };
        let mut concat = Matrix::<f32>::zeros(sl_q, cfg.d_model);
        for head in 0..cfg.heads {
            let c0 = head * dk;
            let qi = q.submatrix(0, c0, sl_q, dk);
            let ki = k.submatrix(0, c0, sl_kv, dk);
            let vi = v.submatrix(0, c0, sl_kv, dk);
            let mut s = matmul_naive(&qi, &transpose(&ki));
            for val in s.as_mut_slice() {
                *val *= scale;
            }
            if causal {
                for r in 0..sl_q {
                    for c in (r + 1)..sl_kv {
                        s[(r, c)] = f32::NEG_INFINITY;
                    }
                }
            }
            let p = softmax_rows(&s);
            concat.write_submatrix(0, c0, &matmul_naive(&p, &vi));
        }
        let mut out = matmul_naive(&concat, wo);
        add_bias_row(&mut out, bo);
        out
    }

    /// One decoder layer.
    #[must_use]
    pub fn forward_layer(
        &self,
        x: &Matrix<f32>,
        memory: &Matrix<f32>,
        w: &DecoderLayerWeights,
    ) -> Matrix<f32> {
        // 1. masked self-attention
        let sa = self.attention(
            x, x, &w.self_wq, &w.self_wk, &w.self_wv, &w.self_bq, &w.self_bk, &w.self_bv,
            &w.self_wo, &w.self_bo, true,
        );
        let x1 = layer_norm(&residual_add(x, &sa), &w.ln[0].0, &w.ln[0].1);
        // 2. cross-attention over the encoder memory
        let ca = self.attention(
            &x1,
            memory,
            &w.cross_wq,
            &w.cross_wk,
            &w.cross_wv,
            &w.cross_bq,
            &w.cross_bk,
            &w.cross_bv,
            &w.cross_wo,
            &w.cross_bo,
            false,
        );
        let x2 = layer_norm(&residual_add(&x1, &ca), &w.ln[1].0, &w.ln[1].1);
        // 3. FFN
        let cfg = self.weights.config;
        let mut hidden = matmul_naive(&x2, &w.w1);
        add_bias_row(&mut hidden, &w.b1);
        for v in hidden.as_mut_slice() {
            *v = match cfg.activation {
                Activation::Relu => v.max(0.0),
                Activation::Gelu => {
                    0.5 * *v * (1.0 + (0.797_884_6 * (*v + 0.044715 * *v * *v * *v)).tanh())
                }
                Activation::Identity => *v,
            };
        }
        let mut ffn = matmul_naive(&hidden, &w.w2);
        add_bias_row(&mut ffn, &w.b2);
        layer_norm(&residual_add(&x2, &ffn), &w.ln[2].0, &w.ln[2].1)
    }
}

/// One decoder layer's quantized parameters.
#[derive(Debug, Clone)]
pub struct QuantizedDecoderLayer {
    /// Self-attention projections.
    pub self_wq: QuantMatrix,
    /// See [`QuantizedDecoderLayer::self_wq`].
    pub self_wk: QuantMatrix,
    /// See [`QuantizedDecoderLayer::self_wq`].
    pub self_wv: QuantMatrix,
    /// Self-attention biases (accumulator scale).
    pub self_bq: Vec<i32>,
    /// See [`QuantizedDecoderLayer::self_bq`].
    pub self_bk: Vec<i32>,
    /// See [`QuantizedDecoderLayer::self_bq`].
    pub self_bv: Vec<i32>,
    /// Self-attention output projection and bias.
    pub self_wo: QuantMatrix,
    /// See [`QuantizedDecoderLayer::self_wo`].
    pub self_bo: Vec<i32>,
    /// Cross-attention projections.
    pub cross_wq: QuantMatrix,
    /// See [`QuantizedDecoderLayer::cross_wq`].
    pub cross_wk: QuantMatrix,
    /// See [`QuantizedDecoderLayer::cross_wq`].
    pub cross_wv: QuantMatrix,
    /// Cross-attention biases.
    pub cross_bq: Vec<i32>,
    /// See [`QuantizedDecoderLayer::cross_bq`].
    pub cross_bk: Vec<i32>,
    /// See [`QuantizedDecoderLayer::cross_bq`].
    pub cross_bv: Vec<i32>,
    /// Cross-attention output projection and bias.
    pub cross_wo: QuantMatrix,
    /// See [`QuantizedDecoderLayer::cross_wo`].
    pub cross_bo: Vec<i32>,
    /// FFN matrices and biases.
    pub w1: QuantMatrix,
    /// See [`QuantizedDecoderLayer::w1`].
    pub b1: Vec<i32>,
    /// See [`QuantizedDecoderLayer::w1`].
    pub w2: QuantMatrix,
    /// See [`QuantizedDecoderLayer::w1`].
    pub b2: Vec<i32>,
    /// The three layer-norm units.
    pub ln: [LayerNormUnit; 3],
}

/// The quantized decoder.
#[derive(Debug, Clone)]
pub struct QuantizedDecoder {
    /// Configuration.
    pub config: EncoderConfig,
    /// Schedule all stages follow.
    pub schedule: QuantSchedule,
    /// Per-layer parameters.
    pub layers: Vec<QuantizedDecoderLayer>,
    softmax: SoftmaxUnit,
    act: ActivationLut,
}

impl QuantizedDecoder {
    /// Quantize a float decoder weight set.
    #[must_use]
    pub fn from_float(weights: &DecoderWeights, schedule: QuantSchedule) -> Self {
        let cfg = weights.config;
        let gamma_fmt = QFormat::new(8, 5);
        let beta_fmt = QFormat::new(8, 5);
        let q = Quantizer::default();
        let qm = |m: &Matrix<f32>| -> QuantMatrix {
            let (raw, params) = q.quantize(m.as_slice());
            QuantMatrix { data: Matrix::from_vec(m.rows(), m.cols(), raw), fmt: params.format() }
        };
        let bias32 = |b: &[f32], wfmt: QFormat| -> Vec<i32> {
            let frac = u32::from(schedule.act_fmt.frac_bits()) + u32::from(wfmt.frac_bits());
            let scale = 2f64.powi(frac as i32);
            b.iter()
                .map(|&x| {
                    (f64::from(x) * scale).round().clamp(f64::from(i32::MIN), f64::from(i32::MAX))
                        as i32
                })
                .collect()
        };
        let qv = |v: &[f32], fmt: QFormat| -> Vec<i8> {
            v.iter().map(|&x| fmt.real_to_raw(f64::from(x)) as i8).collect()
        };
        let layers = weights
            .layers
            .iter()
            .map(|l| {
                let self_wq = qm(&l.self_wq);
                let self_wk = qm(&l.self_wk);
                let self_wv = qm(&l.self_wv);
                let self_wo = qm(&l.self_wo);
                let cross_wq = qm(&l.cross_wq);
                let cross_wk = qm(&l.cross_wk);
                let cross_wv = qm(&l.cross_wv);
                let cross_wo = qm(&l.cross_wo);
                let w1 = qm(&l.w1);
                let w2 = qm(&l.w2);
                QuantizedDecoderLayer {
                    self_bq: bias32(&l.self_bq, self_wq.fmt),
                    self_bk: bias32(&l.self_bk, self_wk.fmt),
                    self_bv: bias32(&l.self_bv, self_wv.fmt),
                    self_bo: bias32(&l.self_bo, self_wo.fmt),
                    cross_bq: bias32(&l.cross_bq, cross_wq.fmt),
                    cross_bk: bias32(&l.cross_bk, cross_wk.fmt),
                    cross_bv: bias32(&l.cross_bv, cross_wv.fmt),
                    cross_bo: bias32(&l.cross_bo, cross_wo.fmt),
                    b1: bias32(&l.b1, w1.fmt),
                    b2: bias32(&l.b2, w2.fmt),
                    ln: core::array::from_fn(|i| {
                        LayerNormUnit::new(
                            qv(&l.ln[i].0, gamma_fmt),
                            qv(&l.ln[i].1, beta_fmt),
                            gamma_fmt,
                            beta_fmt,
                            schedule.act_fmt,
                        )
                    }),
                    self_wq,
                    self_wk,
                    self_wv,
                    self_wo,
                    cross_wq,
                    cross_wk,
                    cross_wv,
                    cross_wo,
                    w1,
                    w2,
                }
            })
            .collect();
        Self {
            config: cfg,
            schedule,
            layers,
            softmax: SoftmaxUnit::new(schedule.logit_fmt),
            act: ActivationLut::new(cfg.activation, schedule.act_fmt),
        }
    }

    /// Full quantized forward: `x` target (`SL_tgt × d`), `memory` the
    /// quantized encoder output (`SL_src × d`, activation format).
    #[must_use]
    pub fn forward(&self, x: &Matrix<i8>, memory: &Matrix<i8>) -> Matrix<i8> {
        assert_eq!(x.cols(), self.config.d_model);
        assert_eq!(memory.cols(), self.config.d_model);
        let mut h = x.clone();
        for layer in &self.layers {
            h = self.forward_layer(&h, memory, layer);
        }
        h
    }

    /// Quantized attention block, shared by self/cross paths. `causal`
    /// masks future positions (requires `q_src` and `kv_src` to be the
    /// same sequence).
    #[must_use]
    // The argument list mirrors the per-matrix weight layout on purpose.
    #[allow(clippy::too_many_arguments)]
    pub fn attention(
        &self,
        q_src: &Matrix<i8>,
        kv_src: &Matrix<i8>,
        wq: &QuantMatrix,
        wk: &QuantMatrix,
        wv: &QuantMatrix,
        bq: &[i32],
        bk: &[i32],
        bv: &[i32],
        wo: &QuantMatrix,
        bo: &[i32],
        causal: bool,
    ) -> Matrix<i8> {
        let cfg = &self.config;
        let s = &self.schedule;
        let dk = cfg.d_k();
        let sl_q = q_src.rows();
        let sl_kv = kv_src.rows();
        let q = project(q_src, wq, bq, s);
        let k = project(kv_src, wk, bk, s);
        let v = project(kv_src, wv, bv, s);
        let mut concat = Matrix::<i8>::zeros(sl_q, cfg.d_model);
        let rq = Requantizer::new(
            s.logit_fmt.frac_bits() + s.act_fmt.frac_bits(),
            s.act_fmt,
            s.rounding,
        );
        for head in 0..cfg.heads {
            let c0 = head * dk;
            let qi = q.submatrix(0, c0, sl_q, dk);
            let ki = k.submatrix(0, c0, sl_kv, dk);
            let vi = v.submatrix(0, c0, sl_kv, dk);
            let acc = matmul_i8_i32(&qi, &transpose(&ki));
            let logits = requant_logits(&acc, cfg, s);
            let mut p = Matrix::<i8>::zeros(sl_q, sl_kv);
            for r in 0..sl_q {
                let valid = if causal { r + 1 } else { sl_kv };
                self.softmax.forward_row_masked(logits.row(r), valid, p.row_mut(r));
            }
            let acc_sv = matmul_i8_i32(&p, &vi);
            concat.write_submatrix(0, c0, &acc_sv.map(|a| rq.apply(a)));
        }
        project(&concat, wo, bo, s)
    }

    /// One quantized decoder layer.
    #[must_use]
    pub fn forward_layer(
        &self,
        x: &Matrix<i8>,
        memory: &Matrix<i8>,
        w: &QuantizedDecoderLayer,
    ) -> Matrix<i8> {
        let s = &self.schedule;
        let sa = self.attention(
            x, x, &w.self_wq, &w.self_wk, &w.self_wv, &w.self_bq, &w.self_bk, &w.self_bv,
            &w.self_wo, &w.self_bo, true,
        );
        let x1 = add_norm(x, &sa, &w.ln[0], s);
        let ca = self.attention(
            &x1,
            memory,
            &w.cross_wq,
            &w.cross_wk,
            &w.cross_wv,
            &w.cross_bq,
            &w.cross_bk,
            &w.cross_bv,
            &w.cross_wo,
            &w.cross_bo,
            false,
        );
        let x2 = add_norm(&x1, &ca, &w.ln[1], s);
        let mut hidden = project(&x2, &w.w1, &w.b1, s);
        self.act.apply_slice(hidden.as_mut_slice());
        let ffn = project(&hidden, &w.w2, &w.b2, s);
        add_norm(&x2, &ffn, &w.ln[2], s)
    }

    /// Quantize an f32 matrix into the activation format.
    #[must_use]
    pub fn quantize_input(&self, x: &Matrix<f32>) -> Matrix<i8> {
        let fmt = self.schedule.act_fmt;
        x.map(|v| fmt.real_to_raw(f64::from(v)) as i8)
    }
}

/// Per-layer key/value cache for autoregressive decoding.
///
/// At generation time a decoder emits one position per step; recomputing
/// the whole prefix each step is O(T²) work. The cache keeps every
/// layer's self-attention K/V rows (growing with the generated prefix)
/// and the cross-attention K/V (computed once from the encoder memory).
/// Because every stage of the quantized layer is row-wise and the
/// causal mask restricts row *i* to rows ≤ *i*, incremental decoding is
/// **bit-identical** to the full forward pass — tested below.
#[derive(Debug, Clone)]
pub struct DecoderKvCache {
    /// Self-attention keys per layer, one row per decoded position.
    self_k: Vec<Vec<i8>>,
    /// Self-attention values per layer.
    self_v: Vec<Vec<i8>>,
    /// Cross-attention keys per layer (fixed once memory is seen).
    cross_k: Vec<Matrix<i8>>,
    /// Cross-attention values per layer.
    cross_v: Vec<Matrix<i8>>,
    d_model: usize,
    positions: usize,
    /// Maximum decoded positions, `None` for unbounded growth.
    capacity: Option<usize>,
}

/// How the KV-cached decode path can fail. Growth past a bounded
/// cache's capacity and shape mismatches surface here instead of
/// panicking, so a serving layer can shed the session; the unified
/// `CoreError` wraps this via `From` one crate up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KvCacheError {
    /// The cache is full: decoding one more position would exceed the
    /// capacity the cache was bounded to at construction.
    CapacityExhausted {
        /// Positions already decoded.
        positions: usize,
        /// The bound set by [`DecoderKvCache::bounded`].
        capacity: usize,
    },
    /// The input is not one `1 × d_model` row.
    RowShape {
        /// Shape the decoder demands.
        expected: (usize, usize),
        /// Shape that was supplied.
        got: (usize, usize),
    },
    /// The cache was built for a different embedding dimension than the
    /// decoder it is being stepped with.
    DimMismatch {
        /// `d_model` the cache was built with.
        cache: usize,
        /// `d_model` of the decoder.
        decoder: usize,
    },
}

impl fmt::Display for KvCacheError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KvCacheError::CapacityExhausted { positions, capacity } => {
                write!(f, "KV cache full: {positions} positions decoded, capacity {capacity}")
            }
            KvCacheError::RowShape { expected, got } => write!(
                f,
                "decode step takes one {}×{} row, got {}×{}",
                expected.0, expected.1, got.0, got.1
            ),
            KvCacheError::DimMismatch { cache, decoder } => {
                write!(f, "KV cache built for d_model={cache}, decoder has d_model={decoder}")
            }
        }
    }
}

impl std::error::Error for KvCacheError {}

impl DecoderKvCache {
    /// Build the cache: precompute the cross-attention K/V from the
    /// encoder memory for every layer. Growth is unbounded; use
    /// [`bounded`](Self::bounded) to cap it.
    #[must_use]
    pub fn new(dec: &QuantizedDecoder, memory: &Matrix<i8>) -> Self {
        Self::build(dec, memory, None)
    }

    /// Build a cache that holds at most `capacity` decoded positions;
    /// stepping past it fails with [`KvCacheError::CapacityExhausted`]
    /// instead of growing (a device's KV region is finite).
    #[must_use]
    pub fn bounded(dec: &QuantizedDecoder, memory: &Matrix<i8>, capacity: usize) -> Self {
        Self::build(dec, memory, Some(capacity))
    }

    fn build(dec: &QuantizedDecoder, memory: &Matrix<i8>, capacity: Option<usize>) -> Self {
        let d = dec.config.d_model;
        assert_eq!(memory.cols(), d);
        let s = &dec.schedule;
        let mut cross_k = Vec::with_capacity(dec.layers.len());
        let mut cross_v = Vec::with_capacity(dec.layers.len());
        for layer in &dec.layers {
            cross_k.push(project(memory, &layer.cross_wk, &layer.cross_bk, s));
            cross_v.push(project(memory, &layer.cross_wv, &layer.cross_bv, s));
        }
        Self {
            self_k: vec![Vec::new(); dec.layers.len()],
            self_v: vec![Vec::new(); dec.layers.len()],
            cross_k,
            cross_v,
            d_model: d,
            positions: 0,
            capacity,
        }
    }

    /// Positions decoded so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.positions
    }

    /// Whether nothing has been decoded yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.positions == 0
    }

    /// The position bound, `None` when growth is unbounded.
    #[must_use]
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Rows of encoder memory cached for cross-attention.
    #[must_use]
    pub fn cross_len(&self) -> usize {
        self.cross_k.first().map_or(0, Matrix::rows)
    }
}

/// Pre-packed projection weights for the fast decode path: the eight
/// matrices a decode step multiplies against, packed once into the
/// SIMD-dispatched [`PackedWeights`] layout (bit-identical to the
/// reference GEMM on every kernel ISA). Build once per decoder with
/// [`QuantizedDecoder::pack`]; steps with it then route every
/// projection through the runtime-dispatched microkernels.
#[derive(Debug, Clone)]
pub struct PackedDecoder {
    layers: Vec<PackedDecoderLayer>,
}

#[derive(Debug, Clone)]
struct PackedDecoderLayer {
    self_wq: PackedWeights,
    self_wk: PackedWeights,
    self_wv: PackedWeights,
    self_wo: PackedWeights,
    cross_wq: PackedWeights,
    cross_wo: PackedWeights,
    w1: PackedWeights,
    w2: PackedWeights,
}

/// [`project`] with a pre-packed weight matrix: the same bias add and
/// requantization tail over the packed GEMM, bit-identical by the
/// packed kernels' equivalence contract.
fn project_packed(
    x: &Matrix<i8>,
    pw: &PackedWeights,
    fmt: QFormat,
    bias: &[i32],
    s: &QuantSchedule,
) -> Matrix<i8> {
    let mut acc = matmul_i8_i32_packed(x, pw);
    assert_eq!(acc.cols(), bias.len(), "bias length mismatch");
    for r in 0..acc.rows() {
        for (a, &b) in acc.row_mut(r).iter_mut().zip(bias.iter()) {
            *a = a.saturating_add(b);
        }
    }
    let rq = Requantizer::new(s.act_fmt.frac_bits() + fmt.frac_bits(), s.act_fmt, s.rounding);
    acc.map(|a| rq.apply(a))
}

impl QuantizedDecoder {
    /// Pack the per-step projection weights for the fast decode path.
    #[must_use]
    pub fn pack(&self) -> PackedDecoder {
        PackedDecoder {
            layers: self
                .layers
                .iter()
                .map(|l| PackedDecoderLayer {
                    self_wq: PackedWeights::pack(&l.self_wq.data),
                    self_wk: PackedWeights::pack(&l.self_wk.data),
                    self_wv: PackedWeights::pack(&l.self_wv.data),
                    self_wo: PackedWeights::pack(&l.self_wo.data),
                    cross_wq: PackedWeights::pack(&l.cross_wq.data),
                    cross_wo: PackedWeights::pack(&l.cross_wo.data),
                    w1: PackedWeights::pack(&l.w1.data),
                    w2: PackedWeights::pack(&l.w2.data),
                })
                .collect(),
        }
    }

    /// Decode one position incrementally: `x_row` is the `1 × d` input
    /// for the next target position; the cache supplies all previous
    /// K/V rows. Returns the `1 × d` output for this position, identical
    /// to the corresponding row of a full [`forward`](Self::forward).
    ///
    /// # Panics
    /// On any [`KvCacheError`]; serving paths use
    /// [`try_decode_step`](Self::try_decode_step) instead.
    #[must_use]
    pub fn decode_step(&self, cache: &mut DecoderKvCache, x_row: &Matrix<i8>) -> Matrix<i8> {
        match self.try_decode_step(cache, x_row) {
            Ok(out) => out,
            Err(e) => panic!("decode_step: {e}"),
        }
    }

    /// Fallible [`decode_step`](Self::decode_step): shape, dimension and
    /// cache-capacity violations surface as [`KvCacheError`] before the
    /// cache is mutated.
    ///
    /// # Errors
    /// [`KvCacheError`] on a bad input shape, a cache built for a
    /// different decoder, or a bounded cache that is already full.
    pub fn try_decode_step(
        &self,
        cache: &mut DecoderKvCache,
        x_row: &Matrix<i8>,
    ) -> Result<Matrix<i8>, KvCacheError> {
        self.decode_step_impl(cache, x_row, None)
    }

    /// [`try_decode_step`](Self::try_decode_step) with every projection
    /// routed through `packed`'s SIMD-dispatched weights — bit-identical
    /// output, built for the serving fast path where the same decoder
    /// steps many sessions.
    ///
    /// # Errors
    /// Same contract as [`try_decode_step`](Self::try_decode_step).
    pub fn try_decode_step_packed(
        &self,
        packed: &PackedDecoder,
        cache: &mut DecoderKvCache,
        x_row: &Matrix<i8>,
    ) -> Result<Matrix<i8>, KvCacheError> {
        self.decode_step_impl(cache, x_row, Some(packed))
    }

    fn decode_step_impl(
        &self,
        cache: &mut DecoderKvCache,
        x_row: &Matrix<i8>,
        packed: Option<&PackedDecoder>,
    ) -> Result<Matrix<i8>, KvCacheError> {
        let d = self.config.d_model;
        if x_row.shape() != (1, d) {
            return Err(KvCacheError::RowShape { expected: (1, d), got: x_row.shape() });
        }
        if cache.d_model != d {
            return Err(KvCacheError::DimMismatch { cache: cache.d_model, decoder: d });
        }
        if let Some(cap) = cache.capacity {
            if cache.positions >= cap {
                return Err(KvCacheError::CapacityExhausted {
                    positions: cache.positions,
                    capacity: cap,
                });
            }
        }
        let s = &self.schedule;
        // Projection that takes the packed route when a PackedDecoder is
        // supplied; the scalar and packed GEMMs are bit-identical.
        let proj = |x: &Matrix<i8>, w: &QuantMatrix, pw: Option<&PackedWeights>, b: &[i32]| match pw
        {
            Some(pw) => project_packed(x, pw, w.fmt, b, s),
            None => project(x, w, b, s),
        };
        let dk = self.config.d_k();
        let rq = Requantizer::new(
            s.logit_fmt.frac_bits() + s.act_fmt.frac_bits(),
            s.act_fmt,
            s.rounding,
        );
        let mut h = x_row.clone();
        let pos = cache.positions;
        for (li, layer) in self.layers.iter().enumerate() {
            let pl = packed.map(|p| &p.layers[li]);
            // --- masked self-attention with cached K/V ------------------
            let q = proj(&h, &layer.self_wq, pl.map(|p| &p.self_wq), &layer.self_bq);
            let k_new = proj(&h, &layer.self_wk, pl.map(|p| &p.self_wk), &layer.self_bk);
            let v_new = proj(&h, &layer.self_wv, pl.map(|p| &p.self_wv), &layer.self_bv);
            cache.self_k[li].extend_from_slice(k_new.row(0));
            cache.self_v[li].extend_from_slice(v_new.row(0));
            let kv_len = pos + 1;
            let k_all = Matrix::from_vec(kv_len, cache.d_model, cache.self_k[li].clone());
            let v_all = Matrix::from_vec(kv_len, cache.d_model, cache.self_v[li].clone());
            let mut concat = Matrix::<i8>::zeros(1, cache.d_model);
            for head in 0..self.config.heads {
                let c0 = head * dk;
                let qi = q.submatrix(0, c0, 1, dk);
                let ki = k_all.submatrix(0, c0, kv_len, dk);
                let vi = v_all.submatrix(0, c0, kv_len, dk);
                let acc = matmul_i8_i32(&qi, &transpose(&ki));
                let logits = requant_logits(&acc, &self.config, s);
                let mut p = Matrix::<i8>::zeros(1, kv_len);
                // the causal mask is implicit: the cache only holds ≤ pos
                self.softmax.forward_row_masked(logits.row(0), kv_len, p.row_mut(0));
                let acc_sv = matmul_i8_i32(&p, &vi);
                concat.write_submatrix(0, c0, &acc_sv.map(|a| rq.apply(a)));
            }
            let sa = proj(&concat, &layer.self_wo, pl.map(|p| &p.self_wo), &layer.self_bo);
            let x1 = add_norm(&h, &sa, &layer.ln[0], s);

            // --- cross-attention with precomputed memory K/V ------------
            let qc = proj(&x1, &layer.cross_wq, pl.map(|p| &p.cross_wq), &layer.cross_bq);
            let k_mem = &cache.cross_k[li];
            let v_mem = &cache.cross_v[li];
            let sl_kv = k_mem.rows();
            let mut ccat = Matrix::<i8>::zeros(1, cache.d_model);
            for head in 0..self.config.heads {
                let c0 = head * dk;
                let qi = qc.submatrix(0, c0, 1, dk);
                let ki = k_mem.submatrix(0, c0, sl_kv, dk);
                let vi = v_mem.submatrix(0, c0, sl_kv, dk);
                let acc = matmul_i8_i32(&qi, &transpose(&ki));
                let logits = requant_logits(&acc, &self.config, s);
                let mut p = Matrix::<i8>::zeros(1, sl_kv);
                self.softmax.forward_row_masked(logits.row(0), sl_kv, p.row_mut(0));
                let acc_sv = matmul_i8_i32(&p, &vi);
                ccat.write_submatrix(0, c0, &acc_sv.map(|a| rq.apply(a)));
            }
            let ca = proj(&ccat, &layer.cross_wo, pl.map(|p| &p.cross_wo), &layer.cross_bo);
            let x2 = add_norm(&x1, &ca, &layer.ln[1], s);

            // --- FFN -----------------------------------------------------
            let mut hidden = proj(&x2, &layer.w1, pl.map(|p| &p.w1), &layer.b1);
            self.act.apply_slice(hidden.as_mut_slice());
            let ffn = proj(&hidden, &layer.w2, pl.map(|p| &p.w2), &layer.b2);
            h = add_norm(&x2, &ffn, &layer.ln[2], s);
        }
        cache.positions += 1;
        Ok(h)
    }
}

/// A complete sequence-to-sequence transformer: encoder + decoder stacks
/// on shared hyperparameters (Fig. 1 in full).
#[derive(Debug, Clone)]
pub struct QuantizedTransformer {
    /// The encoder stack.
    pub encoder: crate::quantized::QuantizedEncoder,
    /// The decoder stack.
    pub decoder: QuantizedDecoder,
}

impl QuantizedTransformer {
    /// Random-initialized full transformer.
    #[must_use]
    pub fn random(cfg: EncoderConfig, schedule: QuantSchedule, seed: u64) -> Self {
        let enc = EncoderWeights::random(cfg, seed);
        let dec = DecoderWeights::random(cfg, seed.wrapping_add(1));
        Self {
            encoder: crate::quantized::QuantizedEncoder::from_float(&enc, schedule),
            decoder: QuantizedDecoder::from_float(&dec, schedule),
        }
    }

    /// Encode a source sequence, then decode a target sequence against it.
    #[must_use]
    pub fn forward(&self, source: &Matrix<i8>, target: &Matrix<i8>) -> Matrix<i8> {
        let memory = self.encoder.forward(source);
        self.decoder.forward(target, &memory)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> EncoderConfig {
        EncoderConfig::new(32, 4, 2, 8)
    }

    fn mat_f32(rows: usize, cols: usize, seed: usize) -> Matrix<f32> {
        Matrix::from_fn(rows, cols, |r, c| {
            (((r * 31 + c * 7 + seed) % 41) as f32 / 41.0 - 0.5) * 2.0
        })
    }

    #[test]
    fn float_decoder_shapes() {
        let dec = FloatDecoder::new(DecoderWeights::random(cfg(), 3));
        let x = mat_f32(8, 32, 1);
        let mem = mat_f32(6, 32, 2); // source length differs from target
        let y = dec.forward(&x, &mem);
        assert_eq!(y.shape(), (8, 32));
        assert!(y.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn causal_mask_blocks_future_information() {
        // Changing a *later* target position must not change earlier
        // rows of the masked self-attention output (checked through the
        // first sub-layer only — LN keeps rows independent).
        let w = DecoderWeights::random(cfg(), 5);
        let dec = QuantizedDecoder::from_float(&w, QuantSchedule::paper());
        let mem = Matrix::from_fn(6, 32, |r, c| ((r * 3 + c) % 50) as i8);
        let x1 = Matrix::from_fn(8, 32, |r, c| ((r * 7 + c * 3) % 60) as i8);
        let mut x2 = x1.clone();
        // perturb the last row only
        for v in x2.row_mut(7) {
            *v = v.saturating_add(13);
        }
        let y1 = dec.forward(&x1, &mem);
        let y2 = dec.forward(&x2, &mem);
        // rows before the perturbed position are identical
        for r in 0..7 {
            assert_eq!(y1.row(r), y2.row(r), "row {r} saw the future");
        }
        // the perturbed row itself changes (sanity that the test bites)
        assert_ne!(y1.row(7), y2.row(7));
    }

    #[test]
    fn cross_attention_uses_the_memory() {
        let w = DecoderWeights::random(cfg(), 6);
        let dec = QuantizedDecoder::from_float(&w, QuantSchedule::paper());
        let x = Matrix::from_fn(8, 32, |r, c| ((r + c * 5) % 70) as i8);
        let mem_a = Matrix::from_fn(6, 32, |r, c| ((r * 11 + c) % 50) as i8);
        let mem_b = Matrix::from_fn(6, 32, |r, c| ((r * 11 + c) % 50 + 20) as i8);
        assert_ne!(
            dec.forward(&x, &mem_a).as_slice(),
            dec.forward(&x, &mem_b).as_slice(),
            "different memories must change the output"
        );
    }

    #[test]
    fn quantized_tracks_float_decoder() {
        let c = cfg();
        let w = DecoderWeights::random(c, 9);
        let fdec = FloatDecoder::new(w.clone());
        let qdec = QuantizedDecoder::from_float(&w, QuantSchedule::paper());
        let x = mat_f32(8, 32, 3);
        let mem = mat_f32(6, 32, 4);
        let yf = fdec.forward(&x, &mem);
        let yq = qdec.forward(&qdec.quantize_input(&x), &qdec.quantize_input(&mem));
        let fmt = qdec.schedule.act_fmt;
        let yq_f = yq.map(|v| fmt.raw_to_real(i64::from(v)) as f32);
        let err = protea_tensor::ops::mse(&yf, &yq_f);
        assert!(err < 0.5, "decoder quantization error mse = {err}");
    }

    #[test]
    fn full_transformer_end_to_end() {
        let t = QuantizedTransformer::random(cfg(), QuantSchedule::paper(), 11);
        let src = Matrix::from_fn(8, 32, |r, c| ((r * 5 + c) % 80) as i8);
        let tgt = Matrix::from_fn(4, 32, |r, c| ((r * 9 + c * 2) % 80) as i8);
        let y = t.forward(&src, &tgt);
        assert_eq!(y.shape(), (4, 32));
        // deterministic
        assert_eq!(y.as_slice(), t.forward(&src, &tgt).as_slice());
    }

    #[test]
    fn incremental_decoding_is_bit_exact() {
        // Step-by-step KV-cached decoding must equal the full forward
        // pass row for row.
        let c = cfg();
        let w = DecoderWeights::random(c, 21);
        let dec = QuantizedDecoder::from_float(&w, QuantSchedule::paper());
        let mem = Matrix::from_fn(6, 32, |r, cc| ((r * 13 + cc * 3) % 110) as i8 - 50);
        let x = Matrix::from_fn(8, 32, |r, cc| ((r * 7 + cc * 11) % 110) as i8 - 50);
        let full = dec.forward(&x, &mem);
        let mut cache = DecoderKvCache::new(&dec, &mem);
        for r in 0..8 {
            let row = x.submatrix(r, 0, 1, 32);
            let out = dec.decode_step(&mut cache, &row);
            assert_eq!(out.row(0), full.row(r), "position {r} diverged");
        }
        assert_eq!(cache.len(), 8);
    }

    #[test]
    fn cache_precomputes_cross_kv_once() {
        let c = cfg();
        let w = DecoderWeights::random(c, 22);
        let dec = QuantizedDecoder::from_float(&w, QuantSchedule::paper());
        let mem = Matrix::from_fn(5, 32, |r, cc| ((r + cc) % 100) as i8);
        let cache = DecoderKvCache::new(&dec, &mem);
        assert!(cache.is_empty());
        assert_eq!(cache.cross_k.len(), c.layers);
        assert_eq!(cache.cross_k[0].shape(), (5, 32));
    }

    #[test]
    fn bounded_cache_surfaces_capacity_error() {
        let c = cfg();
        let w = DecoderWeights::random(c, 23);
        let dec = QuantizedDecoder::from_float(&w, QuantSchedule::paper());
        let mem = Matrix::from_fn(4, 32, |r, cc| ((r + cc * 2) % 90) as i8);
        let mut cache = DecoderKvCache::bounded(&dec, &mem, 2);
        assert_eq!(cache.capacity(), Some(2));
        let row = Matrix::from_fn(1, 32, |_, cc| (cc % 50) as i8);
        assert!(dec.try_decode_step(&mut cache, &row).is_ok());
        assert!(dec.try_decode_step(&mut cache, &row).is_ok());
        let err = dec.try_decode_step(&mut cache, &row).unwrap_err();
        assert_eq!(err, KvCacheError::CapacityExhausted { positions: 2, capacity: 2 });
        assert_eq!(cache.len(), 2, "failed step must not mutate the cache");
    }

    #[test]
    fn bad_shapes_surface_errors_not_panics() {
        let c = cfg();
        let w = DecoderWeights::random(c, 24);
        let dec = QuantizedDecoder::from_float(&w, QuantSchedule::paper());
        let mem = Matrix::from_fn(4, 32, |r, cc| ((r + cc) % 90) as i8);
        let mut cache = DecoderKvCache::new(&dec, &mem);
        let wide = Matrix::<i8>::zeros(1, 16);
        assert_eq!(
            dec.try_decode_step(&mut cache, &wide).unwrap_err(),
            KvCacheError::RowShape { expected: (1, 32), got: (1, 16) },
        );
        let two_rows = Matrix::<i8>::zeros(2, 32);
        assert!(matches!(
            dec.try_decode_step(&mut cache, &two_rows).unwrap_err(),
            KvCacheError::RowShape { .. }
        ));
        assert!(cache.is_empty());
    }

    #[test]
    fn packed_decode_is_bit_exact() {
        // The packed fast path must match the scalar path (and therefore
        // the full forward) byte for byte at every position.
        let c = cfg();
        let w = DecoderWeights::random(c, 25);
        let dec = QuantizedDecoder::from_float(&w, QuantSchedule::paper());
        let packed = dec.pack();
        let mem = Matrix::from_fn(6, 32, |r, cc| ((r * 17 + cc * 5) % 110) as i8 - 50);
        let x = Matrix::from_fn(8, 32, |r, cc| ((r * 3 + cc * 13) % 110) as i8 - 50);
        let full = dec.forward(&x, &mem);
        let mut scalar_cache = DecoderKvCache::new(&dec, &mem);
        let mut packed_cache = DecoderKvCache::new(&dec, &mem);
        for r in 0..8 {
            let row = x.submatrix(r, 0, 1, 32);
            let a = dec.try_decode_step(&mut scalar_cache, &row).unwrap();
            let b = dec.try_decode_step_packed(&packed, &mut packed_cache, &row).unwrap();
            assert_eq!(a.row(0), b.row(0), "packed diverged at position {r}");
            assert_eq!(b.row(0), full.row(r), "packed diverged from full forward at {r}");
        }
    }

    #[test]
    fn decoder_is_deterministic() {
        let w = DecoderWeights::random(cfg(), 13);
        let dec = QuantizedDecoder::from_float(&w, QuantSchedule::paper());
        let x = Matrix::from_fn(8, 32, |r, c| ((r + c) % 90) as i8);
        let mem = Matrix::from_fn(8, 32, |r, c| ((r * 2 + c) % 90) as i8);
        assert_eq!(dec.forward(&x, &mem).as_slice(), dec.forward(&x, &mem).as_slice());
    }
}
