//! Weight pruning — the sparsity axis of the paper's comparisons.
//!
//! ProTEA itself is deliberately **dense** ("a versatile accelerator
//! capable of efficiently managing dense matrix computations"); its
//! Table II comparators exploit sparsity ([21]: 90 % column-balanced
//! block pruning, [25]: 64 %, [29]: 93 % block-circulant compression),
//! and the paper's discussion applies the `latency · (1 − sparsity)`
//! adjustment to reason about what sparse support would buy. This module
//! supplies the pruning schemes so that comparison can be *run*, not
//! just cited:
//!
//! * [`prune_magnitude`] — unstructured global magnitude pruning,
//! * [`prune_column_balanced`] — the [21]-style scheme: an equal
//!   fraction pruned within every column block, preserving PE load
//!   balance (the property their accelerator depends on),
//! * [`prune_blocks`] — coarse structured pruning of whole `b × b`
//!   blocks by block norm (a stand-in for block-circulant compression's
//!   structured zero pattern),
//! * [`sparsity_of`] — measurement, and [`EncoderWeights`] helpers to
//!   prune a whole model.

use crate::weights::EncoderWeights;
use protea_tensor::Matrix;

/// Fraction of exactly-zero entries.
#[must_use]
pub fn sparsity_of(m: &Matrix<f32>) -> f64 {
    if m.is_empty() {
        return 0.0;
    }
    let zeros = m.as_slice().iter().filter(|&&x| x == 0.0).count();
    zeros as f64 / m.len() as f64
}

/// Global magnitude pruning: zero the `sparsity` fraction of entries
/// with the smallest |w|. Deterministic (ties broken by index order).
pub fn prune_magnitude(m: &mut Matrix<f32>, sparsity: f64) {
    assert!((0.0..=1.0).contains(&sparsity), "sparsity must be in [0, 1]");
    let n = m.len();
    let k = (n as f64 * sparsity).round() as usize;
    if k == 0 {
        return;
    }
    if k >= n {
        m.as_mut_slice().fill(0.0);
        return;
    }
    let mut idx: Vec<usize> = (0..n).collect();
    let data = m.as_mut_slice();
    idx.sort_by(|&a, &b| data[a].abs().total_cmp(&data[b].abs()).then(a.cmp(&b)));
    for &i in &idx[..k] {
        data[i] = 0.0;
    }
}

/// Column-balanced pruning (Peng et al. [21]): within **each column**,
/// zero the same fraction of smallest-magnitude entries, so every output
/// neuron (and thus every PE column in a weight-stationary design) keeps
/// an identical nonzero count.
pub fn prune_column_balanced(m: &mut Matrix<f32>, sparsity: f64) {
    assert!((0.0..=1.0).contains(&sparsity));
    let rows = m.rows();
    let cols = m.cols();
    if rows == 0 || cols == 0 {
        return;
    }
    let k = (rows as f64 * sparsity).round() as usize;
    for c in 0..cols {
        let mut col: Vec<(f32, usize)> = (0..rows).map(|r| (m[(r, c)].abs(), r)).collect();
        col.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        for &(_, r) in col.iter().take(k.min(rows)) {
            m[(r, c)] = 0.0;
        }
    }
}

/// Structured block pruning: partition into `block × block` tiles and
/// zero the `sparsity` fraction with the smallest Frobenius norms.
pub fn prune_blocks(m: &mut Matrix<f32>, sparsity: f64, block: usize) {
    assert!((0.0..=1.0).contains(&sparsity));
    assert!(block > 0, "block size must be nonzero");
    let grid = protea_tensor::TileGrid::new(m.rows(), m.cols(), block, block);
    let mut norms: Vec<(f64, protea_tensor::Tile)> = grid
        .iter()
        .map(|t| {
            let mut sum = 0f64;
            for r in t.r0..t.r0 + t.h {
                for c in t.c0..t.c0 + t.w {
                    sum += f64::from(m[(r, c)]) * f64::from(m[(r, c)]);
                }
            }
            (sum, t)
        })
        .collect();
    let k = (norms.len() as f64 * sparsity).round() as usize;
    norms.sort_by(|a, b| a.0.total_cmp(&b.0).then((a.1.r0, a.1.c0).cmp(&(b.1.r0, b.1.c0))));
    for (_, t) in norms.into_iter().take(k) {
        for r in t.r0..t.r0 + t.h {
            for c in t.c0..t.c0 + t.w {
                m[(r, c)] = 0.0;
            }
        }
    }
}

/// Which pruning scheme to apply model-wide.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PruningScheme {
    /// Unstructured magnitude pruning.
    Magnitude,
    /// Column-balanced ([21]-style).
    ColumnBalanced,
    /// `block × block` structured pruning.
    Blocks(usize),
}

impl EncoderWeights {
    /// Prune every projection and FFN matrix to the target sparsity
    /// (biases and layer-norm parameters are left dense, as every
    /// comparator does). Returns the measured overall weight sparsity.
    pub fn prune(&mut self, scheme: PruningScheme, sparsity: f64) -> f64 {
        let mut zeroed = 0usize;
        let mut total = 0usize;
        for layer in &mut self.layers {
            for m in [
                &mut layer.wq,
                &mut layer.wk,
                &mut layer.wv,
                &mut layer.wo,
                &mut layer.w1,
                &mut layer.w2,
            ] {
                match scheme {
                    PruningScheme::Magnitude => prune_magnitude(m, sparsity),
                    PruningScheme::ColumnBalanced => prune_column_balanced(m, sparsity),
                    PruningScheme::Blocks(b) => prune_blocks(m, sparsity, b),
                }
                zeroed += m.as_slice().iter().filter(|&&x| x == 0.0).count();
                total += m.len();
            }
        }
        if total == 0 {
            0.0
        } else {
            zeroed as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EncoderConfig;

    fn mat() -> Matrix<f32> {
        Matrix::from_fn(16, 12, |r, c| {
            ((r * 12 + c + 1) as f32) * if (r + c) % 2 == 0 { 1.0 } else { -1.0 }
        })
    }

    #[test]
    fn magnitude_hits_exact_fraction() {
        for s in [0.0, 0.25, 0.5, 0.9, 1.0] {
            let mut m = mat();
            prune_magnitude(&mut m, s);
            assert!((sparsity_of(&m) - s).abs() < 0.01, "target {s} got {}", sparsity_of(&m));
        }
    }

    #[test]
    fn magnitude_keeps_largest() {
        let mut m = mat();
        prune_magnitude(&mut m, 0.5);
        // the largest-magnitude entry must survive
        let max_orig = mat().as_slice().iter().fold(0f32, |a, &x| a.max(x.abs()));
        assert!(m.as_slice().iter().any(|&x| x.abs() == max_orig));
        // surviving minimum ≥ pruned maximum in magnitude
        let survive_min =
            m.as_slice().iter().filter(|&&x| x != 0.0).fold(f32::MAX, |a, &x| a.min(x.abs()));
        let orig = mat();
        let pruned_max = orig
            .as_slice()
            .iter()
            .zip(m.as_slice())
            .filter(|(_, &kept)| kept == 0.0)
            .fold(0f32, |a, (&o, _)| a.max(o.abs()));
        assert!(survive_min >= pruned_max);
    }

    #[test]
    fn column_balanced_is_balanced() {
        let mut m = mat();
        prune_column_balanced(&mut m, 0.5);
        for c in 0..m.cols() {
            let nz = (0..m.rows()).filter(|&r| m[(r, c)] != 0.0).count();
            assert_eq!(nz, 8, "column {c} has {nz} nonzeros");
        }
    }

    #[test]
    fn block_pruning_zeroes_whole_blocks() {
        let mut m = mat();
        prune_blocks(&mut m, 0.5, 4);
        let grid = protea_tensor::TileGrid::new(16, 12, 4, 4);
        for t in grid.iter() {
            let zeros = (t.r0..t.r0 + t.h)
                .flat_map(|r| (t.c0..t.c0 + t.w).map(move |c| (r, c)))
                .filter(|&(r, c)| m[(r, c)] == 0.0)
                .count();
            assert!(
                zeros == 0 || zeros == t.area(),
                "block at ({},{}) partially pruned",
                t.r0,
                t.c0
            );
        }
        assert!((sparsity_of(&m) - 0.5).abs() < 0.01);
    }

    #[test]
    fn model_wide_pruning_reports_sparsity() {
        let cfg = EncoderConfig::new(32, 4, 2, 8);
        let mut w = EncoderWeights::random(cfg, 3);
        let measured = w.prune(PruningScheme::ColumnBalanced, 0.9);
        assert!((measured - 0.9).abs() < 0.02, "measured {measured}");
        // biases remain dense
        assert!(w.layers[0].bq.iter().any(|&b| b != 0.0));
    }

    #[test]
    fn pruned_model_still_runs_quantized() {
        let cfg = EncoderConfig::new(32, 4, 1, 8);
        let mut w = EncoderWeights::random(cfg, 5);
        w.prune(PruningScheme::Magnitude, 0.8);
        let q = crate::quantized::QuantizedEncoder::from_float(&w, crate::QuantSchedule::paper());
        let x = Matrix::from_fn(8, 32, |r, c| ((r + c) % 60) as i8);
        let y = q.forward(&x);
        assert_eq!(y.shape(), (8, 32));
    }

    #[test]
    fn zero_sparsity_is_identity() {
        let mut m = mat();
        let orig = m.clone();
        prune_magnitude(&mut m, 0.0);
        assert_eq!(m.as_slice(), orig.as_slice());
    }

    #[test]
    #[should_panic(expected = "sparsity must be in")]
    fn out_of_range_sparsity_rejected() {
        let mut m = mat();
        prune_magnitude(&mut m, 1.5);
    }
}
