//! Quantization error propagation analysis.
//!
//! "Data was quantized to 8-bit fixed-point format; while this might
//! result in accuracy loss depending on the application, it was not a
//! primary focus." This module makes the loss measurable: it runs the
//! float and quantized encoders in lockstep and reports the per-layer
//! error trajectory — does the 8-bit error accumulate layer over layer,
//! or does layer normalization keep re-centering it? (Empirically the
//! latter: LN bounds the error signal each layer, so SQNR plateaus
//! instead of collapsing — the structural reason 8-bit encoders work.)

use crate::config::EncoderConfig;
use crate::float::FloatEncoder;
use crate::quantized::QuantizedEncoder;
use crate::weights::EncoderWeights;
use protea_tensor::ops::mse;
use protea_tensor::Matrix;

/// Error metrics after one layer.
#[derive(Debug, Clone, Copy)]
pub struct LayerError {
    /// Layer index (0-based).
    pub layer: usize,
    /// Mean squared error between dequantized int8 and f32 activations.
    pub mse: f64,
    /// Signal-to-quantization-noise ratio in dB.
    pub sqnr_db: f64,
    /// Largest absolute elementwise deviation.
    pub max_abs_err: f64,
}

/// The full profile of one input through the stack.
#[derive(Debug, Clone)]
pub struct ErrorProfile {
    /// Per-layer metrics, in execution order.
    pub layers: Vec<LayerError>,
}

impl ErrorProfile {
    /// Final-layer SQNR.
    #[must_use]
    pub fn final_sqnr_db(&self) -> f64 {
        self.layers.last().map_or(f64::INFINITY, |l| l.sqnr_db)
    }

    /// Whether the error stays bounded: the last layer's MSE is within
    /// `factor` of the worst layer's (no runaway accumulation).
    #[must_use]
    pub fn is_stable(&self, factor: f64) -> bool {
        let worst = self.layers.iter().map(|l| l.mse).fold(0.0, f64::max);
        self.layers.last().is_none_or(|l| l.mse <= worst * factor.max(1.0))
    }
}

/// Run the lockstep comparison.
///
/// # Panics
/// Panics if `x` is not `SL × d_model` for the weight set's config.
#[must_use]
pub fn error_profile(
    weights: &EncoderWeights,
    quantized: &QuantizedEncoder,
    x: &Matrix<f32>,
) -> ErrorProfile {
    let cfg: EncoderConfig = weights.config;
    assert_eq!(x.shape(), (cfg.seq_len, cfg.d_model));
    let float_enc = FloatEncoder::new(weights.clone());
    let mut hf = x.clone();
    let mut hq = quantized.quantize_input(x);
    let mut layers = Vec::with_capacity(cfg.layers);
    for (i, (fw, qw)) in weights.layers.iter().zip(quantized.layers.iter()).enumerate() {
        hf = float_enc.forward_layer(&hf, fw);
        hq = quantized.forward_layer(&hq, qw).out;
        let deq = quantized.dequantize(&hq);
        let e = mse(&hf, &deq);
        let (mut sig, mut max_err) = (0f64, 0f64);
        for (&a, &b) in hf.as_slice().iter().zip(deq.as_slice()) {
            sig += f64::from(a) * f64::from(a);
            max_err = max_err.max((f64::from(a) - f64::from(b)).abs());
        }
        let n = hf.len().max(1) as f64;
        let sqnr = if e > 0.0 { 10.0 * ((sig / n) / e).log10() } else { f64::INFINITY };
        layers.push(LayerError { layer: i, mse: e, sqnr_db: sqnr, max_abs_err: max_err });
    }
    ErrorProfile { layers }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quantized::QuantSchedule;

    fn setup(layers: usize) -> (EncoderWeights, QuantizedEncoder, Matrix<f32>) {
        let cfg = EncoderConfig::new(64, 4, layers, 16);
        let w = EncoderWeights::random(cfg, 321);
        let q = QuantizedEncoder::from_float(&w, QuantSchedule::paper());
        let x = Matrix::from_fn(16, 64, |r, c| (((r * 19 + c * 7) % 53) as f32 / 53.0 - 0.5) * 2.0);
        (w, q, x)
    }

    #[test]
    fn profile_has_one_entry_per_layer() {
        let (w, q, x) = setup(4);
        let p = error_profile(&w, &q, &x);
        assert_eq!(p.layers.len(), 4);
        assert!(p.layers.iter().enumerate().all(|(i, l)| l.layer == i));
    }

    #[test]
    fn error_does_not_run_away_thanks_to_layernorm() {
        let (w, q, x) = setup(6);
        let p = error_profile(&w, &q, &x);
        assert!(p.is_stable(2.0), "per-layer MSEs: {:?}", p.layers);
        // every layer keeps a usable SQNR
        for l in &p.layers {
            assert!(l.sqnr_db > 5.0, "layer {} sqnr = {}", l.layer, l.sqnr_db);
        }
    }

    #[test]
    fn errors_are_nonzero_but_bounded() {
        let (w, q, x) = setup(2);
        let p = error_profile(&w, &q, &x);
        for l in &p.layers {
            assert!(l.mse > 0.0, "8-bit cannot be exact");
            assert!(l.max_abs_err < 1.0, "layer {} max err {}", l.layer, l.max_abs_err);
        }
    }
}
