//! Binary weight serialization — the role of `.pth` files in the flow.
//!
//! The paper's software stack saves PyTorch models and extracts the
//! hyperparameters with "a Python interpreter"; the driver then programs
//! the accelerator. Our equivalent is a small self-contained binary
//! format (no external parser): a magic header carrying the
//! [`EncoderConfig`] followed by f32 little-endian matrices in a fixed
//! order. [`peek_config`] is the "interpreter" — it reads only the header
//! to learn the hyperparameters, exactly what the runtime-programming
//! driver needs.

use crate::config::EncoderConfig;
use crate::weights::{EncoderWeights, LayerWeights};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use protea_tensor::Matrix;

/// Magic bytes: "PTEA" + format version 1.
const MAGIC: &[u8; 4] = b"PTEA";
const VERSION: u32 = 1;

/// Errors from decoding a weight blob.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Wrong magic bytes.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u32),
    /// Blob ended early.
    Truncated,
    /// Header fields fail [`EncoderConfig`] validation.
    BadConfig(String),
}

impl core::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "not a ProTEA weight blob (bad magic)"),
            DecodeError::BadVersion(v) => write!(f, "unsupported format version {v}"),
            DecodeError::Truncated => write!(f, "weight blob truncated"),
            DecodeError::BadConfig(m) => write!(f, "invalid config in header: {m}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Serialize weights to a binary blob.
#[must_use]
pub fn encode(weights: &EncoderWeights) -> Bytes {
    let cfg = weights.config;
    let mut buf = BytesMut::with_capacity(64 + weights.param_count() * 4);
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u32_le(cfg.d_model as u32);
    buf.put_u32_le(cfg.heads as u32);
    buf.put_u32_le(cfg.layers as u32);
    buf.put_u32_le(cfg.seq_len as u32);
    buf.put_u32_le(cfg.ffn_mult as u32);
    for layer in &weights.layers {
        for m in [&layer.wq, &layer.wk, &layer.wv, &layer.wo, &layer.w1, &layer.w2] {
            for &v in m.as_slice() {
                buf.put_f32_le(v);
            }
        }
        for v in [
            &layer.bq,
            &layer.bk,
            &layer.bv,
            &layer.bo,
            &layer.b1,
            &layer.b2,
            &layer.ln1_gamma,
            &layer.ln1_beta,
            &layer.ln2_gamma,
            &layer.ln2_beta,
        ] {
            for &x in v.iter() {
                buf.put_f32_le(x);
            }
        }
    }
    buf.freeze()
}

/// Read only the header: the hyperparameter-extraction step the driver
/// performs before programming the accelerator.
pub fn peek_config(blob: &[u8]) -> Result<EncoderConfig, DecodeError> {
    let mut b = blob;
    if b.remaining() < 4 + 4 + 5 * 4 {
        return Err(DecodeError::Truncated);
    }
    let mut magic = [0u8; 4];
    b.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let version = b.get_u32_le();
    if version != VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    let d_model = b.get_u32_le() as usize;
    let heads = b.get_u32_le() as usize;
    let layers = b.get_u32_le() as usize;
    let seq_len = b.get_u32_le() as usize;
    let ffn_mult = b.get_u32_le() as usize;
    if d_model == 0 || heads == 0 || layers == 0 || seq_len == 0 || ffn_mult == 0 {
        return Err(DecodeError::BadConfig("zero dimension".into()));
    }
    if !d_model.is_multiple_of(heads) {
        return Err(DecodeError::BadConfig(format!(
            "heads ({heads}) must divide d_model ({d_model})"
        )));
    }
    Ok(EncoderConfig::new(d_model, heads, layers, seq_len).with_ffn_mult(ffn_mult))
}

/// Decode a full weight blob.
pub fn decode(blob: &[u8]) -> Result<EncoderWeights, DecodeError> {
    let cfg = peek_config(blob)?;
    let mut b = &blob[4 + 4 + 5 * 4..];
    let d = cfg.d_model;
    let f = cfg.d_ffn();
    let read_mat = |rows: usize, cols: usize, b: &mut &[u8]| -> Result<Matrix<f32>, DecodeError> {
        let n = rows * cols;
        if b.remaining() < n * 4 {
            return Err(DecodeError::Truncated);
        }
        let mut data = Vec::with_capacity(n);
        for _ in 0..n {
            data.push(b.get_f32_le());
        }
        Ok(Matrix::from_vec(rows, cols, data))
    };
    let read_vec = |n: usize, b: &mut &[u8]| -> Result<Vec<f32>, DecodeError> {
        if b.remaining() < n * 4 {
            return Err(DecodeError::Truncated);
        }
        Ok((0..n).map(|_| b.get_f32_le()).collect())
    };
    let mut layers = Vec::with_capacity(cfg.layers);
    for _ in 0..cfg.layers {
        let wq = read_mat(d, d, &mut b)?;
        let wk = read_mat(d, d, &mut b)?;
        let wv = read_mat(d, d, &mut b)?;
        let wo = read_mat(d, d, &mut b)?;
        let w1 = read_mat(d, f, &mut b)?;
        let w2 = read_mat(f, d, &mut b)?;
        let bq = read_vec(d, &mut b)?;
        let bk = read_vec(d, &mut b)?;
        let bv = read_vec(d, &mut b)?;
        let bo = read_vec(d, &mut b)?;
        let b1 = read_vec(f, &mut b)?;
        let b2 = read_vec(d, &mut b)?;
        let ln1_gamma = read_vec(d, &mut b)?;
        let ln1_beta = read_vec(d, &mut b)?;
        let ln2_gamma = read_vec(d, &mut b)?;
        let ln2_beta = read_vec(d, &mut b)?;
        layers.push(LayerWeights {
            wq,
            wk,
            wv,
            bq,
            bk,
            bv,
            wo,
            bo,
            w1,
            b1,
            w2,
            b2,
            ln1_gamma,
            ln1_beta,
            ln2_gamma,
            ln2_beta,
        });
    }
    Ok(EncoderWeights { config: cfg, layers })
}

/// Magic bytes for decoder weight blobs.
const MAGIC_DEC: &[u8; 4] = b"PTED";

/// Serialize decoder weights (same header layout as the encoder format,
/// different magic; `seq_len` is the target length).
#[must_use]
pub fn encode_decoder(weights: &crate::decoder::DecoderWeights) -> Bytes {
    let cfg = weights.config;
    let mut buf = BytesMut::new();
    buf.put_slice(MAGIC_DEC);
    buf.put_u32_le(VERSION);
    buf.put_u32_le(cfg.d_model as u32);
    buf.put_u32_le(cfg.heads as u32);
    buf.put_u32_le(cfg.layers as u32);
    buf.put_u32_le(cfg.seq_len as u32);
    buf.put_u32_le(cfg.ffn_mult as u32);
    for l in &weights.layers {
        for m in [
            &l.self_wq,
            &l.self_wk,
            &l.self_wv,
            &l.self_wo,
            &l.cross_wq,
            &l.cross_wk,
            &l.cross_wv,
            &l.cross_wo,
            &l.w1,
            &l.w2,
        ] {
            for &v in m.as_slice() {
                buf.put_f32_le(v);
            }
        }
        for v in [
            &l.self_bq,
            &l.self_bk,
            &l.self_bv,
            &l.self_bo,
            &l.cross_bq,
            &l.cross_bk,
            &l.cross_bv,
            &l.cross_bo,
            &l.b1,
            &l.b2,
        ] {
            for &x in v.iter() {
                buf.put_f32_le(x);
            }
        }
        for (g, b) in &l.ln {
            for &x in g.iter().chain(b.iter()) {
                buf.put_f32_le(x);
            }
        }
    }
    buf.freeze()
}

/// Decode a decoder weight blob.
pub fn decode_decoder(blob: &[u8]) -> Result<crate::decoder::DecoderWeights, DecodeError> {
    let mut b = blob;
    if b.remaining() < 4 + 4 + 5 * 4 {
        return Err(DecodeError::Truncated);
    }
    let mut magic = [0u8; 4];
    b.copy_to_slice(&mut magic);
    if &magic != MAGIC_DEC {
        return Err(DecodeError::BadMagic);
    }
    let version = b.get_u32_le();
    if version != VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    let d_model = b.get_u32_le() as usize;
    let heads = b.get_u32_le() as usize;
    let layers_n = b.get_u32_le() as usize;
    let seq_len = b.get_u32_le() as usize;
    let ffn_mult = b.get_u32_le() as usize;
    if d_model == 0 || heads == 0 || layers_n == 0 || seq_len == 0 || ffn_mult == 0 {
        return Err(DecodeError::BadConfig("zero dimension".into()));
    }
    if !d_model.is_multiple_of(heads) {
        return Err(DecodeError::BadConfig("heads must divide d_model".into()));
    }
    let cfg = EncoderConfig::new(d_model, heads, layers_n, seq_len).with_ffn_mult(ffn_mult);
    let d = d_model;
    let f = cfg.d_ffn();
    let read_mat = |rows: usize, cols: usize, b: &mut &[u8]| -> Result<Matrix<f32>, DecodeError> {
        let n = rows * cols;
        if b.remaining() < n * 4 {
            return Err(DecodeError::Truncated);
        }
        Ok(Matrix::from_vec(rows, cols, (0..n).map(|_| b.get_f32_le()).collect()))
    };
    let read_vec = |n: usize, b: &mut &[u8]| -> Result<Vec<f32>, DecodeError> {
        if b.remaining() < n * 4 {
            return Err(DecodeError::Truncated);
        }
        Ok((0..n).map(|_| b.get_f32_le()).collect())
    };
    let mut layers = Vec::with_capacity(layers_n);
    for _ in 0..layers_n {
        let self_wq = read_mat(d, d, &mut b)?;
        let self_wk = read_mat(d, d, &mut b)?;
        let self_wv = read_mat(d, d, &mut b)?;
        let self_wo = read_mat(d, d, &mut b)?;
        let cross_wq = read_mat(d, d, &mut b)?;
        let cross_wk = read_mat(d, d, &mut b)?;
        let cross_wv = read_mat(d, d, &mut b)?;
        let cross_wo = read_mat(d, d, &mut b)?;
        let w1 = read_mat(d, f, &mut b)?;
        let w2 = read_mat(f, d, &mut b)?;
        let self_bq = read_vec(d, &mut b)?;
        let self_bk = read_vec(d, &mut b)?;
        let self_bv = read_vec(d, &mut b)?;
        let self_bo = read_vec(d, &mut b)?;
        let cross_bq = read_vec(d, &mut b)?;
        let cross_bk = read_vec(d, &mut b)?;
        let cross_bv = read_vec(d, &mut b)?;
        let cross_bo = read_vec(d, &mut b)?;
        let b1 = read_vec(f, &mut b)?;
        let b2 = read_vec(d, &mut b)?;
        let mut ln = Vec::with_capacity(3);
        for _ in 0..3 {
            let g = read_vec(d, &mut b)?;
            let beta = read_vec(d, &mut b)?;
            ln.push((g, beta));
        }
        let ln: [(Vec<f32>, Vec<f32>); 3] = ln.try_into().map_err(|_| DecodeError::Truncated)?;
        layers.push(crate::decoder::DecoderLayerWeights {
            self_wq,
            self_wk,
            self_wv,
            self_bq,
            self_bk,
            self_bv,
            self_wo,
            self_bo,
            cross_wq,
            cross_wk,
            cross_wv,
            cross_bq,
            cross_bk,
            cross_bv,
            cross_wo,
            cross_bo,
            w1,
            b1,
            w2,
            b2,
            ln,
        });
    }
    Ok(crate::decoder::DecoderWeights { config: cfg, layers })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decoder_round_trip() {
        let cfg = EncoderConfig::new(32, 4, 2, 8);
        let w = crate::decoder::DecoderWeights::random(cfg, 44);
        let blob = encode_decoder(&w);
        let back = decode_decoder(&blob).unwrap();
        assert_eq!(back.config, cfg);
        for (a, b) in w.layers.iter().zip(back.layers.iter()) {
            assert_eq!(a.self_wq.as_slice(), b.self_wq.as_slice());
            assert_eq!(a.cross_wv.as_slice(), b.cross_wv.as_slice());
            assert_eq!(a.ln[2].1, b.ln[2].1);
        }
    }

    #[test]
    fn decoder_and_encoder_magics_are_distinct() {
        let cfg = EncoderConfig::new(16, 2, 1, 4);
        let enc_blob = encode(&EncoderWeights::random(cfg, 1));
        assert!(matches!(decode_decoder(&enc_blob), Err(DecodeError::BadMagic)));
        let dec_blob = encode_decoder(&crate::decoder::DecoderWeights::random(cfg, 1));
        assert!(matches!(decode(&dec_blob), Err(DecodeError::BadMagic)));
    }

    #[test]
    fn decoder_truncation_detected() {
        let cfg = EncoderConfig::new(16, 2, 1, 4);
        let blob = encode_decoder(&crate::decoder::DecoderWeights::random(cfg, 2));
        assert!(matches!(decode_decoder(&blob[..blob.len() - 4]), Err(DecodeError::Truncated)));
    }

    #[test]
    fn round_trip_preserves_everything() {
        let cfg = EncoderConfig::new(32, 4, 2, 8);
        let w = EncoderWeights::random(cfg, 21);
        let blob = encode(&w);
        let back = decode(&blob).unwrap();
        assert_eq!(back.config, cfg);
        for (a, b) in w.layers.iter().zip(back.layers.iter()) {
            assert_eq!(a.wq.as_slice(), b.wq.as_slice());
            assert_eq!(a.w2.as_slice(), b.w2.as_slice());
            assert_eq!(a.b1, b.b1);
            assert_eq!(a.ln2_beta, b.ln2_beta);
        }
    }

    #[test]
    fn peek_reads_only_header() {
        let cfg = EncoderConfig::new(64, 8, 3, 16).with_ffn_mult(2);
        let w = EncoderWeights::random(cfg, 1);
        let blob = encode(&w);
        // header alone suffices
        let got = peek_config(&blob[..28]).unwrap();
        assert_eq!(got, cfg);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut blob = encode(&EncoderWeights::random(EncoderConfig::new(16, 2, 1, 2), 1)).to_vec();
        blob[0] = b'X';
        assert!(matches!(decode(&blob), Err(DecodeError::BadMagic)));
    }

    #[test]
    fn truncation_detected() {
        let blob = encode(&EncoderWeights::random(EncoderConfig::new(16, 2, 1, 2), 1));
        let cut = &blob[..blob.len() - 8];
        assert!(matches!(decode(cut), Err(DecodeError::Truncated)));
        assert_eq!(peek_config(&blob[..8]), Err(DecodeError::Truncated));
    }

    #[test]
    fn invalid_header_config_rejected() {
        let mut blob = encode(&EncoderWeights::random(EncoderConfig::new(16, 2, 1, 2), 1)).to_vec();
        // corrupt heads to 3 (does not divide 16)
        blob[12..16].copy_from_slice(&3u32.to_le_bytes());
        assert!(matches!(peek_config(&blob), Err(DecodeError::BadConfig(_))));
    }

    #[test]
    fn version_check() {
        let mut blob = encode(&EncoderWeights::random(EncoderConfig::new(16, 2, 1, 2), 1)).to_vec();
        blob[4..8].copy_from_slice(&9u32.to_le_bytes());
        assert_eq!(peek_config(&blob), Err(DecodeError::BadVersion(9)));
    }
}
