//! The int8 fixed-point golden model.
//!
//! This is the bit-exact specification of what the hardware computes:
//! every multiply-accumulate in i32, every narrowing through the same
//! [`Requantizer`] stages the engines synthesize. `protea-core`'s tiled
//! engines must agree with this module **exactly** — integer addition is
//! order-independent, so any tiling that covers each reduction once
//! reproduces the same accumulators, and identical requantization then
//! yields identical bytes. The integration tests assert that equality.
//!
//! Quantization scheme (see [`QuantSchedule`]):
//! * activations: one global 8-bit format (`Q2.5` by default) — required
//!   for the saturating residual adds to be format-aligned, as in the
//!   hardware;
//! * weights: per-matrix formats chosen by range calibration;
//! * biases: pre-scaled i32 at the accumulator's fractional position
//!   (the paper loads biases into registers and adds them to the
//!   accumulated Q/K/V directly);
//! * attention logits: scaled by `1/d_model` via exact integer division
//!   (Algorithm 2 line 9), stored in `Q0.7`;
//! * softmax probabilities: `Q0.7` via the LUT softmax.

use crate::config::{AttnScaling, EncoderConfig};
use crate::weights::{EncoderWeights, LayerWeights};
use protea_fixed::activation::ActivationLut;
use protea_fixed::layernorm::LayerNormUnit;
use protea_fixed::{QFormat, Quantizer, Requantizer, Rounding, SoftmaxUnit};
use protea_tensor::{matmul_i8_i32, transpose, Matrix};

/// Global quantization decisions for one deployment.
#[derive(Debug, Clone, Copy)]
pub struct QuantSchedule {
    /// Format of all activations (inputs, Q/K/V, attention output, FFN
    /// hidden, layer outputs).
    pub act_fmt: QFormat,
    /// Format of attention logits after scaling.
    pub logit_fmt: QFormat,
    /// Rounding mode of every requantization stage.
    pub rounding: Rounding,
    /// Attention scaling convention (must match the hardware build).
    pub scaling: AttnScaling,
}

impl QuantSchedule {
    /// The paper-faithful schedule: Q2.5 activations, `1/d_model` logit
    /// scaling into Q0.7, round-to-nearest-even.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            act_fmt: QFormat::new(8, 5),
            logit_fmt: QFormat::q8_prob(),
            rounding: Rounding::NearestEven,
            scaling: AttnScaling::InvDmodel,
        }
    }

    /// Standard-transformer variant: `1/√d_k` scaling with wider logits.
    #[must_use]
    pub fn standard_scaling() -> Self {
        Self {
            act_fmt: QFormat::new(8, 5),
            logit_fmt: QFormat::new(8, 5),
            rounding: Rounding::NearestEven,
            scaling: AttnScaling::InvSqrtDk,
        }
    }
}

/// A quantized weight matrix with its format.
#[derive(Debug, Clone)]
pub struct QuantMatrix {
    /// Raw int8 weights.
    pub data: Matrix<i8>,
    /// The matrix's format.
    pub fmt: QFormat,
}

impl QuantMatrix {
    /// Calibrate and quantize a float matrix.
    #[must_use]
    pub fn from_float(m: &Matrix<f32>) -> Self {
        let (raw, params) = Quantizer::default().quantize(m.as_slice());
        Self { data: Matrix::from_vec(m.rows(), m.cols(), raw), fmt: params.format() }
    }
}

/// One layer's quantized parameters.
#[derive(Debug, Clone)]
pub struct QuantizedLayer {
    /// Q/K/V projections.
    pub wq: QuantMatrix,
    /// See [`QuantizedLayer::wq`].
    pub wk: QuantMatrix,
    /// See [`QuantizedLayer::wq`].
    pub wv: QuantMatrix,
    /// Biases pre-scaled into the respective accumulator formats.
    pub bq: Vec<i32>,
    /// See [`QuantizedLayer::bq`].
    pub bk: Vec<i32>,
    /// See [`QuantizedLayer::bq`].
    pub bv: Vec<i32>,
    /// Attention output projection (FFN1).
    pub wo: QuantMatrix,
    /// FFN1 bias (accumulator scale).
    pub bo: Vec<i32>,
    /// First FFN transformation (FFN2).
    pub w1: QuantMatrix,
    /// FFN2 bias (accumulator scale).
    pub b1: Vec<i32>,
    /// Second FFN transformation (FFN3).
    pub w2: QuantMatrix,
    /// FFN3 bias (accumulator scale).
    pub b2: Vec<i32>,
    /// Post-attention layer norm.
    pub ln1: LayerNormUnit,
    /// Post-FFN layer norm.
    pub ln2: LayerNormUnit,
}

/// Intermediate tensors of one layer, for debugging and for testing the
/// accelerator stage-by-stage.
#[derive(Debug, Clone)]
pub struct LayerTrace {
    /// Q, K, V after requantization (SL × d).
    pub q: Matrix<i8>,
    /// See [`LayerTrace::q`].
    pub k: Matrix<i8>,
    /// See [`LayerTrace::q`].
    pub v: Matrix<i8>,
    /// Attention probabilities, heads concatenated row-blocks (h·SL × SL).
    pub probs: Matrix<i8>,
    /// Attention-weighted values, concatenated (SL × d).
    pub sv: Matrix<i8>,
    /// After output projection (SL × d).
    pub attn_out: Matrix<i8>,
    /// After first residual + LN (SL × d).
    pub x1: Matrix<i8>,
    /// FFN hidden after activation (SL × d_ffn).
    pub hidden: Matrix<i8>,
    /// Layer output (SL × d).
    pub out: Matrix<i8>,
}

/// The quantized encoder: weights + schedule.
#[derive(Debug, Clone)]
pub struct QuantizedEncoder {
    /// Configuration (shapes + conventions).
    pub config: EncoderConfig,
    /// The schedule all stages follow.
    pub schedule: QuantSchedule,
    /// Per-layer parameters.
    pub layers: Vec<QuantizedLayer>,
    softmax: SoftmaxUnit,
    act_lut: ActivationLut,
}

/// Alias used by downstream crates for the full quantized parameter set.
pub type QuantizedWeights = QuantizedEncoder;

impl QuantizedEncoder {
    /// Quantize a float weight set under `schedule`.
    #[must_use]
    pub fn from_float(weights: &EncoderWeights, schedule: QuantSchedule) -> Self {
        let cfg = weights.config;
        let layers = weights.layers.iter().map(|l| quantize_layer(l, &schedule)).collect();
        Self {
            config: cfg,
            schedule,
            layers,
            softmax: SoftmaxUnit::new(schedule.logit_fmt),
            act_lut: ActivationLut::new(cfg.activation, schedule.act_fmt),
        }
    }

    /// Quantize an f32 input into the activation format.
    #[must_use]
    pub fn quantize_input(&self, x: &Matrix<f32>) -> Matrix<i8> {
        let fmt = self.schedule.act_fmt;
        x.map(|v| fmt.real_to_raw(f64::from(v)) as i8)
    }

    /// Dequantize an activation matrix back to f32.
    #[must_use]
    pub fn dequantize(&self, x: &Matrix<i8>) -> Matrix<f32> {
        let fmt = self.schedule.act_fmt;
        x.map(|v| fmt.raw_to_real(i64::from(v)) as f32)
    }

    /// Full forward pass on quantized input.
    #[must_use]
    pub fn forward(&self, x: &Matrix<i8>) -> Matrix<i8> {
        let cfg = self.config;
        assert_eq!(x.shape(), (cfg.seq_len, cfg.d_model), "input must be SL × d_model");
        let mut h = x.clone();
        for layer in &self.layers {
            h = self.forward_layer(&h, layer).out;
        }
        h
    }

    /// One layer with full intermediate trace.
    #[must_use]
    pub fn forward_layer(&self, x: &Matrix<i8>, w: &QuantizedLayer) -> LayerTrace {
        let cfg = self.config;
        let s = &self.schedule;
        let sl = cfg.seq_len;
        let dk = cfg.d_k();

        // --- QKV_CE: projections + bias + requantize -------------------
        let q = project(x, &w.wq, &w.bq, s);
        let k = project(x, &w.wk, &w.bk, s);
        let v = project(x, &w.wv, &w.bv, s);

        // --- per-head attention ----------------------------------------
        let mut probs = Matrix::<i8>::zeros(cfg.heads * sl, sl);
        let mut sv = Matrix::<i8>::zeros(sl, cfg.d_model);
        for head in 0..cfg.heads {
            let c0 = head * dk;
            let qi = q.submatrix(0, c0, sl, dk);
            let ki = k.submatrix(0, c0, sl, dk);
            let vi = v.submatrix(0, c0, sl, dk);

            // QK_CE: S = Q Kᵀ, scale, requantize to logit format.
            let acc = matmul_i8_i32(&qi, &transpose(&ki));
            let logits = requant_logits(&acc, &cfg, s);

            // Softmax (LUT).
            let mut p = Matrix::<i8>::zeros(sl, sl);
            self.softmax.forward_matrix(logits.as_slice(), sl, p.as_mut_slice());
            probs.write_submatrix(head * sl, 0, &p);

            // SV_CE.
            let acc_sv = matmul_i8_i32(&p, &vi);
            let rq = Requantizer::new(
                s.logit_fmt.frac_bits() + s.act_fmt.frac_bits(),
                s.act_fmt,
                s.rounding,
            );
            let svi = acc_sv.map(|a| rq.apply(a));
            sv.write_submatrix(0, c0, &svi);
        }

        // --- FFN1_CE: output projection, residual, LN -------------------
        let attn_out = project(&sv, &w.wo, &w.bo, s);
        let x1 = add_norm(x, &attn_out, &w.ln1, s);

        // --- FFN2_CE: first transformation + activation -----------------
        let mut hidden = project(&x1, &w.w1, &w.b1, s);
        self.act_lut.apply_slice(hidden.as_mut_slice());

        // --- FFN3_CE: second transformation, residual, LN ---------------
        let ffn_out = project(&hidden, &w.w2, &w.b2, s);
        let out = add_norm(&x1, &ffn_out, &w.ln2, s);

        LayerTrace { q, k, v, probs, sv, attn_out, x1, hidden, out }
    }
}

/// Linear projection: `requant(x·W + b)`. Shared with the accelerator's
/// functional path so the two cannot diverge.
#[must_use]
pub fn project(x: &Matrix<i8>, w: &QuantMatrix, bias: &[i32], s: &QuantSchedule) -> Matrix<i8> {
    let mut acc = matmul_i8_i32(x, &w.data);
    assert_eq!(acc.cols(), bias.len(), "bias length mismatch");
    for r in 0..acc.rows() {
        for (a, &b) in acc.row_mut(r).iter_mut().zip(bias.iter()) {
            *a = a.saturating_add(b);
        }
    }
    let rq = Requantizer::new(s.act_fmt.frac_bits() + w.fmt.frac_bits(), s.act_fmt, s.rounding);
    acc.map(|a| rq.apply(a))
}

/// The attention-logit scaling stage (Algorithm 2 line 9) as a
/// standalone per-element operator: exact integer division by the scale
/// denominator at the accumulator precision, then requantization to the
/// logit format. Extracted so the matrix pass ([`requant_logits`]) and
/// the accelerator's fused GEMM epilogue apply the *same* scalar —
/// one definition, no way to diverge.
#[derive(Debug, Clone, Copy)]
pub struct LogitRequant {
    denom: i64,
    /// `2·act_frac − logit_frac`: right shift when ≥ 0, left otherwise.
    sh: i32,
    rounding: Rounding,
}

impl LogitRequant {
    /// Derive the stage from the deployment's config and schedule.
    #[must_use]
    pub fn new(cfg: &EncoderConfig, s: &QuantSchedule) -> Self {
        let denom: i64 = match s.scaling {
            AttnScaling::InvDmodel => cfg.d_model as i64,
            AttnScaling::InvSqrtDk => {
                protea_fixed::layernorm::isqrt_u64(cfg.d_k() as u64).max(1) as i64
            }
        };
        let sh = i32::from(2 * s.act_fmt.frac_bits()) - i32::from(s.logit_fmt.frac_bits());
        Self { denom, sh, rounding: s.rounding }
    }

    /// Scale and narrow one i32 logit accumulator.
    #[must_use]
    pub fn apply(&self, a: i32) -> i8 {
        // exact division, C-style truncation toward zero (what an HLS
        // integer divide produces)
        let scaled = i64::from(a) / self.denom;
        let v = if self.sh >= 0 {
            self.rounding.shift_right(scaled, self.sh as u32)
        } else {
            scaled << (-self.sh).min(62)
        };
        v.clamp(-128, 127) as i8
    }
}

/// Attention logit scaling + narrowing over a full accumulator matrix:
/// [`LogitRequant`] applied elementwise.
#[must_use]
pub fn requant_logits(acc: &Matrix<i32>, cfg: &EncoderConfig, s: &QuantSchedule) -> Matrix<i8> {
    let lr = LogitRequant::new(cfg, s);
    acc.map(|a| lr.apply(a))
}

/// Residual add (saturating, shared format) then layer norm. Shared with
/// the accelerator path.
#[must_use]
pub fn add_norm(
    x: &Matrix<i8>,
    sub: &Matrix<i8>,
    ln: &LayerNormUnit,
    s: &QuantSchedule,
) -> Matrix<i8> {
    let summed = protea_tensor::ops::residual_add_i8(x, sub);
    let mut out = Matrix::<i8>::zeros(summed.rows(), summed.cols());
    ln.forward_matrix(summed.as_slice(), summed.cols(), s.act_fmt, out.as_mut_slice());
    out
}

fn quantize_layer(l: &LayerWeights, s: &QuantSchedule) -> QuantizedLayer {
    let wq = QuantMatrix::from_float(&l.wq);
    let wk = QuantMatrix::from_float(&l.wk);
    let wv = QuantMatrix::from_float(&l.wv);
    let wo = QuantMatrix::from_float(&l.wo);
    let w1 = QuantMatrix::from_float(&l.w1);
    let w2 = QuantMatrix::from_float(&l.w2);
    let bias32 = |b: &[f32], wfmt: QFormat| -> Vec<i32> {
        let frac = u32::from(s.act_fmt.frac_bits()) + u32::from(wfmt.frac_bits());
        let scale = 2f64.powi(frac as i32);
        b.iter()
            .map(|&x| {
                let v = (f64::from(x) * scale).round();
                v.clamp(f64::from(i32::MIN), f64::from(i32::MAX)) as i32
            })
            .collect()
    };
    let gamma_fmt = QFormat::new(8, 5);
    let beta_fmt = QFormat::new(8, 5);
    let qv = |v: &[f32], fmt: QFormat| -> Vec<i8> {
        v.iter().map(|&x| fmt.real_to_raw(f64::from(x)) as i8).collect()
    };
    QuantizedLayer {
        bq: bias32(&l.bq, wq.fmt),
        bk: bias32(&l.bk, wk.fmt),
        bv: bias32(&l.bv, wv.fmt),
        bo: bias32(&l.bo, wo.fmt),
        b1: bias32(&l.b1, w1.fmt),
        b2: bias32(&l.b2, w2.fmt),
        ln1: LayerNormUnit::new(
            qv(&l.ln1_gamma, gamma_fmt),
            qv(&l.ln1_beta, beta_fmt),
            gamma_fmt,
            beta_fmt,
            s.act_fmt,
        ),
        ln2: LayerNormUnit::new(
            qv(&l.ln2_gamma, gamma_fmt),
            qv(&l.ln2_beta, beta_fmt),
            gamma_fmt,
            beta_fmt,
            s.act_fmt,
        ),
        wq,
        wk,
        wv,
        wo,
        w1,
        w2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::float::FloatEncoder;
    use crate::weights::EncoderWeights;

    fn setup(cfg: EncoderConfig) -> (FloatEncoder, QuantizedEncoder, Matrix<f32>) {
        let w = EncoderWeights::random(cfg, 99);
        let q = QuantizedEncoder::from_float(&w, QuantSchedule::paper());
        let f = FloatEncoder::new(w);
        let x = Matrix::from_fn(cfg.seq_len, cfg.d_model, |r, c| {
            (((r * 31 + c * 17) % 41) as f32 / 41.0 - 0.5) * 2.0
        });
        (f, q, x)
    }

    #[test]
    fn forward_shape_and_determinism() {
        let cfg = EncoderConfig::new(32, 4, 2, 8);
        let (_, q, x) = setup(cfg);
        let xi = q.quantize_input(&x);
        let a = q.forward(&xi);
        let b = q.forward(&xi);
        assert_eq!(a.shape(), (8, 32));
        assert_eq!(a.as_slice(), b.as_slice(), "quantized forward must be deterministic");
    }

    #[test]
    fn tracks_float_reference_loosely() {
        // 8-bit, deep stack: expect correlation, not equality. LN keeps
        // activations in range, so the MSE should be well under the
        // signal variance (~1 after LN).
        let cfg = EncoderConfig::new(32, 4, 2, 8);
        let (f, q, x) = setup(cfg);
        let yq = q.dequantize(&q.forward(&q.quantize_input(&x)));
        let yf = f.forward(&x);
        let err = protea_tensor::ops::mse(&yf, &yq);
        assert!(err < 0.5, "mse = {err}");
    }

    #[test]
    fn probs_rows_are_distributions() {
        let cfg = EncoderConfig::new(32, 4, 1, 8);
        let (_, q, x) = setup(cfg);
        let tr = q.forward_layer(&q.quantize_input(&x), &q.layers[0]);
        assert_eq!(tr.probs.shape(), (4 * 8, 8));
        for r in 0..tr.probs.rows() {
            let sum: i32 = tr.probs.row(r).iter().map(|&p| i32::from(p)).sum();
            assert!((sum - 128).unsigned_abs() <= 8, "row {r} sums to {sum}");
        }
    }

    #[test]
    fn trace_shapes() {
        let cfg = EncoderConfig::new(16, 2, 1, 4);
        let (_, q, x) = setup(cfg);
        let tr = q.forward_layer(&q.quantize_input(&x), &q.layers[0]);
        assert_eq!(tr.q.shape(), (4, 16));
        assert_eq!(tr.sv.shape(), (4, 16));
        assert_eq!(tr.hidden.shape(), (4, 64));
        assert_eq!(tr.out.shape(), (4, 16));
    }

    #[test]
    fn standard_scaling_gives_sharper_attention() {
        let cfg = EncoderConfig::new(64, 4, 1, 8);
        let w = EncoderWeights::random(cfg, 5);
        let qp = QuantizedEncoder::from_float(&w, QuantSchedule::paper());
        let qs = QuantizedEncoder::from_float(&w, QuantSchedule::standard_scaling());
        let x = Matrix::from_fn(8, 64, |r, c| ((r * 7 + c) % 13) as f32 / 6.0 - 1.0);
        let tp = qp.forward_layer(&qp.quantize_input(&x), &qp.layers[0]);
        let ts = qs.forward_layer(&qs.quantize_input(&x), &qs.layers[0]);
        let peak = |m: &Matrix<i8>| -> i32 {
            (0..m.rows()).map(|r| m.row(r).iter().map(|&p| i32::from(p)).max().unwrap()).sum()
        };
        // 1/d_model scaling crushes logits → flatter attention.
        assert!(peak(&ts.probs) >= peak(&tp.probs));
    }

    #[test]
    fn project_is_exact_integer_math() {
        // Hand-check one projection element.
        let s = QuantSchedule::paper();
        let x = Matrix::from_vec(1, 2, vec![32i8, -16]); // 1.0, -0.5 in Q2.5
        let w = QuantMatrix {
            data: Matrix::from_vec(2, 1, vec![64i8, 64]), // 1.0, 1.0 in Q1.6
            fmt: QFormat::new(8, 6),
        };
        let bias = vec![0i32];
        let y = project(&x, &w, &bias, &s);
        // acc = 32·64 + (−16)·64 = 1024 at frac 11 → 0.5 → Q2.5 raw 16.
        assert_eq!(y[(0, 0)], 16);
    }

    #[test]
    fn saturating_residual_path() {
        // Residual adds saturate instead of wrapping.
        let cfg = EncoderConfig::new(16, 2, 1, 2);
        let (_, q, _) = setup(cfg);
        let big = Matrix::from_vec(2, 16, vec![120i8; 32]);
        let out = add_norm(&big, &big, &q.layers[0].ln1, &q.schedule);
        // all-equal rows normalize to β: finite, no panic, deterministic
        assert_eq!(out.shape(), (2, 16));
    }
}
