//! Synthetic workload generators for benchmarks and examples.
//!
//! The evaluation needs inputs with controllable statistics: uniform
//! activation noise (the default), Zipf-distributed token streams (NLP
//! realism: a few tokens dominate), and "needle" retrieval sequences
//! (one position carries a planted signature — useful for checking that
//! attention actually routes information). All generators are seeded and
//! portable (`StdRng`), so every benchmark is reproducible.

use crate::config::EncoderConfig;
use protea_tensor::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Uniform activation noise in `[-scale, scale]`, shaped `SL × d_model`.
#[must_use]
pub fn uniform_activations(cfg: &EncoderConfig, scale: f32, seed: u64) -> Matrix<f32> {
    assert!(scale > 0.0 && scale.is_finite());
    let mut rng = StdRng::seed_from_u64(seed);
    Matrix::from_fn(cfg.seq_len, cfg.d_model, |_, _| rng.gen_range(-scale..scale))
}

/// A Zipf-distributed token stream over `vocab` tokens (exponent `s`):
/// `P(rank k) ∝ 1/k^s`. Standard model of natural-language token
/// frequencies.
#[must_use]
pub fn zipf_tokens(len: usize, vocab: usize, s: f64, seed: u64) -> Vec<u32> {
    assert!(vocab > 0 && s > 0.0);
    let mut rng = StdRng::seed_from_u64(seed);
    // inverse-CDF sampling over the normalized harmonic weights
    let weights: Vec<f64> = (1..=vocab).map(|k| 1.0 / (k as f64).powf(s)).collect();
    let total: f64 = weights.iter().sum();
    (0..len)
        .map(|_| {
            let mut u = rng.gen_range(0.0..total);
            for (i, w) in weights.iter().enumerate() {
                if u < *w {
                    return i as u32;
                }
                u -= w;
            }
            (vocab - 1) as u32
        })
        .collect()
}

/// A "needle" sequence: background noise with one position carrying a
/// strong planted signature along the first `signature_dims` features.
/// Returns `(input, needle_position)`.
#[must_use]
pub fn needle_sequence(
    cfg: &EncoderConfig,
    signature_dims: usize,
    seed: u64,
) -> (Matrix<f32>, usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let needle = rng.gen_range(0..cfg.seq_len);
    let sig = signature_dims.min(cfg.d_model);
    let m = Matrix::from_fn(cfg.seq_len, cfg.d_model, |r, c| {
        let noise: f32 = rng.gen_range(-0.2..0.2);
        if r == needle && c < sig {
            2.0 + noise
        } else {
            noise
        }
    });
    (m, needle)
}

/// A batch of uniform-activation inputs with distinct seeds.
#[must_use]
pub fn batch(cfg: &EncoderConfig, n: usize, scale: f32, seed: u64) -> Vec<Matrix<f32>> {
    (0..n).map(|i| uniform_activations(cfg, scale, seed.wrapping_add(i as u64))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_is_bounded_and_seeded() {
        let cfg = EncoderConfig::new(32, 4, 1, 8);
        let a = uniform_activations(&cfg, 1.5, 7);
        let b = uniform_activations(&cfg, 1.5, 7);
        assert_eq!(a.as_slice(), b.as_slice());
        assert!(a.as_slice().iter().all(|&x| x.abs() <= 1.5));
        let c = uniform_activations(&cfg, 1.5, 8);
        assert_ne!(a.as_slice(), c.as_slice());
    }

    #[test]
    fn zipf_concentrates_mass_on_low_ranks() {
        let toks = zipf_tokens(20_000, 1000, 1.1, 3);
        assert!(toks.iter().all(|&t| t < 1000));
        let top10 = toks.iter().filter(|&&t| t < 10).count() as f64 / toks.len() as f64;
        let mid =
            toks.iter().filter(|&&t| (500..510).contains(&t)).count() as f64 / toks.len() as f64;
        assert!(top10 > 0.3, "top-10 share = {top10}");
        assert!(top10 > 20.0 * mid.max(1e-6), "zipf head must dominate");
    }

    #[test]
    fn needle_is_findable() {
        let cfg = EncoderConfig::new(64, 4, 1, 16);
        let (m, pos) = needle_sequence(&cfg, 8, 5);
        // the needle row has by far the largest L2 norm
        let norms: Vec<f32> =
            (0..16).map(|r| m.row(r).iter().map(|&x| x * x).sum::<f32>()).collect();
        let argmax = norms.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).unwrap().0;
        assert_eq!(argmax, pos);
    }

    #[test]
    fn batch_members_differ() {
        let cfg = EncoderConfig::new(16, 2, 1, 4);
        let b = batch(&cfg, 3, 1.0, 11);
        assert_eq!(b.len(), 3);
        assert_ne!(b[0].as_slice(), b[1].as_slice());
    }
}
