//! Explicit aarch64 NEON microkernel: `vmlal_s16` widening
//! multiply-accumulate over the widened-i16 strips.
//!
//! Exactness follows the same argument as the x86 module: widened-i8
//! products are ≤ 2¹⁴, each int32x4 lane accumulates at most `⌈k/4⌉`
//! of them, so partials stay far below `i32::MAX` and the horizontal
//! `vaddvq_s32` reduction is an exact re-association of the scalar sum.
//!
//! NEON is baseline on aarch64, so this variant needs no runtime
//! probe; the dispatch layer still routes through [`super::KernelIsa`]
//! so `PROTEA_KERNEL` can force the portable kernels for comparison.
#![allow(unsafe_code)]

use super::CB;

use core::arch::aarch64::{
    vaddvq_s32, vdupq_n_s32, vget_high_s16, vget_low_s16, vld1q_s16, vmlal_s16,
};

/// NEON microkernel: one activation row against `CB` weight columns,
/// eight int32x4 accumulators live across the `k` sweep.
///
/// # Safety
/// NEON is mandatory on aarch64; the only obligations are the in-bounds
/// loads, discharged by the slice-length asserts.
#[target_feature(enable = "neon")]
#[must_use]
pub unsafe fn mk_neon(arow: &[i16], wcol16: &[i16], k: usize) -> [i32; CB] {
    assert_eq!(arow.len(), k);
    assert_eq!(wcol16.len(), CB * k);
    let kc = k / 8 * 8;
    let mut acc = [vdupq_n_s32(0); CB];
    let ap = arow.as_ptr();
    let wp = wcol16.as_ptr();
    for k0 in (0..kc).step_by(8) {
        // SAFETY: k0 + 8 <= kc <= k = arow.len(); per column c the
        // strip c*k + k0 + 8 <= (c+1)*k <= wcol16.len().
        let xa = vld1q_s16(ap.add(k0));
        for (c, a) in acc.iter_mut().enumerate() {
            let wv = vld1q_s16(wp.add(c * k + k0));
            *a = vmlal_s16(*a, vget_low_s16(xa), vget_low_s16(wv));
            *a = vmlal_s16(*a, vget_high_s16(xa), vget_high_s16(wv));
        }
    }
    let mut sums = [0i32; CB];
    for (c, s) in sums.iter_mut().enumerate() {
        *s = vaddvq_s32(acc[c]);
    }
    for kk in kc..k {
        let x = i32::from(arow[kk]);
        for (c, s) in sums.iter_mut().enumerate() {
            *s += x * i32::from(wcol16[c * k + kk]);
        }
    }
    sums
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::portable::mk_scalar;

    #[test]
    fn neon_matches_scalar() {
        for k in [0usize, 3, 8, 15, 16, 49] {
            let a: Vec<i16> = (0..k).map(|i| ((i * 91 + 17) % 255) as i16 - 127).collect();
            let w: Vec<i16> = (0..CB * k).map(|i| ((i * 53 + 5) % 255) as i16 - 127).collect();
            assert_eq!(unsafe { mk_neon(&a, &w, k) }, mk_scalar(&a, &w, k), "k={k}");
        }
    }
}
