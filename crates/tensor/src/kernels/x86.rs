//! Explicit x86-64 microkernels: AVX2 (ymm) and AVX-512 (zmm)
//! `vpmaddwd` over the widened-i16 strips.
//!
//! Exactness argument (why re-association to SIMD lanes is bit-safe):
//! every i16 operand is a widened i8, so each product is bounded by
//! `2¹⁴` and a `madd` pair sum by `2¹⁵`. One vector lane accumulates at
//! most `⌈k/lanes⌉` pair sums, so its i32 partial stays below `k·2¹⁵ ≪
//! i32::MAX` for every `k` in this design (`≤ 4·d_model`). All partial
//! sums are therefore exact, and integer addition is associative and
//! commutative — the horizontal reduction at the end produces the same
//! i32 as the scalar left-to-right loop, byte for byte.
//!
//! `unsafe` is confined to this module (and its aarch64 sibling): the
//! crate otherwise keeps `deny(unsafe_code)`. The only obligations are
//! (a) the CPU supports the feature — guaranteed by the dispatch layer,
//! which probes `is_x86_feature_detected!` before ever selecting these
//! variants — and (b) in-bounds pointers, discharged by the explicit
//! slice bounds asserted below.
#![allow(unsafe_code)]

use super::CB;

#[cfg(target_arch = "x86_64")]
use core::arch::x86_64::{
    __m128i, __m256i, _mm256_add_epi32, _mm256_castsi256_si128, _mm256_extracti128_si256,
    _mm256_loadu_si256, _mm256_madd_epi16, _mm256_setzero_si256, _mm512_add_epi32,
    _mm512_loadu_si512, _mm512_madd_epi16, _mm512_reduce_add_epi32, _mm512_setzero_si512,
    _mm_add_epi32, _mm_cvtsi128_si32, _mm_shuffle_epi32,
};

/// Exact horizontal sum of the eight i32 lanes of a ymm accumulator.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn hsum_epi32(v: __m256i) -> i32 {
    let lo = _mm256_castsi256_si128(v);
    let hi = _mm256_extracti128_si256(v, 1);
    let s: __m128i = _mm_add_epi32(lo, hi);
    let s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0b01_00_11_10));
    let s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0b00_00_00_01));
    _mm_cvtsi128_si32(s)
}

/// AVX2 microkernel: one activation row against `CB` weight columns.
/// Eight ymm accumulators (one per column) live across the whole `k`
/// sweep; each 16-wide chunk costs one activation load shared by all
/// eight columns plus one load + one `vpmaddwd` + one `vpaddd` per
/// column.
///
/// # Safety
/// The caller must have verified `is_x86_feature_detected!("avx2")`.
#[target_feature(enable = "avx2")]
#[must_use]
pub unsafe fn mk_avx2(arow: &[i16], wcol16: &[i16], k: usize) -> [i32; CB] {
    assert_eq!(arow.len(), k);
    assert_eq!(wcol16.len(), CB * k);
    let kc = k / 16 * 16;
    let mut acc = [_mm256_setzero_si256(); CB];
    let ap = arow.as_ptr();
    let wp = wcol16.as_ptr();
    for k0 in (0..kc).step_by(16) {
        // SAFETY: k0 + 16 <= kc <= k = arow.len(), and for each column
        // c the strip c*k + k0 + 16 <= (c+1)*k <= wcol16.len().
        let xa = _mm256_loadu_si256(ap.add(k0).cast());
        for (c, a) in acc.iter_mut().enumerate() {
            let wv = _mm256_loadu_si256(wp.add(c * k + k0).cast());
            *a = _mm256_add_epi32(*a, _mm256_madd_epi16(xa, wv));
        }
    }
    let mut sums = [0i32; CB];
    for (c, s) in sums.iter_mut().enumerate() {
        *s = hsum_epi32(acc[c]);
    }
    // Ragged k tail (< 16): scalar, same values.
    for kk in kc..k {
        let x = i32::from(arow[kk]);
        for (c, s) in sums.iter_mut().enumerate() {
            *s += x * i32::from(wcol16[c * k + kk]);
        }
    }
    sums
}

/// AVX-512 microkernel: identical structure at zmm width — 32 MACs per
/// `vpmaddwd`, `_mm512_reduce_add_epi32` for the exact horizontal sum.
///
/// # Safety
/// The caller must have verified `avx512f` and `avx512bw` detection.
#[target_feature(enable = "avx512f,avx512bw")]
#[must_use]
pub unsafe fn mk_avx512(arow: &[i16], wcol16: &[i16], k: usize) -> [i32; CB] {
    assert_eq!(arow.len(), k);
    assert_eq!(wcol16.len(), CB * k);
    let kc = k / 32 * 32;
    let mut acc = [_mm512_setzero_si512(); CB];
    let ap = arow.as_ptr();
    let wp = wcol16.as_ptr();
    for k0 in (0..kc).step_by(32) {
        // SAFETY: bounds as in `mk_avx2`, at 32-element granularity.
        let xa = _mm512_loadu_si512(ap.add(k0).cast());
        for (c, a) in acc.iter_mut().enumerate() {
            let wv = _mm512_loadu_si512(wp.add(c * k + k0).cast());
            *a = _mm512_add_epi32(*a, _mm512_madd_epi16(xa, wv));
        }
    }
    let mut sums = [0i32; CB];
    for (c, s) in sums.iter_mut().enumerate() {
        *s = _mm512_reduce_add_epi32(acc[c]);
    }
    for kk in kc..k {
        let x = i32::from(arow[kk]);
        for (c, s) in sums.iter_mut().enumerate() {
            *s += x * i32::from(wcol16[c * k + kk]);
        }
    }
    sums
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::portable::mk_scalar;

    #[test]
    fn avx_variants_match_scalar_when_supported() {
        for k in [0usize, 5, 16, 31, 32, 49, 160] {
            let a: Vec<i16> = (0..k).map(|i| ((i * 91 + 17) % 255) as i16 - 127).collect();
            let w: Vec<i16> = (0..CB * k).map(|i| ((i * 53 + 5) % 255) as i16 - 127).collect();
            let want = mk_scalar(&a, &w, k);
            if std::arch::is_x86_feature_detected!("avx2") {
                assert_eq!(unsafe { mk_avx2(&a, &w, k) }, want, "avx2 k={k}");
            }
            if std::arch::is_x86_feature_detected!("avx512f")
                && std::arch::is_x86_feature_detected!("avx512bw")
            {
                assert_eq!(unsafe { mk_avx512(&a, &w, k) }, want, "avx512 k={k}");
            }
        }
    }
}
