//! Explicit microkernels behind runtime CPU-feature dispatch.
//!
//! The packed GEMM's inner loop — reduce one widened activation row
//! against `CB` widened weight columns into `CB` i32 sums — used to rely
//! on LLVM autovectorizing a scalar loop into `pmaddwd`. That works, but
//! only by luck of the loop shape, and it leaves half the machine on the
//! table on AVX2/AVX-512 hosts. This module makes the instruction
//! selection explicit:
//!
//! * [`KernelIsa::Scalar`] — one plain `i32 += i16·i16` loop per column.
//!   The semantic baseline; never auto-selected, only forced.
//! * [`KernelIsa::Packed`] — the original autovectorized microkernel,
//!   kept verbatim as the portable fallback ([`portable`]). This is what
//!   every host without SIMD support runs.
//! * [`KernelIsa::Avx2`] — explicit `_mm256_madd_epi16` over the same
//!   widened-i16 strips: 16 MACs per instruction, eight ymm accumulators
//!   (one per `CB` column) live across the k sweep ([`x86`]).
//! * [`KernelIsa::Avx512`] — the zmm version (`avx512bw`): 32 MACs per
//!   `vpmaddwd` ([`x86`]).
//! * [`KernelIsa::Neon`] — `vmlal_s16` widening multiply-accumulate on
//!   aarch64 ([`neon`]).
//!
//! Why `_mm256_madd_epi16` and not `_mm256_maddubs_epi16`: `maddubs`
//! multiplies *unsigned* by signed bytes and **saturates** its i16 pair
//! sums — `(255·127 + 255·127)` overflows i16 — so it cannot reproduce
//! the exact integer semantics this workspace pins byte-for-byte.
//! Widening i8→i16 first costs one shuffle per 16 operands and makes
//! `madd_epi16` exact: each i16 product is ≤ 2¹⁴, a pair sum is ≤ 2¹⁵,
//! and the per-lane i32 accumulation over `k ≤ 2¹⁶` cannot wrap. Every
//! variant computes the same sum of the same products — integer addition
//! is associative and commutative, so re-associating the reduction into
//! SIMD lanes is bit-invisible. The `kernel_dispatch` integration tests
//! and `backend_equiv` pin this across every selectable variant.
//!
//! ## Selection
//!
//! The active kernel is resolved **once** per process:
//! `PROTEA_KERNEL=scalar|packed|avx2|avx512|neon|auto` overrides;
//! otherwise the best ISA the CPU reports is used (AVX-512 ≻ AVX2 ≻
//! NEON ≻ portable packed). Requesting an ISA the host lacks falls back
//! to the portable packed kernel — deterministically, never to an
//! illegal-instruction fault. Benchmarks and tests can re-route at
//! runtime with [`force_kernel`]; because all variants are bit-exact,
//! forcing changes wall-clock only.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

pub mod portable;

#[cfg(target_arch = "x86_64")]
pub mod x86;

#[cfg(target_arch = "aarch64")]
pub mod neon;

/// Columns processed per microkernel call: the widened `CB × k` weight
/// strip stays L1-resident across the row sweep, and `CB` accumulators
/// fit the register file at every supported vector width (eight ymm/zmm
/// accumulators plus two operand registers).
pub const CB: usize = 8;

/// A selectable microkernel instruction set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum KernelIsa {
    /// Plain scalar reduction — the semantic baseline, forced only.
    Scalar,
    /// The autovectorized portable kernel (the pre-dispatch default).
    Packed,
    /// Explicit AVX2 (`vpmaddwd` ymm), x86-64 only.
    Avx2,
    /// Explicit AVX-512 (`vpmaddwd` zmm, needs `avx512bw`), x86-64 only.
    Avx512,
    /// Explicit NEON (`vmlal_s16`), aarch64 only.
    Neon,
}

impl KernelIsa {
    /// All variants, in ascending preference order.
    pub const ALL: [Self; 5] = [Self::Scalar, Self::Packed, Self::Avx2, Self::Avx512, Self::Neon];

    /// Parse a `PROTEA_KERNEL` value (case-insensitive). `auto` and
    /// unknown strings return `None` (→ auto-detect).
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "scalar" => Some(Self::Scalar),
            "packed" => Some(Self::Packed),
            "avx2" => Some(Self::Avx2),
            "avx512" => Some(Self::Avx512),
            "neon" => Some(Self::Neon),
            _ => None,
        }
    }

    /// Whether this host can execute the variant.
    #[must_use]
    pub fn is_supported(self) -> bool {
        match self {
            Self::Scalar | Self::Packed => true,
            #[cfg(target_arch = "x86_64")]
            Self::Avx2 => std::arch::is_x86_feature_detected!("avx2"),
            #[cfg(target_arch = "x86_64")]
            Self::Avx512 => {
                std::arch::is_x86_feature_detected!("avx512f")
                    && std::arch::is_x86_feature_detected!("avx512bw")
            }
            #[cfg(target_arch = "aarch64")]
            Self::Neon => true,
            #[allow(unreachable_patterns)] // arms above are cfg-gated
            _ => false,
        }
    }

    /// The best variant this host supports (never `Scalar` — the scalar
    /// kernel exists as a forced baseline, not a serving path).
    #[must_use]
    pub fn detect() -> Self {
        [Self::Avx512, Self::Avx2, Self::Neon]
            .into_iter()
            .find(|isa| isa.is_supported())
            .unwrap_or(Self::Packed)
    }
}

impl std::fmt::Display for KernelIsa {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Self::Scalar => "scalar",
            Self::Packed => "packed",
            Self::Avx2 => "avx2",
            Self::Avx512 => "avx512",
            Self::Neon => "neon",
        })
    }
}

/// Every variant the current host can execute, ascending preference.
#[must_use]
pub fn supported_kernels() -> Vec<KernelIsa> {
    KernelIsa::ALL.into_iter().filter(|isa| isa.is_supported()).collect()
}

/// The process-wide default, resolved once: `PROTEA_KERNEL` override
/// (clamped to supported — an unsupported request falls back to the
/// portable packed kernel) or auto-detection.
fn env_kernel() -> KernelIsa {
    static RESOLVED: OnceLock<KernelIsa> = OnceLock::new();
    *RESOLVED.get_or_init(|| match std::env::var("PROTEA_KERNEL") {
        Ok(v) => match KernelIsa::parse(&v) {
            Some(isa) if isa.is_supported() => isa,
            Some(_) => KernelIsa::Packed,
            None => KernelIsa::detect(),
        },
        Err(_) => KernelIsa::detect(),
    })
}

/// Runtime re-route for benchmarks and tests; 0 = no override.
static FORCED: AtomicU8 = AtomicU8::new(0);

/// Force every subsequent packed-GEMM call onto one kernel variant
/// (`None` restores `PROTEA_KERNEL`/auto selection). Forcing an
/// unsupported variant falls back to the portable packed kernel, same
/// as the env override. All variants are bit-exact, so this changes
/// wall-clock only — it exists so benchmarks can sweep ISAs and tests
/// can pin every dispatch path inside one process.
pub fn force_kernel(isa: Option<KernelIsa>) {
    let code = match isa {
        None => 0,
        Some(i) if !i.is_supported() => 1 + KernelIsa::Packed as u8,
        Some(i) => 1 + i as u8,
    };
    FORCED.store(code, Ordering::Release);
}

/// The kernel variant the next packed GEMM will run: the
/// [`force_kernel`] override if set, else the `PROTEA_KERNEL`/detected
/// process default.
#[must_use]
pub fn active_kernel() -> KernelIsa {
    match FORCED.load(Ordering::Acquire) {
        0 => env_kernel(),
        n => KernelIsa::ALL[(n - 1) as usize],
    }
}

/// One microkernel invocation: reduce the widened activation row
/// against `CB` widened weight columns (`wcol16[c*k..(c+1)*k]`) into
/// `CB` exact i32 sums. `isa` is resolved once per GEMM by the caller
/// and passed down so the hot loop pays one predictable branch per
/// block, not an atomic load per block.
#[inline]
#[must_use]
// The dispatch site carries the `unsafe` calls into the feature-gated
// kernels; the safety contract (CPU probed before selection) is noted
// on each arm.
#[allow(unsafe_code)]
pub(crate) fn mk_block(isa: KernelIsa, arow16: &[i16], wcol16: &[i16], k: usize) -> [i32; CB] {
    debug_assert_eq!(arow16.len(), k);
    debug_assert_eq!(wcol16.len(), CB * k);
    match isa {
        KernelIsa::Scalar => portable::mk_scalar(arow16, wcol16, k),
        KernelIsa::Packed => portable::mk_packed(arow16, wcol16, k),
        #[cfg(target_arch = "x86_64")]
        // SAFETY of the feature gate: `isa` only reaches these arms via
        // `env_kernel`/`force_kernel`, both of which clamp to
        // `is_supported()` — the CPU has been probed.
        KernelIsa::Avx2 => unsafe { x86::mk_avx2(arow16, wcol16, k) },
        #[cfg(target_arch = "x86_64")]
        KernelIsa::Avx512 => unsafe { x86::mk_avx512(arow16, wcol16, k) },
        #[cfg(target_arch = "aarch64")]
        KernelIsa::Neon => unsafe { neon::mk_neon(arow16, wcol16, k) },
        #[allow(unreachable_patterns)] // arms above are cfg-gated
        _ => portable::mk_packed(arow16, wcol16, k),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn operands(k: usize) -> (Vec<i16>, Vec<i16>) {
        let a: Vec<i16> = (0..k).map(|i| ((i * 47 + 3) % 255) as i16 - 127).collect();
        let w: Vec<i16> = (0..CB * k).map(|i| ((i * 29 + 11) % 255) as i16 - 127).collect();
        (a, w)
    }

    #[test]
    fn every_supported_isa_matches_scalar() {
        // Straddle the 16- and 32-wide chunk boundaries and the empty
        // reduction.
        for k in [0usize, 1, 7, 15, 16, 17, 31, 32, 33, 96, 257] {
            let (a, w) = operands(k);
            let want = portable::mk_scalar(&a, &w, k);
            for isa in supported_kernels() {
                assert_eq!(mk_block(isa, &a, &w, k), want, "isa={isa} k={k}");
            }
        }
    }

    #[test]
    fn extreme_operands_are_exact_on_every_isa() {
        // Worst case: every product is (-128)·(-128) at transformer
        // depth — the magnitude bound the no-overflow argument uses.
        let k = 3072;
        let a = vec![-128i16; k];
        let w = vec![-128i16; CB * k];
        for isa in supported_kernels() {
            assert_eq!(mk_block(isa, &a, &w, k), [k as i32 * 128 * 128; CB], "isa={isa}");
        }
    }

    #[test]
    fn parse_round_trips_and_rejects_unknown() {
        for isa in KernelIsa::ALL {
            assert_eq!(KernelIsa::parse(&isa.to_string()), Some(isa));
            assert_eq!(KernelIsa::parse(&isa.to_string().to_uppercase()), Some(isa));
        }
        assert_eq!(KernelIsa::parse("auto"), None);
        assert_eq!(KernelIsa::parse("sse9"), None);
    }

    #[test]
    fn portable_kernels_are_always_supported() {
        assert!(KernelIsa::Scalar.is_supported());
        assert!(KernelIsa::Packed.is_supported());
        assert!(supported_kernels().contains(&KernelIsa::Packed));
    }

    #[test]
    fn detect_never_picks_scalar() {
        assert_ne!(KernelIsa::detect(), KernelIsa::Scalar);
        assert!(KernelIsa::detect().is_supported());
    }

    #[test]
    fn forcing_unsupported_falls_back_to_packed() {
        // NEON is never supported on x86 and vice versa, so one of the
        // two SIMD families is a guaranteed-unsupported probe.
        let unsupported =
            [KernelIsa::Neon, KernelIsa::Avx2].into_iter().find(|isa| !isa.is_supported());
        if let Some(isa) = unsupported {
            force_kernel(Some(isa));
            assert_eq!(active_kernel(), KernelIsa::Packed);
            force_kernel(None);
        }
    }
}
