//! Portable microkernels: the scalar baseline and the autovectorized
//! packed kernel (the pre-dispatch implementation, kept verbatim as the
//! fallback every host without explicit SIMD support runs).

use super::CB;

/// Scalar baseline: one plain widened dot loop per column. Never
/// auto-selected — it exists so `PROTEA_KERNEL=scalar` gives tests and
/// benchmarks a vectorization-free control with identical bytes.
#[inline]
#[must_use]
pub fn mk_scalar(arow: &[i16], wcol16: &[i16], k: usize) -> [i32; CB] {
    let mut sums = [0i32; CB];
    for (c, s) in sums.iter_mut().enumerate() {
        let col = &wcol16[c * k..(c + 1) * k];
        let mut acc = 0i32;
        for (&x, &w) in arow.iter().zip(col) {
            acc += i32::from(x) * i32::from(w);
        }
        *s = acc;
    }
    sums
}

/// The portable packed microkernel: the loop shape LLVM autovectorizes
/// best for the *build* target is chosen at compile time (the two
/// shapes compute identical sums). This is exactly the pre-dispatch
/// kernel, unchanged.
#[inline]
#[must_use]
pub fn mk_packed(arow: &[i16], wcol16: &[i16], k: usize) -> [i32; CB] {
    if cfg!(target_feature = "avx2") {
        mk_separate(arow, wcol16, k)
    } else {
        mk_interleaved(arow, wcol16, k)
    }
}

/// Microkernel, interleaved shape: `k` swept in fixed 16-element chunks,
/// each chunk reduced into all `CB` column sums before moving on. The
/// fixed inner trip count plus the widened operands let LLVM prove
/// no-overflow and emit dense `pmaddwd` chains; at baseline SSE2 this is
/// the fastest autovectorized shape measured (the chunked form beats the
/// plain one-element sweep by ~20%).
#[inline]
#[must_use]
pub fn mk_interleaved(arow: &[i16], wcol16: &[i16], k: usize) -> [i32; CB] {
    let mut sums = [0i32; CB];
    let kc = k / 16 * 16;
    for k0 in (0..kc).step_by(16) {
        let xa = &arow[k0..k0 + 16];
        for (c, s) in sums.iter_mut().enumerate() {
            let wv = &wcol16[c * k + k0..c * k + k0 + 16];
            let mut acc = 0i32;
            for t in 0..16 {
                acc += i32::from(xa[t]) * i32::from(wv[t]);
            }
            *s += acc;
        }
    }
    for kk in kc..k {
        let x = i32::from(arow[kk]);
        for (c, s) in sums.iter_mut().enumerate() {
            *s += x * i32::from(wcol16[c * k + kk]);
        }
    }
    sums
}

/// Microkernel, separate shape: `CB` independent dot-product loops. With
/// AVX2 enabled at compile time this autovectorized variant wins (wider
/// horizontal reductions amortize better per column).
#[inline]
#[must_use]
pub fn mk_separate(arow: &[i16], wcol16: &[i16], k: usize) -> [i32; CB] {
    let mut sums = [0i32; CB];
    for (c, s) in sums.iter_mut().enumerate() {
        let col = &wcol16[c * k..(c + 1) * k];
        let mut acc = 0i32;
        for kk in 0..k {
            acc += i32::from(arow[kk]) * i32::from(col[kk]);
        }
        *s = acc;
    }
    sums
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_portable_shapes_agree() {
        let k = 37;
        let a: Vec<i16> = (0..k).map(|i| (i as i16 * 7) % 251 - 125).collect();
        let w: Vec<i16> = (0..CB * k).map(|i| (i as i16 * 13) % 251 - 125).collect();
        let want = mk_scalar(&a, &w, k);
        assert_eq!(mk_interleaved(&a, &w, k), want);
        assert_eq!(mk_separate(&a, &w, k), want);
        assert_eq!(mk_packed(&a, &w, k), want);
    }
}
