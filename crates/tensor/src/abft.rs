//! ABFT (algorithm-based fault tolerance) checksums for the packed GEMM.
//!
//! For `C = A × W` the column checksum of `C` is predictable *without*
//! computing `C`: summing the defining equation over rows gives
//!
//! ```text
//! Σᵢ C[i][j] = Σᵢ Σₖ A[i][k]·W[k][j] = Σₖ (Σᵢ A[i][k]) · W[k][j]
//! ```
//!
//! i.e. the column sums of `C` equal the single-row product
//! `colsum(A) × W`; dually the row sums of `C` equal `A × rowsum(W)`.
//! Computing both predictions costs `O(m·k + k·n)` MACs and checking
//! them against the actual output costs `O(m·n)` additions — a relative
//! overhead of roughly `1/m + 1/n + 1/k` against the `O(m·k·n)` product
//! itself, which is why ABFT is the canonical silent-data-corruption
//! defense for GEMM-dominated accelerators (Huang & Abraham 1984).
//!
//! All checksums accumulate in `i64`: every `C` element is bounded by
//! `k·2¹⁴`, so even a full row/column sum of a transformer-sized output
//! stays far below `i64::MAX` and the arithmetic is exact.
//!
//! **Coverage boundary** (why the accelerator *also* keeps a weight
//! digest): a flip in `C` or in `A`'s datapath makes observed and
//! predicted sums disagree and is caught here. A flip in `W` is
//! invisible — the prediction is computed *from the same corrupted `W`*
//! and agrees with the corrupted output perfectly. Persistent weight
//! corruption must be caught by hashing the weight image itself
//! (`protea-core`'s FNV weight digest); the test
//! `corrupt_weights_are_invisible_to_abft` pins this boundary.

use core::fmt;

use crate::matrix::Matrix;
use crate::pack::{matmul_i8_i32_packed, PackedWeights};

/// Row and column checksums of a GEMM output, exact in `i64`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AbftChecksums {
    /// `row[i] = Σⱼ C[i][j]` — one entry per output row.
    pub row: Vec<i64>,
    /// `col[j] = Σᵢ C[i][j]` — one entry per output column.
    pub col: Vec<i64>,
}

impl AbftChecksums {
    /// Predict the checksums of `C = A × W` from the inputs alone, in
    /// `O(m·k + k·n)` MACs.
    ///
    /// # Panics
    /// Panics if `A.cols() != W.rows()`.
    #[must_use]
    pub fn predicted(a: &Matrix<i8>, w: &PackedWeights) -> Self {
        let (m, k) = a.shape();
        let n = w.cols();
        assert_eq!(k, w.rows(), "inner dimensions must agree: {m}x{k} · {}x{n}", w.rows());
        // colsum_a[p] = Σᵢ A[i][p]; rowsum_w[p] = Σⱼ W[p][j].
        let mut colsum_a = vec![0i64; k];
        for i in 0..m {
            for (acc, &v) in colsum_a.iter_mut().zip(a.row(i)) {
                *acc += i64::from(v);
            }
        }
        let mut rowsum_w = vec![0i64; k];
        for j in 0..n {
            for (acc, &v) in rowsum_w.iter_mut().zip(w.col(j)) {
                *acc += i64::from(v);
            }
        }
        let row = (0..m)
            .map(|i| a.row(i).iter().zip(&rowsum_w).map(|(&x, &s)| i64::from(x) * s).sum())
            .collect();
        let col = (0..n)
            .map(|j| w.col(j).iter().zip(&colsum_a).map(|(&x, &s)| i64::from(x) * s).sum())
            .collect();
        Self { row, col }
    }

    /// Sum the actual output: `O(m·n)` additions.
    #[must_use]
    pub fn observed(c: &Matrix<i32>) -> Self {
        let (m, n) = c.shape();
        let mut col = vec![0i64; n];
        let row = (0..m)
            .map(|i| {
                let mut r = 0i64;
                for (acc, &v) in col.iter_mut().zip(c.row(i)) {
                    r += i64::from(v);
                    *acc += i64::from(v);
                }
                r
            })
            .collect();
        Self { row, col }
    }

    /// Compare predicted against observed checksums.
    ///
    /// # Errors
    /// An [`AbftMismatch`] locating the first disagreeing row and/or
    /// column sum. A single flipped output element perturbs exactly one
    /// row sum and one column sum, so the pair localizes it.
    pub fn verify(&self, observed: &Self) -> Result<(), AbftMismatch> {
        let row = self.row.iter().zip(&observed.row).position(|(p, o)| p != o);
        let col = self.col.iter().zip(&observed.col).position(|(p, o)| p != o);
        if row.is_none() && col.is_none() {
            Ok(())
        } else {
            Err(AbftMismatch { row, col })
        }
    }
}

/// A checksum disagreement: the first row and/or column whose sum
/// diverges from prediction. A single corrupted element shows up in
/// both; corruption confined to the prediction inputs may show in one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AbftMismatch {
    /// First row index whose sum disagrees, if any.
    pub row: Option<usize>,
    /// First column index whose sum disagrees, if any.
    pub col: Option<usize>,
}

impl fmt::Display for AbftMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.row, self.col) {
            (Some(r), Some(c)) => write!(f, "ABFT checksum mismatch at row {r}, col {c}"),
            (Some(r), None) => write!(f, "ABFT row-checksum mismatch at row {r}"),
            (None, Some(c)) => write!(f, "ABFT col-checksum mismatch at col {c}"),
            (None, None) => f.write_str("ABFT checksums agree"),
        }
    }
}

/// Packed GEMM with an ABFT-verified epilogue: computes
/// `C = A × W` via [`matmul_i8_i32_packed`], then checks the output's
/// row/column sums against their predictions.
///
/// # Errors
/// An [`AbftMismatch`] if any checksum disagrees (on a fault-free host
/// this cannot happen; the entry point exists so integrity-sensitive
/// callers exercise the same epilogue the fleet simulation charges for).
///
/// # Panics
/// Panics if `A.cols() != W.rows()`.
pub fn matmul_i8_i32_packed_verified(
    a: &Matrix<i8>,
    w: &PackedWeights,
) -> Result<Matrix<i32>, AbftMismatch> {
    let c = matmul_i8_i32_packed(a, w);
    AbftChecksums::predicted(a, w).verify(&AbftChecksums::observed(&c))?;
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a_mat(m: usize, k: usize) -> Matrix<i8> {
        Matrix::from_fn(m, k, |r, c| (((r * 47 + c * 31) % 255) as i64 - 127) as i8)
    }

    fn w_mat(k: usize, n: usize) -> Matrix<i8> {
        Matrix::from_fn(k, n, |r, c| (((r * 29 + c * 13) % 255) as i64 - 127) as i8)
    }

    #[test]
    fn clean_gemm_verifies_across_shapes() {
        for (m, k, n) in [(17, 23, 13), (4, 64, 8), (1, 7, 1), (5, 1, 17), (8, 33, 16)] {
            let a = a_mat(m, k);
            let w = PackedWeights::pack(&w_mat(k, n));
            let c = matmul_i8_i32_packed_verified(&a, &w).expect("clean GEMM must verify");
            assert_eq!(c.as_slice(), matmul_i8_i32_packed(&a, &w).as_slice());
        }
    }

    #[test]
    fn extreme_values_verify_exactly() {
        // Worst-case magnitudes: every product is 128·128, k = 3072.
        let a = Matrix::from_vec(2, 3072, vec![i8::MIN; 2 * 3072]);
        let w = PackedWeights::pack(&Matrix::from_vec(3072, 2, vec![i8::MIN; 3072 * 2]));
        assert!(matmul_i8_i32_packed_verified(&a, &w).is_ok());
    }

    #[test]
    fn flipped_output_element_is_detected_and_localized() {
        let a = a_mat(12, 20);
        let w = PackedWeights::pack(&w_mat(20, 9));
        let mut c = matmul_i8_i32_packed(&a, &w);
        let clean = AbftChecksums::predicted(&a, &w);
        assert_eq!(clean.verify(&AbftChecksums::observed(&c)), Ok(()));
        // Flip one bit of one element, as an SDC would.
        let (fr, fc) = (7, 4);
        c[(fr, fc)] ^= 1 << 13;
        let err = clean.verify(&AbftChecksums::observed(&c)).expect_err("flip must be caught");
        assert_eq!(err, AbftMismatch { row: Some(fr), col: Some(fc) });
        assert!(err.to_string().contains("row 7"));
    }

    #[test]
    fn corrupt_activations_are_detected() {
        let a = a_mat(8, 16);
        let w = PackedWeights::pack(&w_mat(16, 8));
        let clean = AbftChecksums::predicted(&a, &w);
        let mut bad_a = a.clone();
        bad_a[(3, 5)] ^= 0x40;
        let c_bad = matmul_i8_i32_packed(&bad_a, &w);
        // Prediction from the clean inputs disagrees with the corrupted
        // datapath's output.
        assert!(clean.verify(&AbftChecksums::observed(&c_bad)).is_err());
    }

    #[test]
    fn corrupt_weights_are_invisible_to_abft() {
        // The coverage boundary: when the *resident weights* are
        // corrupted, the prediction is computed from the same corrupt
        // image and agrees with the corrupt output — ABFT passes even
        // though the result is wrong. This is exactly why the
        // accelerator seals weights under an FNV digest.
        let a = a_mat(8, 16);
        let mut w_bad = w_mat(16, 8);
        w_bad[(2, 3)] ^= 0x20;
        let packed_bad = PackedWeights::pack(&w_bad);
        let c_bad = matmul_i8_i32_packed(&a, &packed_bad);
        let predicted = AbftChecksums::predicted(&a, &packed_bad);
        assert_eq!(predicted.verify(&AbftChecksums::observed(&c_bad)), Ok(()));
        // ...yet the output differs from the true product.
        let w_good = PackedWeights::pack(&w_mat(16, 8));
        assert_ne!(c_bad.as_slice(), matmul_i8_i32_packed(&a, &w_good).as_slice());
    }

    #[test]
    fn degenerate_shapes_verify() {
        let a = Matrix::<i8>::zeros(0, 4);
        let w = PackedWeights::pack(&Matrix::<i8>::zeros(4, 3));
        assert!(matmul_i8_i32_packed_verified(&a, &w).is_ok());
        let a2 = Matrix::<i8>::zeros(3, 0);
        let w2 = PackedWeights::pack(&Matrix::<i8>::zeros(0, 2));
        assert!(matmul_i8_i32_packed_verified(&a2, &w2).is_ok());
    }
}
