//! Matrix multiplication kernels.
//!
//! Four kernels with one contract: `C = A × B` for `A: m×k`, `B: k×n`.
//!
//! * [`matmul_naive`] — the correctness oracle (textbook triple loop).
//! * [`matmul_blocked`] — cache-tiled; same result (f32 summation order is
//!   preserved per output element by accumulating partial sums in the same
//!   k-order).
//! * [`matmul_parallel`] — rayon-parallel over output rows; identical
//!   results to the blocked kernel because each output element's reduction
//!   order is unchanged (parallelism is across independent elements only,
//!   the pattern the HPC guides recommend).
//! * [`matmul_i8_i32`] — the hardware kernel: exact i8×i8→i32, the one the
//!   accelerator model must agree with bit-for-bit.

// The kernels below use indexed `p` loops on purpose: `p` strides two
// matrices at once, and the explicit index mirrors the k-ordering
// contract the doc comments promise.
#![allow(clippy::needless_range_loop)]

use crate::matrix::Matrix;
use protea_fixed::axpy_i8;
use rayon::prelude::*;

/// Textbook `m×k · k×n` in f32. Correctness oracle for the other kernels.
#[must_use]
pub fn matmul_naive(a: &Matrix<f32>, b: &Matrix<f32>) -> Matrix<f32> {
    check_shapes(a.shape(), b.shape());
    let (m, k) = a.shape();
    let n = b.cols();
    let mut c = Matrix::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0f32;
            for p in 0..k {
                acc += a[(i, p)] * b[(p, j)];
            }
            c[(i, j)] = acc;
        }
    }
    c
}

/// Cache-blocked f32 matmul with an i-k-j loop order inside blocks.
///
/// Accumulates each `C[i][j]` strictly in increasing `p` order, so results
/// are bitwise identical to [`matmul_naive`].
#[must_use]
pub fn matmul_blocked(a: &Matrix<f32>, b: &Matrix<f32>, block: usize) -> Matrix<f32> {
    check_shapes(a.shape(), b.shape());
    assert!(block > 0, "block size must be nonzero");
    let (m, k) = a.shape();
    let n = b.cols();
    let mut c = Matrix::zeros(m, n);
    for i0 in (0..m).step_by(block) {
        let i1 = (i0 + block).min(m);
        for p0 in (0..k).step_by(block) {
            let p1 = (p0 + block).min(k);
            for i in i0..i1 {
                let a_row = a.row(i);
                for p in p0..p1 {
                    let av = a_row[p];
                    let b_row = b.row(p);
                    let c_row = c.row_mut(i);
                    for j in 0..n {
                        c_row[j] += av * b_row[j];
                    }
                }
            }
        }
    }
    c
}

/// Rayon-parallel f32 matmul: output rows are independent, so each thread
/// owns a disjoint slice of `C` — data-race free by construction.
#[must_use]
pub fn matmul_parallel(a: &Matrix<f32>, b: &Matrix<f32>) -> Matrix<f32> {
    check_shapes(a.shape(), b.shape());
    let (m, k) = a.shape();
    let n = b.cols();
    let mut out = vec![0f32; m * n];
    out.par_chunks_exact_mut(n.max(1)).enumerate().for_each(|(i, c_row)| {
        let a_row = a.row(i);
        for p in 0..k {
            let av = a_row[p];
            let b_row = b.row(p);
            for j in 0..n {
                c_row[j] += av * b_row[j];
            }
        }
    });
    Matrix::from_vec(m, n, out)
}

/// The hardware kernel: exact i8 × i8 → i32 accumulation. Deterministic
/// and permutation-invariant (integer adds commute), so any tiled schedule
/// that covers the reduction space once must reproduce it exactly — the
/// property the accelerator equivalence tests rely on.
#[must_use]
pub fn matmul_i8_i32(a: &Matrix<i8>, b: &Matrix<i8>) -> Matrix<i32> {
    check_shapes(a.shape(), b.shape());
    let (m, _) = a.shape();
    let n = b.cols();
    let mut out = vec![0i32; m * n];
    if n > 0 {
        for (i, c_row) in out.chunks_exact_mut(n).enumerate() {
            i8_row_product(a, b, i, c_row);
        }
    }
    Matrix::from_vec(m, n, out)
}

/// Rayon-parallel variant of [`matmul_i8_i32`]: identical results (each
/// output element's integer reduction is computed whole, within one
/// thread), parallel across output rows. This is the native-CPU baseline
/// engine's kernel.
#[must_use]
pub fn matmul_i8_i32_parallel(a: &Matrix<i8>, b: &Matrix<i8>) -> Matrix<i32> {
    check_shapes(a.shape(), b.shape());
    let (m, _) = a.shape();
    let n = b.cols();
    let mut out = vec![0i32; m * n];
    if n > 0 {
        out.par_chunks_exact_mut(n)
            .enumerate()
            .for_each(|(i, c_row)| i8_row_product(a, b, i, c_row));
    }
    Matrix::from_vec(m, n, out)
}

/// One output row of the i8 product: `c_row += A[i] · B`. Both i8
/// kernels run this same loop — with the zero-activation skip living in
/// [`axpy_i8`] — so serial and parallel cannot drift.
fn i8_row_product(a: &Matrix<i8>, b: &Matrix<i8>, i: usize, c_row: &mut [i32]) {
    for (p, &av) in a.row(i).iter().enumerate() {
        axpy_i8(c_row, av, b.row(p));
    }
}

fn check_shapes((m, k): (usize, usize), (k2, n): (usize, usize)) {
    assert_eq!(k, k2, "inner dimensions must agree: {m}x{k} · {k2}x{n}");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a_mat() -> Matrix<f32> {
        Matrix::from_fn(7, 5, |r, c| ((r * 31 + c * 7) % 13) as f32 - 6.0)
    }

    fn b_mat() -> Matrix<f32> {
        Matrix::from_fn(5, 9, |r, c| ((r * 17 + c * 3) % 11) as f32 - 5.0)
    }

    #[test]
    fn naive_known_product() {
        let a = Matrix::from_vec(2, 2, vec![1f32, 2.0, 3.0, 4.0]);
        let b = Matrix::from_vec(2, 2, vec![5f32, 6.0, 7.0, 8.0]);
        let c = matmul_naive(&a, &b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn blocked_matches_naive_bitwise() {
        let a = a_mat();
        let b = b_mat();
        let reference = matmul_naive(&a, &b);
        for block in [1, 2, 3, 5, 8, 100] {
            let c = matmul_blocked(&a, &b, block);
            assert_eq!(c.as_slice(), reference.as_slice(), "block={block}");
        }
    }

    #[test]
    fn parallel_matches_naive_bitwise() {
        let a = a_mat();
        let b = b_mat();
        assert_eq!(matmul_parallel(&a, &b).as_slice(), matmul_naive(&a, &b).as_slice());
    }

    #[test]
    fn i8_kernel_exact() {
        let a = Matrix::from_fn(4, 6, |r, c| ((r * 47 + c * 31) % 255) as i8);
        let b = Matrix::from_fn(6, 3, |r, c| ((r * 29 + c * 13) % 255) as i8);
        let c = matmul_i8_i32(&a, &b);
        for i in 0..4 {
            for j in 0..3 {
                let expect: i32 = (0..6).map(|p| i32::from(a[(i, p)]) * i32::from(b[(p, j)])).sum();
                assert_eq!(c[(i, j)], expect);
            }
        }
    }

    #[test]
    fn i8_extreme_values() {
        let a = Matrix::from_vec(1, 3072, vec![i8::MIN; 3072]);
        let b = Matrix::from_vec(3072, 1, vec![i8::MIN; 3072]);
        let c = matmul_i8_i32(&a, &b);
        assert_eq!(c[(0, 0)], 3072 * 128 * 128);
    }

    #[test]
    fn i8_parallel_matches_serial_bitwise() {
        let a = Matrix::from_fn(17, 23, |r, c| ((r * 47 + c * 31) % 255) as i8);
        let b = Matrix::from_fn(23, 13, |r, c| ((r * 29 + c * 13) % 255) as i8);
        assert_eq!(matmul_i8_i32_parallel(&a, &b).as_slice(), matmul_i8_i32(&a, &b).as_slice());
    }

    #[test]
    fn identity_multiplication() {
        let a = a_mat();
        let eye = Matrix::from_fn(5, 5, |r, c| if r == c { 1f32 } else { 0.0 });
        let c = matmul_naive(&a, &eye);
        assert_eq!(c.as_slice(), a.as_slice());
    }

    #[test]
    fn degenerate_shapes() {
        let a = Matrix::<f32>::zeros(0, 4);
        let b = Matrix::<f32>::zeros(4, 3);
        assert_eq!(matmul_naive(&a, &b).shape(), (0, 3));
        assert_eq!(matmul_parallel(&a, &b).shape(), (0, 3));
        let a2 = Matrix::<f32>::zeros(3, 0);
        let b2 = Matrix::<f32>::zeros(0, 2);
        let c = matmul_naive(&a2, &b2);
        assert_eq!(c.shape(), (3, 2));
        assert!(c.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn shape_mismatch_panics() {
        let _ = matmul_naive(&Matrix::zeros(2, 3), &Matrix::zeros(4, 2));
    }
}
