//! Packed weights and the dispatched i8→i32 GEMM with fused epilogues.
//!
//! The naive kernels in [`crate::matmul`] walk the weight matrix row by
//! row for every output row, so at transformer shapes (`k, n` in the
//! hundreds to thousands) each weight element is re-fetched from cache
//! `m` times with no layout control, and the i8 operands never reach a
//! form a multiply-accumulate unit can stream. This module is the
//! throughput path:
//!
//! * [`PackedWeights`] — the weight matrix transposed once into
//!   column-major storage: column `j` of the logical `k×n` matrix is one
//!   contiguous `k`-long strip. That is exactly the layout a dot-product
//!   inner loop streams, and for attention's `Q·Kᵀ` it means packing
//!   `Kᵀ` is a straight copy of `K`'s row-major bytes
//!   ([`PackedWeights::from_transpose`]).
//! * [`matmul_i8_i32_packed`] — widens the activations to i16 once,
//!   widens weight columns block by block, and reduces each output
//!   element through the microkernel selected by the runtime dispatch
//!   layer ([`crate::kernels`]): explicit AVX2/AVX-512/NEON where the
//!   host supports it, the original autovectorized kernel as the
//!   portable fallback, overridable via `PROTEA_KERNEL`.
//! * [`matmul_i8_i32_packed_parallel`] — the same GEMM with parallelism
//!   *inside* the product: the column space is split into panels, each
//!   worker reduces its panel into a private accumulator slab (so
//!   weight-strip widening is never duplicated across threads — the
//!   defect of the old row-band split), and the slabs are stitched into
//!   the row-major output afterwards.
//! * [`matmul_i8_packed_epilogue`] and friends — the fused epilogue:
//!   requantization (bias add, shift, saturate — any per-element
//!   `(col, acc) → i8` map) applied in the store loop, so the i32
//!   accumulator matrix is never materialized and the separate
//!   `O(m·n)` requant pass disappears.
//! * [`matmul_i8_packed_epilogue_checked`] — the ABFT hook: the same
//!   fused kernel accumulating exact i64 row/column checksums of the
//!   pre-epilogue i32 sums, verified against predictions from the
//!   inputs ([`crate::abft`]) — fusion does not weaken the
//!   silent-data-corruption defense.
//!
//! Bit-exactness: each `C[i][j]` is a sum of `A[i][p]·W[p][j]` products
//! accumulated exactly in i32 (widening to i16 is value-preserving for
//! i8, and `|sum| ≤ k·2¹⁴` cannot wrap for any realistic `k`). Integer
//! addition is associative and commutative, so every dispatchable
//! microkernel and every panel split produces the same bytes as
//! [`crate::matmul::matmul_i8_i32`] by construction, not merely within
//! tolerance — each output element's reduction runs whole within one
//! thread and one kernel. The property tests in `tests/props.rs` and
//! `tests/kernel_dispatch.rs` pin this across random shapes, ISAs and
//! thread counts.

use crate::abft::{AbftChecksums, AbftMismatch};
use crate::kernels::{self, KernelIsa, CB};
use crate::matrix::Matrix;
use protea_fixed::Requantizer;

/// A weight matrix packed once (transposed to column-major) for
/// repeated GEMMs.
///
/// Packing costs one pass over the weights (`O(k·n)`), amortized across
/// every request/layer invocation that reuses the matrix — the
/// accelerator packs at `try_load_weights`, exactly as the hardware
/// DMA-reorders the DDR image into BRAM-friendly strips.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedWeights {
    rows: usize,
    cols: usize,
    /// Column-major: logical column `j` lives at `data[j*rows..(j+1)*rows]`.
    data: Vec<i8>,
}

impl PackedWeights {
    /// Pack (transpose) a logical `k×n` weight matrix.
    #[must_use]
    pub fn pack(w: &Matrix<i8>) -> Self {
        let (rows, cols) = w.shape();
        let mut data = vec![0i8; rows * cols];
        for r in 0..rows {
            let src = w.row(r);
            for c in 0..cols {
                data[c * rows + r] = src[c];
            }
        }
        Self { rows, cols, data }
    }

    /// Pack the *transpose* of `wt`: the packed matrix is `wtᵀ`, i.e.
    /// `wt`'s rows become the packed columns. Because the packed layout
    /// is column-major, this is a straight memcpy of `wt`'s row-major
    /// storage — the fast path for attention's `Q·Kᵀ`, where `K` is
    /// already held row-major.
    #[must_use]
    pub fn from_transpose(wt: &Matrix<i8>) -> Self {
        let (n, k) = wt.shape();
        Self { rows: k, cols: n, data: wt.as_slice().to_vec() }
    }

    /// Logical (unpacked) shape `(rows, cols)` — `rows` is the reduction
    /// dimension `k`, `cols` the output width `n`.
    #[must_use]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// The reduction dimension.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The output width.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// One packed column: the `k` weights feeding output column `j`.
    #[must_use]
    pub fn col(&self, j: usize) -> &[i8] {
        &self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Reconstruct the unpacked matrix (test/debug aid).
    #[must_use]
    pub fn unpack(&self) -> Matrix<i8> {
        Matrix::from_fn(self.rows, self.cols, |r, c| self.data[c * self.rows + r])
    }
}

/// Widen an i8 strip to i16 (value-preserving).
fn widen(src: &[i8], dst: &mut [i16]) {
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = i16::from(s);
    }
}

/// Widen all `m` activation rows once; shared read-only by every panel
/// worker so the widening pass is never duplicated.
fn widen_activations(a: &Matrix<i8>) -> Vec<i16> {
    let (m, k) = a.shape();
    let mut a16 = vec![0i16; m * k];
    for r in 0..m {
        widen(a.row(r), &mut a16[r * k..(r + 1) * k]);
    }
    a16
}

/// Where one strip's results go: each implementor owns a disjoint
/// output region, so strips parallelize without synchronization. `put`
/// receives the *global* column index and the exact i32 accumulator.
trait StripSink {
    fn put(&mut self, di: usize, j: usize, sum: i32);
}

/// Raw accumulator store (the unfused `Matrix<i32>` product).
struct I32Sink<'a> {
    out: &'a mut [i32],
    stride: usize,
    j_base: usize,
}

impl StripSink for I32Sink<'_> {
    #[inline]
    fn put(&mut self, di: usize, j: usize, sum: i32) {
        self.out[di * self.stride + (j - self.j_base)] = sum;
    }
}

/// Fused-epilogue store: the per-element map runs in the store loop and
/// only the narrowed i8 ever reaches memory.
struct MapSink<'a, F> {
    out: &'a mut [i8],
    stride: usize,
    j_base: usize,
    f: &'a F,
}

impl<F: Fn(usize, i32) -> i8> StripSink for MapSink<'_, F> {
    #[inline]
    fn put(&mut self, di: usize, j: usize, sum: i32) {
        self.out[di * self.stride + (j - self.j_base)] = (self.f)(j, sum);
    }
}

/// Fused-epilogue store that additionally folds every pre-epilogue sum
/// into exact i64 row/column checksums — the ABFT observation, obtained
/// for free in the store loop instead of a second pass over a
/// materialized i32 matrix.
struct CheckedMapSink<'a, F> {
    inner: MapSink<'a, F>,
    row: &'a mut [i64],
    col: &'a mut [i64],
}

impl<F: Fn(usize, i32) -> i8> StripSink for CheckedMapSink<'_, F> {
    #[inline]
    fn put(&mut self, di: usize, j: usize, sum: i32) {
        self.row[di] += i64::from(sum);
        self.col[j - self.inner.j_base] += i64::from(sum);
        self.inner.put(di, j, sum);
    }
}

/// Reduce the weight columns in `cols` for all `rows` activation rows
/// through the selected microkernel. Weight columns are widened once
/// per `CB`-block and reused across the whole row sweep; the ragged
/// tail (`cols.len() % CB` columns) runs a scalar widened dot with
/// identical values.
fn gemm_strip<S: StripSink>(
    a16: &[i16],
    rows: usize,
    k: usize,
    w: &PackedWeights,
    cols: std::ops::Range<usize>,
    isa: KernelIsa,
    sink: &mut S,
) {
    let (j0, jw) = (cols.start, cols.len());
    let mut wcol16 = vec![0i16; CB * k];
    let mut j = j0;
    while j + CB <= j0 + jw {
        for c in 0..CB {
            widen(w.col(j + c), &mut wcol16[c * k..(c + 1) * k]);
        }
        for di in 0..rows {
            let sums = kernels::mk_block(isa, &a16[di * k..(di + 1) * k], &wcol16, k);
            for (c, &s) in sums.iter().enumerate() {
                sink.put(di, j + c, s);
            }
        }
        j += CB;
    }
    for jt in j..j0 + jw {
        let col = w.col(jt);
        for di in 0..rows {
            let arow = &a16[di * k..(di + 1) * k];
            let mut acc = 0i32;
            for (&x, &wv) in arow.iter().zip(col) {
                acc += i32::from(x) * i32::from(wv);
            }
            sink.put(di, jt, acc);
        }
    }
}

/// Below this many MACs a scoped-thread fan-out costs more than it
/// saves; the parallel entry points fall back to the serial kernel.
const MIN_PAR_MACS: usize = 1 << 20;

/// The column panels a parallel GEMM is split into: one `(j0, width)`
/// per worker, widths `CB`-aligned except possibly the last so panel
/// interiors stay on the block microkernel. Returns `None` when the
/// product is too small (or too narrow) to pay for threads.
fn column_panels(m: usize, k: usize, n: usize) -> Option<Vec<(usize, usize)>> {
    let threads = rayon::current_num_threads();
    if threads <= 1 || n < 2 * CB || m.saturating_mul(k).saturating_mul(n) < MIN_PAR_MACS {
        return None;
    }
    let width = n.div_ceil(threads).next_multiple_of(CB);
    let mut panels = Vec::with_capacity(n.div_ceil(width));
    let mut j0 = 0;
    while j0 < n {
        let w = width.min(n - j0);
        panels.push((j0, w));
        j0 += w;
    }
    if panels.len() < 2 {
        return None;
    }
    Some(panels)
}

/// Packed GEMM: `C = A × W` with `A: m×k` i8 and `W` packed from `k×n`.
/// Bit-identical to [`crate::matmul::matmul_i8_i32`] on every dispatch
/// path.
///
/// # Panics
/// Panics if `A.cols() != W.rows()`.
#[must_use]
pub fn matmul_i8_i32_packed(a: &Matrix<i8>, w: &PackedWeights) -> Matrix<i32> {
    let (m, k) = a.shape();
    let n = w.cols();
    assert_eq!(k, w.rows(), "inner dimensions must agree: {m}x{k} · {}x{n}", w.rows());
    let isa = kernels::active_kernel();
    let a16 = widen_activations(a);
    let mut out = vec![0i32; m * n];
    gemm_strip(&a16, m, k, w, 0..n, isa, &mut I32Sink { out: &mut out, stride: n, j_base: 0 });
    Matrix::from_vec(m, n, out)
}

/// Panel-parallel packed GEMM: identical bytes to
/// [`matmul_i8_i32_packed`] (each output element's reduction runs whole
/// within one thread), parallel across column panels *inside* the
/// product. Each worker reduces into a private slab, so no weight strip
/// is widened twice and no two threads share a cache line; the slabs
/// are stitched into the row-major output in one `O(m·n)` copy. Falls
/// back to the serial kernel when the product is too small to pay for
/// threads.
///
/// # Panics
/// Panics if `A.cols() != W.rows()`.
#[must_use]
pub fn matmul_i8_i32_packed_parallel(a: &Matrix<i8>, w: &PackedWeights) -> Matrix<i32> {
    let (m, k) = a.shape();
    let n = w.cols();
    assert_eq!(k, w.rows(), "inner dimensions must agree: {m}x{k} · {}x{n}", w.rows());
    let Some(panels) = column_panels(m, k, n) else {
        return matmul_i8_i32_packed(a, w);
    };
    let isa = kernels::active_kernel();
    let a16 = widen_activations(a);
    let mut slabs: Vec<(usize, usize, Vec<i32>)> =
        panels.into_iter().map(|(j0, pw)| (j0, pw, vec![0i32; m * pw])).collect();
    let a16 = &a16;
    rayon::scope(|s| {
        for (j0, pw, slab) in &mut slabs {
            let (j0, pw) = (*j0, *pw);
            s.spawn(move |_| {
                gemm_strip(
                    a16,
                    m,
                    k,
                    w,
                    j0..j0 + pw,
                    isa,
                    &mut I32Sink { out: slab, stride: pw, j_base: j0 },
                );
            });
        }
    });
    let mut out = vec![0i32; m * n];
    for (j0, pw, slab) in &slabs {
        for di in 0..m {
            out[di * n + j0..di * n + j0 + pw].copy_from_slice(&slab[di * pw..(di + 1) * pw]);
        }
    }
    Matrix::from_vec(m, n, out)
}

/// Packed GEMM with a fused epilogue: `C[i][j] = f(j, Σₚ A[i][p]·W[p][j])`,
/// the per-element map applied in the store loop so the i32 accumulator
/// matrix is never materialized. Byte-identical to computing
/// [`matmul_i8_i32_packed`] and mapping afterwards — `f` sees the exact
/// same accumulator values in both formulations.
///
/// # Panics
/// Panics if `A.cols() != W.rows()`.
#[must_use]
pub fn matmul_i8_packed_epilogue<F: Fn(usize, i32) -> i8>(
    a: &Matrix<i8>,
    w: &PackedWeights,
    f: F,
) -> Matrix<i8> {
    let (m, k) = a.shape();
    let n = w.cols();
    assert_eq!(k, w.rows(), "inner dimensions must agree: {m}x{k} · {}x{n}", w.rows());
    let isa = kernels::active_kernel();
    let a16 = widen_activations(a);
    let mut out = vec![0i8; m * n];
    gemm_strip(
        &a16,
        m,
        k,
        w,
        0..n,
        isa,
        &mut MapSink { out: &mut out, stride: n, j_base: 0, f: &f },
    );
    Matrix::from_vec(m, n, out)
}

/// Panel-parallel form of [`matmul_i8_packed_epilogue`]: identical
/// bytes, the epilogue runs inside each worker's store loop.
///
/// # Panics
/// Panics if `A.cols() != W.rows()`.
#[must_use]
pub fn matmul_i8_packed_epilogue_parallel<F: Fn(usize, i32) -> i8 + Sync>(
    a: &Matrix<i8>,
    w: &PackedWeights,
    f: F,
) -> Matrix<i8> {
    let (m, k) = a.shape();
    let n = w.cols();
    assert_eq!(k, w.rows(), "inner dimensions must agree: {m}x{k} · {}x{n}", w.rows());
    let Some(panels) = column_panels(m, k, n) else {
        return matmul_i8_packed_epilogue(a, w, f);
    };
    let isa = kernels::active_kernel();
    let a16 = widen_activations(a);
    let mut slabs: Vec<(usize, usize, Vec<i8>)> =
        panels.into_iter().map(|(j0, pw)| (j0, pw, vec![0i8; m * pw])).collect();
    let (a16, f) = (&a16, &f);
    rayon::scope(|s| {
        for (j0, pw, slab) in &mut slabs {
            let (j0, pw) = (*j0, *pw);
            s.spawn(move |_| {
                gemm_strip(
                    a16,
                    m,
                    k,
                    w,
                    j0..j0 + pw,
                    isa,
                    &mut MapSink { out: slab, stride: pw, j_base: j0, f },
                );
            });
        }
    });
    let mut out = vec![0i8; m * n];
    for (j0, pw, slab) in &slabs {
        for di in 0..m {
            out[di * n + j0..di * n + j0 + pw].copy_from_slice(&slab[di * pw..(di + 1) * pw]);
        }
    }
    Matrix::from_vec(m, n, out)
}

/// ABFT-checked fused GEMM: the epilogue hook. Computes
/// `C[i][j] = f(j, acc)` exactly as [`matmul_i8_packed_epilogue`] while
/// folding every pre-epilogue i32 sum into exact i64 row/column
/// checksums, then verifies them against predictions computed from the
/// inputs alone ([`AbftChecksums::predicted`]). Fusing the requant
/// epilogue therefore costs none of the silent-data-corruption
/// coverage: the checksums observe the accumulators *before* the
/// narrowing map, the same quantity the unfused
/// [`crate::abft::matmul_i8_i32_packed_verified`] checks.
///
/// # Errors
/// An [`AbftMismatch`] if any checksum disagrees (on a fault-free host
/// this cannot happen).
///
/// # Panics
/// Panics if `A.cols() != W.rows()`.
pub fn matmul_i8_packed_epilogue_checked<F: Fn(usize, i32) -> i8>(
    a: &Matrix<i8>,
    w: &PackedWeights,
    f: F,
) -> Result<Matrix<i8>, AbftMismatch> {
    let (m, k) = a.shape();
    let n = w.cols();
    assert_eq!(k, w.rows(), "inner dimensions must agree: {m}x{k} · {}x{n}", w.rows());
    let isa = kernels::active_kernel();
    let a16 = widen_activations(a);
    let mut out = vec![0i8; m * n];
    let mut row = vec![0i64; m];
    let mut col = vec![0i64; n];
    gemm_strip(
        &a16,
        m,
        k,
        w,
        0..n,
        isa,
        &mut CheckedMapSink {
            inner: MapSink { out: &mut out, stride: n, j_base: 0, f: &f },
            row: &mut row,
            col: &mut col,
        },
    );
    AbftChecksums::predicted(a, w).verify(&AbftChecksums { row, col })?;
    Ok(Matrix::from_vec(m, n, out))
}

/// The requantizing projection epilogue: `out = rq(acc ⊕ bias)` with
/// the saturating bias add the engines use. Fused form of the
/// `finish_projection` / `Requantizer::apply` pass.
#[inline]
fn requant_map(bias: Option<&[i32]>, rq: Requantizer) -> impl Fn(usize, i32) -> i8 + Sync + '_ {
    move |j, acc| {
        let biased = match bias {
            Some(b) => acc.saturating_add(b[j]),
            None => acc,
        };
        rq.apply(biased)
    }
}

/// Fused requantizing GEMM: `C = rq(A × W ⊕ bias)` in one pass, the
/// projection-shaped convenience over [`matmul_i8_packed_epilogue`].
/// Byte-identical to the separate accumulate → bias → requantize
/// pipeline.
///
/// # Panics
/// Panics if shapes disagree or `bias` (when given) is not `n`-long.
#[must_use]
pub fn matmul_i8_requant_packed(
    a: &Matrix<i8>,
    w: &PackedWeights,
    bias: Option<&[i32]>,
    rq: Requantizer,
) -> Matrix<i8> {
    if let Some(b) = bias {
        assert_eq!(b.len(), w.cols(), "bias length mismatch");
    }
    matmul_i8_packed_epilogue(a, w, requant_map(bias, rq))
}

/// Panel-parallel form of [`matmul_i8_requant_packed`]; identical bytes.
///
/// # Panics
/// Panics if shapes disagree or `bias` (when given) is not `n`-long.
#[must_use]
pub fn matmul_i8_requant_packed_parallel(
    a: &Matrix<i8>,
    w: &PackedWeights,
    bias: Option<&[i32]>,
    rq: Requantizer,
) -> Matrix<i8> {
    if let Some(b) = bias {
        assert_eq!(b.len(), w.cols(), "bias length mismatch");
    }
    matmul_i8_packed_epilogue_parallel(a, w, requant_map(bias, rq))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matmul::matmul_i8_i32;
    use crate::ops::transpose;
    use protea_fixed::{QFormat, Rounding};

    fn a_mat(m: usize, k: usize) -> Matrix<i8> {
        Matrix::from_fn(m, k, |r, c| (((r * 47 + c * 31) % 255) as i64 - 127) as i8)
    }

    fn w_mat(k: usize, n: usize) -> Matrix<i8> {
        Matrix::from_fn(k, n, |r, c| (((r * 29 + c * 13) % 255) as i64 - 127) as i8)
    }

    #[test]
    fn pack_round_trips() {
        let w = w_mat(11, 23);
        let packed = PackedWeights::pack(&w);
        assert_eq!(packed.shape(), (11, 23));
        assert_eq!(packed.unpack().as_slice(), w.as_slice());
    }

    #[test]
    fn from_transpose_matches_pack() {
        let w = w_mat(9, 21);
        let wt = transpose(&w);
        let a = PackedWeights::pack(&w);
        let b = PackedWeights::from_transpose(&wt);
        assert_eq!(a, b);
    }

    #[test]
    fn packed_matches_naive_bitwise() {
        // Shapes straddle the CB block boundary on both sides.
        for (m, k, n) in [(17, 23, 13), (4, 64, 8), (1, 7, 1), (5, 1, 17), (8, 33, 16)] {
            let a = a_mat(m, k);
            let w = w_mat(k, n);
            let packed = PackedWeights::pack(&w);
            let c = matmul_i8_i32_packed(&a, &packed);
            assert_eq!(c.as_slice(), matmul_i8_i32(&a, &w).as_slice(), "{m}x{k}x{n}");
        }
    }

    #[test]
    fn packed_parallel_matches_serial_bitwise() {
        // Large enough to clear the parallel threshold when threads are
        // available; the contract holds either way.
        let a = a_mat(64, 160);
        let w = w_mat(160, 128);
        let packed = PackedWeights::pack(&w);
        assert_eq!(
            matmul_i8_i32_packed_parallel(&a, &packed).as_slice(),
            matmul_i8_i32(&a, &w).as_slice()
        );
    }

    #[test]
    fn fused_epilogue_equals_separate_pass() {
        let rq = Requantizer::new(11, QFormat::new(8, 5), Rounding::NearestEven);
        for (m, k, n) in [(7, 33, 19), (8, 64, 16), (1, 5, 1), (12, 20, 9)] {
            let a = a_mat(m, k);
            let packed = PackedWeights::pack(&w_mat(k, n));
            let bias: Vec<i32> = (0..n as i32).map(|j| (j - 4) * 1000).collect();
            let acc = matmul_i8_i32_packed(&a, &packed);
            let mut want = Matrix::<i8>::zeros(m, n);
            for r in 0..m {
                for c in 0..n {
                    want[(r, c)] = rq.apply(acc[(r, c)].saturating_add(bias[c]));
                }
            }
            let fused = matmul_i8_requant_packed(&a, &packed, Some(&bias), rq);
            assert_eq!(fused.as_slice(), want.as_slice(), "{m}x{k}x{n}");
            let fused_par = matmul_i8_requant_packed_parallel(&a, &packed, Some(&bias), rq);
            assert_eq!(fused_par.as_slice(), want.as_slice(), "parallel {m}x{k}x{n}");
        }
    }

    #[test]
    fn fused_without_bias_is_plain_requant() {
        let rq = Requantizer::new(9, QFormat::new(8, 4), Rounding::Truncate);
        let a = a_mat(6, 24);
        let packed = PackedWeights::pack(&w_mat(24, 10));
        let want = matmul_i8_i32_packed(&a, &packed).map(|v| rq.apply(v));
        let fused = matmul_i8_requant_packed(&a, &packed, None, rq);
        assert_eq!(fused.as_slice(), want.as_slice());
    }

    #[test]
    fn checked_fused_verifies_and_matches_unchecked() {
        let rq = Requantizer::new(10, QFormat::new(8, 5), Rounding::NearestEven);
        let a = a_mat(9, 40);
        let packed = PackedWeights::pack(&w_mat(40, 13));
        let plain = matmul_i8_requant_packed(&a, &packed, None, rq);
        let checked = matmul_i8_packed_epilogue_checked(&a, &packed, |_, v| rq.apply(v))
            .expect("clean GEMM must verify");
        assert_eq!(checked.as_slice(), plain.as_slice());
    }

    #[test]
    fn extreme_values_do_not_overflow() {
        let a = Matrix::from_vec(1, 3072, vec![i8::MIN; 3072]);
        let w = Matrix::from_vec(3072, 1, vec![i8::MIN; 3072]);
        let packed = PackedWeights::pack(&w);
        assert_eq!(matmul_i8_i32_packed(&a, &packed)[(0, 0)], 3072 * 128 * 128);
    }

    #[test]
    fn degenerate_shapes() {
        let a = Matrix::<i8>::zeros(0, 4);
        let w = PackedWeights::pack(&Matrix::<i8>::zeros(4, 3));
        assert_eq!(matmul_i8_i32_packed(&a, &w).shape(), (0, 3));
        let a2 = Matrix::<i8>::zeros(3, 0);
        let w2 = PackedWeights::pack(&Matrix::<i8>::zeros(0, 2));
        let c = matmul_i8_i32_packed(&a2, &w2);
        assert_eq!(c.shape(), (3, 2));
        assert!(c.as_slice().iter().all(|&x| x == 0));
        let w3 = PackedWeights::pack(&Matrix::<i8>::zeros(4, 0));
        assert_eq!(matmul_i8_i32_packed(&Matrix::<i8>::zeros(2, 4), &w3).shape(), (2, 0));
        let rq = Requantizer::new(8, QFormat::new(8, 4), Rounding::Truncate);
        assert_eq!(matmul_i8_requant_packed(&a, &w, None, rq).shape(), (0, 3));
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn shape_mismatch_panics() {
        let w = PackedWeights::pack(&Matrix::<i8>::zeros(4, 2));
        let _ = matmul_i8_i32_packed(&Matrix::<i8>::zeros(2, 3), &w);
    }

    #[test]
    #[should_panic(expected = "bias length")]
    fn bias_length_mismatch_panics() {
        let w = PackedWeights::pack(&Matrix::<i8>::zeros(4, 2));
        let rq = Requantizer::new(8, QFormat::new(8, 4), Rounding::Truncate);
        let _ = matmul_i8_requant_packed(&Matrix::<i8>::zeros(2, 4), &w, Some(&[1, 2, 3]), rq);
    }
}
