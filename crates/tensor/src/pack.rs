//! Packed weights and the widened-i16 i8→i32 GEMM microkernel.
//!
//! The naive kernels in [`crate::matmul`] walk the weight matrix row by
//! row for every output row, so at transformer shapes (`k, n` in the
//! hundreds to thousands) each weight element is re-fetched from cache
//! `m` times with no layout control, and the i8 operands never reach a
//! form the compiler can vectorize into multiply-accumulate
//! instructions. This module is the throughput path:
//!
//! * [`PackedWeights`] — the weight matrix transposed once into
//!   column-major storage: column `j` of the logical `k×n` matrix is one
//!   contiguous `k`-long strip. That is exactly the layout a dot-product
//!   inner loop streams, and for attention's `Q·Kᵀ` it means packing
//!   `Kᵀ` is a straight copy of `K`'s row-major bytes
//!   ([`PackedWeights::from_transpose`]).
//! * [`matmul_i8_i32_packed`] — widens the activation matrix to i16
//!   once, widens weight columns block by block, and reduces each output
//!   element with a plain `i32 += i16 as i32 * i16 as i32` dot loop.
//!   Because both operands are *visibly* widened from i8 in the same
//!   function, the compiler can prove the products fit 16×16→32 and
//!   vectorizes the reduction into packed multiply-add (`pmaddwd` on
//!   x86: 8 MACs per instruction at SSE2, 16 at AVX2) — the host-side
//!   analogue of the DSP48 packing trick the paper uses to double MAC
//!   density per slice.
//! * [`matmul_i8_i32_packed_parallel`] — the same kernel fanned out over
//!   disjoint row bands of `C` via `rayon::scope`.
//!
//! Bit-exactness: each `C[i][j]` is a sum of `A[i][p]·W[p][j]` products
//! accumulated in i32. Widening to i16 is value-preserving for i8, the
//! per-element reduction order here is plain increasing `p` (the same
//! order as the naive kernel), and integer partial sums cannot overflow
//! (`|sum| ≤ k·2¹⁴` stays far below `i32::MAX` for any realistic `k`) —
//! so the kernel produces the same bytes as
//! [`crate::matmul::matmul_i8_i32`] by construction, not merely within
//! tolerance. The property tests in `tests/props.rs` pin this across
//! random shapes.

use crate::matrix::Matrix;
use protea_fixed::dot_i8;

/// Columns processed per block: the widened `CB × k` weight strip stays
/// L1-resident across the row sweep, and `CB` accumulators fit the
/// register file at both SSE2 and AVX2 widths.
const CB: usize = 8;

/// A weight matrix packed once (transposed to column-major) for
/// repeated GEMMs.
///
/// Packing costs one pass over the weights (`O(k·n)`), amortized across
/// every request/layer invocation that reuses the matrix — the
/// accelerator packs at `try_load_weights`, exactly as the hardware
/// DMA-reorders the DDR image into BRAM-friendly strips.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedWeights {
    rows: usize,
    cols: usize,
    /// Column-major: logical column `j` lives at `data[j*rows..(j+1)*rows]`.
    data: Vec<i8>,
}

impl PackedWeights {
    /// Pack (transpose) a logical `k×n` weight matrix.
    #[must_use]
    pub fn pack(w: &Matrix<i8>) -> Self {
        let (rows, cols) = w.shape();
        let mut data = vec![0i8; rows * cols];
        for r in 0..rows {
            let src = w.row(r);
            for c in 0..cols {
                data[c * rows + r] = src[c];
            }
        }
        Self { rows, cols, data }
    }

    /// Pack the *transpose* of `wt`: the packed matrix is `wtᵀ`, i.e.
    /// `wt`'s rows become the packed columns. Because the packed layout
    /// is column-major, this is a straight memcpy of `wt`'s row-major
    /// storage — the fast path for attention's `Q·Kᵀ`, where `K` is
    /// already held row-major.
    #[must_use]
    pub fn from_transpose(wt: &Matrix<i8>) -> Self {
        let (n, k) = wt.shape();
        Self { rows: k, cols: n, data: wt.as_slice().to_vec() }
    }

    /// Logical (unpacked) shape `(rows, cols)` — `rows` is the reduction
    /// dimension `k`, `cols` the output width `n`.
    #[must_use]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// The reduction dimension.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The output width.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// One packed column: the `k` weights feeding output column `j`.
    #[must_use]
    pub fn col(&self, j: usize) -> &[i8] {
        &self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Reconstruct the unpacked matrix (test/debug aid).
    #[must_use]
    pub fn unpack(&self) -> Matrix<i8> {
        Matrix::from_fn(self.rows, self.cols, |r, c| self.data[c * self.rows + r])
    }
}

/// Packed GEMM: `C = A × W` with `A: m×k` i8 and `W` packed from `k×n`.
/// Bit-identical to [`crate::matmul::matmul_i8_i32`].
///
/// # Panics
/// Panics if `A.cols() != W.rows()`.
#[must_use]
pub fn matmul_i8_i32_packed(a: &Matrix<i8>, w: &PackedWeights) -> Matrix<i32> {
    let (m, k) = a.shape();
    let n = w.cols();
    assert_eq!(k, w.rows(), "inner dimensions must agree: {m}x{k} · {}x{n}", w.rows());
    let mut out = vec![0i32; m * n];
    gemm_band(a, w, 0, m, &mut out);
    Matrix::from_vec(m, n, out)
}

/// Row-parallel packed GEMM: identical bytes to
/// [`matmul_i8_i32_packed`] (each output element's reduction runs whole
/// within one thread), parallel across disjoint row bands of `C`.
/// Falls back to the serial kernel when the product is too small to pay
/// for threads.
///
/// # Panics
/// Panics if `A.cols() != W.rows()`.
#[must_use]
pub fn matmul_i8_i32_packed_parallel(a: &Matrix<i8>, w: &PackedWeights) -> Matrix<i32> {
    let (m, k) = a.shape();
    let n = w.cols();
    assert_eq!(k, w.rows(), "inner dimensions must agree: {m}x{k} · {}x{n}", w.rows());
    let threads = rayon::current_num_threads();
    // ~1 MMAC amortizes a scoped-thread fan-out comfortably.
    const MIN_PAR_MACS: usize = 1 << 20;
    if threads <= 1 || m < 2 || n == 0 || m.saturating_mul(k).saturating_mul(n) < MIN_PAR_MACS {
        return matmul_i8_i32_packed(a, w);
    }
    let mut out = vec![0i32; m * n];
    let band_rows = m.div_ceil(threads);
    rayon::scope(|s| {
        for (band, slab) in out.chunks_mut(band_rows * n).enumerate() {
            let r0 = band * band_rows;
            let rows = slab.len() / n;
            s.spawn(move |_| gemm_band(a, w, r0, rows, slab));
        }
    });
    Matrix::from_vec(m, n, out)
}

/// Widen an i8 strip to i16 (value-preserving).
fn widen(src: &[i8], dst: &mut [i16]) {
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = i16::from(s);
    }
}

/// Compute output rows `r0 .. r0+rows` of `C = A × W` into `out` (a flat
/// `rows × n` slab). Both the serial and the parallel kernels call this
/// on disjoint slabs, so they cannot drift.
///
/// Shape: widen the band's activations to i16 once, then per `CB`-column
/// block widen the weight columns and reduce. The two microkernel loop
/// shapes below compute identical sums; which one the compiler turns
/// into the densest multiply-add code differs by target ISA, so the
/// choice is made per *build* (compile-time feature check — see
/// [`mk_interleaved`] / [`mk_separate`]).
fn gemm_band(a: &Matrix<i8>, w: &PackedWeights, r0: usize, rows: usize, out: &mut [i32]) {
    let n = w.cols();
    let k = w.rows();
    if n == 0 || rows == 0 {
        return;
    }
    let mut a16 = vec![0i16; rows * k];
    for di in 0..rows {
        widen(a.row(r0 + di), &mut a16[di * k..(di + 1) * k]);
    }
    let mut wcol16 = vec![0i16; CB * k];
    let nb = n / CB * CB;
    let mut j0 = 0usize;
    while j0 < nb {
        for c in 0..CB {
            widen(w.col(j0 + c), &mut wcol16[c * k..(c + 1) * k]);
        }
        for di in 0..rows {
            let arow = &a16[di * k..(di + 1) * k];
            let sums = if cfg!(target_feature = "avx2") {
                mk_separate(arow, &wcol16, k)
            } else {
                mk_interleaved(arow, &wcol16, k)
            };
            out[di * n + j0..di * n + j0 + CB].copy_from_slice(&sums);
        }
        j0 += CB;
    }
    // Ragged trailing columns (< CB): scalar dot via the workspace's one
    // canonical i8 MAC reduction.
    for j in nb..n {
        let col = w.col(j);
        for di in 0..rows {
            out[di * n + j] = dot_i8(a.row(r0 + di), col);
        }
    }
}

/// Microkernel, interleaved shape: `k` swept in fixed 16-element chunks,
/// each chunk reduced into all `CB` column sums before moving on. The
/// fixed inner trip count plus the widened operands let LLVM prove
/// no-overflow and emit dense `pmaddwd` chains; at baseline SSE2 this is
/// the fastest shape measured (the chunked form beats the plain
/// one-element sweep by ~20%).
#[inline]
fn mk_interleaved(arow: &[i16], wcol16: &[i16], k: usize) -> [i32; CB] {
    let mut sums = [0i32; CB];
    let kc = k / 16 * 16;
    for k0 in (0..kc).step_by(16) {
        let xa = &arow[k0..k0 + 16];
        for (c, s) in sums.iter_mut().enumerate() {
            let wv = &wcol16[c * k + k0..c * k + k0 + 16];
            let mut acc = 0i32;
            for t in 0..16 {
                acc += i32::from(xa[t]) * i32::from(wv[t]);
            }
            *s += acc;
        }
    }
    for kk in kc..k {
        let x = i32::from(arow[kk]);
        for (c, s) in sums.iter_mut().enumerate() {
            *s += x * i32::from(wcol16[c * k + kk]);
        }
    }
    sums
}

/// Microkernel, separate shape: `CB` independent dot-product loops. With
/// AVX2 enabled at compile time this variant wins (wider horizontal
/// reductions amortize better per column).
#[inline]
fn mk_separate(arow: &[i16], wcol16: &[i16], k: usize) -> [i32; CB] {
    let mut sums = [0i32; CB];
    for (c, s) in sums.iter_mut().enumerate() {
        let col = &wcol16[c * k..(c + 1) * k];
        let mut acc = 0i32;
        for kk in 0..k {
            acc += i32::from(arow[kk]) * i32::from(col[kk]);
        }
        *s = acc;
    }
    sums
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matmul::matmul_i8_i32;
    use crate::ops::transpose;

    fn a_mat(m: usize, k: usize) -> Matrix<i8> {
        Matrix::from_fn(m, k, |r, c| (((r * 47 + c * 31) % 255) as i64 - 127) as i8)
    }

    fn w_mat(k: usize, n: usize) -> Matrix<i8> {
        Matrix::from_fn(k, n, |r, c| (((r * 29 + c * 13) % 255) as i64 - 127) as i8)
    }

    #[test]
    fn pack_round_trips() {
        let w = w_mat(11, 23);
        let packed = PackedWeights::pack(&w);
        assert_eq!(packed.shape(), (11, 23));
        assert_eq!(packed.unpack().as_slice(), w.as_slice());
    }

    #[test]
    fn from_transpose_matches_pack() {
        let w = w_mat(9, 21);
        let wt = transpose(&w);
        let a = PackedWeights::pack(&w);
        let b = PackedWeights::from_transpose(&wt);
        assert_eq!(a, b);
    }

    #[test]
    fn packed_matches_naive_bitwise() {
        // Shapes straddle the CB block boundary on both sides.
        for (m, k, n) in [(17, 23, 13), (4, 64, 8), (1, 7, 1), (5, 1, 17), (8, 33, 16)] {
            let a = a_mat(m, k);
            let w = w_mat(k, n);
            let packed = PackedWeights::pack(&w);
            let c = matmul_i8_i32_packed(&a, &packed);
            assert_eq!(c.as_slice(), matmul_i8_i32(&a, &w).as_slice(), "{m}x{k}x{n}");
        }
    }

    #[test]
    fn both_microkernels_agree() {
        let k = 37;
        let a = a_mat(1, k);
        let w = w_mat(k, CB);
        let packed = PackedWeights::pack(&w);
        let mut a16 = vec![0i16; k];
        widen(a.row(0), &mut a16);
        let mut w16 = vec![0i16; CB * k];
        for c in 0..CB {
            widen(packed.col(c), &mut w16[c * k..(c + 1) * k]);
        }
        assert_eq!(mk_interleaved(&a16, &w16, k), mk_separate(&a16, &w16, k));
    }

    #[test]
    fn packed_parallel_matches_serial_bitwise() {
        // Large enough to clear the parallel threshold when threads are
        // available; the contract holds either way.
        let a = a_mat(64, 160);
        let w = w_mat(160, 128);
        let packed = PackedWeights::pack(&w);
        assert_eq!(
            matmul_i8_i32_packed_parallel(&a, &packed).as_slice(),
            matmul_i8_i32(&a, &w).as_slice()
        );
    }

    #[test]
    fn extreme_values_do_not_overflow() {
        let a = Matrix::from_vec(1, 3072, vec![i8::MIN; 3072]);
        let w = Matrix::from_vec(3072, 1, vec![i8::MIN; 3072]);
        let packed = PackedWeights::pack(&w);
        assert_eq!(matmul_i8_i32_packed(&a, &packed)[(0, 0)], 3072 * 128 * 128);
    }

    #[test]
    fn degenerate_shapes() {
        let a = Matrix::<i8>::zeros(0, 4);
        let w = PackedWeights::pack(&Matrix::<i8>::zeros(4, 3));
        assert_eq!(matmul_i8_i32_packed(&a, &w).shape(), (0, 3));
        let a2 = Matrix::<i8>::zeros(3, 0);
        let w2 = PackedWeights::pack(&Matrix::<i8>::zeros(0, 2));
        let c = matmul_i8_i32_packed(&a2, &w2);
        assert_eq!(c.shape(), (3, 2));
        assert!(c.as_slice().iter().all(|&x| x == 0));
        let w3 = PackedWeights::pack(&Matrix::<i8>::zeros(4, 0));
        assert_eq!(matmul_i8_i32_packed(&Matrix::<i8>::zeros(2, 4), &w3).shape(), (2, 0));
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn shape_mismatch_panics() {
        let w = PackedWeights::pack(&Matrix::<i8>::zeros(4, 2));
        let _ = matmul_i8_i32_packed(&Matrix::<i8>::zeros(2, 3), &w);
    }
}
