//! Row-major dense matrices.

use core::fmt;
use core::ops::{Index, IndexMut};

/// A row-major dense matrix.
///
/// Storage is a single `Vec<T>` of length `rows * cols`; element `(r, c)`
/// lives at `r * cols + c`. This is the layout ProTEA's AXI masters stream
/// from HBM, so tile extraction below maps directly onto burst reads.
#[derive(Clone, PartialEq, Eq)]
pub struct Matrix<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Copy + Default> Matrix<T> {
    /// A `rows × cols` matrix filled with `T::default()`.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![T::default(); rows * cols] }
    }

    /// Build from a generator `f(row, col)`.
    #[must_use]
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Wrap an existing row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    #[must_use]
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length must equal rows*cols");
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[must_use]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total element count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has zero elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The whole backing buffer, row-major.
    #[must_use]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable backing buffer.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consume into the backing buffer.
    #[must_use]
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Borrow row `r` as a slice.
    #[must_use]
    pub fn row(&self, r: usize) -> &[T] {
        assert!(r < self.rows, "row {r} out of bounds ({} rows)", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r`.
    pub fn row_mut(&mut self, r: usize) -> &mut [T] {
        assert!(r < self.rows, "row {r} out of bounds ({} rows)", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copy column `c` into a fresh vector (columns are strided).
    #[must_use]
    pub fn col_copied(&self, c: usize) -> Vec<T> {
        assert!(c < self.cols, "col {c} out of bounds ({} cols)", self.cols);
        (0..self.rows).map(|r| self.data[r * self.cols + c]).collect()
    }

    /// Elementwise map into a possibly different element type.
    #[must_use]
    pub fn map<U: Copy + Default>(&self, mut f: impl FnMut(T) -> U) -> Matrix<U> {
        Matrix { rows: self.rows, cols: self.cols, data: self.data.iter().map(|&x| f(x)).collect() }
    }

    /// Extract the sub-matrix `[r0 .. r0+h) × [c0 .. c0+w)` into a new
    /// matrix (a tile load: what the DMA engine writes into a BRAM buffer).
    #[must_use]
    pub fn submatrix(&self, r0: usize, c0: usize, h: usize, w: usize) -> Matrix<T> {
        assert!(r0 + h <= self.rows && c0 + w <= self.cols, "tile out of bounds");
        let mut data = Vec::with_capacity(h * w);
        for r in r0..r0 + h {
            data.extend_from_slice(&self.data[r * self.cols + c0..r * self.cols + c0 + w]);
        }
        Matrix { rows: h, cols: w, data }
    }

    /// Write `tile` into this matrix at offset `(r0, c0)` (a tile
    /// write-back from an output buffer).
    pub fn write_submatrix(&mut self, r0: usize, c0: usize, tile: &Matrix<T>) {
        assert!(
            r0 + tile.rows <= self.rows && c0 + tile.cols <= self.cols,
            "tile write out of bounds"
        );
        for r in 0..tile.rows {
            let dst = (r0 + r) * self.cols + c0;
            self.data[dst..dst + tile.cols].copy_from_slice(tile.row(r));
        }
    }
}

impl<T: Copy + Default> Index<(usize, usize)> for Matrix<T> {
    type Output = T;
    fn index(&self, (r, c): (usize, usize)) -> &T {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl<T: Copy + Default> IndexMut<(usize, usize)> for Matrix<T> {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut T {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

impl<T: fmt::Debug + Copy + Default> fmt::Debug for Matrix<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show_rows = self.rows.min(8);
        for r in 0..show_rows {
            let row = self.row(r);
            if self.cols <= 12 {
                writeln!(f, "  {row:?}")?;
            } else {
                writeln!(f, "  {:?} ...", &row[..12])?;
            }
        }
        if self.rows > show_rows {
            writeln!(f, "  ... ({} more rows)", self.rows - show_rows)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_layout_is_row_major() {
        let m = Matrix::from_fn(2, 3, |r, c| (r * 10 + c) as i32);
        assert_eq!(m.as_slice(), &[0, 1, 2, 10, 11, 12]);
        assert_eq!(m[(1, 2)], 12);
    }

    #[test]
    fn rows_and_cols_access() {
        let m = Matrix::from_fn(3, 4, |r, c| (r * 4 + c) as i32);
        assert_eq!(m.row(1), &[4, 5, 6, 7]);
        assert_eq!(m.col_copied(2), vec![2, 6, 10]);
    }

    #[test]
    fn submatrix_round_trip() {
        let m = Matrix::from_fn(6, 8, |r, c| (r * 100 + c) as i32);
        let t = m.submatrix(2, 3, 3, 4);
        assert_eq!(t.shape(), (3, 4));
        assert_eq!(t[(0, 0)], 203);
        assert_eq!(t[(2, 3)], 406);
        let mut dst = Matrix::<i32>::zeros(6, 8);
        dst.write_submatrix(2, 3, &t);
        assert_eq!(dst[(2, 3)], 203);
        assert_eq!(dst[(4, 6)], 406);
        assert_eq!(dst[(0, 0)], 0);
    }

    #[test]
    fn map_changes_type() {
        let m = Matrix::from_fn(2, 2, |r, c| (r + c) as i32);
        let f = m.map(|x| x as f32 * 0.5);
        assert_eq!(f[(1, 1)], 1.0);
    }

    #[test]
    fn zero_sized_matrices() {
        let m = Matrix::<f32>::zeros(0, 5);
        assert!(m.is_empty());
        assert_eq!(m.shape(), (0, 5));
        let n = Matrix::<f32>::zeros(5, 0);
        assert!(n.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn submatrix_oob_panics() {
        let m = Matrix::<i32>::zeros(4, 4);
        let _ = m.submatrix(2, 2, 3, 3);
    }

    #[test]
    #[should_panic(expected = "rows*cols")]
    fn from_vec_wrong_len_panics() {
        let _ = Matrix::from_vec(2, 3, vec![0i32; 5]);
    }

    #[test]
    fn row_mut_writes_through() {
        let mut m = Matrix::<i32>::zeros(2, 2);
        m.row_mut(1)[0] = 7;
        assert_eq!(m[(1, 0)], 7);
    }
}
