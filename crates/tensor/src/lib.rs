//! # protea-tensor — dense matrices, tiling, and matmul kernels
//!
//! The ProTEA accelerator is, at heart, a machine for tiled dense
//! matrix-matrix products. This crate provides the host-side substrate:
//!
//! * [`Matrix`] — row-major dense matrices generic over the element type
//!   (`f32` for references, `i8` for quantized data, `i32` accumulators).
//! * [`tile`] — tiling geometry: how a large matrix is partitioned into
//!   the sub-matrices that fit on-chip BRAM (Figs. 5 and 6 of the paper).
//!   The iterators are exhaustively tested to cover every element exactly
//!   once, including ragged edges.
//! * [`matmul`] — reference kernels: naive, cache-blocked and
//!   rayon-parallel floating point, plus the exact i8→i32 quantized kernel
//!   the hardware implements.
//! * [`pack`] — the throughput path: weights transposed once into
//!   column-major strips ([`PackedWeights`]), a widened-i16 i8→i32 GEMM
//!   with column-panel parallelism inside the product, and fused
//!   requant/activation epilogues — all bit-identical to
//!   [`matmul_i8_i32`].
//! * [`kernels`] — the explicit SIMD microkernels (AVX2, AVX-512, NEON)
//!   behind runtime CPU-feature dispatch, the portable autovectorized
//!   kernel as fallback, overridable with `PROTEA_KERNEL`.
//! * [`ops`] — elementwise and broadcast helpers (bias add, residual add,
//!   transpose, max-abs reduction).
//! * [`abft`] — algorithm-based fault tolerance: exact i64 row/column
//!   checksums predicted from the GEMM inputs and verified against the
//!   packed kernel's output, the cheap detection layer for silent data
//!   corruption in the datapath.

// `unsafe` is denied crate-wide and allowed back in exactly one place:
// the `kernels::{x86,neon}` modules holding the `std::arch` intrinsic
// calls (each with its feature-detection safety contract documented).
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod abft;
pub mod kernels;
pub mod matmul;
pub mod matrix;
pub mod ops;
pub mod pack;
pub mod tile;

pub use abft::{matmul_i8_i32_packed_verified, AbftChecksums, AbftMismatch};
pub use kernels::{active_kernel, force_kernel, supported_kernels, KernelIsa};
pub use matmul::{
    matmul_blocked, matmul_i8_i32, matmul_i8_i32_parallel, matmul_naive, matmul_parallel,
};
pub use matrix::Matrix;
pub use ops::{add_bias_row, max_abs, residual_add, transpose};
pub use pack::{
    matmul_i8_i32_packed, matmul_i8_i32_packed_parallel, matmul_i8_packed_epilogue,
    matmul_i8_packed_epilogue_checked, matmul_i8_packed_epilogue_parallel,
    matmul_i8_requant_packed, matmul_i8_requant_packed_parallel, PackedWeights,
};
pub use tile::{Tile, TileGrid};
