//! Tiling geometry — the heart of ProTEA's on-chip memory management.
//!
//! The paper partitions weight matrices into tiles that fit in BRAM:
//!
//! * **MHA** (Fig. 5): tiling *only along columns* — "the first dimension
//!   (rows) is already reduced by the number of heads" — so each `d_k ×
//!   d_model` weight is loaded as `d_model / TS_MHA` column strips.
//! * **FFN** (Fig. 6): tiling *along both dimensions*; results accumulate
//!   first along columns, then along rows.
//!
//! [`TileGrid`] enumerates those tiles deterministically in the hardware's
//! load order, and the property tests prove exact cover (every element in
//! exactly one tile), including ragged edges when the dimension is not a
//! multiple of the tile size (the hardware pads; the grid reports true
//! extents so the simulator can skip padded work).

/// One tile of a 2-D iteration space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tile {
    /// First row covered.
    pub r0: usize,
    /// First column covered.
    pub c0: usize,
    /// Rows covered (may be short at a ragged edge).
    pub h: usize,
    /// Columns covered (may be short at a ragged edge).
    pub w: usize,
    /// Row index of this tile in the grid.
    pub tr: usize,
    /// Column index of this tile in the grid.
    pub tc: usize,
}

impl Tile {
    /// Element count.
    #[must_use]
    pub fn area(&self) -> usize {
        self.h * self.w
    }

    /// Whether `(r, c)` falls inside this tile.
    #[must_use]
    pub fn contains(&self, r: usize, c: usize) -> bool {
        r >= self.r0 && r < self.r0 + self.h && c >= self.c0 && c < self.c0 + self.w
    }
}

/// A rectangular tiling of a `rows × cols` space into tiles of at most
/// `tile_h × tile_w`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileGrid {
    rows: usize,
    cols: usize,
    tile_h: usize,
    tile_w: usize,
}

impl TileGrid {
    /// Build a grid. Tile dimensions must be nonzero.
    #[must_use]
    pub fn new(rows: usize, cols: usize, tile_h: usize, tile_w: usize) -> Self {
        assert!(tile_h > 0 && tile_w > 0, "tile dimensions must be nonzero");
        Self { rows, cols, tile_h, tile_w }
    }

    /// The paper's MHA tiling: columns only (`tile_h` = full height).
    /// `cols / ts_mha` loads per weight matrix.
    #[must_use]
    pub fn mha(rows: usize, cols: usize, ts_mha: usize) -> Self {
        Self::new(rows, cols.max(1), rows.max(1), ts_mha)
    }

    /// The paper's FFN tiling: both dimensions.
    #[must_use]
    pub fn ffn(rows: usize, cols: usize, tile_h: usize, tile_w: usize) -> Self {
        Self::new(rows, cols, tile_h, tile_w)
    }

    /// Tiles along the row dimension (`ceil(rows / tile_h)`).
    #[must_use]
    pub fn tiles_down(&self) -> usize {
        self.rows.div_ceil(self.tile_h)
    }

    /// Tiles along the column dimension (`ceil(cols / tile_w)`).
    #[must_use]
    pub fn tiles_across(&self) -> usize {
        self.cols.div_ceil(self.tile_w)
    }

    /// Total number of tiles (= engine accesses for a weight array).
    #[must_use]
    pub fn tile_count(&self) -> usize {
        self.tiles_down() * self.tiles_across()
    }

    /// The tile at grid position `(tr, tc)`.
    #[must_use]
    pub fn tile(&self, tr: usize, tc: usize) -> Tile {
        assert!(tr < self.tiles_down() && tc < self.tiles_across(), "tile index out of range");
        let r0 = tr * self.tile_h;
        let c0 = tc * self.tile_w;
        Tile {
            r0,
            c0,
            h: self.tile_h.min(self.rows - r0),
            w: self.tile_w.min(self.cols - c0),
            tr,
            tc,
        }
    }

    /// Iterate tiles in the hardware load order: row-of-tiles major,
    /// columns within (Fig. 6: "results are first accumulated along the
    /// columns, followed by accumulation along the rows").
    pub fn iter(&self) -> impl Iterator<Item = Tile> + '_ {
        let down = self.tiles_down();
        let across = self.tiles_across();
        (0..down).flat_map(move |tr| (0..across).map(move |tc| self.tile(tr, tc)))
    }

    /// Iterate in column-major tile order (used when the reduction runs
    /// down the shared dimension first).
    pub fn iter_col_major(&self) -> impl Iterator<Item = Tile> + '_ {
        let down = self.tiles_down();
        let across = self.tiles_across();
        (0..across).flat_map(move |tc| (0..down).map(move |tr| self.tile(tr, tc)))
    }

    /// Iteration-space size.
    #[must_use]
    pub fn extent(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Tile dimensions `(tile_h, tile_w)`.
    #[must_use]
    pub fn tile_shape(&self) -> (usize, usize) {
        (self.tile_h, self.tile_w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_division_grid() {
        let g = TileGrid::new(768, 768, 96, 64);
        assert_eq!(g.tiles_down(), 8);
        assert_eq!(g.tiles_across(), 12);
        assert_eq!(g.tile_count(), 96);
        assert!(g.iter().all(|t| t.h == 96 && t.w == 64));
    }

    #[test]
    fn ragged_edges_are_short() {
        let g = TileGrid::new(10, 7, 4, 3);
        assert_eq!(g.tiles_down(), 3);
        assert_eq!(g.tiles_across(), 3);
        let last = g.tile(2, 2);
        assert_eq!((last.h, last.w), (2, 1));
    }

    #[test]
    fn tiles_cover_every_element_exactly_once() {
        for (rows, cols, th, tw) in
            [(10, 7, 4, 3), (1, 1, 5, 5), (64, 768, 64, 64), (13, 17, 13, 17), (5, 9, 2, 4)]
        {
            let g = TileGrid::new(rows, cols, th, tw);
            let mut cover = vec![0u32; rows * cols];
            for t in g.iter() {
                for r in t.r0..t.r0 + t.h {
                    for c in t.c0..t.c0 + t.w {
                        cover[r * cols + c] += 1;
                    }
                }
            }
            assert!(cover.iter().all(|&n| n == 1), "{rows}x{cols}/{th}x{tw}");
            // total area equals iteration space
            let area: usize = g.iter().map(|t| t.area()).sum();
            assert_eq!(area, rows * cols);
        }
    }

    #[test]
    fn col_major_same_tiles_different_order() {
        let g = TileGrid::new(8, 8, 4, 4);
        let mut a: Vec<Tile> = g.iter().collect();
        let mut b: Vec<Tile> = g.iter_col_major().collect();
        assert_ne!(a, b); // different order
        a.sort_by_key(|t| (t.r0, t.c0));
        b.sort_by_key(|t| (t.r0, t.c0));
        assert_eq!(a, b); // same set
    }

    #[test]
    fn mha_grid_is_column_strips() {
        // Per-head weight d_k × d_model = 96 × 768, TS_MHA = 64 → 12 loads.
        let g = TileGrid::mha(96, 768, 64);
        assert_eq!(g.tile_count(), 12);
        assert!(g.iter().all(|t| t.h == 96));
        assert!(g.iter().all(|t| t.w == 64));
    }

    #[test]
    fn paper_ffn_tile_counts() {
        // FFN1 weight d × d with tiles of d/T: accessed T² = 36 times.
        let d = 768;
        let t = 6;
        let g = TileGrid::ffn(d, d, d / t, d / t);
        assert_eq!(g.tile_count(), 36);
        // FFN2 weight d × 4d: accessed 4T² = 144 times.
        let g2 = TileGrid::ffn(d, 4 * d, d / t, d / t);
        assert_eq!(g2.tile_count(), 144);
    }

    #[test]
    fn contains_is_consistent_with_bounds() {
        let g = TileGrid::new(9, 9, 4, 4);
        let t = g.tile(1, 1);
        assert!(t.contains(4, 4));
        assert!(t.contains(7, 7));
        assert!(!t.contains(8, 8));
        assert!(!t.contains(3, 4));
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_tile_rejected() {
        let _ = TileGrid::new(4, 4, 0, 2);
    }

    #[test]
    fn empty_space_has_no_tiles() {
        let g = TileGrid::new(0, 5, 2, 2);
        assert_eq!(g.tile_count(), 0);
        assert_eq!(g.iter().count(), 0);
    }
}
