//! Elementwise and broadcast operations used around the matmul cores.

use crate::matrix::Matrix;

/// Transpose into a new matrix.
#[must_use]
pub fn transpose<T: Copy + Default>(m: &Matrix<T>) -> Matrix<T> {
    Matrix::from_fn(m.cols(), m.rows(), |r, c| m[(c, r)])
}

/// Add a bias row to every row of `m` in place (`m[r][c] += bias[c]`) —
/// the `+ B_q` in equation (2).
pub fn add_bias_row(m: &mut Matrix<f32>, bias: &[f32]) {
    assert_eq!(m.cols(), bias.len(), "bias length must equal column count");
    for r in 0..m.rows() {
        for (v, &b) in m.row_mut(r).iter_mut().zip(bias.iter()) {
            *v += b;
        }
    }
}

/// Saturating bias add for the quantized path: `m[r][c] = sat(m[r][c] +
/// bias[c])`, both already in the same format.
pub fn add_bias_row_i8(m: &mut Matrix<i8>, bias: &[i8]) {
    assert_eq!(m.cols(), bias.len(), "bias length must equal column count");
    for r in 0..m.rows() {
        for (v, &b) in m.row_mut(r).iter_mut().zip(bias.iter()) {
            *v = v.saturating_add(b);
        }
    }
}

/// Residual connection: `out = a + b` elementwise (float path).
#[must_use]
pub fn residual_add(a: &Matrix<f32>, b: &Matrix<f32>) -> Matrix<f32> {
    assert_eq!(a.shape(), b.shape(), "residual shapes must match");
    Matrix::from_fn(a.rows(), a.cols(), |r, c| a[(r, c)] + b[(r, c)])
}

/// Saturating residual connection on quantized data in a shared format.
#[must_use]
pub fn residual_add_i8(a: &Matrix<i8>, b: &Matrix<i8>) -> Matrix<i8> {
    assert_eq!(a.shape(), b.shape(), "residual shapes must match");
    Matrix::from_fn(a.rows(), a.cols(), |r, c| a[(r, c)].saturating_add(b[(r, c)]))
}

/// Maximum absolute value (for quantizer calibration). NaNs are skipped.
#[must_use]
pub fn max_abs(m: &Matrix<f32>) -> f32 {
    m.as_slice().iter().filter(|x| x.is_finite()).fold(0f32, |acc, &x| acc.max(x.abs()))
}

/// Mean squared error between two equally-shaped f32 matrices.
#[must_use]
pub fn mse(a: &Matrix<f32>, b: &Matrix<f32>) -> f64 {
    assert_eq!(a.shape(), b.shape());
    if a.is_empty() {
        return 0.0;
    }
    let sum: f64 = a
        .as_slice()
        .iter()
        .zip(b.as_slice().iter())
        .map(|(&x, &y)| {
            let d = f64::from(x) - f64::from(y);
            d * d
        })
        .sum();
    sum / a.len() as f64
}

/// Scale every element (float path).
pub fn scale_in_place(m: &mut Matrix<f32>, s: f32) {
    for v in m.as_mut_slice() {
        *v *= s;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transpose_round_trip() {
        let m = Matrix::from_fn(3, 5, |r, c| (r * 10 + c) as i32);
        let t = transpose(&m);
        assert_eq!(t.shape(), (5, 3));
        assert_eq!(t[(4, 2)], m[(2, 4)]);
        assert_eq!(transpose(&t).as_slice(), m.as_slice());
    }

    #[test]
    fn bias_broadcast() {
        let mut m = Matrix::from_fn(2, 3, |_, _| 1f32);
        add_bias_row(&mut m, &[1.0, 2.0, 3.0]);
        assert_eq!(m.row(0), &[2.0, 3.0, 4.0]);
        assert_eq!(m.row(1), &[2.0, 3.0, 4.0]);
    }

    #[test]
    fn bias_i8_saturates() {
        let mut m = Matrix::from_vec(1, 2, vec![120i8, -120]);
        add_bias_row_i8(&mut m, &[20, -20]);
        assert_eq!(m.as_slice(), &[127, -128]);
    }

    #[test]
    fn residual_adds() {
        let a = Matrix::from_fn(2, 2, |r, c| (r + c) as f32);
        let b = Matrix::from_fn(2, 2, |_, _| 1f32);
        let c = residual_add(&a, &b);
        assert_eq!(c[(1, 1)], 3.0);
    }

    #[test]
    fn residual_i8_saturates() {
        let a = Matrix::from_vec(1, 2, vec![100i8, -100]);
        let b = Matrix::from_vec(1, 2, vec![100i8, -100]);
        let c = residual_add_i8(&a, &b);
        assert_eq!(c.as_slice(), &[127, -128]);
    }

    #[test]
    fn max_abs_ignores_nan() {
        let m = Matrix::from_vec(1, 4, vec![1.0f32, -3.5, f32::NAN, 2.0]);
        assert_eq!(max_abs(&m), 3.5);
    }

    #[test]
    fn mse_zero_for_identical() {
        let a = Matrix::from_fn(3, 3, |r, c| (r * c) as f32);
        assert_eq!(mse(&a, &a), 0.0);
        let empty = Matrix::<f32>::zeros(0, 3);
        assert_eq!(mse(&empty, &empty), 0.0);
    }

    #[test]
    fn scale_scales() {
        let mut m = Matrix::from_fn(2, 2, |_, _| 2f32);
        scale_in_place(&mut m, 0.5);
        assert!(m.as_slice().iter().all(|&x| x == 1.0));
    }
}
