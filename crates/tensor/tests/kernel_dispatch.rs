//! Runtime kernel dispatch under forced multithreading.
//!
//! The host running CI may have a single core, which would let the
//! panel-parallel GEMM silently fall back to the serial path and leave
//! the stitch logic untested. This binary forces the vendored rayon
//! shim to 4 workers via `RAYON_NUM_THREADS` *before its first
//! parallel call* (the shim caches the thread count on first use, which
//! is why this lives in its own test binary with a single `#[test]`),
//! then drives every supported microkernel ISA through the serial,
//! panel-parallel, fused and fused-checked entry points, requiring the
//! exact bytes of the naive oracle from all of them.

use protea_fixed::{QFormat, Requantizer, Rounding};
use protea_tensor::{
    force_kernel, matmul_i8_i32, matmul_i8_i32_packed, matmul_i8_i32_packed_parallel,
    matmul_i8_packed_epilogue_checked, matmul_i8_requant_packed, matmul_i8_requant_packed_parallel,
    supported_kernels, Matrix, PackedWeights,
};

fn mat(rows: usize, cols: usize, salt: u64) -> Matrix<i8> {
    Matrix::from_fn(rows, cols, |r, c| {
        let v = (r as u64 * 67).wrapping_add(c as u64 * 19).wrapping_add(salt.wrapping_mul(13));
        ((v % 255) as i64 - 127) as i8
    })
}

#[test]
fn all_isas_agree_under_forced_parallelism() {
    std::env::set_var("RAYON_NUM_THREADS", "4");
    assert!(rayon::current_num_threads() >= 4, "shim must honor RAYON_NUM_THREADS");

    // Big enough to clear MIN_PAR_MACS (2^20 MACs) so the column panels
    // genuinely split; n deliberately not a multiple of the panel width
    // so the last panel is ragged.
    let (m, k, n) = (48, 192, 131);
    let a = mat(m, k, 3);
    let w = mat(k, n, 7);
    let packed = PackedWeights::pack(&w);
    let oracle = matmul_i8_i32(&a, &w);

    let rq = Requantizer::new(9, QFormat::new(8, 5), Rounding::NearestEven);
    let bias: Vec<i32> = (0..n as i32).map(|j| (j - 60) * 513).collect();
    let mut fused_want = vec![0i8; m * n];
    for r in 0..m {
        for c in 0..n {
            fused_want[r * n + c] = rq.apply(oracle[(r, c)].saturating_add(bias[c]));
        }
    }

    for isa in supported_kernels() {
        force_kernel(Some(isa));
        assert_eq!(
            matmul_i8_i32_packed(&a, &packed).as_slice(),
            oracle.as_slice(),
            "serial, kernel {isa}"
        );
        assert_eq!(
            matmul_i8_i32_packed_parallel(&a, &packed).as_slice(),
            oracle.as_slice(),
            "panel-parallel, kernel {isa}"
        );
        assert_eq!(
            matmul_i8_requant_packed(&a, &packed, Some(&bias), rq).as_slice(),
            &fused_want[..],
            "fused serial, kernel {isa}"
        );
        assert_eq!(
            matmul_i8_requant_packed_parallel(&a, &packed, Some(&bias), rq).as_slice(),
            &fused_want[..],
            "fused panel-parallel, kernel {isa}"
        );
        let checked = matmul_i8_packed_epilogue_checked(&a, &packed, |j, v| {
            rq.apply(v.saturating_add(bias[j]))
        })
        .unwrap_or_else(|e| panic!("ABFT must verify on clean GEMM, kernel {isa}: {e:?}"));
        assert_eq!(checked.as_slice(), &fused_want[..], "fused checked, kernel {isa}");
    }
    force_kernel(None);
}
