//! Property-based tests of the tensor layer.

use proptest::prelude::*;
use protea_fixed::{QFormat, Requantizer, Rounding};
use protea_tensor::ops::{residual_add_i8, transpose};
use protea_tensor::{
    force_kernel, matmul_i8_i32, matmul_i8_i32_packed, matmul_i8_i32_packed_parallel,
    matmul_i8_packed_epilogue_checked, matmul_i8_requant_packed, matmul_i8_requant_packed_parallel,
    matmul_naive, supported_kernels, Matrix, PackedWeights, TileGrid,
};

fn arb_matrix(max: usize) -> impl Strategy<Value = Matrix<i8>> {
    (1..=max, 1..=max, any::<u64>()).prop_map(|(r, c, seed)| {
        Matrix::from_fn(r, c, |i, j| {
            (seed.wrapping_mul(i as u64 + 3).wrapping_add(j as u64 * 7) % 255) as i8
        })
    })
}

proptest! {
    #[test]
    fn transpose_is_an_involution(m in arb_matrix(16)) {
        let back = transpose(&transpose(&m));
        prop_assert_eq!(back.as_slice(), m.as_slice());
        prop_assert_eq!(back.shape(), m.shape());
    }

    #[test]
    fn submatrix_write_read_inverse(
        m in arb_matrix(12), r0 in 0usize..6, c0 in 0usize..6
    ) {
        let r0 = r0.min(m.rows() - 1);
        let c0 = c0.min(m.cols() - 1);
        let h = m.rows() - r0;
        let w = m.cols() - c0;
        let tile = m.submatrix(r0, c0, h, w);
        let mut dst = Matrix::<i8>::zeros(m.rows(), m.cols());
        dst.write_submatrix(r0, c0, &tile);
        let read_back = dst.submatrix(r0, c0, h, w);
        prop_assert_eq!(read_back.as_slice(), tile.as_slice());
    }

    #[test]
    fn transpose_reverses_multiplication(
        a in arb_matrix(8), seed in any::<u64>()
    ) {
        // (A·B)ᵀ = Bᵀ·Aᵀ — exact in integer arithmetic.
        let b = Matrix::from_fn(a.cols(), 5, |i, j| {
            (seed.wrapping_mul(i as u64 + 11).wrapping_add(j as u64) % 255) as i8
        });
        let left = transpose(&matmul_i8_i32(&a, &b));
        let right_t = matmul_naive(
            &transpose(&b).map(f32::from),
            &transpose(&a).map(f32::from),
        );
        for i in 0..left.rows() {
            for j in 0..left.cols() {
                prop_assert_eq!(left[(i, j)], right_t[(i, j)] as i32);
            }
        }
    }

    #[test]
    fn residual_add_is_commutative(a in arb_matrix(10), seed in any::<u64>()) {
        let b = Matrix::from_fn(a.rows(), a.cols(), |i, j| {
            (seed.wrapping_add(i as u64 * 5 + j as u64) % 255) as i8
        });
        let ab = residual_add_i8(&a, &b);
        let ba = residual_add_i8(&b, &a);
        prop_assert_eq!(ab.as_slice(), ba.as_slice());
    }

    #[test]
    fn tile_grid_count_matches_iteration(
        rows in 1usize..50, cols in 1usize..50, th in 1usize..9, tw in 1usize..9
    ) {
        let g = TileGrid::new(rows, cols, th, tw);
        prop_assert_eq!(g.tile_count(), g.iter().count());
        prop_assert_eq!(g.tile_count(), g.iter_col_major().count());
        // every tile index round-trips through tile()
        for t in g.iter() {
            let again = g.tile(t.tr, t.tc);
            prop_assert_eq!(t, again);
        }
    }

    #[test]
    fn packed_gemm_matches_naive_bitwise(
        a in arb_matrix(24), n in 1usize..24, seed in any::<u64>()
    ) {
        // The fast-backend contract: the widened-i16 packed kernel is
        // bit-identical to the hardware oracle for arbitrary shapes,
        // including ragged column blocks and k == 1 edges.
        let w = Matrix::from_fn(a.cols(), n, |i, j| {
            (seed.wrapping_mul(i as u64 + 11).wrapping_add(j as u64 * 3) % 255) as i8
        });
        let reference = matmul_i8_i32(&a, &w);
        let packed = PackedWeights::pack(&w);
        let serial = matmul_i8_i32_packed(&a, &packed);
        let parallel = matmul_i8_i32_packed_parallel(&a, &packed);
        prop_assert_eq!(serial.as_slice(), reference.as_slice());
        prop_assert_eq!(parallel.as_slice(), reference.as_slice());
    }

    #[test]
    fn fused_requant_epilogue_matches_separate_pass(
        a in arb_matrix(24), n in 1usize..24, seed in any::<u64>(),
        shift in 0u8..12, use_bias in any::<bool>(),
    ) {
        // The fusion contract: requantizing in the kernel's store loop
        // is byte-for-byte the separate accumulate → bias → requant
        // pipeline, for arbitrary shapes, shifts and bias vectors, on
        // the serial and the panel-parallel path alike.
        let w = Matrix::from_fn(a.cols(), n, |i, j| {
            (seed.wrapping_mul(i as u64 + 17).wrapping_add(j as u64 * 29) % 255) as i8
        });
        let rq = Requantizer::new(shift, QFormat::new(8, 5), Rounding::NearestEven);
        let bias: Option<Vec<i32>> = use_bias.then(|| {
            (0..n).map(|j| ((seed.wrapping_add(j as u64) % 4001) as i32 - 2000) * 37).collect()
        });
        let packed = PackedWeights::pack(&w);
        let acc = matmul_i8_i32_packed(&a, &packed);
        let mut want = vec![0i8; a.rows() * n];
        for r in 0..a.rows() {
            for c in 0..n {
                let b = bias.as_ref().map_or(0, |b| b[c]);
                want[r * n + c] = rq.apply(acc[(r, c)].saturating_add(b));
            }
        }
        let fused = matmul_i8_requant_packed(&a, &packed, bias.as_deref(), rq);
        prop_assert_eq!(fused.as_slice(), &want[..]);
        let fused_par = matmul_i8_requant_packed_parallel(&a, &packed, bias.as_deref(), rq);
        prop_assert_eq!(fused_par.as_slice(), &want[..]);
        let checked = matmul_i8_packed_epilogue_checked(&a, &packed, |j, v| {
            let b = bias.as_ref().map_or(0, |b| b[j]);
            rq.apply(v.saturating_add(b))
        }).expect("clean GEMM verifies");
        prop_assert_eq!(checked.as_slice(), &want[..]);
    }

    #[test]
    fn every_supported_isa_is_bit_identical(
        a in arb_matrix(20), n in 1usize..20, seed in any::<u64>()
    ) {
        // The dispatch contract: every microkernel this host can run
        // (scalar, portable, explicit SIMD) produces the same bytes.
        let w = Matrix::from_fn(a.cols(), n, |i, j| {
            (seed.wrapping_mul(i as u64 + 23).wrapping_add(j as u64 * 41) % 255) as i8
        });
        let reference = matmul_i8_i32(&a, &w);
        let packed = PackedWeights::pack(&w);
        for isa in supported_kernels() {
            force_kernel(Some(isa));
            let out = matmul_i8_i32_packed(&a, &packed);
            force_kernel(None);
            prop_assert_eq!(out.as_slice(), reference.as_slice(), "kernel {}", isa);
        }
    }

    #[test]
    fn pack_from_transpose_agrees(a in arb_matrix(16), n in 1usize..16, seed in any::<u64>()) {
        // Packing W and packing Wᵀ-as-transpose reach the same bytes, so
        // the attention path (which packs Kᵀ straight from K's rows) is
        // the same kernel as the projection path.
        let w = Matrix::from_fn(a.cols(), n, |i, j| {
            (seed.wrapping_mul(i as u64 + 5).wrapping_add(j as u64 * 13) % 255) as i8
        });
        let direct = PackedWeights::pack(&w);
        let via_t = PackedWeights::from_transpose(&transpose(&w));
        prop_assert_eq!(&direct, &via_t);
        let fast = matmul_i8_i32_packed(&a, &direct);
        let oracle = matmul_i8_i32(&a, &w);
        prop_assert_eq!(fast.as_slice(), oracle.as_slice());
    }

    #[test]
    fn matmul_with_identity_is_identity(m in arb_matrix(10)) {
        let eye = Matrix::from_fn(m.cols(), m.cols(), |i, j| i8::from(i == j));
        let out = matmul_i8_i32(&m, &eye);
        for i in 0..m.rows() {
            for j in 0..m.cols() {
                prop_assert_eq!(out[(i, j)], i32::from(m[(i, j)]));
            }
        }
    }
}
