//! Offline stand-in for the `rayon` crate.
//!
//! The workspace parallelizes matmul kernels over independent output
//! rows via `par_chunks_exact_mut`. This shim provides the same method
//! names backed by the serial `std` iterators, so every caller compiles
//! and produces bit-identical results — it simply runs on one thread.
//! (Determinism is the property the equivalence tests actually rely on;
//! host-thread parallelism is an optimization this environment forgoes.)

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The traits callers import via `use rayon::prelude::*`.
pub mod prelude {
    /// Parallel chunk iteration over mutable slices (serial here).
    pub trait ParallelSliceMut<T> {
        /// Exact-size chunks of `chunk_size`, like `chunks_exact_mut`.
        fn par_chunks_exact_mut(&mut self, chunk_size: usize)
            -> core::slice::ChunksExactMut<'_, T>;

        /// Chunks of at most `chunk_size`, like `chunks_mut`.
        fn par_chunks_mut(&mut self, chunk_size: usize) -> core::slice::ChunksMut<'_, T>;
    }

    impl<T> ParallelSliceMut<T> for [T] {
        fn par_chunks_exact_mut(
            &mut self,
            chunk_size: usize,
        ) -> core::slice::ChunksExactMut<'_, T> {
            self.chunks_exact_mut(chunk_size)
        }

        fn par_chunks_mut(&mut self, chunk_size: usize) -> core::slice::ChunksMut<'_, T> {
            self.chunks_mut(chunk_size)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_chunks_exact_mut_matches_serial() {
        let mut a = [1u32, 2, 3, 4, 5, 6];
        a.par_chunks_exact_mut(2).enumerate().for_each(|(i, c)| {
            for v in c.iter_mut() {
                *v += i as u32 * 10;
            }
        });
        assert_eq!(a, [1, 2, 13, 14, 25, 26]);
    }
}
