//! Offline stand-in for the `rayon` crate, backed by `std::thread::scope`.
//!
//! The workspace parallelizes matmul kernels over independent output rows
//! (`par_chunks_exact_mut`) and fans engine/batch work out through
//! [`scope`]/[`join`]. This shim provides those entry points with *real*
//! host-thread parallelism built on scoped threads — no unsafe, no work
//! stealing, just disjoint-slice partitioning — and degrades to plain
//! serial execution when only one hardware thread is available (or
//! `RAYON_NUM_THREADS=1` is set), so single-core environments pay zero
//! thread overhead.
//!
//! Determinism contract: every parallel entry point hands each closure a
//! *disjoint* piece of the output, and each output element's reduction is
//! computed whole within one thread. Integer (and per-element float)
//! results are therefore bit-identical to the serial schedule — the
//! property the workspace's equivalence tests rely on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::OnceLock;

/// Worker-thread budget: `RAYON_NUM_THREADS` if set and positive,
/// otherwise the machine's available parallelism. Cached on first use.
#[must_use]
pub fn current_num_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n > 0 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    })
}

/// A fork-join scope handed to the closure of [`scope`]. With more than
/// one worker thread, `spawn` runs on a scoped OS thread; with one, it
/// runs inline immediately (same results — spawned tasks are independent
/// by construction).
pub struct Scope<'scope, 'env: 'scope> {
    inner: Option<&'scope std::thread::Scope<'scope, 'env>>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Run `f` as a task of this scope. All tasks complete before
    /// [`scope`] returns; a panicking task propagates at scope exit.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) + Send + 'scope,
    {
        match self.inner {
            Some(s) => {
                s.spawn(move || f(&Scope { inner: Some(s) }));
            }
            None => f(self),
        }
    }
}

/// Create a fork-join scope: every task spawned inside has completed when
/// this returns (the `rayon::scope` contract).
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R + Send,
    R: Send,
{
    if current_num_threads() <= 1 {
        f(&Scope { inner: None })
    } else {
        std::thread::scope(|s| f(&Scope { inner: Some(s) }))
    }
}

/// Run two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        let ra = a();
        let rb = b();
        (ra, rb)
    } else {
        std::thread::scope(|s| {
            let hb = s.spawn(b);
            let ra = a();
            let rb = hb.join().expect("joined task panicked");
            (ra, rb)
        })
    }
}

/// Below this many slice elements a parallel chunk iteration runs
/// serially — thread spin-up would dominate the work.
const MIN_PAR_ELEMS: usize = 8 * 1024;

/// Distribute `chunk`-sized exact chunks of `slice` over up to `threads`
/// workers, calling `f((chunk_index, chunk))` exactly once per chunk.
/// Each worker owns a contiguous run of chunks; the trailing remainder
/// (`len % chunk`) is untouched, matching `chunks_exact_mut`.
fn for_each_chunk_enumerated<T, F>(slice: &mut [T], chunk: usize, threads: usize, f: F)
where
    T: Send,
    F: Fn((usize, &mut [T])) + Sync,
{
    assert!(chunk != 0, "chunk size must be non-zero");
    let n_chunks = slice.len() / chunk;
    if threads <= 1 || n_chunks <= 1 || slice.len() < MIN_PAR_ELEMS {
        for (i, c) in slice.chunks_exact_mut(chunk).enumerate() {
            f((i, c));
        }
        return;
    }
    let workers = threads.min(n_chunks);
    let per = n_chunks.div_ceil(workers);
    let f = &f;
    std::thread::scope(|s| {
        let mut rest = &mut slice[..n_chunks * chunk];
        let mut base = 0usize;
        while base < n_chunks {
            let take = per.min(n_chunks - base);
            let (head, tail) = rest.split_at_mut(take * chunk);
            rest = tail;
            let start = base;
            base += take;
            if base < n_chunks {
                s.spawn(move || {
                    for (off, c) in head.chunks_exact_mut(chunk).enumerate() {
                        f((start + off, c));
                    }
                });
            } else {
                // Run the final group inline: the calling thread is a
                // worker too instead of idling at the scope barrier.
                for (off, c) in head.chunks_exact_mut(chunk).enumerate() {
                    f((start + off, c));
                }
            }
        }
    });
}

/// Parallel exact-chunk iterator returned by `par_chunks_exact_mut`.
pub struct ParChunksExactMut<'a, T> {
    slice: &'a mut [T],
    chunk: usize,
}

impl<'a, T: Send> ParChunksExactMut<'a, T> {
    /// Pair each chunk with its index, as `Iterator::enumerate` would.
    #[must_use]
    pub fn enumerate(self) -> ParEnumerateChunks<'a, T> {
        ParEnumerateChunks(self)
    }

    /// Apply `f` to every chunk (parallel when profitable).
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut [T]) + Sync,
    {
        self.enumerate().for_each(|(_, c)| f(c));
    }
}

/// Enumerated form of [`ParChunksExactMut`].
pub struct ParEnumerateChunks<'a, T>(ParChunksExactMut<'a, T>);

impl<T: Send> ParEnumerateChunks<'_, T> {
    /// Apply `f` to every `(index, chunk)` pair (parallel when
    /// profitable). Chunk indices are exact; assignment of chunks to
    /// threads never splits a chunk, so per-chunk results are identical
    /// to the serial schedule.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut [T])) + Sync,
    {
        let ParChunksExactMut { slice, chunk } = self.0;
        for_each_chunk_enumerated(slice, chunk, current_num_threads(), f);
    }
}

/// The traits callers import via `use rayon::prelude::*`.
pub mod prelude {
    pub use super::{ParChunksExactMut, ParEnumerateChunks};

    /// Parallel chunk iteration over mutable slices.
    pub trait ParallelSliceMut<T: Send> {
        /// Exact-size chunks of `chunk_size`, like `chunks_exact_mut`,
        /// distributed over worker threads when the slice is large
        /// enough to pay for them.
        fn par_chunks_exact_mut(&mut self, chunk_size: usize) -> ParChunksExactMut<'_, T>;

        /// Chunks of at most `chunk_size`, like `chunks_mut` (serial —
        /// no workspace hot path uses the ragged form).
        fn par_chunks_mut(&mut self, chunk_size: usize) -> core::slice::ChunksMut<'_, T>;
    }

    impl<T: Send> ParallelSliceMut<T> for [T] {
        fn par_chunks_exact_mut(&mut self, chunk_size: usize) -> ParChunksExactMut<'_, T> {
            ParChunksExactMut { slice: self, chunk: chunk_size }
        }

        fn par_chunks_mut(&mut self, chunk_size: usize) -> core::slice::ChunksMut<'_, T> {
            self.chunks_mut(chunk_size)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn par_chunks_exact_mut_matches_serial() {
        let mut a = [1u32, 2, 3, 4, 5, 6];
        a.par_chunks_exact_mut(2).enumerate().for_each(|(i, c)| {
            for v in c.iter_mut() {
                *v += i as u32 * 10;
            }
        });
        assert_eq!(a, [1, 2, 13, 14, 25, 26]);
    }

    #[test]
    fn remainder_left_untouched() {
        let mut a = [7u32; 7];
        a.par_chunks_exact_mut(3).enumerate().for_each(|(i, c)| {
            for v in c.iter_mut() {
                *v = i as u32;
            }
        });
        assert_eq!(a, [0, 0, 0, 1, 1, 1, 7]);
    }

    #[test]
    fn forced_multithread_partition_is_exact() {
        // Drive the partitioning logic with an explicit thread budget —
        // every chunk index must be visited exactly once regardless of
        // how chunks land on workers.
        for threads in [2usize, 3, 5, 16] {
            let mut data = vec![0u64; 40_000];
            for_each_chunk_enumerated(&mut data, 100, threads, |(i, c)| {
                for v in c.iter_mut() {
                    *v += 1 + i as u64;
                }
            });
            for (i, &v) in data.iter().enumerate() {
                assert_eq!(v, 1 + (i / 100) as u64, "threads={threads} elem={i}");
            }
        }
    }

    #[test]
    fn small_slices_run_serially_with_exact_semantics() {
        let mut data = vec![0u8; 10];
        for_each_chunk_enumerated(&mut data, 4, 8, |(i, c)| {
            for v in c.iter_mut() {
                *v = i as u8 + 1;
            }
        });
        assert_eq!(data, [1, 1, 1, 1, 2, 2, 2, 2, 0, 0]);
    }

    #[test]
    fn scope_runs_all_tasks() {
        let mut out = vec![0u32; 8];
        scope(|s| {
            for (i, slot) in out.iter_mut().enumerate() {
                s.spawn(move |_| *slot = i as u32 * 3);
            }
        });
        assert_eq!(out, [0, 3, 6, 9, 12, 15, 18, 21]);
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 6 * 7, || "ok");
        assert_eq!((a, b), (42, "ok"));
    }
}
