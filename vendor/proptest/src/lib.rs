//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset the workspace's property suites use: the
//! [`proptest!`] macro over `arg in strategy` parameters, [`Strategy`]
//! with `prop_map`, [`any`], integer/float range strategies, tuple
//! strategies, [`collection::vec`], [`Just`], `prop_assert!` /
//! `prop_assert_eq!` / `prop_assert_ne!`, and [`ProptestConfig`].
//!
//! Sampling is deterministic per test (seeded from the test's module
//! path), uniform over the strategy domain, with a slight bias toward
//! range endpoints — no shrinking. A failing case panics with the case
//! index and the assertion message.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::marker::PhantomData;
use core::ops::{Range, RangeInclusive};

/// Deterministic SplitMix64 generator driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded from `name` (FNV-1a), so each test gets a
    /// stable, distinct stream.
    #[must_use]
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01B3);
        }
        Self { state: h }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform index in `[0, n)`.
    ///
    /// # Panics
    /// Panics if `n` is zero.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index range must be nonempty");
        (self.next_u64() % n as u64) as usize
    }
}

/// A failed property case (carried by `prop_assert!` and friends).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure with `message`.
    #[must_use]
    pub fn fail(message: impl Into<String>) -> Self {
        Self { message: message.into() }
    }
}

impl core::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.message)
    }
}

/// Per-suite configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A generator of values of type `Value`.
pub trait Strategy {
    /// The value type produced.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every sampled value with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical full-domain strategy (the [`any`] function).
pub trait Arbitrary: Sized {
    /// Draw a value from the full domain of `Self`.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone)]
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for `T` (`any::<i8>()` etc.).
#[must_use]
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                // Bias ~1/8 of draws to the endpoints: off-by-one bugs
                // live at the edges.
                match rng.next_u64() % 16 {
                    0 => self.start,
                    1 => self.end - 1,
                    _ => {
                        let span = (self.end as i128 - self.start as i128) as u128;
                        let v = u128::from(rng.next_u64()) % span;
                        (self.start as i128 + v as i128) as $t
                    }
                }
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                match rng.next_u64() % 16 {
                    0 => lo,
                    1 => hi,
                    _ => {
                        let span = (hi as i128 - lo as i128 + 1) as u128;
                        let v = u128::from(rng.next_u64()) % span;
                        (lo as i128 + v as i128) as $t
                    }
                }
            }
        }
    )*};
}

impl_int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty => $mantissa:expr),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let unit = (rng.next_u64() >> (64 - $mantissa)) as $t
                    / (1u64 << $mantissa) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

impl_float_range_strategy!(f32 => 24, f64 => 53);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+)),* $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy!((A), (A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// A length domain for [`vec`]: any of `n`, `lo..hi`, `lo..=hi`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi_inclusive: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self { lo: r.start, hi_inclusive: r.end - 1 }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            Self { lo: *r.start(), hi_inclusive: *r.end() }
        }
    }

    /// The strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi_inclusive - self.size.lo + 1;
            let len = self.size.lo + rng.index(span);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A `Vec` of values from `element` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

/// Everything a property-test file imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };

    /// Namespace alias matching `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Assert a boolean condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                $($fmt)+
            )));
        }
    };
}

/// Assert equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: `{:?} == {:?}`",
                left,
                right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: `{:?} == {:?}`: {}",
                left,
                right,
                ::std::format!($($fmt)+)
            )));
        }
    }};
}

/// Assert inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::core::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: `{:?} != {:?}`",
                left,
                right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::core::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: `{:?} != {:?}`: {}",
                left,
                right,
                ::std::format!($($fmt)+)
            )));
        }
    }};
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` sampled cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(concat!(
                    module_path!(),
                    "::",
                    stringify!($name)
                ));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                    let outcome: ::core::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    if let ::core::result::Result::Err(e) = outcome {
                        ::core::panic!(
                            "property '{}' failed at case {}/{}: {}",
                            stringify!($name),
                            case,
                            config.cases,
                            e
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in -50i32..50, y in 1usize..=9) {
            prop_assert!((-50..50).contains(&x));
            prop_assert!((1..=9).contains(&y));
        }

        #[test]
        fn vec_lengths_respected(v in prop::collection::vec(any::<i8>(), 3..7)) {
            prop_assert!((3..7).contains(&v.len()), "len = {}", v.len());
        }

        #[test]
        fn tuples_and_map(pair in (0u8..4, 10u8..14).prop_map(|(a, b)| a + b)) {
            prop_assert!((10..18).contains(&pair));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]

        #[test]
        fn config_applies(x in any::<u64>()) {
            let _ = x;
            prop_assert_eq!(1 + 1, 2);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics() {
        proptest! {
            fn inner(x in 0u8..8) {
                prop_assert!(x < 4, "x = {}", x);
            }
        }
        inner();
    }

    #[test]
    fn determinism_same_name_same_stream() {
        let mut a = super::TestRng::deterministic("abc");
        let mut b = super::TestRng::deterministic("abc");
        assert_eq!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }
}
