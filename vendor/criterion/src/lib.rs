//! Offline stand-in for the `criterion` crate.
//!
//! The workspace's benches need to compile (CI builds them with
//! `cargo bench --no-run`) and produce useful numbers when run by hand.
//! This shim keeps the `criterion_group!`/`criterion_main!` surface and
//! measures each closure with a fixed-budget wall-clock loop, printing
//! `group/function/param   <ns>/iter`. No statistics, plots, or
//! baselines — point a real criterion at the same code for those.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver (configuration is accepted and ignored).
#[derive(Debug, Clone, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _criterion: self, name: name.into() }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(name, &mut f);
        self
    }
}

/// A named collection of benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Declare the per-iteration throughput (ignored).
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Set the sample count (ignored — the shim uses a time budget).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benchmark `f` against `input` under `id`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.label), &mut |b| f(b, input));
        self
    }

    /// Benchmark `f` under `name` within this group.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(&format!("{}/{}", self.name, name), &mut f);
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Identifies one benchmark: a function name plus a parameter value.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id printed as `function/parameter`.
    #[must_use]
    pub fn new(function: impl Into<String>, parameter: impl core::fmt::Display) -> Self {
        Self { label: format!("{}/{}", function.into(), parameter) }
    }
}

/// Declared throughput per iteration (accepted, not reported).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Times the routine under measurement.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Call `f` repeatedly under a small wall-clock budget and record
    /// the mean iteration time.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // One untimed call to warm caches (and to pay any lazy init).
        black_box(f());
        let budget = Duration::from_millis(200);
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            black_box(f());
            iters += 1;
            if start.elapsed() >= budget {
                break;
            }
        }
        self.iters = iters;
        self.elapsed = start.elapsed();
    }
}

fn run_one(label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher::default();
    f(&mut b);
    if b.iters == 0 {
        println!("{label:<48} (no iterations recorded)");
    } else {
        let ns = b.elapsed.as_nanos() / u128::from(b.iters);
        println!("{label:<48} {ns:>12} ns/iter ({} iters)", b.iters);
    }
}

/// Collect benchmark functions into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Elements(4));
        g.sample_size(10);
        g.bench_with_input(BenchmarkId::new("sum", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
    }

    criterion_group!(benches, tiny_bench);

    #[test]
    fn group_runs_to_completion() {
        benches();
    }
}
