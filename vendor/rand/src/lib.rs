//! Offline stand-in for the `rand` crate.
//!
//! This build environment has no crates.io access, so the workspace
//! vendors the exact API subset it uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and [`Rng::gen_range`] over integer
//! and float ranges. The generator is SplitMix64 — deterministic,
//! portable, and statistically adequate for seeded test-weight
//! initialization (the only consumer). It is **not** the upstream
//! ChaCha-based `StdRng` and must not be used for cryptography.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Minimal core RNG interface: a 64-bit output stream.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from a 64-bit seed (the only constructor the workspace
/// uses).
pub trait SeedableRng: Sized {
    /// Build a generator from `state`; equal seeds give equal streams.
    fn seed_from_u64(state: u64) -> Self;
}

/// Range sampling, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniform sample from `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<T: RngCore> Rng for T {}

/// A range that knows how to draw a uniform sample from itself.
pub trait SampleRange<T> {
    /// Draw one sample using `rng`.
    fn sample_single<G: RngCore>(self, rng: &mut G) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<G: RngCore>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = u128::from(rng.next_u64()) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<G: RngCore>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let v = u128::from(rng.next_u64()) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_single<G: RngCore>(self, rng: &mut G) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32;
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<G: RngCore>(self, rng: &mut G) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// Concrete generators.
pub mod rngs {
    /// The workspace's seeded generator: SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            Self { state }
        }
    }

    impl StdRng {
        /// The generator's internal state word. SplitMix64's state *is*
        /// its seed stream position, so `seed_from_u64(rng.state())`
        /// reconstructs a generator that continues the exact sequence —
        /// the snapshot/resume hook for deterministic simulations.
        #[must_use]
        pub fn state(&self) -> u64 {
            self.state
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert!((0..8).any(|_| c.next_u64() != b.next_u64()));
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v: i8 = rng.gen_range(-60i8..60);
            assert!((-60..60).contains(&v));
            let u: usize = rng.gen_range(3usize..17);
            assert!((3..17).contains(&u));
            let f: f32 = rng.gen_range(-2.5f32..2.5);
            assert!((-2.5..2.5).contains(&f));
            let d: f64 = rng.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&d));
            let i: u64 = rng.gen_range(5u64..=9);
            assert!((5..=9).contains(&i));
        }
    }

    #[test]
    fn state_round_trips_mid_stream() {
        let mut a = StdRng::seed_from_u64(99);
        for _ in 0..5 {
            a.next_u64();
        }
        let mut b = StdRng::seed_from_u64(a.state());
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys, "a restored generator continues the exact stream");
    }

    #[test]
    fn full_range_hits_both_halves() {
        let mut rng = StdRng::seed_from_u64(1);
        let samples: Vec<i8> = (0..256).map(|_| rng.gen_range(-128i8..=127)).collect();
        assert!(samples.iter().any(|&v| v < 0));
        assert!(samples.iter().any(|&v| v >= 0));
    }
}
