//! Offline stand-in for the `bytes` crate.
//!
//! Implements the subset the weight-blob serializer uses: [`BytesMut`]
//! as a growable little-endian writer, [`Bytes`] as a frozen immutable
//! buffer (deref-to-slice), and the [`Buf`]/[`BufMut`] traits with the
//! cursor semantics `protea-model::serialize` relies on (`&[u8]`
//! advances in place as it is read).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Read cursor over a byte source; reading advances the cursor.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Copy exactly `dst.len()` bytes out and advance.
    ///
    /// # Panics
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Read a little-endian `u32` and advance.
    ///
    /// # Panics
    /// Panics if fewer than 4 bytes remain.
    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        self.copy_to_slice(&mut raw);
        u32::from_le_bytes(raw)
    }

    /// Read a little-endian `f32` and advance.
    ///
    /// # Panics
    /// Panics if fewer than 4 bytes remain.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.len() >= dst.len(), "buffer underflow");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

/// Append-only little-endian writer.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with `capacity` bytes pre-allocated.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self { inner: Vec::with_capacity(capacity) }
    }

    /// Bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether nothing has been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Convert into an immutable [`Bytes`].
    #[must_use]
    pub fn freeze(self) -> Bytes {
        Bytes { inner: self.inner }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

/// An immutable byte buffer; dereferences to `[u8]`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    inner: Vec<u8>,
}

impl core::ops::Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(inner: Vec<u8>) -> Self {
        Self { inner }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_round_trip() {
        let mut w = BytesMut::with_capacity(16);
        w.put_slice(b"PTEA");
        w.put_u32_le(0xDEAD_BEEF);
        w.put_f32_le(1.5);
        let frozen = w.freeze();
        assert_eq!(frozen.len(), 12);

        let mut r: &[u8] = &frozen;
        assert_eq!(r.remaining(), 12);
        let mut magic = [0u8; 4];
        r.copy_to_slice(&mut magic);
        assert_eq!(&magic, b"PTEA");
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_f32_le(), 1.5);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut r: &[u8] = &[1, 2];
        let _ = r.get_u32_le();
    }
}
