//! `protea` — command-line front end to the simulator.
//!
//! ```text
//! protea synth     [--device u55c] [--tiles-mha 12] [--tiles-ffn 6]
//! protea run       [--device u55c] [--d 768] [--heads 8] [--layers 12] [--sl 64] [--batch 1]
//!                  [--trace exec.json]
//! protea fit       [--device zcu102] [--d 256] [--heads 2] [--layers 2] [--sl 64]
//! protea sweep     [--device u55c]
//! protea generate  [--device u55c] [--d 256] [--heads 8] [--layers 2]
//!                  [--src-len 32] [--steps 12] [--seed 7] [--kv-capacity 0]
//!                  (autoregressive decode with a resident KV cache; a
//!                  nonzero --kv-capacity bounds the cache and a
//!                  generation that outgrows it exits 11)
//! protea serve-sim [--cards 2] [--arrival-rate 50000] [--trace workload.json]
//!                  [--requests 64] [--d 96] [--heads 4] [--layers 2]
//!                  [--sl-min 8] [--sl-max 64] [--max-batch 8] [--seed 42]
//!                  [--decode-steps 0] [--token-deadline-us 0] [--prefill-len 0]
//!                  (a nonzero --decode-steps turns every request into a
//!                  generation session served by continuous batching; a
//!                  nonzero --prefill-len pins every prompt to that length)
//!                  [--emit-trace out.json] [--exec-trace exec.json]
//!                  [--metrics exact|sketch] [--snapshot-every N]
//!                  [--snapshot-out snap.txt] [--resume snap.txt]
//!                  [--roster u55c,u250,...] [--placement first-free|fastest-first|
//!                   least-loaded|capacity-aware]
//!                  [--churn "absent:1,join:1@5000000,drain:0@9000000,crash:2@3000000"]
//!                  [--churn-seed S] [--churn-events N] [--churn-horizon-ns H]
//!                  [--tenants "1=interactive@50,2=best-effort"] [--tenant-cycle K]
//!                  [--brownout "0.67,0.34"]
//!                  [--sdc-rate 0.01] [--scrub-every 1000000] [--abft 1]
//! protea chaos-sim [--cards 2] [--fault-rate 0.02] [--crash-rate 0]
//!                  [--max-attempts 5] [--seed 42] [--requests 64]
//!                  [--arrival-rate 50000] [--d 96] [--heads 4] [--layers 2]
//!                  [--sl-min 8] [--sl-max 64] [--max-batch 8]
//! protea overload-sim [--cards 2] [--requests 256] [--arrival-rate 400]
//!                  [--deadline-us 100000] [--max-queue 32] [--aimd-initial 64]
//!                  [--hedge-after-p99 0] [--priorities normal]
//!                  [--max-shed-pct 100] [--seed 42] [--d 96] [--heads 4]
//!                  [--layers 2] [--sl-min 8] [--sl-max 64] [--max-batch 8]
//!                  (0 disables a knob: deadline-us, max-queue,
//!                  aimd-initial, hedge-after-p99)
//! protea kernels   (report supported/active GEMM microkernel ISAs and
//!                  the PROTEA_KERNEL override, if any)
//! ```
//!
//! Exit codes are uniform across subcommands: 0 success, 1 usage error,
//! then [`CoreError::exit_code`] (2 = invalid configuration, 3 = bad
//! model blob, 4 = infeasible design, 5 = request-path mismatch, 6 =
//! unrecoverable hardware fault, 7 = serving-layer rejection, 8 =
//! overloaded — shed fraction above `--max-shed-pct`, 9 = snapshot
//! integrity failure: the `--resume` file's header or seal is wrong,
//! so the snapshot is untrusted input and must be discarded, 10 =
//! data-integrity failure: a weight image's sealed digest no longer
//! verifies, so results from that card cannot be trusted, 11 = KV
//! cache capacity exhausted: the generation outgrew the residency it
//! was admitted with, so this generation must end — not retry
//! elsewhere).

use protea::prelude::*;
use std::collections::HashMap;
use std::process::ExitCode;

/// Every way a CLI invocation can fail, mapped onto the uniform exit
/// code table (usage errors exit 1; everything else defers to
/// [`CoreError::exit_code`]).
#[derive(Debug)]
enum CliError {
    Usage(String),
    Core(CoreError),
}

impl CliError {
    fn exit_code(&self) -> u8 {
        match self {
            CliError::Usage(_) => 1,
            CliError::Core(e) => e.exit_code(),
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(m) => f.write_str(m),
            CliError::Core(e) => write!(f, "{e}"),
        }
    }
}

impl From<String> for CliError {
    fn from(m: String) -> Self {
        CliError::Usage(m)
    }
}

impl From<&str> for CliError {
    fn from(m: &str) -> Self {
        CliError::Usage(m.to_string())
    }
}

impl From<CoreError> for CliError {
    fn from(e: CoreError) -> Self {
        CliError::Core(e)
    }
}

impl From<ServeError> for CliError {
    fn from(e: ServeError) -> Self {
        CliError::Core(e.into())
    }
}

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut map = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, got '{}'", args[i]))?;
        let val = args.get(i + 1).ok_or_else(|| format!("--{key} needs a value"))?;
        map.insert(key.to_string(), val.clone());
        i += 2;
    }
    Ok(map)
}

fn flag<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, String> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("bad value for --{key}: '{v}'")),
    }
}

fn device_of(flags: &HashMap<String, String>) -> Result<FpgaDevice, String> {
    let name = flags.get("device").map_or("u55c", String::as_str);
    FpgaDevice::by_name(name).ok_or_else(|| {
        format!(
            "unknown device '{name}' (known: {})",
            FpgaDevice::all().iter().map(|d| d.name).collect::<Vec<_>>().join(", ")
        )
    })
}

fn workload_of(flags: &HashMap<String, String>) -> Result<EncoderConfig, String> {
    let d = flag(flags, "d", 768usize)?;
    let h = flag(flags, "heads", 8usize)?;
    let n = flag(flags, "layers", 12usize)?;
    let sl = flag(flags, "sl", 64usize)?;
    if d == 0 || h == 0 || n == 0 || sl == 0 || d % h != 0 {
        return Err(format!("invalid workload: d={d} heads={h} layers={n} sl={sl}"));
    }
    Ok(EncoderConfig::new(d, h, n, sl))
}

/// Assemble the serving workload shared by `serve-sim` and `chaos-sim`.
/// A nonzero `--decode-steps` stamps every request as a generation
/// session (optionally with a `--token-deadline-us` per-token SLO);
/// `--prefill-len` pins every synthesized prompt to one length so
/// sessions share a bucket and join each other's decode batches.
fn serving_workload(flags: &HashMap<String, String>) -> Result<Workload, CliError> {
    let decode_steps = flag(flags, "decode-steps", 0u32)?;
    let token_deadline_us = flag(flags, "token-deadline-us", 0u64)?;
    let workload = match flags.get("trace") {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read trace '{path}': {e}"))?;
            Workload::from_json(&text)?
        }
        None => {
            let n = flag(flags, "requests", 64usize)?;
            let rate = flag(flags, "arrival-rate", 50_000.0f64)?;
            let d = flag(flags, "d", 96usize)?;
            let h = flag(flags, "heads", 4usize)?;
            let l = flag(flags, "layers", 2usize)?;
            let prefill_len = flag(flags, "prefill-len", 0usize)?;
            let (sl_min, sl_max) = if prefill_len > 0 {
                (prefill_len, prefill_len)
            } else {
                (flag(flags, "sl-min", 8usize)?, flag(flags, "sl-max", 64usize)?)
            };
            let seed = flag(flags, "seed", 42u64)?;
            if rate.is_nan() || rate <= 0.0 {
                return Err("--arrival-rate must be positive".into());
            }
            Workload::poisson(n, rate, &[(d, h, l)], (sl_min, sl_max), seed)
        }
    };
    if decode_steps > 0 {
        let deadline = (token_deadline_us > 0).then_some(token_deadline_us * 1_000);
        Ok(workload.with_decode(decode_steps, deadline))
    } else {
        Ok(workload)
    }
}

fn cmd_synth(flags: &HashMap<String, String>) -> Result<(), CliError> {
    let device = device_of(flags)?;
    let tm = flag(flags, "tiles-mha", 12usize)?;
    let tf = flag(flags, "tiles-ffn", 6usize)?;
    if 768 % tm != 0 || 768 % tf != 0 {
        return Err("tile counts must divide 768".into());
    }
    let design = SynthesisConfig::with_tile_counts(tm, tf).synthesize(&device);
    println!("{}", design.report_text());
    println!("feasible: {}", if design.feasible { "yes" } else { "NO" });
    Ok(())
}

fn cmd_run(flags: &HashMap<String, String>) -> Result<(), CliError> {
    let device = device_of(flags)?;
    let cfg = workload_of(flags)?;
    let seed = flag(flags, "seed", 42u64)?;
    let batch = flag(flags, "batch", 1usize)?.max(1);
    let syn = SynthesisConfig::paper_default();
    let design = syn.synthesize(&device);
    if !design.feasible {
        return Err(
            format!("paper design point does not fit {} — try `protea fit`", device.name).into()
        );
    }
    let mut accel = Accelerator::try_new(syn, &device)?;
    accel
        .program(RuntimeConfig::from_model(&cfg, &syn).map_err(CoreError::from)?)
        .map_err(CoreError::from)?;
    accel.try_load_weights(QuantizedEncoder::from_float(
        &EncoderWeights::random(cfg, seed),
        QuantSchedule::paper(),
    ))?;
    let x = Matrix::from_fn(cfg.seq_len, cfg.d_model, |r, c| {
        (seed.wrapping_add((r * 31 + c * 7) as u64) % 200) as i64 as i8
    });
    let result = accel.try_run(&x)?;
    println!(
        "workload: d={} heads={} layers={} SL={} (seed {seed})",
        cfg.d_model, cfg.heads, cfg.layers, cfg.seq_len
    );
    println!("latency: {:.4} ms @ {:.1} MHz", result.latency_ms, result.report.fmax_mhz);
    println!("throughput: {:.2} GOPS", result.gops);
    if batch > 1 {
        let b = accel.timing_report_batched(batch);
        println!(
            "batched x{batch}: {:.4} ms total, {:.4} ms/sequence",
            b.latency_ms(),
            b.latency_ms() / batch as f64
        );
    }
    println!("\n{}", result.report.gantt(56));
    if let Some(path) = flags.get("trace") {
        let (outcome, _) = accel.execute(RunPlan::timing(batch).with_trace());
        let trace = outcome
            .expect("fault-free timing cannot fail")
            .trace
            .expect("traced run records spans");
        std::fs::write(path, trace.to_chrome_json())
            .map_err(|e| format!("cannot write trace '{path}': {e}"))?;
        println!(
            "execution trace: {} spans written to {path} (open in chrome://tracing or Perfetto)",
            trace.len()
        );
    }
    Ok(())
}

fn cmd_fit(flags: &HashMap<String, String>) -> Result<(), CliError> {
    let device = device_of(flags)?;
    let cfg = workload_of(flags)?;
    match SynthesisConfig::fit_to_device(&device, &cfg) {
        None => {
            Err(format!("no feasible ProTEA configuration on {} for this workload", device.name)
                .into())
        }
        Some(design) => {
            println!("fitted design for {}:", device.name);
            println!(
                "  d_max={} heads={} TS_MHA={} TS_FFN={} sl_unroll={}",
                design.config.d_max,
                design.config.heads,
                design.config.ts_mha,
                design.config.ts_ffn,
                design.config.sl_unroll
            );
            println!("  resources: {}", design.report);
            println!("  fmax: {:.1} MHz", design.fmax_mhz);
            Ok(())
        }
    }
}

fn cmd_sweep(flags: &HashMap<String, String>) -> Result<(), CliError> {
    let device = device_of(flags)?;
    let workload = EncoderConfig::paper_test1();
    println!("tile sweep on {} (test #1 workload):", device.name);
    for tm in [6usize, 8, 12, 16, 24, 48] {
        for tf in [2usize, 3, 4, 6] {
            let syn = SynthesisConfig::with_tile_counts(tm, tf);
            let design = syn.synthesize(&device);
            if design.feasible {
                let mut accel = Accelerator::try_new(syn, &device)?;
                accel
                    .program(RuntimeConfig::from_model(&workload, &syn).map_err(CoreError::from)?)
                    .map_err(CoreError::from)?;
                println!(
                    "  {tm:>2} x {tf}: {:>6.1} MHz  {:>7.1} ms",
                    design.fmax_mhz,
                    accel.timing_report().latency_ms()
                );
            } else {
                println!("  {tm:>2} x {tf}: infeasible");
            }
        }
    }
    Ok(())
}

/// Parse the elastic-fleet flags for `serve-sim`: an optional
/// heterogeneous `--roster`, a `--placement` policy, a scripted or
/// seeded `--churn` plan, `--tenants` SLO classes, and a `--brownout`
/// ladder. Returns the effective card count (a roster overrides a
/// defaulted `--cards`) plus the fields to merge into the
/// [`FleetConfig`].
#[allow(clippy::type_complexity)]
fn elastic_flags(
    flags: &HashMap<String, String>,
    mut cards: usize,
) -> Result<
    (
        usize,
        Option<Vec<FpgaDevice>>,
        PlacementPolicy,
        Option<ChurnPlan>,
        Option<TenantPolicy>,
        Option<BrownoutLadder>,
    ),
    CliError,
> {
    let roster = flags.get("roster").map(|s| FpgaDevice::parse_roster(s)).transpose()?;
    if let (Some(r), false) = (&roster, flags.contains_key("cards")) {
        cards = r.len();
    }
    let placement = match flags.get("placement") {
        None => PlacementPolicy::FirstFree,
        Some(s) => PlacementPolicy::parse(s).ok_or_else(|| {
            format!(
                "--placement must be first-free, fastest-first, least-loaded, \
                 or capacity-aware, got '{s}'"
            )
        })?,
    };
    let churn = match (flags.get("churn"), flags.contains_key("churn-seed")) {
        (Some(_), true) => {
            return Err("--churn and --churn-seed are mutually exclusive".into());
        }
        (Some(spec), false) => Some(ChurnPlan::parse(spec)?),
        (None, true) => {
            let seed = flag(flags, "churn-seed", 0u64)?;
            let n = flag(flags, "churn-events", 6usize)?;
            let horizon = flag(flags, "churn-horizon-ns", 20_000_000u64)?;
            Some(ChurnPlan::seeded(seed, cards, horizon, n))
        }
        (None, false) => None,
    };
    let tenants = flags.get("tenants").map(|s| TenantPolicy::parse(s)).transpose()?;
    let brownout = flags.get("brownout").map(|s| BrownoutLadder::parse(s)).transpose()?;
    Ok((cards, roster, placement, churn, tenants, brownout))
}

/// Autoregressive generation on one accelerator: prefill nothing,
/// decode `--steps` tokens through the phase-aware pipeline with the
/// KV cache resident, and report the per-step latency curve plus the
/// effective tokens/s. A nonzero `--kv-capacity` bounds the cache, so
/// a generation that outgrows its residency surfaces the typed
/// [`CoreError::KvCapacity`] and exits 11 — the session must end, not
/// retry elsewhere.
fn cmd_generate(flags: &HashMap<String, String>) -> Result<(), CliError> {
    use protea::model::decoder::{DecoderKvCache, DecoderWeights, QuantizedDecoder};

    let device = device_of(flags)?;
    let d = flag(flags, "d", 256usize)?;
    let heads = flag(flags, "heads", 8usize)?;
    let layers = flag(flags, "layers", 2usize)?;
    let src_len = flag(flags, "src-len", 32usize)?;
    let steps = flag(flags, "steps", 12usize)?;
    let seed = flag(flags, "seed", 7u64)?;
    let kv_capacity = flag(flags, "kv-capacity", 0usize)?;
    if d == 0 || heads == 0 || layers == 0 || src_len == 0 || steps == 0 || d % heads != 0 {
        return Err(format!(
            "invalid generation: d={d} heads={heads} layers={layers} src-len={src_len} \
             steps={steps}"
        )
        .into());
    }

    let syn = SynthesisConfig::paper_default();
    let mut accel = Accelerator::try_new(syn, &device)?;
    let cfg = EncoderConfig::new(d, heads, layers, 1);
    let dec =
        QuantizedDecoder::from_float(&DecoderWeights::random(cfg, seed), QuantSchedule::paper());
    let packed = dec.pack();
    let memory = Matrix::from_fn(src_len, d, |r, c| {
        ((seed as usize + r * 17 + c * 5) % 120) as i32 as i8 - 60
    });
    accel
        .program(RuntimeConfig { heads, layers, d_model: d, seq_len: src_len })
        .map_err(CoreError::from)?;

    let mut cache = if kv_capacity > 0 {
        DecoderKvCache::bounded(&dec, &memory, kv_capacity)
    } else {
        DecoderKvCache::new(&dec, &memory)
    };
    let mut row = Matrix::from_fn(1, d, |_, c| ((c * 3 + seed as usize) % 90) as i8);
    let mut total_ms = 0.0;
    println!(
        "generate: d={d} heads={heads} layers={layers} src-len={src_len} steps={steps} \
         on {} (seed {seed}{})",
        device.name,
        if kv_capacity > 0 {
            format!(", KV capacity {kv_capacity} positions")
        } else {
            String::new()
        }
    );
    println!("step  kv_len  latency (ms)   cumulative (ms)");
    for pos in 0..steps {
        let plan = RunPlan::decode(pos, pos + 1, 1).with_session(DecodeSession {
            decoder: &dec,
            packed: Some(&packed),
            cache: &mut cache,
            x_row: &row,
        });
        let (outcome, _) = accel.execute(plan);
        let out = outcome?;
        total_ms += out.latency_ms;
        println!("{pos:>4}  {:>6}  {:>12.4}  {:>14.4}", pos + 1, out.latency_ms, total_ms);
        row = out.outputs[0].map(|v| v.saturating_add(1));
    }
    println!(
        "\n{steps} tokens in {total_ms:.3} ms — {:.1} tokens/s single-stream \
         (every step streams every weight tile: generation is bandwidth-bound, \
         so serve-sim's continuous batching is where tokens/s scales)",
        steps as f64 / (total_ms / 1e3)
    );
    Ok(())
}

fn cmd_serve_sim(flags: &HashMap<String, String>) -> Result<(), CliError> {
    let device = device_of(flags)?;
    let cards = flag(flags, "cards", 2usize)?;
    let mut workload = serving_workload(flags)?;
    // `--tenant-cycle K` stamps tenants 0..K round-robin onto a
    // synthesized workload; JSON traces carry their own `tenant` field.
    let tenant_cycle = flag(flags, "tenant-cycle", 0usize)?;
    if tenant_cycle > 0 {
        for (i, r) in workload.requests.iter_mut().enumerate() {
            r.tenant = (i % tenant_cycle) as u32;
        }
    }
    if let Some(path) = flags.get("emit-trace") {
        std::fs::write(path, workload.to_json())
            .map_err(|e| format!("cannot write '{path}': {e}"))?;
        println!("trace written to {path} ({} requests)", workload.requests.len());
    }
    let policy =
        BatchPolicy { max_batch: flag(flags, "max-batch", 8usize)?, ..BatchPolicy::default() };
    let (cards, roster, placement, churn, tenants, brownout) = elastic_flags(flags, cards)?;
    // SDC defense knobs: any of them arms the integrity machinery; all
    // at rest leaves the run byte-identical to an undefended fleet.
    let sdc_rate = flag(flags, "sdc-rate", 0.0f64)?;
    let scrub_every = flag(flags, "scrub-every", 0u64)?;
    let abft = flag(flags, "abft", 0u8)? != 0;
    if !(0.0..=1.0).contains(&sdc_rate) {
        return Err(format!("--sdc-rate must be in [0, 1], got {sdc_rate}").into());
    }
    let sdc = (sdc_rate > 0.0 || scrub_every > 0 || abft).then(|| SdcConfig {
        seed: flags.get("seed").and_then(|s| s.parse().ok()).unwrap_or(42),
        rate: sdc_rate,
        abft,
        scrub_every_ns: (scrub_every > 0).then_some(scrub_every),
        ..SdcConfig::default()
    });
    let fleet = Fleet::try_new(FleetConfig {
        cards,
        device,
        policy,
        roster,
        placement,
        churn,
        tenants,
        brownout,
        sdc,
        ..FleetConfig::default()
    })?;

    // Assemble the ServePlan: metrics mode, exec tracing, periodic
    // snapshot capture, and/or resume from a snapshot file. Conflicting
    // combinations surface as `ServeError::Plan` with the real reason.
    let mut plan = ServePlan::workload(&workload);
    match flags.get("metrics").map(String::as_str) {
        None | Some("exact") => {}
        Some("sketch") => plan = plan.metrics(MetricsMode::Sketch),
        Some(other) => {
            return Err(format!("--metrics must be exact or sketch, got '{other}'").into())
        }
    }
    let exec_trace = flags.get("exec-trace");
    if exec_trace.is_some() {
        plan = plan.traced();
    }
    if flags.contains_key("snapshot-every") {
        let snapshot_every = flag(flags, "snapshot-every", 0u64)?;
        if snapshot_every == 0 {
            return Err("--snapshot-every must be at least 1 epoch".into());
        }
        plan = plan.snapshot_every(snapshot_every);
    }
    if let Some(path) = flags.get("resume") {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read snapshot '{path}': {e}"))?;
        plan = plan.resume(text.parse::<FleetSnapshot>()?);
    }

    let outcome = fleet.run(plan)?;
    if let (Some(path), Some(trace)) = (exec_trace, &outcome.trace) {
        std::fs::write(path, trace.to_chrome_json())
            .map_err(|e| format!("cannot write exec trace '{path}': {e}"))?;
        println!(
            "execution trace: {} spans written to {path} \
             (open in chrome://tracing or Perfetto)",
            trace.len()
        );
    }
    if let Some(path) = flags.get("snapshot-out") {
        let Some(last) = outcome.snapshots.last() else {
            return Err("--snapshot-out needs --snapshot-every to capture something".into());
        };
        std::fs::write(path, last.to_string())
            .map_err(|e| format!("cannot write snapshot '{path}': {e}"))?;
        println!(
            "snapshot: epoch {} (state hash {:016x}) written to {path}",
            last.arrivals(),
            last.state_hash()
        );
    }
    let report = outcome.report;
    println!(
        "workload: {} requests over {:.3} s of arrivals, {} card(s)",
        workload.requests.len(),
        workload.span_s(),
        cards
    );
    println!("{report}");
    if let Some(hash) = outcome.state_hash {
        println!("final state hash: {hash:016x}");
    }
    // The serial baseline has no token loop, so generation workloads
    // skip the comparison instead of tripping its typed rejection.
    if workload.requests.iter().any(ServeRequest::is_decode) {
        println!("serial 1-card baseline: skipped (generation needs the batched fleet)");
        return Ok(());
    }
    let serial = fleet.run(ServePlan::workload(&workload).serial_baseline())?.report;
    println!(
        "serial 1-card baseline: {:.1} inf/s, p99 {:.3} ms  (batched fleet speedup {:.2}x)",
        serial.throughput_rps,
        serial.latency_ms.p99,
        report.throughput_rps / serial.throughput_rps
    );
    Ok(())
}

fn cmd_chaos_sim(flags: &HashMap<String, String>) -> Result<(), CliError> {
    let device = device_of(flags)?;
    let cards = flag(flags, "cards", 2usize)?;
    let seed = flag(flags, "seed", 42u64)?;
    let fault_rate = flag(flags, "fault-rate", 0.02f64)?;
    let crash_rate = flag(flags, "crash-rate", 0.0f64)?;
    let max_attempts = flag(flags, "max-attempts", 5u32)?;
    if !(0.0..=1.0).contains(&fault_rate) {
        return Err(format!("--fault-rate must be in [0, 1], got {fault_rate}").into());
    }
    if !crash_rate.is_finite() || crash_rate < 0.0 {
        return Err(format!("--crash-rate must be finite and >= 0, got {crash_rate}").into());
    }
    let workload = serving_workload(flags)?;
    let policy =
        BatchPolicy { max_batch: flag(flags, "max-batch", 8usize)?, ..BatchPolicy::default() };
    let faults = FaultConfig {
        rates: FaultRates::scaled(fault_rate).with_crash_rate(crash_rate),
        max_request_attempts: max_attempts,
        ..FaultConfig::seeded(seed, fault_rate)
    };
    let base = FleetConfig { cards, device, policy, ..FleetConfig::default() };
    let clean_fleet = Fleet::try_new(base.clone())?;
    let chaos_fleet = Fleet::try_new(FleetConfig { faults: Some(faults), ..base })?;

    println!(
        "chaos-sim: {} requests over {:.3} s of arrivals, {} card(s), \
         fault rate {fault_rate}, crash rate {crash_rate}/s, seed {seed}",
        workload.requests.len(),
        workload.span_s(),
        cards
    );
    let clean = clean_fleet.run(ServePlan::workload(&workload))?.report;
    let chaos = chaos_fleet.run(ServePlan::workload(&workload))?.report;
    println!("{chaos}");
    println!(
        "fault-free baseline: {:.1} inf/s, p99 {:.3} ms",
        clean.throughput_rps, clean.latency_ms.p99
    );
    println!(
        "under faults: throughput {:.1}% of baseline, p99 {:.2}x baseline",
        100.0 * chaos.throughput_rps / clean.throughput_rps,
        chaos.latency_ms.p99 / clean.latency_ms.p99.max(f64::MIN_POSITIVE)
    );
    let accounted = chaos.completed + chaos.failed.len();
    println!(
        "dropped requests: {} ({} completed + {} failed = {} submitted)",
        chaos.submitted.saturating_sub(accounted),
        chaos.completed,
        chaos.failed.len(),
        chaos.submitted
    );
    if accounted != chaos.submitted {
        return Err(CoreError::Serving(format!(
            "request accounting broken: {accounted} accounted vs {} submitted",
            chaos.submitted
        ))
        .into());
    }
    Ok(())
}

/// Parse `--priorities` as a comma-separated cycle of class names
/// (`interactive,normal,best-effort`), applied round-robin to the
/// synthesized workload.
fn priority_cycle(flags: &HashMap<String, String>) -> Result<Vec<Priority>, CliError> {
    let Some(spec) = flags.get("priorities") else {
        return Ok(Vec::new());
    };
    spec.split(',')
        .map(|s| {
            Priority::parse(s.trim())
                .ok_or_else(|| format!("unknown priority '{}' in --priorities", s.trim()).into())
        })
        .collect()
}

fn cmd_overload_sim(flags: &HashMap<String, String>) -> Result<(), CliError> {
    let device = device_of(flags)?;
    let cards = flag(flags, "cards", 2usize)?;
    let seed = flag(flags, "seed", 42u64)?;
    let requests = flag(flags, "requests", 256usize)?;
    let rate = flag(flags, "arrival-rate", 400.0f64)?;
    let deadline_us = flag(flags, "deadline-us", 100_000u64)?;
    let max_queue = flag(flags, "max-queue", 32usize)?;
    let aimd_initial = flag(flags, "aimd-initial", 64usize)?;
    let hedge_after_p99 = flag(flags, "hedge-after-p99", 0.0f64)?;
    let max_shed_pct = flag(flags, "max-shed-pct", 100.0f64)?;
    if rate.is_nan() || rate <= 0.0 {
        return Err("--arrival-rate must be positive".into());
    }
    if !(0.0..=100.0).contains(&max_shed_pct) {
        return Err(format!("--max-shed-pct must be in [0, 100], got {max_shed_pct}").into());
    }

    let d = flag(flags, "d", 96usize)?;
    let h = flag(flags, "heads", 4usize)?;
    let l = flag(flags, "layers", 2usize)?;
    let sl_min = flag(flags, "sl-min", 8usize)?;
    let sl_max = flag(flags, "sl-max", 64usize)?;
    let mut workload = Workload::poisson(requests, rate, &[(d, h, l)], (sl_min, sl_max), seed);
    if deadline_us > 0 {
        workload = workload.with_deadline(deadline_us.saturating_mul(1_000));
    }
    workload = workload.with_priorities(&priority_cycle(flags)?);

    let policy = BatchPolicy {
        max_batch: flag(flags, "max-batch", 8usize)?,
        max_queue: (max_queue > 0).then_some(max_queue),
        ..BatchPolicy::default()
    };
    let overload = OverloadConfig {
        aimd: (aimd_initial > 0).then(|| AimdConfig {
            initial: aimd_initial,
            min: aimd_initial.min(AimdConfig::default().min),
            ..AimdConfig::default()
        }),
        retry_budget: Some(RetryBudgetConfig::default()),
        hedge: (hedge_after_p99 > 0.0)
            .then(|| HedgeConfig { factor: hedge_after_p99, ..HedgeConfig::default() }),
    };
    let fleet = Fleet::try_new(FleetConfig {
        cards,
        device,
        policy,
        overload: Some(overload),
        ..FleetConfig::default()
    })?;
    let report = fleet.run(ServePlan::workload(&workload))?.report;

    println!(
        "overload-sim: {} requests at {:.0} req/s offered, {} card(s), \
         deadline {deadline_us} us, queue cap {max_queue}, seed {seed}",
        workload.requests.len(),
        rate,
        cards
    );
    println!("{report}");
    println!(
        "accounting: {} completed + {} shed + {} expired + {} failed = {} submitted",
        report.completed,
        report.shed.len(),
        report.expired.len(),
        report.failed.len(),
        report.submitted
    );
    if !report.accounted() {
        return Err(CoreError::Serving("request accounting broken under overload".into()).into());
    }
    let shed_pct =
        100.0 * (report.shed.len() + report.expired.len()) as f64 / report.submitted.max(1) as f64;
    if shed_pct > max_shed_pct {
        return Err(CoreError::Overloaded(format!(
            "{shed_pct:.1}% of requests shed or expired (threshold {max_shed_pct}%)"
        ))
        .into());
    }
    Ok(())
}

/// `protea kernels`: report the GEMM microkernel dispatch — which ISAs
/// this host supports, which one the dispatcher selected, and whether a
/// `PROTEA_KERNEL` override is in effect. The diagnostic for "what code
/// actually ran" when comparing bench numbers across hosts.
fn cmd_kernels(_flags: &HashMap<String, String>) -> Result<(), CliError> {
    let supported = protea::tensor::supported_kernels();
    let active = protea::tensor::active_kernel();
    let names: Vec<String> = supported.iter().map(|k| k.to_string()).collect();
    println!("supported kernels: {}", names.join(", "));
    match std::env::var("PROTEA_KERNEL") {
        Ok(v) => println!("PROTEA_KERNEL={v} (override)"),
        Err(_) => println!("PROTEA_KERNEL unset (auto-detect)"),
    }
    println!("active kernel: {active}");
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let usage = "usage: protea <synth|run|fit|sweep|generate|serve-sim|chaos-sim|overload-sim|kernels> [--flag value]...\n  see source header for flags";
    let Some(cmd) = args.first() else {
        eprintln!("{usage}");
        return ExitCode::FAILURE;
    };
    let result = match parse_flags(&args[1..]) {
        Err(e) => Err(CliError::Usage(e)),
        Ok(flags) => match cmd.as_str() {
            "synth" => cmd_synth(&flags),
            "run" => cmd_run(&flags),
            "fit" => cmd_fit(&flags),
            "sweep" => cmd_sweep(&flags),
            "generate" => cmd_generate(&flags),
            "serve-sim" => cmd_serve_sim(&flags),
            "chaos-sim" => cmd_chaos_sim(&flags),
            "overload-sim" => cmd_overload_sim(&flags),
            "kernels" => cmd_kernels(&flags),
            other => Err(CliError::Usage(format!("unknown command '{other}'\n{usage}"))),
        },
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}
