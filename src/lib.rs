//! # protea — a simulation-based reproduction of ProTEA
//!
//! ProTEA ("Programmable Transformer Encoder Acceleration on FPGA",
//! SC24-W) is an HLS-built FPGA accelerator for dense transformer
//! encoders whose hyperparameters — attention heads, layers, embedding
//! dimension, sequence length — are **runtime-programmable** without
//! re-synthesis. This workspace reproduces the system end-to-end in
//! Rust: a bit-exact 8-bit fixed-point datapath, a cycle-calibrated
//! model of the HLS engines, a device/Fmax model standing in for Vivado,
//! and a harness that regenerates every table and figure of the paper's
//! evaluation (see `EXPERIMENTS.md`).
//!
//! ## Quick start
//!
//! The whole request path — synthesize, program, load weights, run — is
//! fallible: every step returns `Result`, so invalid configurations and
//! mismatched weight blobs surface as typed [`CoreError`] values rather
//! than panics.
//!
//! [`CoreError`]: protea_core::CoreError
//!
//! ```
//! use protea::prelude::*;
//!
//! // 1. Describe the bitstream and synthesize it onto an Alveo U55C.
//! //    The builder starts from the paper's design point and validates
//! //    divisibility and capacity constraints at `build()`.
//! let syn = SynthesisConfig::builder().heads(8).d_max(768).sl_max(128).build()?;
//! let mut accel = Accelerator::try_new(syn, &FpgaDevice::alveo_u55c())?;
//!
//! // 2. "Train" a model (random weights here), save it, and let the
//! //    driver extract hyperparameters + program the registers.
//! let cfg = EncoderConfig::new(256, 4, 2, 16);
//! let blob = protea::model::serialize::encode(&EncoderWeights::random(cfg, 42));
//! Driver::new(syn).deploy(&mut accel, &blob, QuantSchedule::paper())?;
//!
//! // 3. Run an input through the simulated hardware.
//! let x = Matrix::from_fn(16, 256, |r, c| ((r + c) % 64) as i8);
//! let result = accel.try_run(&x)?;
//! assert_eq!(result.output.shape(), (16, 256));
//! assert!(result.latency_ms > 0.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! ## Serving simulation
//!
//! Beyond single requests, [`serve`] simulates a *fleet* of ProTEA
//! cards under a live request stream: a batch scheduler groups
//! compatible requests (same capacity class, padded into a shared
//! sequence-length bucket) to amortize register programming and weight
//! reloads, and a discrete-event simulation reports throughput and
//! p50/p95/p99 latency. The `protea serve-sim` subcommand exposes the
//! same simulation from the command line, and `protea chaos-sim` runs
//! it under deterministic fault injection (seeded ECC flips, AXI
//! stalls/timeouts, and card crashes with watchdog/retry/circuit-breaker
//! recovery — see [`serve::FaultConfig`]):
//!
//! ```
//! use protea::prelude::*;
//!
//! let workload = Workload::poisson(32, 50_000.0, &[(96, 4, 2)], (8, 16), 7);
//! let fleet = Fleet::try_new(FleetConfig { cards: 2, ..FleetConfig::default() })?;
//! let report = fleet.run(ServePlan::workload(&workload))?.report;
//! assert_eq!(report.completed, 32);
//! assert!(report.latency_ms.p99 >= report.latency_ms.p50);
//! # Ok::<(), protea::serve::ServeError>(())
//! ```
//!
//! ## Crate map
//!
//! | layer | crate | contents |
//! |---|---|---|
//! | arithmetic | [`fixed`] | Q-format fixed point, MAC, requantize, LUT softmax/GELU, integer LN |
//! | tensors | [`tensor`] | matrices, tiling grids, matmul kernels |
//! | workload | [`model`] | encoder config/weights, f32 + bit-exact int8 references, op counts |
//! | simulation | [`hwsim`] | deterministic discrete-event kernel |
//! | scheduling | [`hls`] | HLS loop/pragma latency + resource binding |
//! | devices | [`platform`] | FPGA database, Fmax congestion model |
//! | memory | [`mem`] | AXI bursts, HBM channels, double-buffer overlap |
//! | **the paper** | [`core`] | engines, tiling schedules, registers, driver, co-simulation |
//! | comparisons | [`baselines`] | published results, rooflines, native CPU engine |
//! | deployment | [`serve`] | batched multi-card serving: scheduler, fleet DES, tail-latency report |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use protea_baselines as baselines;
pub use protea_core as core;
pub use protea_fixed as fixed;
pub use protea_hls as hls;
pub use protea_hwsim as hwsim;
pub use protea_mem as mem;
pub use protea_model as model;
pub use protea_platform as platform;
pub use protea_serve as serve;
pub use protea_tensor as tensor;

/// The types most programs need, in one import.
pub mod prelude {
    pub use protea_baselines::{NativeCpuEngine, PowerModel};
    pub use protea_core::{
        Accelerator, CoreError, CycleReport, DecodeSession, Driver, FaultEvent, FaultKind,
        FaultPlan, FaultRates, FaultStats, Phase, PlanKey, RetryPolicy, RunOutcome, RunPlan,
        RunResult, RuntimeConfig, SparseMode, SynthesisConfig, SynthesisConfigBuilder,
        TimingPreset, Watchdog,
    };
    pub use protea_fixed::{QFormat, Quantizer, Rounding};
    pub use protea_hwsim::{ExecSpan, ExecTrace, SpanKind};
    pub use protea_model::{
        AttnScaling, EncoderConfig, EncoderWeights, FloatEncoder, OpCount, QuantSchedule,
        QuantizedEncoder,
    };
    pub use protea_platform::FpgaDevice;
    pub use protea_serve::{
        AimdConfig, BatchPolicy, BrownoutLadder, CardHealth, ChurnAction, ChurnEvent, ChurnPlan,
        FailReason, FailedRequest, FaultConfig, Fleet, FleetConfig, FleetSnapshot, HedgeConfig,
        JsonLinesSource, MetricsMode, OverloadConfig, Percentiles, PlacementPolicy, PoissonSource,
        Priority, RetryBudgetConfig, SdcConfig, ServeError, ServeOutcome, ServePlan, ServeReport,
        ServeRequest, ServeResponse, StreamMetrics, TenantPolicy, TenantSlo, Workload,
        WorkloadSource,
    };
    pub use protea_tensor::Matrix;
}
