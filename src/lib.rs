//! # protea — a simulation-based reproduction of ProTEA
//!
//! ProTEA ("Programmable Transformer Encoder Acceleration on FPGA",
//! SC24-W) is an HLS-built FPGA accelerator for dense transformer
//! encoders whose hyperparameters — attention heads, layers, embedding
//! dimension, sequence length — are **runtime-programmable** without
//! re-synthesis. This workspace reproduces the system end-to-end in
//! Rust: a bit-exact 8-bit fixed-point datapath, a cycle-calibrated
//! model of the HLS engines, a device/Fmax model standing in for Vivado,
//! and a harness that regenerates every table and figure of the paper's
//! evaluation (see `EXPERIMENTS.md`).
//!
//! ## Quick start
//!
//! ```
//! use protea::prelude::*;
//!
//! // 1. Synthesize the paper's design point onto an Alveo U55C.
//! let syn = SynthesisConfig::paper_default();
//! let mut accel = Accelerator::new(syn, &FpgaDevice::alveo_u55c());
//!
//! // 2. "Train" a model (random weights here), save it, and let the
//! //    driver extract hyperparameters + program the registers.
//! let cfg = EncoderConfig::new(256, 4, 2, 16);
//! let blob = protea::model::serialize::encode(&EncoderWeights::random(cfg, 42));
//! Driver::new(syn).deploy(&mut accel, &blob, QuantSchedule::paper()).unwrap();
//!
//! // 3. Run an input through the simulated hardware.
//! let x = Matrix::from_fn(16, 256, |r, c| ((r + c) % 64) as i8);
//! let result = accel.run(&x);
//! assert_eq!(result.output.shape(), (16, 256));
//! assert!(result.latency_ms > 0.0);
//! ```
//!
//! ## Crate map
//!
//! | layer | crate | contents |
//! |---|---|---|
//! | arithmetic | [`fixed`] | Q-format fixed point, MAC, requantize, LUT softmax/GELU, integer LN |
//! | tensors | [`tensor`] | matrices, tiling grids, matmul kernels |
//! | workload | [`model`] | encoder config/weights, f32 + bit-exact int8 references, op counts |
//! | simulation | [`hwsim`] | deterministic discrete-event kernel |
//! | scheduling | [`hls`] | HLS loop/pragma latency + resource binding |
//! | devices | [`platform`] | FPGA database, Fmax congestion model |
//! | memory | [`mem`] | AXI bursts, HBM channels, double-buffer overlap |
//! | **the paper** | [`core`] | engines, tiling schedules, registers, driver, co-simulation |
//! | comparisons | [`baselines`] | published results, rooflines, native CPU engine |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use protea_baselines as baselines;
pub use protea_core as core;
pub use protea_fixed as fixed;
pub use protea_hls as hls;
pub use protea_hwsim as hwsim;
pub use protea_mem as mem;
pub use protea_model as model;
pub use protea_platform as platform;
pub use protea_tensor as tensor;

/// The types most programs need, in one import.
pub mod prelude {
    pub use protea_baselines::{NativeCpuEngine, PowerModel};
    pub use protea_core::{
        Accelerator, CycleReport, Driver, RunResult, RuntimeConfig, SparseMode, SynthesisConfig,
        TimingPreset,
    };
    pub use protea_fixed::{QFormat, Quantizer, Rounding};
    pub use protea_model::{
        AttnScaling, EncoderConfig, EncoderWeights, FloatEncoder, OpCount, QuantSchedule,
        QuantizedEncoder,
    };
    pub use protea_platform::FpgaDevice;
    pub use protea_tensor::Matrix;
}
